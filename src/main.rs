//! `feam` — command-line front end.
//!
//! The Binary Description Component works on *any* real ELF file, so the
//! CLI is genuinely useful outside the simulation:
//!
//! ```text
//! feam describe /path/to/binary    # Figure 3 description
//! feam identify /path/to/binary    # Table I MPI identification
//! feam objdump  /path/to/binary    # objdump -p style private headers
//! feam comment  /path/to/binary    # readelf -p .comment equivalent
//! feam check    /path/to/binary    # lint; exits 1 on Error findings
//! feam plan     /path/to/binary    # rank the simulated sites by readiness
//! feam demo                        # one simulated migration, end to end
//! ```
//!
//! `describe`, `identify`, `check` and `plan` accept `--json` for
//! machine-readable output. `plan` additionally accepts `-k N` (top-N
//! sites only), `--extended` (source + target prediction) and repeated
//! `--site S` to restrict the candidate list. `demo` accepts `--trace
//! <file>` (or the `FEAM_TRACE` environment variable) to write a JSONL
//! trace of the whole pipeline and print a per-phase timing breakdown.

use feam::core::bdc::{identify_mpi, BinaryDescription, MpiIdentification};
use feam::elf::render::{render_comment_section, render_objdump_p, render_summary};
use feam::elf::ElfFile;

fn usage() -> ! {
    eprintln!(
        "usage: feam <describe|identify|objdump|comment|check> [--json] <elf-file>\n       \
         feam plan [--json] [-k N] [--extended] [--site S]... <elf-file>\n       \
         feam demo [--trace <file>]"
    );
    std::process::exit(2);
}

fn read_elf(path: &str) -> Vec<u8> {
    match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("feam: cannot read {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Split `[--json] <path>` in either order; returns (json, path).
fn parse_file_args(args: &[String]) -> (bool, &str) {
    let mut json = false;
    let mut path: Option<&str> = None;
    for a in args {
        if a == "--json" {
            json = true;
        } else if path.is_none() {
            path = Some(a.as_str());
        } else {
            usage();
        }
    }
    match path {
        Some(p) => (json, p),
        None => usage(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("describe") => {
            let (json, path) = parse_file_args(&args[1..]);
            let bytes = read_elf(path);
            match BinaryDescription::from_bytes(path, &bytes) {
                Ok(desc) => {
                    if json {
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&describe_json(path, &desc)).unwrap()
                        );
                        return;
                    }
                    let f = ElfFile::parse(&bytes).expect("parsed above");
                    println!("== FEAM binary description: {path} ==");
                    print!("{}", render_summary(&f));
                    println!(
                        "MPI        : {}",
                        match desc.mpi {
                            MpiIdentification::Identified(i) => i.name().to_string(),
                            MpiIdentification::NotMpi => "not an MPI binary".to_string(),
                        }
                    );
                    if let Some(c) = &desc.build_env.compiler {
                        println!("compiler   : {c}");
                    }
                    if let Some(d) = &desc.build_env.distro_hint {
                        println!("build OS   : {d}");
                    }
                    if let Some(tag) = &desc.abi_tag {
                        println!("ABI tag    : {}", tag.render());
                    }
                }
                Err(e) => {
                    eprintln!("feam: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("identify") => {
            let (json, path) = parse_file_args(&args[1..]);
            let bytes = read_elf(path);
            match ElfFile::parse(&bytes) {
                Ok(f) => {
                    let mpi = identify_mpi(f.needed());
                    if json {
                        let name = match mpi {
                            MpiIdentification::Identified(i) => {
                                serde_json::Value::String(i.name().to_string())
                            }
                            MpiIdentification::NotMpi => serde_json::Value::Null,
                        };
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&serde_json::json!({
                                "path": path,
                                "mpi": name,
                            }))
                            .unwrap()
                        );
                        return;
                    }
                    match mpi {
                        MpiIdentification::Identified(i) => {
                            println!("{path}: {} (Table I link-level signature)", i.name())
                        }
                        MpiIdentification::NotMpi => {
                            println!("{path}: no MPI implementation detected")
                        }
                    }
                }
                Err(e) => {
                    eprintln!("feam: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("objdump") => {
            let path = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let bytes = read_elf(path);
            match ElfFile::parse(&bytes) {
                Ok(f) => print!("{path}:     {}", render_objdump_p(&f)),
                Err(e) => {
                    eprintln!("feam: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("comment") => {
            let path = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let bytes = read_elf(path);
            match ElfFile::parse(&bytes) {
                Ok(f) => print!("{}", render_comment_section(&f)),
                Err(e) => {
                    eprintln!("feam: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("check") => {
            let (json, path) = parse_file_args(&args[1..]);
            let bytes = read_elf(path);
            match ElfFile::parse(&bytes) {
                Ok(f) => {
                    let findings = feam::elf::check::check(&f);
                    let errors = findings
                        .iter()
                        .filter(|x| x.severity == feam::elf::check::Severity::Error)
                        .count();
                    if json {
                        let items: Vec<serde_json::Value> = findings
                            .iter()
                            .map(|x| {
                                serde_json::json!({
                                    "severity": format!("{:?}", x.severity),
                                    "message": x.message,
                                })
                            })
                            .collect();
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&serde_json::json!({
                                "path": path,
                                "findings": items,
                                "errors": errors as u64,
                            }))
                            .unwrap()
                        );
                    } else {
                        if findings.is_empty() {
                            println!("{path}: no findings");
                        }
                        for x in &findings {
                            println!("{path}: {:?}: {}", x.severity, x.message);
                        }
                    }
                    if errors > 0 {
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    eprintln!("feam: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("plan") => plan_cmd(&args[1..]),
        Some("demo") => {
            let mut trace: Option<String> = std::env::var("FEAM_TRACE").ok();
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                if a == "--trace" {
                    match rest.next() {
                        Some(p) => trace = Some(p.clone()),
                        None => usage(),
                    }
                } else {
                    usage();
                }
            }
            demo(trace.as_deref());
        }
        _ => usage(),
    }
}

/// `feam plan [--json] [-k N] [--extended] [--site S]... <elf-file>`:
/// evaluate the binary against the simulated standard sites concurrently
/// and print the readiness ranking. Exits 1 when no site produced a
/// prediction at all; degraded or errored sites otherwise just rank last.
fn plan_cmd(args: &[String]) {
    use feam::core::predict::PredictionMode;
    use feam::svc::plan::plan;
    use feam::svc::{PlanRequest, PredictService, RegisteredBinary, ServiceConfig, SiteSelection};
    use std::sync::Arc;

    let mut json = false;
    let mut k: Option<usize> = None;
    let mut extended = false;
    let mut only_sites: Vec<String> = Vec::new();
    let mut path: Option<&str> = None;
    let mut rest = args.iter();
    while let Some(a) = rest.next() {
        match a.as_str() {
            "--json" => json = true,
            "--extended" => extended = true,
            "-k" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(n) => k = Some(n),
                None => usage(),
            },
            "--site" => match rest.next() {
                Some(s) => only_sites.push(s.clone()),
                None => usage(),
            },
            other if path.is_none() && !other.starts_with('-') => path = Some(other),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    let bytes = read_elf(path);
    if let Err(e) = ElfFile::parse(&bytes) {
        eprintln!("feam: {e}");
        std::process::exit(1);
    }

    let mut svc = PredictService::new(ServiceConfig::default());
    let home = svc.site_names().first().cloned().unwrap_or_default();
    svc.register_binary(path, RegisteredBinary::new(Arc::new(bytes), &home))
        .expect("fresh registry accepts the binary");
    svc.start();
    let req = PlanRequest {
        binary_ref: path.to_string(),
        sites: if only_sites.is_empty() {
            SiteSelection::All
        } else {
            SiteSelection::Sites(only_sites)
        },
        mode: if extended {
            PredictionMode::Extended
        } else {
            PredictionMode::Basic
        },
        k,
    };
    let placement = match plan(&svc, &req) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("feam: {e}");
            std::process::exit(1);
        }
    };
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::to_value(&placement).expect("serialize"))
                .unwrap()
        );
    } else {
        println!(
            "== FEAM placement: {} ({} prediction, {} candidate sites) ==",
            path,
            if extended { "extended" } else { "basic" },
            placement.candidates
        );
        println!("rank  site          verdict     conf   ship        attempts  note");
        for (i, s) in placement.sites.iter().enumerate() {
            let note = s.error.clone().unwrap_or_else(|| {
                s.prediction
                    .as_ref()
                    .and_then(|p| p.first_failure())
                    .map(|v| format!("{}: {}", v.determinant.name(), v.detail))
                    .unwrap_or_default()
            });
            println!(
                "{:>4}  {:<12}  {:<10}  {:>4.2}  {:>3} libs {:>8}  {:>7.2}  {}",
                i + 1,
                s.site,
                s.verdict(),
                s.confidence,
                s.resolution_libraries,
                format_bytes(s.resolution_bytes),
                s.expected_launch_attempts,
                note,
            );
        }
        if placement.degraded_sites > 0 || placement.error_sites > 0 {
            println!(
                "({} degraded, {} errored site(s) ranked last)",
                placement.degraded_sites, placement.error_sites
            );
        }
    }
    if placement.best().is_none() {
        std::process::exit(1);
    }
}

fn format_bytes(n: u64) -> String {
    if n >= 1024 * 1024 {
        format!("{:.1}MiB", n as f64 / (1024.0 * 1024.0))
    } else if n >= 1024 {
        format!("{:.1}KiB", n as f64 / 1024.0)
    } else {
        format!("{n}B")
    }
}

fn describe_json(path: &str, desc: &BinaryDescription) -> serde_json::Value {
    serde_json::json!({
        "path": path,
        "format": desc.format,
        "machine": desc.machine.name(),
        "class_bits": desc.class.bits() as u64,
        "dynamic": desc.is_dynamic,
        "needed": desc.needed,
        "soname": desc.soname,
        "required_glibc": desc.required_glibc.as_ref().map(|v| v.render()),
        "mpi": match desc.mpi {
            MpiIdentification::Identified(i) => Some(i.name().to_string()),
            MpiIdentification::NotMpi => None,
        },
        "compiler": desc.build_env.compiler,
        "build_os": desc.build_env.distro_hint,
        "abi_tag": desc.abi_tag.as_ref().map(|t| t.render()),
        "size": desc.size as u64,
    })
}

/// One simulated migration end to end (the quickstart example, condensed).
/// With `trace_path`, every phase is recorded to a JSONL trace file and a
/// per-span timing breakdown is printed after the report.
fn demo(trace_path: Option<&str>) {
    use feam::core::phases::{run_source_phase, run_target_phase, PhaseConfig};
    use feam::core::report::render_report;
    use feam::obs::{trace, Recorder};
    use feam::sim::compile::{compile, ProgramSpec};
    use feam::sim::toolchain::Language;
    use feam::workloads::sites::{standard_sites, INDIA, RANGER};

    let recorder = match trace_path {
        Some(p) => match Recorder::jsonl_file(p) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("feam: cannot open trace file {p}: {e}");
                std::process::exit(1);
            }
        },
        None => Recorder::disabled(),
    };
    let cfg = PhaseConfig {
        recorder: recorder.clone(),
        ..PhaseConfig::default()
    };
    let sites = standard_sites(42);
    let stack = sites[RANGER].stacks[1].clone();
    let bin = compile(
        &sites[RANGER],
        Some(&stack),
        &ProgramSpec::new("bt", Language::Fortran),
        42,
    )
    .expect("demo binary compiles");
    let bundle = run_source_phase(&sites[RANGER], &bin.image, &cfg).expect("source phase succeeds");
    let outcome = run_target_phase(&sites[INDIA], Some(&bin.image), Some(&bundle), &cfg);
    print!("{}", render_report(&outcome));

    if let Some(p) = trace_path {
        recorder.flush();
        match std::fs::read_to_string(p) {
            Ok(text) => {
                let events = trace::parse_trace(&text);
                println!("\n==== trace breakdown ({p}, {} events) ====", events.len());
                print!("{}", trace::render_breakdown(&events));
            }
            Err(e) => eprintln!("feam: cannot read back trace {p}: {e}"),
        }
    }
}
