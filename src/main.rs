//! `feam` — command-line front end.
//!
//! The Binary Description Component works on *any* real ELF file, so the
//! CLI is genuinely useful outside the simulation:
//!
//! ```text
//! feam describe /path/to/binary    # Figure 3 description
//! feam identify /path/to/binary    # Table I MPI identification
//! feam objdump  /path/to/binary    # objdump -p style private headers
//! feam comment  /path/to/binary    # readelf -p .comment equivalent
//! feam check    /path/to/binary    # lint; exits 1 on Error findings
//! feam demo                        # one simulated migration, end to end
//! ```
//!
//! `describe`, `identify` and `check` accept `--json` for machine-readable
//! output. `demo` accepts `--trace <file>` (or the `FEAM_TRACE`
//! environment variable) to write a JSONL trace of the whole pipeline and
//! print a per-phase timing breakdown.

use feam::core::bdc::{identify_mpi, BinaryDescription, MpiIdentification};
use feam::elf::render::{render_comment_section, render_objdump_p, render_summary};
use feam::elf::ElfFile;

fn usage() -> ! {
    eprintln!(
        "usage: feam <describe|identify|objdump|comment|check> [--json] <elf-file>\n       feam demo [--trace <file>]"
    );
    std::process::exit(2);
}

fn read_elf(path: &str) -> Vec<u8> {
    match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("feam: cannot read {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Split `[--json] <path>` in either order; returns (json, path).
fn parse_file_args(args: &[String]) -> (bool, &str) {
    let mut json = false;
    let mut path: Option<&str> = None;
    for a in args {
        if a == "--json" {
            json = true;
        } else if path.is_none() {
            path = Some(a.as_str());
        } else {
            usage();
        }
    }
    match path {
        Some(p) => (json, p),
        None => usage(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("describe") => {
            let (json, path) = parse_file_args(&args[1..]);
            let bytes = read_elf(path);
            match BinaryDescription::from_bytes(path, &bytes) {
                Ok(desc) => {
                    if json {
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&describe_json(path, &desc)).unwrap()
                        );
                        return;
                    }
                    let f = ElfFile::parse(&bytes).expect("parsed above");
                    println!("== FEAM binary description: {path} ==");
                    print!("{}", render_summary(&f));
                    println!(
                        "MPI        : {}",
                        match desc.mpi {
                            MpiIdentification::Identified(i) => i.name().to_string(),
                            MpiIdentification::NotMpi => "not an MPI binary".to_string(),
                        }
                    );
                    if let Some(c) = &desc.build_env.compiler {
                        println!("compiler   : {c}");
                    }
                    if let Some(d) = &desc.build_env.distro_hint {
                        println!("build OS   : {d}");
                    }
                    if let Some(tag) = &desc.abi_tag {
                        println!("ABI tag    : {}", tag.render());
                    }
                }
                Err(e) => {
                    eprintln!("feam: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("identify") => {
            let (json, path) = parse_file_args(&args[1..]);
            let bytes = read_elf(path);
            match ElfFile::parse(&bytes) {
                Ok(f) => {
                    let mpi = identify_mpi(f.needed());
                    if json {
                        let name = match mpi {
                            MpiIdentification::Identified(i) => {
                                serde_json::Value::String(i.name().to_string())
                            }
                            MpiIdentification::NotMpi => serde_json::Value::Null,
                        };
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&serde_json::json!({
                                "path": path,
                                "mpi": name,
                            }))
                            .unwrap()
                        );
                        return;
                    }
                    match mpi {
                        MpiIdentification::Identified(i) => {
                            println!("{path}: {} (Table I link-level signature)", i.name())
                        }
                        MpiIdentification::NotMpi => {
                            println!("{path}: no MPI implementation detected")
                        }
                    }
                }
                Err(e) => {
                    eprintln!("feam: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("objdump") => {
            let path = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let bytes = read_elf(path);
            match ElfFile::parse(&bytes) {
                Ok(f) => print!("{path}:     {}", render_objdump_p(&f)),
                Err(e) => {
                    eprintln!("feam: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("comment") => {
            let path = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let bytes = read_elf(path);
            match ElfFile::parse(&bytes) {
                Ok(f) => print!("{}", render_comment_section(&f)),
                Err(e) => {
                    eprintln!("feam: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("check") => {
            let (json, path) = parse_file_args(&args[1..]);
            let bytes = read_elf(path);
            match ElfFile::parse(&bytes) {
                Ok(f) => {
                    let findings = feam::elf::check::check(&f);
                    let errors = findings
                        .iter()
                        .filter(|x| x.severity == feam::elf::check::Severity::Error)
                        .count();
                    if json {
                        let items: Vec<serde_json::Value> = findings
                            .iter()
                            .map(|x| {
                                serde_json::json!({
                                    "severity": format!("{:?}", x.severity),
                                    "message": x.message,
                                })
                            })
                            .collect();
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&serde_json::json!({
                                "path": path,
                                "findings": items,
                                "errors": errors as u64,
                            }))
                            .unwrap()
                        );
                    } else {
                        if findings.is_empty() {
                            println!("{path}: no findings");
                        }
                        for x in &findings {
                            println!("{path}: {:?}: {}", x.severity, x.message);
                        }
                    }
                    if errors > 0 {
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    eprintln!("feam: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("demo") => {
            let mut trace: Option<String> = std::env::var("FEAM_TRACE").ok();
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                if a == "--trace" {
                    match rest.next() {
                        Some(p) => trace = Some(p.clone()),
                        None => usage(),
                    }
                } else {
                    usage();
                }
            }
            demo(trace.as_deref());
        }
        _ => usage(),
    }
}

fn describe_json(path: &str, desc: &BinaryDescription) -> serde_json::Value {
    serde_json::json!({
        "path": path,
        "format": desc.format,
        "machine": desc.machine.name(),
        "class_bits": desc.class.bits() as u64,
        "dynamic": desc.is_dynamic,
        "needed": desc.needed,
        "soname": desc.soname,
        "required_glibc": desc.required_glibc.as_ref().map(|v| v.render()),
        "mpi": match desc.mpi {
            MpiIdentification::Identified(i) => Some(i.name().to_string()),
            MpiIdentification::NotMpi => None,
        },
        "compiler": desc.build_env.compiler,
        "build_os": desc.build_env.distro_hint,
        "abi_tag": desc.abi_tag.as_ref().map(|t| t.render()),
        "size": desc.size as u64,
    })
}

/// One simulated migration end to end (the quickstart example, condensed).
/// With `trace_path`, every phase is recorded to a JSONL trace file and a
/// per-span timing breakdown is printed after the report.
fn demo(trace_path: Option<&str>) {
    use feam::core::phases::{run_source_phase, run_target_phase, PhaseConfig};
    use feam::core::report::render_report;
    use feam::obs::{trace, Recorder};
    use feam::sim::compile::{compile, ProgramSpec};
    use feam::sim::toolchain::Language;
    use feam::workloads::sites::{standard_sites, INDIA, RANGER};

    let recorder = match trace_path {
        Some(p) => match Recorder::jsonl_file(p) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("feam: cannot open trace file {p}: {e}");
                std::process::exit(1);
            }
        },
        None => Recorder::disabled(),
    };
    let cfg = PhaseConfig {
        recorder: recorder.clone(),
        ..PhaseConfig::default()
    };
    let sites = standard_sites(42);
    let stack = sites[RANGER].stacks[1].clone();
    let bin = compile(
        &sites[RANGER],
        Some(&stack),
        &ProgramSpec::new("bt", Language::Fortran),
        42,
    )
    .expect("demo binary compiles");
    let bundle = run_source_phase(&sites[RANGER], &bin.image, &cfg).expect("source phase succeeds");
    let outcome = run_target_phase(&sites[INDIA], Some(&bin.image), Some(&bundle), &cfg);
    print!("{}", render_report(&outcome));

    if let Some(p) = trace_path {
        recorder.flush();
        match std::fs::read_to_string(p) {
            Ok(text) => {
                let events = trace::parse_trace(&text);
                println!("\n==== trace breakdown ({p}, {} events) ====", events.len());
                print!("{}", trace::render_breakdown(&events));
            }
            Err(e) => eprintln!("feam: cannot read back trace {p}: {e}"),
        }
    }
}
