//! `feam` — command-line front end.
//!
//! The Binary Description Component works on *any* real ELF file, so the
//! CLI is genuinely useful outside the simulation:
//!
//! ```text
//! feam describe /path/to/binary    # Figure 3 description
//! feam identify /path/to/binary    # Table I MPI identification
//! feam objdump  /path/to/binary    # objdump -p style private headers
//! feam comment  /path/to/binary    # readelf -p .comment equivalent
//! feam demo                        # one simulated migration, end to end
//! ```

use feam::core::bdc::{identify_mpi, BinaryDescription, MpiIdentification};
use feam::elf::render::{render_comment_section, render_objdump_p, render_summary};
use feam::elf::ElfFile;

fn usage() -> ! {
    eprintln!(
        "usage: feam <describe|identify|objdump|comment|check> <elf-file>\n       feam demo"
    );
    std::process::exit(2);
}

fn read_elf(path: &str) -> Vec<u8> {
    match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("feam: cannot read {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("describe") => {
            let path = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let bytes = read_elf(path);
            match BinaryDescription::from_bytes(path, &bytes) {
                Ok(desc) => {
                    let f = ElfFile::parse(&bytes).expect("parsed above");
                    println!("== FEAM binary description: {path} ==");
                    print!("{}", render_summary(&f));
                    println!(
                        "MPI        : {}",
                        match desc.mpi {
                            MpiIdentification::Identified(i) => i.name().to_string(),
                            MpiIdentification::NotMpi => "not an MPI binary".to_string(),
                        }
                    );
                    if let Some(c) = &desc.build_env.compiler {
                        println!("compiler   : {c}");
                    }
                    if let Some(d) = &desc.build_env.distro_hint {
                        println!("build OS   : {d}");
                    }
                    if let Some(tag) = &desc.abi_tag {
                        println!("ABI tag    : {}", tag.render());
                    }
                }
                Err(e) => {
                    eprintln!("feam: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("identify") => {
            let path = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let bytes = read_elf(path);
            match ElfFile::parse(&bytes) {
                Ok(f) => match identify_mpi(f.needed()) {
                    MpiIdentification::Identified(i) => {
                        println!("{path}: {} (Table I link-level signature)", i.name())
                    }
                    MpiIdentification::NotMpi => println!("{path}: no MPI implementation detected"),
                },
                Err(e) => {
                    eprintln!("feam: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("objdump") => {
            let path = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let bytes = read_elf(path);
            match ElfFile::parse(&bytes) {
                Ok(f) => print!("{path}:     {}", render_objdump_p(&f)),
                Err(e) => {
                    eprintln!("feam: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("comment") => {
            let path = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let bytes = read_elf(path);
            match ElfFile::parse(&bytes) {
                Ok(f) => print!("{}", render_comment_section(&f)),
                Err(e) => {
                    eprintln!("feam: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("check") => {
            let path = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let bytes = read_elf(path);
            match ElfFile::parse(&bytes) {
                Ok(f) => {
                    let findings = feam::elf::check::check(&f);
                    if findings.is_empty() {
                        println!("{path}: no findings");
                    }
                    for x in findings {
                        println!("{path}: {:?}: {}", x.severity, x.message);
                    }
                }
                Err(e) => {
                    eprintln!("feam: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("demo") => demo(),
        _ => usage(),
    }
}

/// One simulated migration end to end (the quickstart example, condensed).
fn demo() {
    use feam::core::phases::{run_source_phase, run_target_phase, PhaseConfig};
    use feam::core::report::render_report;
    use feam::sim::compile::{compile, ProgramSpec};
    use feam::sim::toolchain::Language;
    use feam::workloads::sites::{standard_sites, INDIA, RANGER};

    let cfg = PhaseConfig::default();
    let sites = standard_sites(42);
    let stack = sites[RANGER].stacks[1].clone();
    let bin = compile(
        &sites[RANGER],
        Some(&stack),
        &ProgramSpec::new("bt", Language::Fortran),
        42,
    )
    .expect("demo binary compiles");
    let bundle =
        run_source_phase(&sites[RANGER], &bin.image, &cfg).expect("source phase succeeds");
    let outcome = run_target_phase(&sites[INDIA], Some(&bin.image), Some(&bundle), &cfg);
    print!("{}", render_report(&outcome));
}
