//! `feam` — command-line front end.
//!
//! The Binary Description Component works on *any* real ELF file, so the
//! CLI is genuinely useful outside the simulation:
//!
//! ```text
//! feam describe /path/to/binary    # Figure 3 description
//! feam identify /path/to/binary    # Table I MPI identification
//! feam objdump  /path/to/binary    # objdump -p style private headers
//! feam comment  /path/to/binary    # readelf -p .comment equivalent
//! feam check    /path/to/binary    # lint; exits 1 on Error findings
//! feam plan     /path/to/binary    # rank the simulated sites by readiness
//! feam demo                        # one simulated migration, end to end
//! ```
//!
//! `describe`, `identify`, `check` and `plan` accept `--json` for
//! machine-readable output. `plan` additionally accepts `-k N` (top-N
//! sites only), `--extended` (source + target prediction) and repeated
//! `--site S` to restrict the candidate list. `demo` accepts `--trace
//! <file>` (or the `FEAM_TRACE` environment variable) to write a JSONL
//! trace of the whole pipeline and print a per-phase timing breakdown.

use feam::core::bdc::{identify_mpi, BinaryDescription, MpiIdentification};
use feam::elf::render::{render_comment_section, render_objdump_p, render_summary};
use feam::elf::LazyElf;

fn usage() -> ! {
    eprintln!(
        "usage: feam <describe|identify|objdump|comment|check> [--json] <elf-file>\n       \
         feam check [--sites] <elf-file>   (--sites: ensemble verdicts per simulated site)\n       \
         feam plan [--json] [-k N] [--extended] [--site S]... <elf-file>\n       \
         feam demo [--trace <file>]\n       \
         feam obs report <trace.jsonl> [--top N]\n       \
         feam obs snapshot [--json|--prom] [--seed N] [--chaos R] [--quick]\n       \
         feam obs check --slo [--json] [--seed N] [--chaos R] [--quick]"
    );
    std::process::exit(2);
}

fn read_elf(path: &str) -> Vec<u8> {
    match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("feam: cannot read {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Split `[--json] <path>` in either order; returns (json, path).
fn parse_file_args(args: &[String]) -> (bool, &str) {
    let mut json = false;
    let mut path: Option<&str> = None;
    for a in args {
        if a == "--json" {
            json = true;
        } else if path.is_none() {
            path = Some(a.as_str());
        } else {
            usage();
        }
    }
    match path {
        Some(p) => (json, p),
        None => usage(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("describe") => {
            let (json, path) = parse_file_args(&args[1..]);
            let bytes = read_elf(path);
            match BinaryDescription::from_bytes(path, &bytes) {
                Ok(desc) => {
                    if json {
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&describe_json(path, &desc)).unwrap()
                        );
                        return;
                    }
                    let f = LazyElf::parse(&bytes).expect("parsed above");
                    println!("== FEAM binary description: {path} ==");
                    print!("{}", render_summary(&f));
                    println!(
                        "MPI        : {}",
                        match desc.mpi {
                            MpiIdentification::Identified(i) => i.name().to_string(),
                            MpiIdentification::NotMpi => "not an MPI binary".to_string(),
                        }
                    );
                    if let Some(c) = &desc.build_env.compiler {
                        println!("compiler   : {c}");
                    }
                    if let Some(d) = &desc.build_env.distro_hint {
                        println!("build OS   : {d}");
                    }
                    if let Some(tag) = &desc.abi_tag {
                        println!("ABI tag    : {}", tag.render());
                    }
                }
                Err(e) => {
                    eprintln!("feam: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("identify") => {
            let (json, path) = parse_file_args(&args[1..]);
            let bytes = read_elf(path);
            match LazyElf::parse(&bytes) {
                Ok(f) => {
                    let mpi = identify_mpi(f.needed());
                    let evidence = f.evidence();
                    // Fallback tier mirrors the BDC's gate: signature
                    // matching runs only when direct evidence is missing.
                    let provenance = if evidence.needs_fallback() {
                        Some(feam::provenance::analyze(&f)).filter(|r| !r.is_empty())
                    } else {
                        None
                    };
                    if json {
                        let name = match mpi {
                            MpiIdentification::Identified(i) => {
                                serde_json::Value::String(i.name().to_string())
                            }
                            MpiIdentification::NotMpi => serde_json::Value::Null,
                        };
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&serde_json::json!({
                                "path": path,
                                "mpi": name,
                                "evidence": feam::core::report::evidence_json(&evidence),
                                "provenance": provenance
                                    .as_ref()
                                    .map(feam::core::report::provenance_json),
                            }))
                            .unwrap()
                        );
                        return;
                    }
                    match mpi {
                        MpiIdentification::Identified(i) => {
                            println!("{path}: {} (Table I link-level signature)", i.name())
                        }
                        MpiIdentification::NotMpi if !evidence.has_dynamic => {
                            println!("{path}: statically linked; no link-level signature to read")
                        }
                        MpiIdentification::NotMpi => {
                            println!("{path}: no MPI implementation detected")
                        }
                    }
                    if let Some(p) = &provenance {
                        println!("provenance (fallback evidence, db v{}):", p.db_version);
                        if let Some(c) = &p.compiler {
                            println!("  compiler : {}", c.render());
                        }
                        if let Some(m) = &p.mpi_stack {
                            println!("  MPI stack: {}", m.render());
                        }
                        for r in &p.runtime {
                            println!("  runtime  : {} (via {})", r.runtime, r.evidence);
                        }
                    }
                }
                Err(e) => {
                    eprintln!("feam: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("objdump") => {
            let path = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let bytes = read_elf(path);
            match LazyElf::parse(&bytes) {
                Ok(f) => print!("{path}:     {}", render_objdump_p(&f)),
                Err(e) => {
                    eprintln!("feam: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("comment") => {
            let path = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let bytes = read_elf(path);
            match LazyElf::parse(&bytes) {
                Ok(f) => print!("{}", render_comment_section(&f)),
                Err(e) => {
                    eprintln!("feam: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("check") => {
            let mut json = false;
            let mut sites = false;
            let mut path: Option<&str> = None;
            for a in &args[1..] {
                match a.as_str() {
                    "--json" => json = true,
                    "--sites" => sites = true,
                    other if path.is_none() => path = Some(other),
                    _ => usage(),
                }
            }
            let Some(path) = path else { usage() };
            let bytes = read_elf(path);
            match LazyElf::parse(&bytes) {
                Ok(f) => {
                    let findings = feam::elf::check::check(&f);
                    let errors = findings
                        .iter()
                        .filter(|x| x.severity == feam::elf::check::Severity::Error)
                        .count();
                    if json {
                        let items: Vec<serde_json::Value> = findings
                            .iter()
                            .map(|x| {
                                serde_json::json!({
                                    "severity": format!("{:?}", x.severity),
                                    "message": x.message,
                                })
                            })
                            .collect();
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&serde_json::json!({
                                "path": path,
                                "findings": items,
                                "errors": errors as u64,
                            }))
                            .unwrap()
                        );
                    } else {
                        if findings.is_empty() {
                            println!("{path}: no findings");
                        }
                        for x in &findings {
                            println!("{path}: {:?}: {}", x.severity, x.message);
                        }
                    }
                    if sites && !json {
                        check_sites(path, &bytes);
                    }
                    // Exit status is the lint's alone: readiness and
                    // contested ensemble verdicts are advisory and never
                    // fail the check — only Error findings do.
                    if errors > 0 {
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    eprintln!("feam: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("plan") => plan_cmd(&args[1..]),
        Some("obs") => obs_cmd(&args[1..]),
        Some("demo") => {
            let mut trace: Option<String> = std::env::var("FEAM_TRACE").ok();
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                if a == "--trace" {
                    match rest.next() {
                        Some(p) => trace = Some(p.clone()),
                        None => usage(),
                    }
                } else {
                    usage();
                }
            }
            demo(trace.as_deref());
        }
        _ => usage(),
    }
}

/// `feam check --sites`: judge the binary's readiness at every standard
/// simulated site with the full checker ensemble (FEAM basic prediction,
/// symbol/version diff, ldd closure) and print one row per site with the
/// member votes and a contested marker. Advisory only — the caller's
/// exit status still comes exclusively from lint Error findings.
fn check_sites(path: &str, bytes: &[u8]) {
    use feam::agree::{dissent_of, feam_member, Ensemble};
    use feam::core::phases::{run_target_phase, PhaseConfig};
    use std::sync::Arc;

    let sites = feam::workloads::sites::standard_sites(7);
    let image = Arc::new(bytes.to_vec());
    let cfg = PhaseConfig::default();
    let mut ensemble = Ensemble::new(cfg.faults.clone());
    println!("{path}: ensemble readiness at the standard sites:");
    println!("  site          feam       symdiff    closure    agreement");
    for site in &sites {
        let outcome = run_target_phase(site, Some(&image), None, &cfg);
        let mut members = vec![feam_member(&outcome.prediction)];
        members.extend(ensemble.static_members(site, bytes));
        let dissent = dissent_of(&members);
        println!(
            "  {:<12}  {:<9}  {:<9}  {:<9}  {:.2}{}",
            site.name(),
            members[0].verdict.label(),
            members[1].verdict.label(),
            members[2].verdict.label(),
            dissent.agreement(),
            if dissent.contested() {
                "  contested"
            } else {
                ""
            },
        );
    }
}

/// `feam plan [--json] [-k N] [--extended] [--site S]... <elf-file>`:
/// evaluate the binary against the simulated standard sites concurrently
/// and print the readiness ranking. Exits 1 when no site produced a
/// prediction at all; degraded or errored sites otherwise just rank last.
fn plan_cmd(args: &[String]) {
    use feam::core::predict::PredictionMode;
    use feam::svc::plan::plan;
    use feam::svc::{PlanRequest, PredictService, RegisteredBinary, ServiceConfig, SiteSelection};
    use std::sync::Arc;

    let mut json = false;
    let mut k: Option<usize> = None;
    let mut extended = false;
    let mut only_sites: Vec<String> = Vec::new();
    let mut path: Option<&str> = None;
    let mut rest = args.iter();
    while let Some(a) = rest.next() {
        match a.as_str() {
            "--json" => json = true,
            "--extended" => extended = true,
            "-k" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(n) => k = Some(n),
                None => usage(),
            },
            "--site" => match rest.next() {
                Some(s) => only_sites.push(s.clone()),
                None => usage(),
            },
            other if path.is_none() && !other.starts_with('-') => path = Some(other),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    let bytes = read_elf(path);
    if let Err(e) = LazyElf::parse(&bytes) {
        eprintln!("feam: {e}");
        std::process::exit(1);
    }

    let mut svc = PredictService::new(ServiceConfig::default());
    let home = svc.site_names().first().cloned().unwrap_or_default();
    svc.register_binary(path, RegisteredBinary::new(Arc::new(bytes), &home))
        .expect("fresh registry accepts the binary");
    svc.start();
    let req = PlanRequest {
        binary_ref: path.to_string(),
        sites: if only_sites.is_empty() {
            SiteSelection::All
        } else {
            SiteSelection::Sites(only_sites)
        },
        mode: if extended {
            PredictionMode::Extended
        } else {
            PredictionMode::Basic
        },
        k,
        deadline: None,
    };
    let mut placement = match plan(&svc, &req) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("feam: {e}");
            std::process::exit(1);
        }
    };
    // Second opinions: attach checker-ensemble dissent to every verdict
    // and re-rank (contested sinks below uncontested at equal readiness).
    let contested = feam::svc::annotate_with_ensemble(&svc, &mut placement);
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::to_value(&placement).expect("serialize"))
                .unwrap()
        );
    } else {
        println!(
            "== FEAM placement: {} ({} prediction, {} candidate sites) ==",
            path,
            if extended { "extended" } else { "basic" },
            placement.candidates
        );
        println!("rank  site          verdict     conf   ship        attempts  note");
        for (i, s) in placement.sites.iter().enumerate() {
            let note = s.error.clone().unwrap_or_else(|| {
                s.prediction
                    .as_ref()
                    .and_then(|p| p.first_failure())
                    .map(|v| format!("{}: {}", v.determinant.name(), v.detail))
                    .unwrap_or_default()
            });
            println!(
                "{:>4}  {:<12}  {:<10}  {:>4.2}  {:>3} libs {:>8}  {:>7.2}  {}",
                i + 1,
                s.site,
                format!("{}{}", s.verdict(), if s.contested { "!" } else { "" }),
                s.confidence,
                s.resolution_libraries,
                format_bytes(s.resolution_bytes),
                s.expected_launch_attempts,
                note,
            );
        }
        if contested > 0 {
            println!(
                "({contested} contested verdict(s) marked `!`: checker-ensemble members \
                 disagreed; contested ranks below uncontested at equal readiness)"
            );
        }
        if placement.degraded_sites > 0 || placement.error_sites > 0 {
            println!(
                "({} degraded, {} errored site(s) ranked last)",
                placement.degraded_sites, placement.error_sites
            );
        }
    }
    if placement.best().is_none() {
        std::process::exit(1);
    }
}

/// `feam obs <report|snapshot|check>` — the observability plane CLI.
///
/// * `report <trace.jsonl> [--top N]` — per-request analytics over a
///   recorded trace: one row per trace id, full breakdowns for the N
///   slowest requests.
/// * `snapshot [--json|--prom] [--seed N] [--chaos R] [--quick]` — run
///   the seeded observed workload and print the windowed metrics
///   snapshot (SLO evaluations and tail exemplars included) as
///   Prometheus text (default) or JSON.
/// * `check --slo [--json] [--seed N] [--chaos R] [--quick]` — same run,
///   then evaluate the default SLO set and exit non-zero when any
///   objective pages.
///
/// `--chaos R` pins an explicit transient fault plan at rate R; without
/// it the ambient `FEAM_CHAOS_RATE` plan applies, so environment chaos
/// shows up in the verdict.
fn obs_cmd(args: &[String]) {
    use feam::obs::{expo, trace};
    use feam::sim::faults::FaultPlan;
    use feam::svc::obsctl::{default_slos, run_observed, ObsRunParams};
    use std::sync::Arc;

    let Some(sub) = args.first().map(String::as_str) else {
        usage()
    };
    match sub {
        "report" => {
            let mut top = 3usize;
            let mut path: Option<&str> = None;
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                match a.as_str() {
                    "--top" => match rest.next().and_then(|v| v.parse().ok()) {
                        Some(n) => top = n,
                        None => usage(),
                    },
                    other if path.is_none() && !other.starts_with('-') => path = Some(other),
                    _ => usage(),
                }
            }
            let Some(path) = path else { usage() };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("feam: cannot read {path}: {e}");
                    std::process::exit(1);
                }
            };
            print!(
                "{}",
                trace::render_trace_report(&trace::parse_trace(&text), top)
            );
        }
        "snapshot" | "check" => {
            let mut json = false;
            let mut prom = false;
            let mut slo = false;
            let mut quick = false;
            let mut seed = 42u64;
            let mut chaos: Option<f64> = None;
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                match a.as_str() {
                    "--json" => json = true,
                    "--prom" => prom = true,
                    "--slo" => slo = true,
                    "--quick" => quick = true,
                    "--seed" => match rest.next().and_then(|v| v.parse().ok()) {
                        Some(n) => seed = n,
                        None => usage(),
                    },
                    "--chaos" => match rest.next().and_then(|v| v.parse().ok()) {
                        Some(r) if (0.0..=1.0).contains(&r) => chaos = Some(r),
                        _ => usage(),
                    },
                    _ => usage(),
                }
            }
            if sub == "check" && !slo {
                usage();
            }
            let mut params = if quick {
                ObsRunParams::quick(seed)
            } else {
                ObsRunParams::standard(seed)
            };
            params.fault_plan = chaos.map(|r| Arc::new(FaultPlan::chaos(seed, r)));
            eprintln!(
                "observed run: {} requests over {} binaries (seed {seed}{}) ...",
                params.requests,
                params.binaries,
                match chaos {
                    Some(r) => format!(", chaos {r}"),
                    None => String::new(),
                }
            );
            let slos = default_slos();
            let outcome = run_observed(&params, &slos);
            if sub == "snapshot" {
                if json && prom {
                    usage();
                }
                if json {
                    print!("{}", expo::render_json(&outcome.snapshot));
                } else {
                    print!("{}", expo::render_prometheus(&outcome.snapshot));
                }
                return;
            }
            // check --slo
            if json {
                print!("{}", expo::render_json(&outcome.snapshot));
            } else {
                println!("SLO check ({} objectives):", outcome.evaluations.len());
                for e in &outcome.evaluations {
                    println!(
                        "  {:<14} {:<8} burn short {:>7.2} long {:>7.2}  {}",
                        e.name,
                        e.state.as_str(),
                        e.short_burn,
                        e.long_burn,
                        e.detail
                    );
                }
                if outcome.snapshot.exemplars.is_empty() {
                    println!("no tail exemplars captured");
                } else {
                    println!("tail exemplars (slowest first):");
                    for ex in &outcome.snapshot.exemplars {
                        println!(
                            "  trace {:>6} {:<14} {:>10.0}us  {} events{}",
                            ex.trace_id,
                            ex.metric,
                            ex.value,
                            ex.events,
                            if ex.faults.is_empty() {
                                String::new()
                            } else {
                                format!("  faults: {}", ex.faults.join(", "))
                            }
                        );
                    }
                }
            }
            let worst = outcome.worst;
            eprintln!("worst SLO state: {}", worst.as_str());
            if worst == feam::obs::SloState::Page {
                std::process::exit(1);
            }
        }
        _ => usage(),
    }
}

fn format_bytes(n: u64) -> String {
    if n >= 1024 * 1024 {
        format!("{:.1}MiB", n as f64 / (1024.0 * 1024.0))
    } else if n >= 1024 {
        format!("{:.1}KiB", n as f64 / 1024.0)
    } else {
        format!("{n}B")
    }
}

fn describe_json(path: &str, desc: &BinaryDescription) -> serde_json::Value {
    serde_json::json!({
        "path": path,
        "format": desc.format,
        "machine": desc.machine.name(),
        "class_bits": desc.class.bits() as u64,
        "dynamic": desc.is_dynamic,
        "needed": desc.needed,
        "soname": desc.soname,
        "required_glibc": desc.required_glibc.as_ref().map(|v| v.render()),
        "mpi": match desc.mpi {
            MpiIdentification::Identified(i) => Some(i.name().to_string()),
            MpiIdentification::NotMpi => None,
        },
        "compiler": desc.build_env.compiler,
        "build_os": desc.build_env.distro_hint,
        "abi_tag": desc.abi_tag.as_ref().map(|t| t.render()),
        "evidence": feam::core::report::evidence_json(&desc.evidence),
        "provenance": desc.provenance.as_ref().map(feam::core::report::provenance_json),
        "size": desc.size as u64,
    })
}

/// One simulated migration end to end (the quickstart example, condensed).
/// With `trace_path`, every phase is recorded to a JSONL trace file and a
/// per-span timing breakdown is printed after the report.
fn demo(trace_path: Option<&str>) {
    use feam::core::phases::{run_source_phase, run_target_phase, PhaseConfig};
    use feam::core::report::render_report;
    use feam::obs::{trace, Recorder};
    use feam::sim::compile::{compile, ProgramSpec};
    use feam::sim::toolchain::Language;
    use feam::workloads::sites::{standard_sites, INDIA, RANGER};

    let recorder = match trace_path {
        Some(p) => match Recorder::jsonl_file(p) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("feam: cannot open trace file {p}: {e}");
                std::process::exit(1);
            }
        },
        None => Recorder::disabled(),
    };
    let cfg = PhaseConfig {
        recorder: recorder.clone(),
        ..PhaseConfig::default()
    };
    let sites = standard_sites(42);
    let stack = sites[RANGER].stacks[1].clone();
    let bin = compile(
        &sites[RANGER],
        Some(&stack),
        &ProgramSpec::new("bt", Language::Fortran),
        42,
    )
    .expect("demo binary compiles");
    let bundle = run_source_phase(&sites[RANGER], &bin.image, &cfg).expect("source phase succeeds");
    let outcome = run_target_phase(&sites[INDIA], Some(&bin.image), Some(&bundle), &cfg);
    print!("{}", render_report(&outcome));

    if let Some(p) = trace_path {
        recorder.flush();
        match std::fs::read_to_string(p) {
            Ok(text) => {
                let events = trace::parse_trace(&text);
                println!("\n==== trace breakdown ({p}, {} events) ====", events.len());
                print!("{}", trace::render_breakdown(&events));
            }
            Err(e) => eprintln!("feam: cannot read back trace {p}: {e}"),
        }
    }
}
