//! # FEAM — a Framework for Efficient Application Migration
//!
//! Facade crate re-exporting the whole reproduction of
//! *Predicting Execution Readiness of MPI Binaries with FEAM* (ICPP 2013).
//!
//! The workspace is organised bottom-up:
//!
//! * [`elf`] — from-scratch ELF reader/writer with GNU symbol versioning.
//! * [`sim`] — simulated Unix computing sites: virtual filesystem, tool
//!   emulations (`ldd`, `uname`, Environment Modules, …), a dynamic-loader
//!   model, and an execution model with the paper's failure taxonomy.
//! * [`workloads`] — the five Table II sites and the NPB / SPEC MPI2007
//!   benchmark models that generate the paper's binary test set.
//! * [`core`] — the paper's contribution: the Binary Description Component,
//!   Environment Discovery Component and Target Evaluation Component, the
//!   four-determinant prediction model and the shared-library resolution
//!   model.
//! * [`provenance`] — the fallback evidence tier: a seeded signature
//!   database and calibrated matcher recovering compiler, runtime and MPI
//!   stack from stripped, static and cross-compiled binaries.
//! * [`agree`] — the compatibility-checker ensemble: independent
//!   symbol-diff and ldd-closure readiness checkers, agreement statistics
//!   (Cohen's kappa, confusion matrices) and contested-verdict synthesis.
//! * [`svc`] — the long-running prediction service: description caches,
//!   single-flight coalescing, bounded admission, and the site-placement
//!   planner.
//! * [`eval`] — the §VI evaluation harness regenerating Tables I–IV.
//!
//! ## Quickstart
//!
//! ```
//! use feam::workloads::sites::standard_sites;
//! use feam::workloads::testset::TestSetBuilder;
//! use feam::core::phases::{run_source_phase, run_target_phase, PhaseConfig};
//!
//! let sites = standard_sites(42);
//! let corpus = TestSetBuilder::new(42).build(&sites);
//! let item = &corpus.binaries()[0];
//! let gee = &sites[item.compiled_at];
//!
//! // Source phase at the guaranteed execution environment.
//! let bundle = run_source_phase(gee, &item.image, &PhaseConfig::default()).unwrap();
//!
//! // Target phase at some other site.
//! let target = &sites[(item.compiled_at + 1) % sites.len()];
//! let outcome = run_target_phase(target, Some(&item.image), Some(&bundle),
//!                                &PhaseConfig::default());
//! println!("ready: {}", outcome.prediction.ready());
//! ```

pub use feam_agree as agree;
pub use feam_core as core;
pub use feam_elf as elf;
pub use feam_eval as eval;
pub use feam_obs as obs;
pub use feam_provenance as provenance;
pub use feam_sim as sim;
pub use feam_svc as svc;
pub use feam_workloads as workloads;
