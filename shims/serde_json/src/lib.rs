//! Offline stand-in for the `serde_json` crate.
//!
//! Provides the subset this workspace uses: [`Value`] with indexing and
//! accessor methods, the [`json!`] macro, [`to_value`], [`to_string`],
//! [`to_string_pretty`] and [`from_str`], all built on the `serde` shim's
//! `Content` data model.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

mod parse;

pub use parse::from_str;

/// JSON number: integers are kept exact, like serde_json's `Number`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    U64(u64),
    I64(i64),
    F64(f64),
}

impl Number {
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::U64(v) => Some(v as f64),
            Number::I64(v) => Some(v as f64),
            Number::F64(v) => Some(v),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            Number::F64(v) => {
                if !v.is_finite() {
                    // serde_json refuses non-finite numbers; emit null so
                    // output stays parseable.
                    write!(f, "null")
                } else if v == v.trunc() && v.abs() < 1e15 {
                    // Keep the trailing `.0` so the value reparses as a
                    // float (serde_json/ryu behavior).
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// Insertion-ordered JSON object, like serde_json's `Map` with the
/// `preserve_order` feature.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Map::default()
    }

    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some(std::mem::replace(&mut slot.1, value))
        } else {
            self.entries.push((key, value));
            None
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

macro_rules! value_eq_num {
    ($($t:ty => $accessor:ident as $cast:ty),* $(,)?) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.$accessor() == Some(*other as $cast)
            }
        }
    )*};
}

value_eq_num!(
    u8 => as_u64 as u64, u16 => as_u64 as u64, u32 => as_u64 as u64,
    u64 => as_u64 as u64, usize => as_u64 as u64,
    i8 => as_i64 as i64, i16 => as_i64 as i64, i32 => as_i64 as i64,
    i64 => as_i64 as i64, isize => as_i64 as i64,
    f64 => as_f64 as f64,
);

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

// ---- bridging to the serde shim's data model ------------------------------

fn content_to_value(c: &Content) -> Value {
    match c {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(*b),
        // Like real serde_json, store non-negative integers unsigned so a
        // value compares equal to its parsed-back self.
        Content::I64(v) if *v >= 0 => Value::Number(Number::U64(*v as u64)),
        Content::I64(v) => Value::Number(Number::I64(*v)),
        Content::U64(v) => Value::Number(Number::U64(*v)),
        Content::F64(v) => Value::Number(Number::F64(*v)),
        Content::Str(s) => Value::String(s.clone()),
        Content::Seq(items) => Value::Array(items.iter().map(content_to_value).collect()),
        Content::Map(entries) => {
            let mut map = Map::new();
            for (k, v) in entries {
                map.insert(k.clone(), content_to_value(v));
            }
            Value::Object(map)
        }
    }
}

fn value_to_content(v: &Value) -> Content {
    match v {
        Value::Null => Content::Null,
        Value::Bool(b) => Content::Bool(*b),
        Value::Number(Number::U64(n)) => Content::U64(*n),
        Value::Number(Number::I64(n)) => Content::I64(*n),
        Value::Number(Number::F64(n)) => Content::F64(*n),
        Value::String(s) => Content::Str(s.clone()),
        Value::Array(items) => Content::Seq(items.iter().map(value_to_content).collect()),
        Value::Object(map) => Content::Map(
            map.iter()
                .map(|(k, v)| (k.clone(), value_to_content(v)))
                .collect(),
        ),
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        value_to_content(self)
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> Result<Self, serde::Error> {
        Ok(content_to_value(c))
    }
}

/// (De)serialization error.
pub type Error = serde::Error;

/// Convert any serializable value into a [`Value`].
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(content_to_value(&value.to_content()))
}

/// Infallible conversion used by the `json!` macro.
#[doc(hidden)]
pub fn __to_value<T: Serialize>(value: &T) -> Value {
    content_to_value(&value.to_content())
}

// ---- serialization to text ------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const PAD: &str = "  ";
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&PAD.repeat(indent + 1));
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&PAD.repeat(indent + 1));
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_compact(&mut s, self);
        f.write_str(&s)
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let v = content_to_value(&value.to_content());
    let mut s = String::new();
    write_compact(&mut s, &v);
    Ok(s)
}

/// Serialize to a human-readable, two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let v = content_to_value(&value.to_content());
    let mut s = String::new();
    write_pretty(&mut s, &v, 0);
    Ok(s)
}

/// Deserialize a typed value from a JSON `Value`.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_content(&value_to_content(&value))
}

/// Build a [`Value`] from JSON-like syntax. Supports `null`, literals,
/// arbitrary serializable expressions, arrays and objects with
/// expression keys and values, like the real `serde_json::json!`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::json_internal_array!([] $($tt)*) };
    ({ $($tt:tt)* }) => { $crate::json_internal_object!(@object [] () $($tt)*) };
    ($other:expr) => { $crate::__to_value(&$other) };
}

/// Array muncher: accumulates finished elements, munching one token tree
/// at a time into the pending element.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_array {
    // Done, no pending element.
    ([ $($done:expr,)* ]) => {
        $crate::Value::Array(vec![ $($done),* ])
    };
    // Next element is a nested array.
    ([ $($done:expr,)* ] [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([ $($done,)* $crate::json!([ $($inner)* ]), ] $($($rest)*)?)
    };
    // Next element is a nested object.
    ([ $($done:expr,)* ] { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([ $($done,)* $crate::json!({ $($inner)* }), ] $($($rest)*)?)
    };
    // Next element is null.
    ([ $($done:expr,)* ] null $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([ $($done,)* $crate::Value::Null, ] $($($rest)*)?)
    };
    // Next element is a general expression (munch up to the next comma).
    ([ $($done:expr,)* ] $expr:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([ $($done,)* $crate::__to_value(&$expr), ] $($($rest)*)?)
    };
}

/// Object muncher: `[done entries] (pending key tokens) rest...`.
/// Keys are expressions followed by `:`; values may be nested json.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_object {
    // Done.
    (@object [ $($done:expr,)* ] ()) => {{
        let mut map = $crate::Map::new();
        $( let (k, v) = $done; map.insert(k, v); )*
        $crate::Value::Object(map)
    }};
    // Trailing comma already consumed by value rules; plain end.
    (@object [ $($done:expr,)* ] () ,) => {
        $crate::json_internal_object!(@object [ $($done,)* ] ())
    };
    // Key complete, value is a nested array.
    (@object [ $($done:expr,)* ] ($($key:tt)+) : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal_object!(@object
            [ $($done,)* ($crate::json_key!($($key)+), $crate::json!([ $($inner)* ])), ]
            () $($($rest)*)?)
    };
    // Key complete, value is a nested object.
    (@object [ $($done:expr,)* ] ($($key:tt)+) : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal_object!(@object
            [ $($done,)* ($crate::json_key!($($key)+), $crate::json!({ $($inner)* })), ]
            () $($($rest)*)?)
    };
    // Key complete, value is null.
    (@object [ $($done:expr,)* ] ($($key:tt)+) : null $(, $($rest:tt)*)?) => {
        $crate::json_internal_object!(@object
            [ $($done,)* ($crate::json_key!($($key)+), $crate::Value::Null), ]
            () $($($rest)*)?)
    };
    // Key complete, value is a general expression.
    (@object [ $($done:expr,)* ] ($($key:tt)+) : $value:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal_object!(@object
            [ $($done,)* ($crate::json_key!($($key)+), $crate::__to_value(&$value)), ]
            () $($($rest)*)?)
    };
    // Munch one token into the pending key.
    (@object [ $($done:expr,)* ] ($($key:tt)*) $tt:tt $($rest:tt)*) => {
        $crate::json_internal_object!(@object [ $($done,)* ] ($($key)* $tt) $($rest)*)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_key {
    ($key:expr) => {
        ($key).to_string()
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let n = 3u32;
        let v = json!({
            "name": "feam",
            "ready": true,
            "count": n,
            "list": [1, 2, n],
            "nested": { "inner": null, "opt": Option::<u32>::None },
            "computed": format!("{}-{}", "a", 1),
        });
        assert_eq!(v["name"], "feam");
        assert_eq!(v["ready"], true);
        assert_eq!(v["count"], 3u32);
        assert_eq!(v["list"].as_array().unwrap().len(), 3);
        assert!(v["nested"]["inner"].is_null());
        assert!(v["nested"]["opt"].is_null());
        assert_eq!(v["computed"], "a-1");
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn compact_round_trip() {
        let v = json!({
            "s": "a \"quoted\" string\nwith newline",
            "f": 51.0,
            "i": -3,
            "u": 18_000_000_000_000_000_000u64,
            "arr": [true, false, null, { "k": 1.5 }],
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({ "a": [1, 2], "b": { "c": "d" } });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n"));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_integers_keep_their_point() {
        assert_eq!(to_string(&json!(51.0f64)).unwrap(), "51.0");
        assert_eq!(to_string(&json!(51u32)).unwrap(), "51");
    }
}
