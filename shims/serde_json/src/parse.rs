//! Recursive-descent JSON parser for the serde_json shim.

use crate::{Map, Number, Value};
use serde::{Deserialize, Error};

/// Deserialize a typed value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    crate::from_value(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        // Handle surrogate pairs for non-BMP characters.
                        let ch = if (0xD800..0xDC00).contains(&cp) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(Error("invalid low surrogate".into()));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(c)
                        } else {
                            char::from_u32(cp)
                        };
                        out.push(ch.ok_or_else(|| Error("invalid unicode escape".into()))?);
                    }
                    other => {
                        return Err(Error(format!(
                            "invalid escape {:?}",
                            other.map(|c| c as char)
                        )))
                    }
                },
                Some(byte) => {
                    // Re-decode UTF-8 multibyte sequences from the source.
                    if byte < 0x80 {
                        out.push(byte as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match byte {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => return Err(Error("invalid UTF-8 in string".into())),
                        };
                        let end = start + width;
                        let chunk = self
                            .bytes
                            .get(start..end)
                            .ok_or_else(|| Error("truncated UTF-8 in string".into()))?;
                        let s = std::str::from_utf8(chunk)
                            .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .bump()
                .and_then(|c| (c as char).to_digit(16))
                .ok_or_else(|| Error("invalid \\u escape".into()))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(|v| Value::Number(Number::F64(v)))
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if negative {
            text.parse::<i64>()
                .map(|v| Value::Number(Number::I64(v)))
                .or_else(|_| text.parse::<f64>().map(|v| Value::Number(Number::F64(v))))
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(|v| Value::Number(Number::U64(v)))
                .or_else(|_| text.parse::<f64>().map(|v| Value::Number(Number::F64(v))))
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}
