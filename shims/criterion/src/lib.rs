//! Offline stand-in for the `criterion` crate.
//!
//! The registry is unreachable in this build environment, so this shim
//! keeps the workspace's `[[bench]]` targets compiling and runnable. It is
//! a measurement harness in miniature: each benchmark runs a short warmup,
//! then a fixed number of timed iterations, and prints the mean wall time.
//! It makes no statistical claims — it exists so `cargo bench` exercises
//! the same code paths the real criterion would.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLES: usize = 20;

/// Throughput annotation (accepted, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Per-iteration timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warmup iteration.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            samples: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.samples, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            samples,
            throughput: None,
        }
    }

    /// Configuration hook kept for API compatibility.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(
            &format!("{}/{name}", self.name),
            self.samples,
            self.throughput,
            f,
        );
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, tput: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        iters: samples as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.elapsed / b.iters as u32
    } else {
        Duration::ZERO
    };
    let extra = match tput {
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            let mibs = n as f64 / per_iter.as_secs_f64() / (1024.0 * 1024.0);
            format!("  ({mibs:.1} MiB/s)")
        }
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            let eps = n as f64 / per_iter.as_secs_f64();
            format!("  ({eps:.0} elem/s)")
        }
        _ => String::new(),
    };
    println!("{name:<48} {per_iter:>12.2?}/iter over {samples} iters{extra}");
}

/// Collect benchmark functions under a group name, mirroring criterion's
/// macro signature.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point: run every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
