//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the sibling `serde` shim's `Content` data model. The parser is
//! deliberately small: it handles plain (non-generic) structs and enums
//! with unit, tuple and struct variants — exactly the shapes this
//! workspace derives on — and rejects anything fancier with a compile
//! error rather than silently mis-serializing it.
//!
//! The generated representation mirrors serde's default JSON behavior:
//! named structs → maps, newtype structs → the inner value, unit variants
//! → strings, data variants → single-key maps.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---- a tiny item model ----------------------------------------------------

enum Fields {
    Unit,
    /// Tuple fields (count only; types are recovered by inference).
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---- parsing --------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    _ => panic!("serde_derive shim: malformed attribute"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) / pub(super)
                    }
                }
            }
            _ => break,
        }
    }

    let keyword = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive shim: malformed struct body: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive shim: malformed enum body: {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive shim: unsupported item kind `{other}`"),
    }
}

/// Parse `field: Type, ...` from a brace group, returning field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next(); // the [...] group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tree) = toks.next() else { break };
        let TokenTree::Ident(field) = tree else {
            panic!("serde_derive shim: expected field name, got {tree:?}");
        };
        fields.push(field.to_string());
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after field, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        // Parenthesized/bracketed type parts arrive as single groups, so
        // only `<`/`>` need depth tracking. `->` never appears at depth 0
        // inside a field type without parens around the fn type.
        let mut depth = 0i32;
        for tree in toks.by_ref() {
            if let TokenTree::Punct(p) = &tree {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Count top-level comma-separated fields of a tuple struct/variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut saw_tokens = false;
    for tree in stream {
        saw_tokens = true;
        if let TokenTree::Punct(p) = &tree {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    if saw_tokens {
        count + 1
    } else {
        0
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next();
            } else {
                break;
            }
        }
        let Some(tree) = toks.next() else { break };
        let TokenTree::Ident(name) = tree else {
            panic!("serde_derive shim: expected variant name, got {tree:?}");
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream());
                toks.next();
                Fields::Named(names)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                Fields::Tuple(n)
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        for tree in toks.by_ref() {
            if let TokenTree::Punct(p) = &tree {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant {
            name: name.to_string(),
            fields,
        });
    }
    variants
}

// ---- codegen --------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Content::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                        .collect();
                    format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                }
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Content::Map(vec![{}])", entries.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                let arm = match &v.fields {
                    Fields::Unit => {
                        format!("{name}::{vn} => ::serde::Content::Str(\"{vn}\".to_string()),")
                    }
                    Fields::Tuple(1) => format!(
                        "{name}::{vn}(f0) => ::serde::Content::Map(vec![(\"{vn}\".to_string(), \
                         ::serde::Serialize::to_content(f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        format!(
                            "{name}::{vn}({binds}) => ::serde::Content::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Content::Seq(vec![{items}]))]),",
                            binds = binds.join(", "),
                            items = items.join(", "),
                        )
                    }
                    Fields::Named(field_names) => {
                        let binds = field_names.join(", ");
                        let entries: Vec<String> = field_names
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_content({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Content::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Content::Map(vec![{entries}]))]),",
                            entries = entries.join(", "),
                        )
                    }
                };
                arms.push(arm);
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}",
                arms = arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_content(c)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::de_index(c, {i})?"))
                        .collect();
                    format!("Ok({name}({}))", items.join(", "))
                }
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| format!("{f}: ::serde::de_field(c, \"{f}\")?"))
                        .collect();
                    format!("Ok({name} {{ {} }})", inits.join(", "))
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = Vec::new();
            let mut keyed_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push(format!("\"{vn}\" => Ok({name}::{vn}),"));
                        // serde also accepts `{"Variant": null}`? It does not
                        // for unit variants in JSON maps, so neither do we.
                    }
                    Fields::Tuple(1) => keyed_arms.push(format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_content(payload)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::de_index(payload, {i})?"))
                            .collect();
                        keyed_arms.push(format!(
                            "\"{vn}\" => Ok({name}::{vn}({})),",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(field_names) => {
                        let inits: Vec<String> = field_names
                            .iter()
                            .map(|f| format!("{f}: ::serde::de_field(payload, \"{f}\")?"))
                            .collect();
                        keyed_arms.push(format!(
                            "\"{vn}\" => Ok({name}::{vn} {{ {} }}),",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match c {{\n\
                             ::serde::Content::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(::serde::Error(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                                 let (key, payload) = &entries[0];\n\
                                 let _ = payload;\n\
                                 match key.as_str() {{\n\
                                     {keyed_arms}\n\
                                     other => Err(::serde::Error(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(::serde::Error(\"expected a string or single-key map for enum {name}\".to_string())),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                keyed_arms = keyed_arms.join("\n"),
            )
        }
    }
}
