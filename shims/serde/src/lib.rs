//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to a crate
//! registry, so the real serde cannot be vendored. This shim provides the
//! subset the workspace actually uses: `Serialize`/`Deserialize` traits
//! over a small self-describing [`Content`] data model, plus derive macros
//! (re-exported from the sibling `serde_derive` shim) for plain structs
//! and enums without generics or `#[serde(...)]` attributes.
//!
//! The serialized shape mirrors serde's default JSON representation so
//! that code written against the real crate keeps producing the same
//! output: named structs become maps, newtype structs unwrap to their
//! inner value, unit enum variants become strings, data-carrying variants
//! become single-key maps.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value every `Serialize` impl lowers to and every
/// `Deserialize` impl is built from. `serde_json` (the sibling shim)
/// converts this 1:1 into its `Value`.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Insertion-ordered map (JSON object).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Look up a key in a `Map`.
    pub fn get_key(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde shim: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize into the [`Content`] data model.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Deserialize from the [`Content`] data model.
pub trait Deserialize: Sized {
    fn from_content(c: &Content) -> Result<Self, Error>;
}

// ---- helpers used by the derive-generated code ----------------------------

/// Fetch and deserialize a named struct field. Missing keys deserialize
/// from `Null`, which lets `Option<T>` fields default to `None` (matching
/// serde's behavior for omitted optional fields closely enough).
pub fn de_field<T: Deserialize>(c: &Content, key: &str) -> Result<T, Error> {
    match c.get_key(key) {
        Some(v) => T::from_content(v).map_err(|e| Error(format!("field `{key}`: {}", e.0))),
        None => {
            T::from_content(&Content::Null).map_err(|_| Error(format!("missing field `{key}`")))
        }
    }
}

/// Fetch and deserialize a positional element of a sequence.
pub fn de_index<T: Deserialize>(c: &Content, idx: usize) -> Result<T, Error> {
    match c {
        Content::Seq(items) => match items.get(idx) {
            Some(v) => T::from_content(v).map_err(|e| Error(format!("element {idx}: {}", e.0))),
            None => Err(Error(format!("sequence too short: no element {idx}"))),
        },
        _ => Err(Error("expected a sequence".into())),
    }
}

// ---- primitive impls ------------------------------------------------------

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(Error("expected a bool".into())),
        }
    }
}

macro_rules! int_impl {
    ($($t:ty => $variant:ident as $wide:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::$variant(*self as $wide)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                match c {
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| Error("integer out of range".into())),
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| Error("integer out of range".into())),
                    _ => Err(Error(concat!("expected an integer (", stringify!($t), ")").into())),
                }
            }
        }
    )*};
}

int_impl!(
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            _ => Err(Error("expected a number".into())),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error("expected a single-character string".into())),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(Error("expected a string".into())),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(()),
            _ => Err(Error("expected null".into())),
        }
    }
}

// ---- composite impls ------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        T::from_content(c).map(Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(Error("expected a sequence".into())),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! tuple_impl {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, Error> {
                Ok(($(de_index::<$name>(c, $idx)?,)+))
            }
        }
    )*};
}

tuple_impl!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            _ => Err(Error("expected a map".into())),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_content(&self) -> Content {
        // Sort for deterministic output, like serde_json's BTreeMap-backed
        // objects.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            _ => Err(Error("expected a map".into())),
        }
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Ok(c.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_content(&42u32.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-7i64).to_content()).unwrap(), -7);
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(
            Vec::<u8>::from_content(&vec![1u8, 2].to_content()).unwrap(),
            vec![1, 2]
        );
        let pair = ("a".to_string(), 5usize);
        assert_eq!(
            <(String, usize)>::from_content(&pair.to_content()).unwrap(),
            pair
        );
    }

    #[test]
    fn missing_optional_field_is_none() {
        let map = Content::Map(vec![("present".into(), Content::U64(1))]);
        let opt: Option<u64> = de_field(&map, "absent").unwrap();
        assert_eq!(opt, None);
        let present: u64 = de_field(&map, "present").unwrap();
        assert_eq!(present, 1);
        assert!(de_field::<u64>(&map, "absent").is_err());
    }
}
