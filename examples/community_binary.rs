//! Community-binary scenario (§VI.B): a scientist received a binary
//! *without* access to its guaranteed execution environment — "This
//! situation in particular applies to community codes distributed as
//! binaries." Only FEAM's *basic* prediction (target phase alone) is
//! available; no resolution, no transported hello worlds.
//!
//! ```text
//! cargo run --example community_binary
//! ```

use feam::core::phases::{run_target_phase, PhaseConfig};
use feam::core::predict::PredictionMode;
use feam::sim::compile::{compile, ProgramSpec};
use feam::sim::toolchain::Language;
use feam::workloads::sites::{standard_sites, FORGE};

fn main() {
    let cfg = PhaseConfig::default();
    let sites = standard_sites(42);

    // The "community code": a quantum-chromodynamics binary someone built
    // at Forge and published. We only have the bytes.
    let forge = &sites[FORGE];
    let stack = forge.stacks[0].clone();
    let milc = compile(
        forge,
        Some(&stack),
        &ProgramSpec::new("104.milc", Language::C),
        9,
    )
    .expect("milc compiles at Forge");
    println!(
        "received community binary {} ({} KiB) — provenance unknown to us\n",
        milc.program,
        milc.image.len() / 1024
    );

    for site in &sites {
        if site.name() == forge.name() {
            continue;
        }
        // Basic prediction: the binary is staged at the target; no bundle.
        let outcome = run_target_phase(site, Some(&milc.image), None, &cfg);
        assert_eq!(outcome.prediction.mode, PredictionMode::Basic);
        println!("at {}:", site.name());
        println!("  binary description: {}", outcome.binary.summary());
        for v in &outcome.prediction.verdicts {
            println!(
                "  [{}] {:?}",
                if v.compatible() { "ok " } else { "no " },
                v.determinant
            );
        }
        println!(
            "  => {}\n",
            if outcome.prediction.ready() {
                "ready for execution (basic prediction)"
            } else {
                "not ready — see determinant detail"
            }
        );
    }
    println!(
        "note: without a source phase, missing shared libraries cannot be\n\
         resolved — the extended workflow (see examples/resolve_libraries.rs)\n\
         needs access to a guaranteed execution environment."
    );
}
