//! Regenerate every quantitative artifact of the paper in one run —
//! Tables I–IV plus the §VI.C statistics — exactly what the `feam-eval`
//! binary does, but as a library-API walkthrough.
//!
//! ```text
//! cargo run --release --example reproduce_tables
//! ```
//!
//! (Use `--release`; the sweep performs ~850 migrations with full
//! prediction + ground-truth execution each.)

use feam::eval::{
    render_stats, render_table1, render_table2, render_table3, render_table4, stats, table1,
    table3, table4, Experiment,
};

fn main() {
    let exp = Experiment::new(42);
    println!(
        "corpus: {} NAS + {} SPEC binaries (paper: 110 + 147)\n",
        exp.corpus.count(feam::workloads::Suite::Npb),
        exp.corpus.count(feam::workloads::Suite::SpecMpi2007),
    );
    let results = exp.run();
    println!("{}", render_table1(&table1(&exp)));
    println!("{}", render_table2(&exp));
    println!("{}", render_table3(&table3(&results)));
    println!("{}", render_table4(&table4(&results)));
    println!("{}", render_stats(&stats(&results)));

    // The paper's headline claims, asserted as invariants of this repro:
    let t3 = table3(&results);
    assert!(
        t3.basic_nas > 90.0 && t3.basic_spec > 90.0,
        "prediction > 90% accurate"
    );
    assert!(
        t3.extended_nas >= t3.basic_nas,
        "extended beats basic on NAS"
    );
    let t4 = table4(&results);
    assert!(
        t4.before_nas > 40.0 && t4.before_nas < 70.0,
        "about half execute before"
    );
    assert!(
        t4.increase_nas > 15.0 && t4.increase_spec > 25.0,
        "resolution adds ~1/3"
    );
    println!("all paper-shape assertions hold ✓");
}
