//! Site survey: the paper's motivating scenario — a scientist with one
//! binary and access to many sites wants to know *where it will run*
//! without trying each site by hand.
//!
//! ```text
//! cargo run --example site_survey
//! ```
//!
//! Runs FEAM's extended prediction for one SPEC MPI2007 binary against all
//! five sites and prints a readiness matrix with the per-determinant
//! reasons for every "not ready".

use feam::core::phases::{run_source_phase, run_target_phase, PhaseConfig};
use feam::sim::compile::{compile, ProgramSpec};
use feam::sim::toolchain::Language;
use feam::workloads::sites::{standard_sites, FIR};

fn main() {
    let cfg = PhaseConfig::default();
    let sites = standard_sites(42);
    let fir = &sites[FIR];

    // 126.lammps (C++ molecular dynamics) built at Fir with MVAPICH2+Intel.
    let stack = fir
        .stacks
        .iter()
        .find(|s| s.stack.ident().starts_with("mvapich2") && s.stack.ident().contains("intel"))
        .expect("Fir has a MVAPICH2+Intel stack")
        .clone();
    let lammps = compile(
        fir,
        Some(&stack),
        &ProgramSpec::new("126.lammps", Language::Cxx),
        42,
    )
    .expect("lammps compiles at Fir");
    println!(
        "surveying sites for {} (built at {} with {})\n",
        lammps.program,
        lammps.built_at,
        stack.stack.ident()
    );

    let bundle = run_source_phase(fir, &lammps.image, &cfg).expect("source phase at Fir");

    println!("{:<12} {:<10} reason", "site", "ready?");
    println!("{}", "-".repeat(60));
    for site in &sites {
        if site.name() == fir.name() {
            println!(
                "{:<12} {:<10} (guaranteed execution environment)",
                site.name(),
                "home"
            );
            continue;
        }
        let outcome = run_target_phase(site, Some(&lammps.image), Some(&bundle), &cfg);
        let verdict = if outcome.prediction.ready() {
            "READY"
        } else {
            "not ready"
        };
        let reason = outcome
            .prediction
            .first_failure()
            .map(|v| format!("{:?}: {}", v.determinant, v.detail))
            .unwrap_or_else(|| {
                outcome
                    .evaluation
                    .plan
                    .stack_ident
                    .clone()
                    .map(|s| format!("use {s}"))
                    .unwrap_or_default()
            });
        let reason = if reason.len() > 90 {
            format!("{}…", &reason[..90])
        } else {
            reason
        };
        println!("{:<12} {:<10} {}", site.name(), verdict, reason);
    }
    println!("\n(each target phase consumed under five simulated minutes, as in §VI.C)");
}
