//! Quickstart: migrate one MPI binary from its build site to another site
//! and let FEAM predict execution readiness.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks the full FEAM flow once: build a binary at Ranger, run the source
//! phase there, run the target phase at FutureGrid India, print the
//! prediction report and the generated setup script, then verify the
//! prediction against a ground-truth execution.

use feam::core::phases::{run_source_phase, run_target_phase, PhaseConfig};
use feam::core::report::render_report;
use feam::sim::compile::{compile, ProgramSpec};
use feam::sim::exec::{run_mpi, DEFAULT_ATTEMPTS};
use feam::sim::toolchain::Language;
use feam::workloads::sites::{standard_sites, INDIA, RANGER};

fn main() {
    let cfg = PhaseConfig::default();
    println!("materializing the five Table II sites ...");
    let sites = standard_sites(42);
    let ranger = &sites[RANGER];
    let india = &sites[INDIA];

    // "Compile" the NPB block-tridiagonal solver at Ranger with its Open
    // MPI + GNU stack. The result is a genuine ELF binary.
    let stack = ranger.stacks[1].clone(); // openmpi-1.3-gnu-3.4.6
    let bt = compile(
        ranger,
        Some(&stack),
        &ProgramSpec::new("bt", Language::Fortran),
        42,
    )
    .expect("bt compiles at Ranger");
    println!(
        "built {} at {} ({} bytes)",
        bt.program,
        bt.built_at,
        bt.image.len()
    );

    // Source phase at the guaranteed execution environment.
    let bundle = run_source_phase(ranger, &bt.image, &cfg).expect("source phase");
    println!(
        "source phase bundled {} library copies + {} hello worlds ({:.1} MiB)",
        bundle.libraries.len(),
        bundle.hello_worlds.len(),
        bundle.total_bytes() as f64 / (1024.0 * 1024.0),
    );

    // Target phase at India, with both the migrated binary and the bundle
    // (the paper's *extended* prediction).
    let outcome = run_target_phase(india, Some(&bt.image), Some(&bundle), &cfg);
    println!("\n{}", render_report(&outcome));

    // Ground truth: execute under FEAM's composed configuration.
    let plan = &outcome.evaluation.plan;
    let launcher = plan
        .stack_index
        .map(|i| india.stacks[i].clone())
        .expect("a matching stack exists at India");
    let mut sess = plan.apply(india);
    sess.stage_file("/home/user/run/bt", bt.image.clone());
    let exec = run_mpi(
        &mut sess,
        "/home/user/run/bt",
        &launcher,
        4,
        DEFAULT_ATTEMPTS,
    );
    println!(
        "ground truth: execution {} (prediction said {})",
        if exec.success { "SUCCEEDED" } else { "failed" },
        if outcome.prediction.ready() {
            "ready"
        } else {
            "not ready"
        },
    );
    assert_eq!(
        exec.success,
        outcome.prediction.ready(),
        "on this seed the prediction matches ground truth"
    );
}
