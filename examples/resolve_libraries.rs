//! Resolution demo (§IV): a migration that fails with missing shared
//! libraries before resolution and succeeds after FEAM stages copies from
//! the guaranteed execution environment.
//!
//! ```text
//! cargo run --example resolve_libraries
//! ```
//!
//! Uses the classic PGI case: a binary built with PGI at Fir migrated to
//! FutureGrid India, which has no PGI installation at all — every PGI
//! runtime library is missing, and every one is resolvable by copy.

use feam::core::phases::{run_source_phase, run_target_phase, PhaseConfig};
use feam::core::tec;
use feam::sim::compile::{compile, ProgramSpec};
use feam::sim::exec::{run_mpi, DEFAULT_ATTEMPTS};
use feam::sim::toolchain::Language;
use feam::workloads::sites::{standard_sites, FIR, INDIA};

fn main() {
    let cfg = PhaseConfig::default();
    let sites = standard_sites(42);
    let fir = &sites[FIR];
    let india = &sites[INDIA];

    // An Open MPI + PGI build of the NPB scalar penta-diagonal solver.
    let stack = fir
        .stacks
        .iter()
        .find(|s| s.stack.ident() == "openmpi-1.4-pgi-10.9")
        .expect("Fir has openmpi-1.4-pgi-10.9")
        .clone();
    let sp = compile(
        fir,
        Some(&stack),
        &ProgramSpec::new("sp", Language::Fortran),
        7,
    )
    .expect("sp compiles with PGI at Fir");
    println!(
        "built {} at {} with {}",
        sp.program,
        sp.built_at,
        stack.stack.ident()
    );

    // --- before resolution: naive matching-MPI selection -------------------
    let mut sess = feam::sim::site::Session::new(india);
    let env = feam::core::edc::discover(&mut sess);
    let naive = tec::naive_plan(
        india,
        &env,
        Some(feam::sim::mpi::MpiImpl::OpenMpi),
        Some(feam::sim::toolchain::CompilerFamily::Pgi),
    );
    let launcher = india.stacks[naive.stack_index.expect("india has Open MPI")].clone();
    let mut before = naive.apply(india);
    before.stage_file("/home/user/run/sp", sp.image.clone());
    let out_before = run_mpi(
        &mut before,
        "/home/user/run/sp",
        &launcher,
        4,
        DEFAULT_ATTEMPTS,
    );
    println!(
        "\nbefore resolution: {} — {}",
        if out_before.success { "ran" } else { "FAILED" },
        out_before
            .failure
            .map(|f| f.to_string())
            .unwrap_or_default()
    );

    // --- FEAM extended: source phase + target phase with resolution --------
    let bundle = run_source_phase(fir, &sp.image, &cfg).expect("source phase");
    let outcome = run_target_phase(india, Some(&sp.image), Some(&bundle), &cfg);
    let resolution = outcome
        .evaluation
        .resolution
        .as_ref()
        .expect("resolution ran");
    println!(
        "\nresolution staged {} library copies:",
        resolution.staged_count()
    );
    for (path, bytes) in &resolution.staged {
        println!("  {path} ({} KiB)", bytes.len() / 1024);
    }
    assert!(
        outcome.prediction.ready(),
        "FEAM predicts ready after resolution"
    );

    // --- after resolution ----------------------------------------------------
    let plan = &outcome.evaluation.plan;
    let launcher = india.stacks[plan.stack_index.expect("stack chosen")].clone();
    let mut after = plan.apply(india);
    after.stage_file("/home/user/run/sp", sp.image.clone());
    let out_after = run_mpi(
        &mut after,
        "/home/user/run/sp",
        &launcher,
        4,
        DEFAULT_ATTEMPTS,
    );
    println!(
        "\nafter resolution: {}",
        if out_after.success {
            "ran successfully"
        } else {
            "still failed"
        }
    );
    assert!(
        !out_before.success && out_after.success,
        "the §IV mechanism in action"
    );
    println!("\ngenerated setup script:\n{}", plan.setup_script());
}
