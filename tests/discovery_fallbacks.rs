//! The EDC's fallback chains, exercised end to end: discovery without
//! Environment Modules or SoftEnv (filesystem search + path-name
//! inference + wrapper probing), missing-library detection without `ldd`,
//! and library collection when `ldd` is unreliable.

use feam::core::edc::{discover, DiscoveryMethod};
use feam::core::phases::{run_source_phase, run_target_phase, PhaseConfig};
use feam::sim::compile::{compile, ProgramSpec};
use feam::sim::mpi::{MpiImpl, MpiStack, Network};
use feam::sim::site::{EnvMgmt, OsInfo, Session, Site, SiteConfig};
use feam::sim::toolchain::{Compiler, CompilerFamily, Language};
use feam_elf::HostArch;

/// A site with no user-environment management tools at all.
fn bare_site(seed: u64, ldd_present: bool, locate_present: bool) -> Site {
    let mut cfg = SiteConfig::new(
        "bare",
        HostArch::X86_64,
        OsInfo::new("CentOS", "5.6", "2.6.18-194.el5"),
        "2.5",
        seed,
    );
    cfg.env_mgmt = EnvMgmt::None;
    cfg.ldd_present = ldd_present;
    cfg.ldd_flaky_rate = 0.0;
    cfg.locate_present = locate_present;
    cfg.system_error_rate = 0.0;
    cfg.compilers = vec![Compiler::new(CompilerFamily::Gnu, "4.1.2")];
    cfg.stacks = vec![
        (
            MpiStack::new(
                MpiImpl::OpenMpi,
                "1.4",
                Compiler::new(CompilerFamily::Gnu, "4.1.2"),
                Network::Ethernet,
            ),
            true,
        ),
        (
            MpiStack::new(
                MpiImpl::Mpich2,
                "1.4",
                Compiler::new(CompilerFamily::Gnu, "4.1.2"),
                Network::Ethernet,
            ),
            true,
        ),
    ];
    Site::build(cfg)
}

#[test]
fn path_search_discovers_stacks_without_env_mgmt() {
    let site = bare_site(3, true, true);
    let mut sess = Session::new(&site);
    let env = discover(&mut sess);
    assert_eq!(
        env.available_stacks.len(),
        2,
        "filesystem search must find both stacks: {:?}",
        env.available_stacks
    );
    for d in &env.available_stacks {
        assert_eq!(d.via, DiscoveryMethod::PathSearch);
        assert!(d.key.is_none(), "no module key without a module system");
    }
    // Path-name inference recovered the full stack identity.
    let om = env
        .available_stacks
        .iter()
        .find(|d| d.mpi == MpiImpl::OpenMpi)
        .unwrap();
    assert_eq!(om.mpi_version, "1.4");
    assert_eq!(om.compiler, "gnu");
    assert_eq!(om.compiler_version, "4.1.2");
}

#[test]
fn path_search_works_even_without_locate() {
    // With locate absent, discovery falls back to `find` under /opt.
    let site = bare_site(4, true, false);
    let mut sess = Session::new(&site);
    let env = discover(&mut sess);
    assert_eq!(env.available_stacks.len(), 2, "{:?}", env.available_stacks);
}

#[test]
fn full_prediction_works_on_bare_site() {
    // End to end: a binary built on the bare site itself must be predicted
    // ready there, with discovery running entirely on fallbacks.
    let site = bare_site(5, true, true);
    let ist = site.stacks[0].clone();
    let bin = compile(
        &site,
        Some(&ist),
        &ProgramSpec::new("cg", Language::Fortran),
        5,
    )
    .unwrap();
    let outcome = run_target_phase(&site, Some(&bin.image), None, &PhaseConfig::default());
    assert!(
        outcome.prediction.ready(),
        "bare-site self prediction: {:?}",
        outcome.prediction.first_failure()
    );
}

#[test]
fn missing_library_detection_without_ldd() {
    // ldd absent: the EDC falls back to the BDC's needed list + search.
    let site = bare_site(6, false, true);
    let mut sess = Session::new(&site);
    let mut spec = feam_elf::ElfSpec::executable(feam_elf::Machine::X86_64, feam_elf::Class::Elf64);
    spec.needed = vec![
        "libnotthere.so.5".into(),
        "libm.so.6".into(),
        "libc.so.6".into(),
    ];
    sess.stage_file("/home/user/app", std::sync::Arc::new(spec.build().unwrap()));
    let missing = feam::core::edc::missing_libraries(&mut sess, "/home/user/app");
    assert_eq!(missing, vec!["libnotthere.so.5".to_string()]);
}

#[test]
fn source_phase_collects_libraries_even_when_ldd_unreliable() {
    // A GEE whose ldd never recognizes dynamic binaries: collection must
    // fall back to objdump-style parsing + locate/find.
    let mut cfg = SiteConfig::new(
        "flaky-gee",
        HostArch::X86_64,
        OsInfo::new("CentOS", "5.6", "2.6.18-194.el5"),
        "2.5",
        8,
    );
    cfg.ldd_flaky_rate = 1.0;
    cfg.system_error_rate = 0.0;
    cfg.compilers = vec![Compiler::new(CompilerFamily::Gnu, "4.1.2")];
    cfg.stacks = vec![(
        MpiStack::new(
            MpiImpl::OpenMpi,
            "1.4",
            Compiler::new(CompilerFamily::Gnu, "4.1.2"),
            Network::Ethernet,
        ),
        true,
    )];
    let gee = Site::build(cfg);
    let ist = gee.stacks[0].clone();
    let bin = compile(
        &gee,
        Some(&ist),
        &ProgramSpec::new("bt", Language::Fortran),
        8,
    )
    .unwrap();
    let bundle = run_source_phase(&gee, &bin.image, &PhaseConfig::default()).unwrap();
    assert!(
        bundle.libraries.keys().any(|k| k.starts_with("libmpi")),
        "fallback collection must still find the MPI libraries: {:?}",
        bundle.libraries.keys().collect::<Vec<_>>()
    );
    assert!(bundle
        .libraries
        .keys()
        .any(|k| k.starts_with("libgfortran")));
}
