//! Differential eager-vs-lazy parser suite: the zero-copy `LazyElf`
//! production reader against the historical eager `ElfFile` (kept behind
//! the test-only `eager` feature). Over the full fuzz corpus and the
//! §VI.A evaluation corpus, the two must agree on Err/Ok classification,
//! and every accepted image must produce a byte-identical serialized
//! `BinaryDescription` through both describe paths.
//!
//! The mutator seeds mirror `tests/elf_fuzz.rs` so both suites sweep the
//! same deterministic case space.

use feam::core::bdc::BinaryDescription;
use feam::elf::{
    strip_section_headers, Class, ElfFile, ElfSpec, Endian, ExportSpec, ImportSpec, LazyElf,
    Machine,
};

/// Per-sweep iteration count (`FEAM_FUZZ_ITERS=N` overrides, as in the
/// fuzz suite).
fn fuzz_iters(default: usize) -> usize {
    std::env::var("FEAM_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|n| *n > 0)
        .unwrap_or(default)
}

/// SplitMix64-style deterministic generator (same scheme as the fuzz
/// suite, so case numbers line up).
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// Valid images covering both classes, byte orders, file kinds and both
/// reader routes (with and without section headers).
fn base_images() -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for (class, endian) in [
        (Class::Elf64, Endian::Little),
        (Class::Elf64, Endian::Big),
        (Class::Elf32, Endian::Little),
    ] {
        let mut spec = ElfSpec::executable(Machine::X86_64, class);
        spec.endian = endian;
        spec.needed = vec!["libmpi.so.0".into(), "libc.so.6".into()];
        spec.imports = vec![
            ImportSpec::versioned("fopen64", "libc.so.6", "GLIBC_2.3.4"),
            ImportSpec::versioned("MPI_Init", "libmpi.so.0", "OMPI_1.4"),
            ImportSpec::plain("main_helper", "libc.so.6"),
        ];
        spec.comments = vec!["GCC: (GNU) 4.4.7".into()];
        let img = spec.build().expect("valid executable spec builds");
        let mut stripped = img.clone();
        strip_section_headers(&mut stripped).expect("strippable");
        out.push(stripped);
        out.push(img);

        let mut lib = ElfSpec::shared_library("libdemo.so.1", Machine::X86_64, class);
        lib.endian = endian;
        lib.exports = vec![
            ExportSpec::new("demo_fn", Some("DEMO_1.0")),
            ExportSpec::new("demo_fn2", None),
        ];
        out.push(lib.build().expect("valid library spec builds"));
    }
    out
}

/// The differential oracle: both readers must classify the bytes the
/// same way, and on acceptance both describe paths must serialize the
/// same `BinaryDescription`.
fn assert_equivalent(bytes: &[u8], what: &str) {
    let eager = ElfFile::parse(bytes);
    let lazy = LazyElf::parse(bytes);
    assert_eq!(
        eager.is_ok(),
        lazy.is_ok(),
        "{what}: eager={:?} lazy={:?}",
        eager.as_ref().err(),
        lazy.as_ref().err()
    );
    if eager.is_err() {
        return;
    }
    let de = BinaryDescription::from_bytes_eager("/diff/x", bytes).expect("eager describes");
    let dl = BinaryDescription::from_bytes("/diff/x", bytes).expect("lazy describes");
    let je = serde_json::to_string(&de).expect("eager description serializes");
    let jl = serde_json::to_string(&dl).expect("lazy description serializes");
    assert_eq!(je, jl, "{what}: serialized descriptions diverged");
}

#[test]
fn valid_images_describe_identically_on_both_routes() {
    for (i, img) in base_images().into_iter().enumerate() {
        assert_equivalent(&img, &format!("base image {i}"));
    }
}

#[test]
fn random_byte_flips_classify_and_describe_identically() {
    let mut g = Gen::new(0xBADC_0FFE);
    for (i, img) in base_images().into_iter().enumerate() {
        for case in 0..fuzz_iters(300) {
            let mut m = img.clone();
            for _ in 0..g.range(1, 9) {
                let pos = g.range(0, m.len());
                m[pos] = g.next_u64() as u8;
            }
            assert_equivalent(&m, &format!("image {i} flip case {case}"));
        }
    }
}

#[test]
fn block_corruption_and_truncation_classify_and_describe_identically() {
    let mut g = Gen::new(0x5EED_F00D);
    for (i, img) in base_images().into_iter().enumerate() {
        for case in 0..fuzz_iters(150) {
            let mut m = img.clone();
            // Corrupt a contiguous block, then maybe truncate.
            let start = g.range(0, m.len());
            let len = g.range(1, (m.len() - start).min(64) + 1);
            for b in &mut m[start..start + len] {
                *b = g.next_u64() as u8;
            }
            if g.range(0, 2) == 1 {
                m.truncate(g.range(1, m.len() + 1));
            }
            assert_equivalent(&m, &format!("image {i} block case {case}"));
        }
    }
}

#[test]
fn segment_route_corruption_classifies_and_describes_identically() {
    // Section-header-stripped twins force the PT_DYNAMIC route in both
    // readers; corruption there must not split their verdicts.
    let mut g = Gen::new(0xE1F5_EC70);
    for (i, img) in base_images().into_iter().enumerate() {
        let mut stripped = img.clone();
        if strip_section_headers(&mut stripped).is_err() {
            continue;
        }
        for case in 0..fuzz_iters(150) {
            let mut m = stripped.clone();
            for _ in 0..g.range(1, 6) {
                let pos = g.range(0, m.len());
                m[pos] = g.next_u64() as u8;
            }
            assert_equivalent(&m, &format!("stripped image {i} case {case}"));
        }
    }
}

#[test]
fn hostile_variant_corruption_classifies_and_describes_identically() {
    // Stripped/static-shaped images (the fuzz suite's hostile pool).
    let mut g = Gen::new(0x57A7_1C57);
    let mut pool = Vec::new();
    for class in [Class::Elf64, Class::Elf32] {
        let mut spec = ElfSpec::executable(Machine::X86_64, class);
        spec.needed = vec!["libmpich.so.1.2".into(), "libc.so.6".into()];
        spec.text_stamp = vec![0x5A; 24];
        let mut img = spec.build().expect("hostile spec builds");
        strip_section_headers(&mut img).expect("strippable");
        pool.push(img);
        let mut st = ElfSpec::executable(Machine::X86_64, class);
        st.static_link = true;
        pool.push(st.build().expect("static spec builds"));
    }
    for (i, img) in pool.into_iter().enumerate() {
        for case in 0..fuzz_iters(150) {
            let mut m = img.clone();
            for _ in 0..g.range(1, 9) {
                let pos = g.range(0, m.len());
                m[pos] = g.next_u64() as u8;
            }
            assert_equivalent(&m, &format!("hostile image {i} case {case}"));
        }
    }
}

#[test]
fn evaluation_corpus_describes_identically() {
    // Every §VI.A corpus binary — the images the serving pipeline
    // actually describes — through both paths.
    let sites = feam::workloads::sites::standard_sites(42);
    let corpus = feam::workloads::testset::TestSetBuilder::new(42).build(&sites);
    for item in corpus.binaries() {
        assert_equivalent(&item.image, item.label());
    }
}
