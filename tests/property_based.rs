//! Property-style tests over the core data structures and invariants the
//! whole reproduction rests on. Cases come from a deterministic seeded
//! generator (the registry is unreachable offline, so no proptest), which
//! keeps every run reproducible and failures addressable by case number.

use feam::elf::{
    Class, DefinedVersion, ElfFile, ElfSpec, Endian, ExportSpec, FileKind, ImportSpec, Machine,
    Soname, VersionName,
};

// ---------- generator -------------------------------------------------------

/// SplitMix64-style deterministic generator.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        Gen(z)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    fn u32_below(&mut self, n: u32) -> u32 {
        (self.next_u64() % n as u64) as u32
    }

    /// A string of `len` characters drawn from `charset`.
    fn chars(&mut self, charset: &[u8], len: usize) -> String {
        (0..len)
            .map(|_| charset[self.range(0, charset.len())] as char)
            .collect()
    }
}

const LOWER: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
const LOWER_NUM: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
const UPPER: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ";
const IDENT_FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_";
const IDENT_REST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";

/// Like `"[a-z][a-z0-9_]{1,12}"` → `lib<base>.so(.<n>)*` with 0–2 numbers.
fn gen_soname_text(g: &mut Gen) -> String {
    let base_len = g.range(1, 13);
    let mut s = format!(
        "lib{}{}.so",
        g.chars(LOWER, 1),
        g.chars(LOWER_NUM, base_len)
    );
    for _ in 0..g.range(0, 3) {
        s.push_str(&format!(".{}", g.u32_below(50)));
    }
    s
}

/// Like `"[A-Z]{2,8}"` prefix + 1–3 dot-joined numbers under 30.
fn gen_version_name(g: &mut Gen) -> String {
    let pfx_len = g.range(2, 9);
    let pfx = g.chars(UPPER, pfx_len);
    let parts: Vec<String> = (0..g.range(1, 4))
        .map(|_| g.u32_below(30).to_string())
        .collect();
    format!("{pfx}_{}", parts.join("."))
}

fn gen_symbol(g: &mut Gen) -> String {
    let mut s = g.chars(IDENT_FIRST, 1);
    let rest_len = g.range(0, 21);
    s.push_str(&g.chars(IDENT_REST, rest_len));
    s
}

fn gen_machine(g: &mut Gen) -> Machine {
    [
        Machine::X86_64,
        Machine::X86,
        Machine::Ppc,
        Machine::Ppc64,
        Machine::Aarch64,
    ][g.range(0, 5)]
}

fn gen_class_endian(g: &mut Gen) -> (Class, Endian) {
    [
        (Class::Elf64, Endian::Little),
        (Class::Elf32, Endian::Little),
        (Class::Elf64, Endian::Big),
        (Class::Elf32, Endian::Big),
    ][g.range(0, 4)]
}

fn gen_spec(g: &mut Gen) -> ElfSpec {
    let (class, endian) = gen_class_endian(g);
    let machine = gen_machine(g);
    let is_lib = g.bool();
    let soname = gen_soname_text(g);
    let mut spec = if is_lib {
        ElfSpec::shared_library(&soname, machine, class)
    } else {
        ElfSpec::executable(machine, class)
    };
    spec.endian = endian;
    spec.needed = (0..g.range(0, 6)).map(|_| gen_soname_text(g)).collect();
    spec.imports = (0..g.range(0, 6))
        .map(|_| {
            let sym = gen_symbol(g);
            let ver = gen_version_name(g);
            ImportSpec::versioned(&sym, "libc.so.6", &ver)
        })
        .collect();
    if is_lib {
        spec.exports = (0..g.range(0, 6))
            .map(|_| {
                let sym = gen_symbol(g);
                let ver = if g.bool() {
                    Some(gen_version_name(g))
                } else {
                    None
                };
                ExportSpec::new(&sym, ver.as_deref())
            })
            .collect();
    }
    spec.comments = (0..g.range(0, 3))
        .map(|_| {
            let printable: Vec<u8> = (b' '..=b'~').collect();
            let len = g.range(1, 41);
            g.chars(&printable, len)
        })
        .collect();
    spec.text_size = g.range(1, 4096);
    spec
}

// ---------- ELF build → parse round-trip ------------------------------------

#[test]
fn build_parse_round_trip() {
    for case in 0..96u64 {
        let mut g = Gen::new(case);
        let spec = gen_spec(&mut g);
        let bytes = spec.build().expect("arbitrary spec builds");
        let f = ElfFile::parse(&bytes).expect("built image parses");
        assert_eq!(f.class(), spec.class, "case {case}");
        assert_eq!(f.machine(), spec.machine, "case {case}");
        assert_eq!(f.kind(), spec.kind, "case {case}");
        // NEEDED preserved in order, with import/extra-ref providers appended.
        let needed = f.needed();
        for (i, n) in spec.needed.iter().enumerate() {
            assert_eq!(&needed[i], n, "case {case}");
        }
        if spec.kind == FileKind::SharedObject {
            assert_eq!(f.soname(), spec.soname.as_deref(), "case {case}");
        }
        // Every import appears as an undefined dynamic symbol with its
        // version binding intact.
        for imp in &spec.imports {
            let found = f
                .dynamic_symbols()
                .iter()
                .any(|s| s.undefined && s.name == imp.symbol && s.version == imp.version);
            assert!(found, "case {case}: import {} lost", imp.symbol);
        }
        // Comments survive byte-exactly (deduplicated).
        for c in &spec.comments {
            assert!(f.comments().contains(c), "case {case}");
        }
    }
}

#[test]
fn segment_route_agrees_with_section_route() {
    // Parsing via PT_DYNAMIC (stripped binary) must agree with the
    // section route on the dynamic facts FEAM relies on.
    for case in 0..96u64 {
        let mut g = Gen::new(case ^ SEG_SEED);
        let spec = gen_spec(&mut g);
        let mut bytes = spec.build().expect("builds");
        let f_sections = ElfFile::parse(&bytes).expect("parses");
        let sec_needed: Vec<String> = f_sections.needed().to_vec();
        let sec_glibc = f_sections.required_glibc();
        // Zero out the section header info in the ELF header.
        let e = spec.endian;
        match spec.class {
            Class::Elf64 => {
                e.set_u64(&mut bytes, 40, 0);
                e.set_u16(&mut bytes, 60, 0);
                e.set_u16(&mut bytes, 62, 0);
            }
            Class::Elf32 => {
                e.set_u32(&mut bytes, 32, 0);
                e.set_u16(&mut bytes, 48, 0);
                e.set_u16(&mut bytes, 50, 0);
            }
        }
        let f_segments = ElfFile::parse(&bytes).expect("stripped image parses");
        assert!(f_segments.sections().is_empty(), "case {case}");
        assert_eq!(f_segments.needed(), sec_needed.as_slice(), "case {case}");
        assert_eq!(f_segments.required_glibc(), sec_glibc, "case {case}");
    }
}

const SEG_SEED: u64 = 0x7365_676d_656e_7473;

#[test]
fn parser_never_panics_on_mutations() {
    // Corrupting arbitrary bytes must yield Ok or Err, never a panic.
    for case in 0..96u64 {
        let mut g = Gen::new(case ^ 0xf11b);
        let spec = gen_spec(&mut g);
        let mut bytes = spec.build().expect("builds");
        for _ in 0..g.range(1, 16) {
            let i = g.range(0, bytes.len());
            bytes[i] = g.next_u64() as u8;
        }
        let _ = ElfFile::parse(&bytes);
    }
}

#[test]
fn parser_never_panics_on_random_input() {
    for case in 0..96u64 {
        let mut g = Gen::new(case ^ 0xda7a);
        let len = g.range(0, 2048);
        let data: Vec<u8> = (0..len).map(|_| g.next_u64() as u8).collect();
        let _ = ElfFile::parse(&data);
    }
}

// ---------- Soname and version-name invariants ------------------------------

#[test]
fn soname_display_parse_round_trip() {
    for case in 0..256u64 {
        let mut g = Gen::new(case ^ 0x50_4a);
        let name = gen_soname_text(&mut g);
        let parsed = Soname::parse(&name).expect("generated sonames parse");
        assert_eq!(parsed.to_string(), name, "case {case}");
        // Compatibility is reflexive.
        assert!(parsed.api_compatible_with(&parsed), "case {case}");
        assert!(parsed.loader_matches(&parsed), "case {case}");
    }
}

#[test]
fn soname_major_rule_is_exact() {
    for case in 0..256u64 {
        let mut g = Gen::new(case ^ 0x004d_414a_4f52);
        let base_len = g.range(2, 9);
        let base = g.chars(LOWER, base_len);
        let a = g.u32_below(20);
        let b = g.u32_below(20);
        let x = Soname::parse(&format!("lib{base}.so.{a}")).unwrap();
        let y = Soname::parse(&format!("lib{base}.so.{b}.1")).unwrap();
        assert_eq!(
            x.api_compatible_with(&y),
            a == b,
            "case {case}: a={a} b={b}"
        );
    }
}

#[test]
fn version_name_render_parse_round_trip() {
    for case in 0..256u64 {
        let mut g = Gen::new(case ^ 0x7e51);
        let name = gen_version_name(&mut g);
        let v = VersionName::parse(&name).expect("generated names parse");
        assert_eq!(v.render(), name, "case {case}");
        let again = VersionName::parse(&v.render()).unwrap();
        assert_eq!(v, again, "case {case}");
    }
}

#[test]
fn version_ordering_is_total_within_prefix() {
    for case in 0..256u64 {
        let mut g = Gen::new(case ^ 0x04d);
        let nums_a: Vec<u32> = (0..g.range(1, 4)).map(|_| g.u32_below(50)).collect();
        let nums_b: Vec<u32> = (0..g.range(1, 4)).map(|_| g.u32_below(50)).collect();
        let a = VersionName {
            prefix: "GLIBC".into(),
            numbers: nums_a,
        };
        let b = VersionName {
            prefix: "GLIBC".into(),
            numbers: nums_b,
        };
        let ab = a.cmp_same_prefix(&b).unwrap();
        let ba = b.cmp_same_prefix(&a).unwrap();
        assert_eq!(ab, ba.reverse(), "case {case}");
        if ab == std::cmp::Ordering::Equal {
            assert_eq!(a.numbers, b.numbers, "case {case}");
        }
    }
}

// ---------- VFS path invariants ----------------------------------------------

#[test]
fn vfs_normalize_is_idempotent() {
    // Paths like "(/?[a-z.]{0,8}){0,8}" — segments of lowercase letters
    // and dots, with and without leading slashes.
    const PATH_CHARS: &[u8] = b"abcdefgh.";
    for case in 0..256u64 {
        let mut g = Gen::new(case ^ 0xacc5);
        let mut path = String::new();
        for _ in 0..g.range(0, 8) {
            if g.bool() {
                path.push('/');
            }
            let len = g.range(0, 9);
            path.push_str(&g.chars(PATH_CHARS, len));
        }
        let once = feam::sim::vfs::normalize(&path);
        let twice = feam::sim::vfs::normalize(&once);
        assert_eq!(once, twice, "case {case}: input {path:?}");
        assert!(once.starts_with('/'), "case {case}: {once:?}");
        assert!(!once.contains("//"), "case {case}: {once:?}");
        assert!(!once.contains("/./"), "case {case}: {once:?}");
    }
}

#[test]
fn vfs_write_read_round_trip() {
    let printable: Vec<u8> = (b' '..=b'~').collect();
    for case in 0..256u64 {
        let mut g = Gen::new(case ^ 0xfeed);
        let segments: Vec<String> = (0..g.range(1, 6))
            .map(|_| {
                let len = g.range(1, 9);
                g.chars(LOWER, len)
            })
            .collect();
        let content_len = g.range(0, 65);
        let content = g.chars(&printable, content_len);
        let mut fs = feam::sim::Vfs::new();
        let path = format!("/{}", segments.join("/"));
        fs.write_text(&path, content.clone());
        assert_eq!(
            fs.read_text(&path).unwrap(),
            content.as_str(),
            "case {case}"
        );
        // Every ancestor directory exists.
        let mut dir = String::new();
        for seg in &segments[..segments.len() - 1] {
            dir.push('/');
            dir.push_str(seg);
            assert!(fs.exists(&dir), "case {case}: missing ancestor {dir}");
        }
    }
}

// ---------- prediction-model invariants ---------------------------------------

#[test]
fn c_library_rule_monotone() {
    for case in 0..128u64 {
        let mut g = Gen::new(case ^ 0x91bc);
        let req: Vec<u32> = (0..g.range(1, 3)).map(|_| g.u32_below(30)).collect();
        let have: Vec<u32> = (0..g.range(1, 3)).map(|_| g.u32_below(30)).collect();
        use feam::core::predict::c_library_compatible;
        let required = VersionName {
            prefix: "GLIBC".into(),
            numbers: req,
        };
        let target = VersionName {
            prefix: "GLIBC".into(),
            numbers: have,
        };
        let compat = c_library_compatible(Some(&required), Some(&target));
        // Compatible iff target >= required — cross-check with ordering.
        let ge = target.cmp_same_prefix(&required).unwrap().is_ge();
        assert_eq!(
            compat, ge,
            "case {case}: req {required:?} target {target:?}"
        );
    }
}

#[test]
fn verneed_encoding_round_trip() {
    use feam::elf::versions::{encode_verneed, parse_verneed};
    use feam::elf::{VersionRef, VersionRefEntry};
    for case in 0..128u64 {
        let mut g = Gen::new(case ^ 0x7e4d);
        let mut idx = 2u16;
        let mut input: Vec<VersionRef> = Vec::new();
        for _ in 0..g.range(1, 4) {
            let file = gen_soname_text(&mut g);
            let mut versions = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..g.range(1, 4) {
                let n = gen_version_name(&mut g);
                if seen.insert(n.clone()) {
                    versions.push(VersionRefEntry {
                        name: n,
                        index: idx,
                        weak: false,
                    });
                    idx += 1;
                }
            }
            if !input.iter().any(|r: &VersionRef| r.file == file) {
                input.push(VersionRef { file, versions });
            }
        }
        let mut st = feam::elf::strtab::StrTabBuilder::new();
        let bytes = encode_verneed(&input, &mut st, Endian::Little);
        let st_bytes = st.into_bytes();
        let parsed = parse_verneed(
            &bytes,
            input.len(),
            &feam::elf::strtab::StrTab::new(&st_bytes),
            Endian::Little,
        )
        .unwrap();
        assert_eq!(parsed, input, "case {case}");
    }
}

// `DefinedVersion` is re-exported; silence unused-import pedantry by using it.
#[test]
fn defined_version_constructible() {
    let d = DefinedVersion {
        name: "X_1.0".into(),
        parents: vec![],
    };
    assert_eq!(d.name, "X_1.0");
}
