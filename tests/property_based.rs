//! Property-based tests (proptest) over the core data structures and
//! invariants that the whole reproduction rests on.

use feam::elf::{
    Class, DefinedVersion, ElfFile, ElfSpec, Endian, ExportSpec, FileKind, ImportSpec, Machine,
    Soname, VersionName,
};
use proptest::prelude::*;

// ---------- generators -----------------------------------------------------

fn arb_soname_text() -> impl Strategy<Value = String> {
    ("[a-z][a-z0-9_]{1,12}", proptest::collection::vec(0u32..50, 0..3))
        .prop_map(|(base, nums)| {
            let mut s = format!("lib{base}.so");
            for n in nums {
                s.push_str(&format!(".{n}"));
            }
            s
        })
}

fn arb_version_name() -> impl Strategy<Value = String> {
    ("[A-Z]{2,8}", proptest::collection::vec(0u32..30, 1..4)).prop_map(|(pfx, nums)| {
        let parts: Vec<String> = nums.iter().map(u32::to_string).collect();
        format!("{pfx}_{}", parts.join("."))
    })
}

fn arb_symbol() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_]{0,20}".prop_map(|s| s)
}

fn arb_machine() -> impl Strategy<Value = Machine> {
    prop_oneof![
        Just(Machine::X86_64),
        Just(Machine::X86),
        Just(Machine::Ppc),
        Just(Machine::Ppc64),
        Just(Machine::Aarch64),
    ]
}

fn arb_class_endian() -> impl Strategy<Value = (Class, Endian)> {
    prop_oneof![
        Just((Class::Elf64, Endian::Little)),
        Just((Class::Elf32, Endian::Little)),
        Just((Class::Elf64, Endian::Big)),
        Just((Class::Elf32, Endian::Big)),
    ]
}

prop_compose! {
    fn arb_spec()(
        (class, endian) in arb_class_endian(),
        machine in arb_machine(),
        is_lib in any::<bool>(),
        soname in arb_soname_text(),
        needed in proptest::collection::vec(arb_soname_text(), 0..6),
        import_syms in proptest::collection::vec((arb_symbol(), arb_version_name()), 0..6),
        export_syms in proptest::collection::vec((arb_symbol(), proptest::option::of(arb_version_name())), 0..6),
        comments in proptest::collection::vec("[ -~]{1,40}", 0..3),
        text_size in 1usize..4096,
    ) -> ElfSpec {
        let mut spec = if is_lib {
            ElfSpec::shared_library(&soname, machine, class)
        } else {
            ElfSpec::executable(machine, class)
        };
        spec.endian = endian;
        spec.needed = needed;
        spec.imports = import_syms
            .into_iter()
            .map(|(sym, ver)| ImportSpec::versioned(&sym, "libc.so.6", &ver))
            .collect();
        if is_lib {
            spec.exports = export_syms
                .into_iter()
                .map(|(sym, ver)| ExportSpec::new(&sym, ver.as_deref()))
                .collect();
        }
        spec.comments = comments;
        spec.text_size = text_size;
        spec
    }
}

// ---------- ELF build → parse round-trip ------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn build_parse_round_trip(spec in arb_spec()) {
        let bytes = spec.build().expect("arbitrary spec builds");
        let f = ElfFile::parse(&bytes).expect("built image parses");
        prop_assert_eq!(f.class(), spec.class);
        prop_assert_eq!(f.machine(), spec.machine);
        prop_assert_eq!(f.kind(), spec.kind);
        // NEEDED preserved in order, with import/extra-ref providers appended.
        let needed = f.needed();
        for (i, n) in spec.needed.iter().enumerate() {
            prop_assert_eq!(&needed[i], n);
        }
        if spec.kind == FileKind::SharedObject {
            prop_assert_eq!(f.soname(), spec.soname.as_deref());
        }
        // Every import appears as an undefined dynamic symbol with its
        // version binding intact.
        for imp in &spec.imports {
            let found = f
                .dynamic_symbols()
                .iter()
                .any(|s| s.undefined && s.name == imp.symbol && s.version == imp.version);
            prop_assert!(found, "import {} lost", imp.symbol);
        }
        // Comments survive byte-exactly (deduplicated).
        for c in &spec.comments {
            prop_assert!(f.comments().contains(c));
        }
    }

    #[test]
    fn segment_route_agrees_with_section_route(spec in arb_spec()) {
        // Parsing via PT_DYNAMIC (stripped binary) must agree with the
        // section route on the dynamic facts FEAM relies on.
        let mut bytes = spec.build().expect("builds");
        let f_sections = ElfFile::parse(&bytes).expect("parses");
        let sec_needed: Vec<String> = f_sections.needed().to_vec();
        let sec_glibc = f_sections.required_glibc();
        // Zero out the section header info in the ELF header.
        let e = spec.endian;
        match spec.class {
            Class::Elf64 => {
                e.set_u64(&mut bytes, 40, 0);
                e.set_u16(&mut bytes, 60, 0);
                e.set_u16(&mut bytes, 62, 0);
            }
            Class::Elf32 => {
                e.set_u32(&mut bytes, 32, 0);
                e.set_u16(&mut bytes, 48, 0);
                e.set_u16(&mut bytes, 50, 0);
            }
        }
        let f_segments = ElfFile::parse(&bytes).expect("stripped image parses");
        prop_assert!(f_segments.sections().is_empty());
        prop_assert_eq!(f_segments.needed(), sec_needed.as_slice());
        prop_assert_eq!(f_segments.required_glibc(), sec_glibc);
    }

    #[test]
    fn parser_never_panics_on_mutations(spec in arb_spec(), flips in proptest::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..16)) {
        // Corrupting arbitrary bytes must yield Ok or Err, never a panic.
        let mut bytes = spec.build().expect("builds");
        for (idx, val) in flips {
            let i = idx.index(bytes.len());
            bytes[i] = val;
        }
        let _ = ElfFile::parse(&bytes);
    }

    #[test]
    fn parser_never_panics_on_random_input(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = ElfFile::parse(&data);
    }
}

// ---------- Soname and version-name invariants ------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn soname_display_parse_round_trip(name in arb_soname_text()) {
        let parsed = Soname::parse(&name).expect("generated sonames parse");
        prop_assert_eq!(parsed.to_string(), name.clone());
        // Compatibility is reflexive.
        prop_assert!(parsed.api_compatible_with(&parsed));
        prop_assert!(parsed.loader_matches(&parsed));
    }

    #[test]
    fn soname_major_rule_is_exact(base in "[a-z]{2,8}", a in 0u32..20, b in 0u32..20) {
        let x = Soname::parse(&format!("lib{base}.so.{a}")).unwrap();
        let y = Soname::parse(&format!("lib{base}.so.{b}.1")).unwrap();
        prop_assert_eq!(x.api_compatible_with(&y), a == b);
    }

    #[test]
    fn version_name_render_parse_round_trip(name in arb_version_name()) {
        let v = VersionName::parse(&name).expect("generated names parse");
        prop_assert_eq!(v.render(), name.clone());
        let again = VersionName::parse(&v.render()).unwrap();
        prop_assert_eq!(v, again);
    }

    #[test]
    fn version_ordering_is_total_within_prefix(
        nums_a in proptest::collection::vec(0u32..50, 1..4),
        nums_b in proptest::collection::vec(0u32..50, 1..4),
    ) {
        let a = VersionName { prefix: "GLIBC".into(), numbers: nums_a };
        let b = VersionName { prefix: "GLIBC".into(), numbers: nums_b };
        let ab = a.cmp_same_prefix(&b).unwrap();
        let ba = b.cmp_same_prefix(&a).unwrap();
        prop_assert_eq!(ab, ba.reverse());
        if ab == std::cmp::Ordering::Equal {
            prop_assert_eq!(a.numbers, b.numbers);
        }
    }
}

// ---------- VFS path invariants ----------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn vfs_normalize_is_idempotent(path in "(/?[a-z.]{0,8}){0,8}") {
        let once = feam::sim::vfs::normalize(&path);
        let twice = feam::sim::vfs::normalize(&once);
        prop_assert_eq!(&once, &twice);
        prop_assert!(once.starts_with('/'));
        prop_assert!(!once.contains("//"));
        prop_assert!(!once.contains("/./"));
    }

    #[test]
    fn vfs_write_read_round_trip(segments in proptest::collection::vec("[a-z]{1,8}", 1..6), content in "[ -~]{0,64}") {
        let mut fs = feam::sim::Vfs::new();
        let path = format!("/{}", segments.join("/"));
        fs.write_text(&path, content.clone());
        prop_assert_eq!(fs.read_text(&path).unwrap(), content.as_str());
        // Every ancestor directory exists.
        let mut dir = String::new();
        for seg in &segments[..segments.len() - 1] {
            dir.push('/');
            dir.push_str(seg);
            prop_assert!(fs.exists(&dir), "missing ancestor {dir}");
        }
    }
}

// ---------- prediction-model invariants ---------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn c_library_rule_monotone(
        req in proptest::collection::vec(0u32..30, 1..3),
        have_lo in proptest::collection::vec(0u32..30, 1..3),
    ) {
        use feam::core::predict::c_library_compatible;
        let required = VersionName { prefix: "GLIBC".into(), numbers: req.clone() };
        let target = VersionName { prefix: "GLIBC".into(), numbers: have_lo.clone() };
        let compat = c_library_compatible(Some(&required), Some(&target));
        // Compatible iff target >= required — cross-check with ordering.
        let ge = target.cmp_same_prefix(&required).unwrap().is_ge();
        prop_assert_eq!(compat, ge);
    }

    #[test]
    fn verneed_encoding_round_trip(
        refs in proptest::collection::vec(
            (arb_soname_text(), proptest::collection::vec(arb_version_name(), 1..4)),
            1..4
        )
    ) {
        use feam::elf::versions::{encode_verneed, parse_verneed};
        use feam::elf::{VersionRef, VersionRefEntry};
        let mut idx = 2u16;
        let mut input: Vec<VersionRef> = Vec::new();
        for (file, names) in refs {
            let mut versions = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for n in names {
                if seen.insert(n.clone()) {
                    versions.push(VersionRefEntry { name: n, index: idx, weak: false });
                    idx += 1;
                }
            }
            if !input.iter().any(|r: &VersionRef| r.file == file) {
                input.push(VersionRef { file, versions });
            }
        }
        let mut st = feam::elf::strtab::StrTabBuilder::new();
        let bytes = encode_verneed(&input, &mut st, Endian::Little);
        let st_bytes = st.into_bytes();
        let parsed = parse_verneed(
            &bytes,
            input.len(),
            &feam::elf::strtab::StrTab::new(&st_bytes),
            Endian::Little,
        ).unwrap();
        prop_assert_eq!(parsed, input);
    }
}

// `DefinedVersion` is re-exported; silence unused-import pedantry by using it.
#[test]
fn defined_version_constructible() {
    let d = DefinedVersion { name: "X_1.0".into(), parents: vec![] };
    assert_eq!(d.name, "X_1.0");
}
