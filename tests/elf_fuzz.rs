//! Corrupt-ELF fuzz sweep: the reader must return `Err` on structural
//! corruption and must *never* panic, hang, or attempt absurd allocations,
//! whatever bytes it is fed. Cases come from a deterministic SplitMix64
//! mutator over valid builder-produced images, so every failure is
//! reproducible from its case number.

use feam::elf::versions::{parse_verneed, VersionRef, VersionRefEntry};
use feam::elf::{
    strip_section_headers, Class, ElfFile, ElfSpec, Endian, ExportSpec, ImportSpec, Machine,
};

/// Per-sweep iteration count: `FEAM_FUZZ_ITERS=N` overrides every sweep
/// (local quick runs set a small N); unset keeps the CI-sized default.
fn fuzz_iters(default: usize) -> usize {
    std::env::var("FEAM_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|n| *n > 0)
        .unwrap_or(default)
}

/// SplitMix64-style deterministic generator.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// A pool of valid images covering both classes, byte orders, file kinds
/// and both reader routes (with and without section headers).
fn base_images() -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for (class, endian) in [
        (Class::Elf64, Endian::Little),
        (Class::Elf64, Endian::Big),
        (Class::Elf32, Endian::Little),
    ] {
        let mut spec = ElfSpec::executable(Machine::X86_64, class);
        spec.endian = endian;
        spec.needed = vec!["libmpi.so.0".into(), "libc.so.6".into()];
        spec.imports = vec![
            ImportSpec::versioned("fopen64", "libc.so.6", "GLIBC_2.3.4"),
            ImportSpec::versioned("MPI_Init", "libmpi.so.0", "OMPI_1.4"),
            ImportSpec::plain("main_helper", "libc.so.6"),
        ];
        spec.comments = vec!["GCC: (GNU) 4.4.7".into()];
        out.push(spec.build().expect("valid executable spec builds"));

        let mut lib = ElfSpec::shared_library("libdemo.so.1", Machine::X86_64, class);
        lib.endian = endian;
        lib.exports = vec![
            ExportSpec::new("demo_fn", Some("DEMO_1.0")),
            ExportSpec::new("demo_fn2", None),
        ];
        out.push(lib.build().expect("valid library spec builds"));
    }
    out
}

/// Parse mutated bytes; an `Err` is the expected outcome, an `Ok` is
/// tolerated (the flip may have landed in a don't-care byte) but every
/// accessor must then hold up without panicking.
fn parse_must_not_panic(bytes: &[u8]) -> bool {
    match ElfFile::parse(bytes) {
        Err(_) => false,
        Ok(f) => {
            let _ = f.needed();
            let _ = f.soname();
            let _ = f.interp();
            let _ = f.comments();
            let _ = f.dynamic_symbols();
            let _ = f.version_refs();
            let _ = f.version_defs();
            let _ = f.required_glibc();
            let _ = f.abi_tag();
            let _ = f.is_dynamic();
            let _ = f.evidence();
            let _ = f.code_bytes();
            true
        }
    }
}

/// ELF64 header field offsets (little/big endian agnostic — we patch via
/// raw byte positions and both byte orders read the same positions).
const E_SHOFF64: usize = 40;
const E_SHNUM64: usize = 60;
const E_SHENTSIZE64: usize = 58;

fn put_u16(bytes: &mut [u8], off: usize, v: u16, e: Endian) {
    let b = match e {
        Endian::Little => v.to_le_bytes(),
        Endian::Big => v.to_be_bytes(),
    };
    bytes[off..off + 2].copy_from_slice(&b);
}

fn put_u64(bytes: &mut [u8], off: usize, v: u64, e: Endian) {
    let b = match e {
        Endian::Little => v.to_le_bytes(),
        Endian::Big => v.to_be_bytes(),
    };
    bytes[off..off + 8].copy_from_slice(&b);
}

fn image_endian(bytes: &[u8]) -> Endian {
    if bytes[5] == 2 {
        Endian::Big
    } else {
        Endian::Little
    }
}

fn is_elf64(bytes: &[u8]) -> bool {
    bytes[4] == 2
}

// ---------- targeted corruptions --------------------------------------------

#[test]
fn truncated_headers_always_err() {
    for img in base_images() {
        // Any prefix shorter than the fixed-size file header must be
        // rejected outright.
        for n in 0..52.min(img.len()) {
            assert!(
                ElfFile::parse(&img[..n]).is_err(),
                "{n}-byte header prefix parsed"
            );
        }
        // Longer truncations may or may not cut a referenced table; they
        // must never panic either way.
        for n in (0..img.len()).step_by(7) {
            parse_must_not_panic(&img[..n]);
        }
    }
}

#[test]
fn oversized_section_count_is_rejected() {
    for img in base_images().into_iter().filter(|i| is_elf64(i)) {
        let e = image_endian(&img);

        // e_shnum = 0xFFFF with a real entry size: the claimed table runs
        // far past EOF.
        let mut m = img.clone();
        put_u16(&mut m, E_SHNUM64, 0xFFFF, e);
        assert!(ElfFile::parse(&m).is_err(), "oversized e_shnum parsed");

        // Table offset near u64::MAX: per-entry offset arithmetic must not
        // overflow into a bogus small offset (or a debug-mode panic).
        let mut m = img.clone();
        put_u64(&mut m, E_SHOFF64, u64::MAX - 16, e);
        put_u16(&mut m, E_SHNUM64, 4, e);
        assert!(ElfFile::parse(&m).is_err(), "overflowing e_shoff parsed");

        // Huge entry size walks the cursor off the file immediately.
        let mut m = img.clone();
        put_u16(&mut m, E_SHENTSIZE64, 0xFFFF, e);
        assert!(ElfFile::parse(&m).is_err(), "oversized e_shentsize parsed");
    }
}

#[test]
fn bogus_string_table_offsets_are_rejected() {
    // Corrupt each ELF64 section header's sh_offset in turn: any section
    // the reader traverses (shstrtab, dynstr, dynamic, versions, …) now
    // points past EOF, which must surface as Err, never as a panic.
    for img in base_images().into_iter().filter(|i| is_elf64(i)) {
        let e = image_endian(&img);
        let shoff = {
            let f = ElfFile::parse(&img).expect("base image parses");
            f.header().shoff as usize
        };
        let shnum = ElfFile::parse(&img).unwrap().header().shnum as usize;
        let mut any_rejected = 0;
        for i in 1..shnum {
            let mut m = img.clone();
            // sh_offset lives at +24 within a 64-byte ELF64 entry.
            put_u64(&mut m, shoff + i * 64 + 24, u64::MAX - 0x1000, e);
            if !parse_must_not_panic(&m) {
                any_rejected += 1;
            }
        }
        assert!(any_rejected > 0, "no corrupted section offset was rejected");
    }
}

#[test]
fn cyclic_and_overlong_version_ref_chains_are_bounded() {
    // Hand-crafted verneed bytes, driven straight through the parser the
    // reader uses. `vn_next`/`vna_next` cannot step backwards (offsets are
    // unsigned sums), so the cyclic-chain attack shows up as (a) a
    // self-referential aux chain via vna_next=0 mid-chain and (b) a record
    // count far beyond what the bytes can hold.
    let strtab_bytes = b"\0libc.so.6\0GLIBC_2.0\0".to_vec();
    let strtab = feam::elf::strtab::StrTab::new(&strtab_bytes);
    let e = Endian::Little;

    // (a) vn_cnt = 3 but the first aux entry terminates the chain.
    let mut bytes = Vec::new();
    for v in [1u16, 3u16] {
        bytes.extend_from_slice(&v.to_le_bytes()); // vn_version, vn_cnt
    }
    for v in [1u32, 16u32, 0u32] {
        bytes.extend_from_slice(&v.to_le_bytes()); // vn_file, vn_aux, vn_next
    }
    for v in [0u32, 0u32] {
        bytes.extend_from_slice(&v.to_le_bytes()); // vna_hash, flags+other
    }
    for v in [11u32, 0u32] {
        bytes.extend_from_slice(&v.to_le_bytes()); // vna_name, vna_next = 0 (early stop)
    }
    assert!(parse_verneed(&bytes, 1, &strtab, e).is_err());

    // (b) a count of u32::MAX over 32 bytes of data: must terminate with
    // Err quickly and without attempting a giant allocation.
    let refs = vec![VersionRef {
        file: "libc.so.6".into(),
        versions: vec![VersionRefEntry {
            name: "GLIBC_2.0".into(),
            index: 2,
            weak: false,
        }],
    }];
    let mut st = feam::elf::strtab::StrTabBuilder::new();
    let encoded = feam::elf::versions::encode_verneed(&refs, &mut st, e);
    let st_bytes = st.into_bytes();
    let result = parse_verneed(
        &encoded,
        u32::MAX as usize,
        &feam::elf::strtab::StrTab::new(&st_bytes),
        e,
    );
    // One valid record then the chain ends (vn_next = 0): parsed fine,
    // bounded by the data, not by the absurd count.
    assert_eq!(result.expect("chain end bounds the walk").len(), 1);

    // (c) vn_next = 1: records stride forward one byte at a time; the walk
    // must stay bounded by the slice length.
    let mut m = encoded.clone();
    m[12..16].copy_from_slice(&1u32.to_le_bytes()); // vn_next
    let _ = parse_verneed(
        &m,
        u32::MAX as usize,
        &feam::elf::strtab::StrTab::new(&st_bytes),
        e,
    );
}

#[test]
fn segment_route_survives_corruption() {
    // Strip section headers so the reader takes the PT_DYNAMIC route, then
    // flip bytes in the remaining image. The dynamic-segment walker, the
    // vaddr→offset mapping and the verneed/symbol-table loads must all
    // fail soft.
    let mut g = Gen::new(0xE1F5_EC70);
    for img in base_images().into_iter().filter(|i| is_elf64(i)) {
        let e = image_endian(&img);
        let mut stripped = img.clone();
        put_u64(&mut stripped, E_SHOFF64, 0, e);
        put_u16(&mut stripped, E_SHNUM64, 0, e);
        assert!(
            ElfFile::parse(&stripped).is_ok(),
            "section-stripped base image must still parse via segments"
        );
        for _ in 0..fuzz_iters(400) {
            let mut m = stripped.clone();
            for _ in 0..g.range(1, 9) {
                let pos = g.range(0, m.len());
                m[pos] = g.next_u64() as u8;
            }
            parse_must_not_panic(&m);
        }
    }
}

/// Hostile packaging shapes as produced by the real toolchain paths:
/// properly stripped images (via [`strip_section_headers`], not just
/// zeroed header fields) and statically linked executables with no
/// dynamic machinery at all.
fn hostile_images() -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for img in base_images() {
        let mut stripped = img.clone();
        if strip_section_headers(&mut stripped).is_ok() {
            out.push(stripped);
        }
    }
    for class in [Class::Elf64, Class::Elf32] {
        let mut spec = ElfSpec::executable(Machine::X86_64, class);
        spec.static_link = true;
        spec.comments = vec!["GCC: (GNU) 4.4.7".into()];
        spec.text_stamp = vec![0x5A; 24];
        out.push(spec.build().expect("valid static spec builds"));
    }
    out
}

#[test]
fn stripped_and_static_images_survive_corruption() {
    // Every hostile shape must parse cleanly when intact — reporting the
    // *absence* of its missing evidence channels through the survey, not a
    // parse error — and must fail soft under random corruption.
    let mut g = Gen::new(0x57A7_1C57);
    for img in hostile_images() {
        let f = ElfFile::parse(&img).expect("intact hostile image parses");
        let ev = f.evidence();
        assert!(
            ev.needs_fallback(),
            "hostile shapes are exactly the fallback trigger: {ev:?}"
        );
        assert!(
            f.code_bytes().is_some(),
            "code bytes reachable on every hostile shape"
        );
        for _ in 0..fuzz_iters(300) {
            let mut m = img.clone();
            for _ in 0..g.range(1, 13) {
                let pos = g.range(0, m.len());
                m[pos] = g.next_u64() as u8;
            }
            parse_must_not_panic(&m);
        }
    }
}

#[test]
fn provenance_on_corrupt_images_never_panics_or_reaches_direct_confidence() {
    // The provenance matcher consumes whatever the reader accepted. Fuzz
    // it over corrupted hostile images: no panic, and — the calibration
    // contract — no claim ever reaches the 1.0 that direct evidence
    // carries, whatever garbage the stamp bytes decoded to.
    let mut g = Gen::new(0x9807_E4A4);
    for (i, img) in hostile_images().into_iter().enumerate() {
        for case in 0..fuzz_iters(200) {
            let mut m = img.clone();
            for _ in 0..g.range(1, 9) {
                let pos = g.range(0, m.len());
                m[pos] = g.next_u64() as u8;
            }
            if let Ok(f) = feam::elf::LazyElf::parse(&m) {
                let r = feam::provenance::analyze(&f);
                assert!(
                    r.confidence < 1.0,
                    "image {i} case {case}: corrupt evidence calibrated at {}",
                    r.confidence
                );
                if let Some(c) = &r.compiler {
                    assert!(c.confidence < 1.0, "image {i} case {case}");
                }
                for c in &r.runtime {
                    assert!(c.confidence < 1.0, "image {i} case {case}");
                }
                if let Some(mc) = &r.mpi_stack {
                    assert!(mc.confidence < 1.0, "image {i} case {case}");
                }
            }
        }
    }
}

// ---------- random sweeps ----------------------------------------------------

#[test]
fn random_byte_flips_never_panic() {
    let images = base_images();
    let mut g = Gen::new(0xBADC_0FFE);
    for case in 0..fuzz_iters(3000) {
        let img = &images[case % images.len()];
        let mut m = img.clone();
        for _ in 0..g.range(1, 17) {
            let pos = g.range(0, m.len());
            m[pos] = g.next_u64() as u8;
        }
        parse_must_not_panic(&m);
    }
}

#[test]
fn random_block_corruption_and_truncation_never_panic() {
    let images = base_images();
    let mut g = Gen::new(0x5EED_F00D);
    for case in 0..fuzz_iters(1500) {
        let img = &images[case % images.len()];
        let mut m = img.clone();
        // Overwrite a random block with random bytes.
        let start = g.range(0, m.len());
        let len = g.range(1, (m.len() - start).min(256) + 1);
        for b in &mut m[start..start + len] {
            *b = g.next_u64() as u8;
        }
        // Sometimes also truncate.
        if g.range(0, 4) == 0 {
            m.truncate(g.range(4, m.len()));
        }
        parse_must_not_panic(&m);
    }
}

#[test]
fn pure_garbage_never_parses() {
    let mut g = Gen::new(0xDEAD_BEEF);
    for _ in 0..fuzz_iters(500) {
        let len = g.range(0, 512);
        let bytes: Vec<u8> = (0..len).map(|_| g.next_u64() as u8).collect();
        assert!(
            ElfFile::parse(&bytes).is_err(),
            "random bytes parsed as ELF"
        );
    }
    // Magic alone is not enough.
    assert!(ElfFile::parse(b"\x7fELF").is_err());
    let mut magic_only = vec![0u8; 200];
    magic_only[..4].copy_from_slice(b"\x7fELF");
    assert!(ElfFile::parse(&magic_only).is_err());
}
