//! Exit-code policy of `feam check`, with and without `--sites`.
//!
//! The contract these tests pin: the exit status is the lint's alone.
//! Ensemble readiness verdicts — including contested ones, where the
//! checker members disagree — are advisory output and never fail the
//! check; lint findings of severity `Error` always do, `--sites` or not.

use std::path::PathBuf;
use std::process::Command;

/// Binary compiled glibc-hungry at Forge (glibc 2.12): clean lint, ready
/// at home, and *contested* at the older-glibc sites (the symbol-diff
/// checker and FEAM reject the missing GLIBC version nodes, the
/// ldd-closure checker — which never looks at versions — accepts).
fn contested_probe() -> PathBuf {
    use feam::sim::compile::{compile, ProgramSpec};
    use feam::sim::toolchain::Language;
    use feam::workloads::sites::{standard_sites, FORGE};

    let sites = standard_sites(42);
    let site = &sites[FORGE];
    let stack = site
        .stacks
        .iter()
        .find(|s| s.stack.ident() == "openmpi-1.4-gnu-4.4.5")
        .expect("forge runs openmpi-1.4-gnu-4.4.5");
    let mut spec = ProgramSpec::new("cg", Language::C);
    spec.glibc_appetite = 1.0;
    let bin = compile(site, Some(stack), &spec, 42).expect("probe compiles");
    let path = std::env::temp_dir().join(format!("feam-exitcode-{}.elf", std::process::id()));
    std::fs::write(&path, bin.image.as_slice()).unwrap();
    path
}

/// The same probe with its `.gnu.version` section header shrunk by one
/// entry: still parseable, but the versym/dynsym length mismatch is a
/// lint `Error`.
fn error_probe() -> PathBuf {
    let clean = contested_probe();
    let mut bytes = std::fs::read(&clean).unwrap();
    let rd16 = |b: &[u8], o: usize| u16::from_le_bytes([b[o], b[o + 1]]);
    let rd64 = |b: &[u8], o: usize| {
        u64::from_le_bytes([
            b[o],
            b[o + 1],
            b[o + 2],
            b[o + 3],
            b[o + 4],
            b[o + 5],
            b[o + 6],
            b[o + 7],
        ])
    };
    assert_eq!(&bytes[..4], b"\x7fELF");
    assert_eq!(bytes[4], 2, "probe is ELF64");
    let shoff = rd64(&bytes, 0x28) as usize;
    let shentsize = rd16(&bytes, 0x3a) as usize;
    let shnum = rd16(&bytes, 0x3c) as usize;
    const SHT_GNU_VERSYM: u32 = 0x6fff_ffff;
    let mut corrupted = false;
    for i in 0..shnum {
        let e = shoff + i * shentsize;
        let sh_type = u32::from_le_bytes([bytes[e + 4], bytes[e + 5], bytes[e + 6], bytes[e + 7]]);
        if sh_type == SHT_GNU_VERSYM {
            // sh_size lives at +0x20 in an Elf64 section header.
            let size = rd64(&bytes, e + 0x20);
            assert!(size >= 4, "versym section has entries");
            bytes[e + 0x20..e + 0x28].copy_from_slice(&(size - 2).to_le_bytes());
            corrupted = true;
            break;
        }
    }
    assert!(corrupted, "probe carries a .gnu.version section");
    let path = std::env::temp_dir().join(format!("feam-exitcode-bad-{}.elf", std::process::id()));
    std::fs::write(&path, &bytes).unwrap();
    path
}

fn run_check(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_feam"))
        .arg("check")
        .args(args)
        .output()
        .expect("feam runs");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn contested_but_ready_exits_zero() {
    let elf = contested_probe();
    let (code, stdout) = run_check(&["--sites", elf.to_str().unwrap()]);
    assert_eq!(
        code, 0,
        "advisory ensemble verdicts never fail the check:\n{stdout}"
    );
    assert!(
        stdout.contains("ensemble readiness"),
        "--sites prints the ensemble table:\n{stdout}"
    );
    // The probe is genuinely ready at its home site and genuinely
    // contested elsewhere — both advisory states ride on exit 0.
    assert!(
        stdout
            .lines()
            .any(|l| l.contains("forge") && l.contains("ready")),
        "ready at home:\n{stdout}"
    );
    assert!(
        stdout.contains("contested"),
        "members disagree at the older-glibc sites:\n{stdout}"
    );
}

#[test]
fn lint_errors_exit_nonzero_even_with_sites() {
    let elf = error_probe();
    let (code, stdout) = run_check(&["--sites", elf.to_str().unwrap()]);
    assert_eq!(code, 1, "Error findings always fail the check:\n{stdout}");
    assert!(
        stdout.contains("Error"),
        "the finding is printed:\n{stdout}"
    );

    // Same without --sites: the flag never changes the policy.
    let (code, _) = run_check(&[elf.to_str().unwrap()]);
    assert_eq!(code, 1);
}

#[test]
fn clean_binary_without_sites_still_exits_zero() {
    let elf = contested_probe();
    let (code, stdout) = run_check(&[elf.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout}");
    assert!(
        !stdout.contains("ensemble readiness"),
        "no --sites, no ensemble table:\n{stdout}"
    );
}
