//! Robustness acceptance tests: the pipeline under injected faults.
//!
//! * 100% persistent EDC description-file faults: `run_target_phase` must
//!   still return a prediction — degraded, with `Unknown` determinants —
//!   instead of panicking or erroring.
//! * Persistent VFS faults: no panic anywhere in the phase.
//! * Transient faults at realistic rates: the retry policy recovers and
//!   the prediction matches the fault-free run.

use feam::core::phases::{run_source_phase, run_target_phase, PhaseConfig};
use feam::core::predict::Determination;
use feam::core::report::report_json;
use feam::sim::compile::{compile, ProgramSpec};
use feam::sim::faults::{FaultPlan, FaultRate};
use feam::sim::toolchain::Language;
use feam::workloads::sites::{standard_sites, FIR, INDIA};
use std::sync::Arc;

fn gnu_binary(sites: &[feam::sim::site::Site]) -> Arc<Vec<u8>> {
    let india = &sites[INDIA];
    let stack = india
        .stacks
        .iter()
        .find(|s| s.stack.ident() == "openmpi-1.4.3-gnu-4.1.2")
        .unwrap()
        .clone();
    compile(
        india,
        Some(&stack),
        &ProgramSpec::new("cg", Language::Fortran),
        5,
    )
    .unwrap()
    .image
}

#[test]
fn persistent_edc_faults_degrade_instead_of_erroring() {
    let sites = standard_sites(101);
    let image = gnu_binary(&sites);
    // Every description file and environment database is persistently
    // unreadable at the target.
    let cfg = PhaseConfig {
        faults: Arc::new(FaultPlan::persistent_edc(7, 1.0)),
        ..PhaseConfig::default()
    };
    let outcome = run_target_phase(&sites[FIR], Some(&image), None, &cfg);

    // A prediction came back (no Err, no panic) and it is degraded.
    assert!(
        outcome.prediction.degraded(),
        "persistent EDC faults must surface as a degraded prediction"
    );
    assert!(
        outcome
            .prediction
            .verdicts
            .iter()
            .any(|v| v.verdict == Determination::Unknown),
        "some determinant must be Unknown: {:?}",
        outcome.prediction.verdicts
    );
    assert!(outcome.prediction.confidence() < 1.0);
    // The unobservable evidence is named in the environment description.
    assert!(
        outcome
            .environment
            .unobserved
            .iter()
            .any(|u| u == "c_library"),
        "unobserved: {:?}",
        outcome.environment.unobserved
    );
    // And the report carries the degradation for the user.
    let j = report_json(&outcome);
    assert_eq!(j["degraded"], true);
    assert!(j["confidence"].as_f64().unwrap() < 1.0);
    assert!(j["determinants"]
        .as_array()
        .unwrap()
        .iter()
        .any(|d| d["verdict"] == "unknown"));
}

#[test]
fn persistent_vfs_faults_do_not_panic() {
    let sites = standard_sites(101);
    let image = gnu_binary(&sites);
    let cfg = PhaseConfig {
        faults: Arc::new(FaultPlan::persistent_vfs(11, 1.0)),
        ..PhaseConfig::default()
    };
    // Every file read fails, including reading back the staged binary: the
    // phase must conclude with an all-Unknown degraded outcome, not panic.
    let outcome = run_target_phase(&sites[FIR], Some(&image), None, &cfg);
    assert!(!outcome.prediction.ready());
    assert!(outcome.prediction.degraded());
    assert_eq!(outcome.prediction.confidence(), 0.0);
}

#[test]
fn transient_faults_recover_to_the_fault_free_prediction() {
    let sites = standard_sites(101);
    let image = gnu_binary(&sites);
    let clean = run_target_phase(&sites[FIR], Some(&image), None, &PhaseConfig::default());

    // Realistic transient fault rates at every retried chokepoint.
    let plan = FaultPlan {
        seed: 21,
        description_file: FaultRate {
            transient: 0.2,
            persistent: 0.0,
        },
        module_db: FaultRate {
            transient: 0.2,
            persistent: 0.0,
        },
        probe_compile: FaultRate {
            transient: 0.2,
            persistent: 0.0,
        },
        daemon_spawn: FaultRate {
            transient: 0.2,
            persistent: 0.0,
        },
        ..FaultPlan::default()
    };
    let cfg = PhaseConfig {
        faults: Arc::new(plan),
        ..PhaseConfig::default()
    };
    let faulted = run_target_phase(&sites[FIR], Some(&image), None, &cfg);
    assert_eq!(
        faulted.prediction.ready(),
        clean.prediction.ready(),
        "retries must absorb transient faults: {:?}",
        faulted.prediction.verdicts
    );
    assert!(
        !faulted.prediction.degraded(),
        "no determinant should stay Unknown under transient-only faults"
    );
}

#[test]
fn source_phase_survives_transient_faults() {
    let sites = standard_sites(101);
    let image = gnu_binary(&sites);
    let plan = FaultPlan {
        seed: 3,
        probe_compile: FaultRate {
            transient: 0.3,
            persistent: 0.0,
        },
        ..FaultPlan::default()
    };
    let cfg = PhaseConfig {
        faults: Arc::new(plan),
        ..PhaseConfig::default()
    };
    let bundle = run_source_phase(&sites[INDIA], &image, &cfg).expect("source phase retries");
    assert!(
        !bundle.hello_worlds.is_empty(),
        "hello-world probes compiled despite transient compiler faults"
    );
}
