//! Caching is an optimization, never a semantic change: the Table III
//! migration sweep must produce byte-identical predictions with the
//! description caches installed and without them.
//!
//! Simulated CPU seconds are the one legitimate difference — a cache hit
//! skips the reads it memoized — so the comparison drops the
//! `*_cpu_seconds` fields and pins everything else, per record, as
//! serialized JSON.

use feam_eval::{table3, Experiment, MigrationRecord};
use std::sync::Arc;

/// A trimmed experiment (every 6th corpus binary) at `seed`, with or
/// without the shared phase caches installed.
fn run_trimmed(seed: u64, cached: bool) -> feam_eval::EvalResults {
    let mut e = Experiment::new(seed);
    let kept: Vec<_> = e
        .corpus
        .binaries()
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 6 == 0)
        .map(|(_, b)| b.clone())
        .collect();
    let mut corpus = feam_workloads::TestSet::default();
    for k in kept {
        corpus.push(k);
    }
    e.corpus = corpus;
    if cached {
        e.config.caches = Some(Arc::new(feam_core::cache::PhaseCaches::new(0)));
    }
    e.run()
}

/// Everything observable about a record except the CPU-time accounting.
fn fingerprint(r: &MigrationRecord) -> String {
    let v = serde_json::to_value(r).expect("record serializes");
    let obj = v.as_object().expect("record is an object");
    let mut out = String::new();
    for (k, field) in obj.iter() {
        if k.ends_with("cpu_seconds") {
            continue;
        }
        out.push_str(k);
        out.push('=');
        out.push_str(&serde_json::to_string(field).expect("field serializes"));
        out.push(';');
    }
    out
}

/// The checker ensemble rides on the same phase machinery, so its
/// agreement record — member verdicts, details, dissent pair counts —
/// must also be invariant under caching.
#[test]
fn ensemble_agreement_is_identical_with_and_without_caches() {
    use feam::agree::Ensemble;
    use feam::core::phases::PhaseConfig;
    use feam::sim::compile::{compile, ProgramSpec};
    use feam::sim::toolchain::Language;
    use feam::workloads::sites::standard_sites;

    let agreement_fingerprint = |cached: bool| -> String {
        let sites = standard_sites(42);
        let mut cfg = PhaseConfig::default();
        if cached {
            cfg.caches = Some(Arc::new(feam_core::cache::PhaseCaches::new(0)));
        }
        let mut ensemble = Ensemble::new(cfg.faults.clone());
        let mut out = String::new();
        for (pi, prog) in ["bt", "cg"].iter().enumerate() {
            let home = &sites[pi];
            let bin = compile(
                home,
                Some(&home.stacks[0]),
                &ProgramSpec::new(prog, Language::Fortran),
                42,
            )
            .expect("probe compiles");
            for site in &sites {
                let o = ensemble.run(site, &bin.image, None, &cfg);
                out.push_str(&format!("{prog}@{}:", site.name()));
                for m in &o.members {
                    out.push_str(&format!(
                        " {}={}({})",
                        m.member,
                        m.verdict.label(),
                        m.detail
                    ));
                }
                out.push_str(&format!(
                    " dissent={}/{}/{}\n",
                    o.dissent.decided, o.dissent.disagreeing_pairs, o.dissent.total_pairs
                ));
            }
        }
        out
    };

    let uncached = agreement_fingerprint(false);
    let cached = agreement_fingerprint(true);
    assert!(!uncached.is_empty());
    assert_eq!(
        uncached, cached,
        "caching changed an observable agreement field"
    );
}

/// The batched library collector — one zero-copy parse and one
/// description per dependency, names interned in a per-request arena —
/// must produce byte-identical bundles whether or not a description
/// cache is installed, and whether the cache is cold or warm.
#[test]
fn collect_libraries_bundle_is_identical_with_and_without_caches() {
    use feam::sim::compile::{compile, ProgramSpec};
    use feam::sim::site::Session;
    use feam::sim::toolchain::Language;
    use feam::workloads::sites::standard_sites;

    let sites = standard_sites(42);
    let home = &sites[0];
    let stack = home.stacks[0].clone();
    let bin = compile(
        home,
        Some(&stack),
        &ProgramSpec::new("bt", Language::Fortran),
        42,
    )
    .expect("probe compiles");

    let collect = |caches: Option<&feam_core::cache::PhaseCaches>| -> String {
        let mut sess = Session::new(home);
        sess.load_stack(&stack);
        sess.stage_file("/r/bt", Arc::clone(&bin.image));
        let bundle = feam_core::bdc::collect_libraries_cached(&mut sess, "/r/bt", caches)
            .expect("collection succeeds");
        let mut out = String::new();
        for (soname, copy) in &bundle {
            out.push_str(soname);
            out.push('=');
            out.push_str(&serde_json::to_string(&copy.description).expect("serializes"));
            out.push('\n');
        }
        out
    };

    let uncached = collect(None);
    let caches = feam_core::cache::PhaseCaches::new(0);
    let cold = collect(Some(&caches));
    let warm = collect(Some(&caches));
    assert!(!uncached.is_empty(), "the bundle actually has libraries");
    assert_eq!(uncached, cold, "cold cache changed an observable field");
    assert_eq!(uncached, warm, "warm cache changed an observable field");
}

#[test]
fn table3_sweep_is_byte_identical_with_and_without_caches() {
    let seed = 1234;
    let uncached = run_trimmed(seed, false);
    let cached = run_trimmed(seed, true);

    assert!(!uncached.records.is_empty());
    assert_eq!(
        uncached.records.len(),
        cached.records.len(),
        "same sweep, same record count"
    );
    for (u, c) in uncached.records.iter().zip(cached.records.iter()) {
        assert_eq!(
            fingerprint(u),
            fingerprint(c),
            "{}: {} -> {}: caching changed an observable field",
            u.binary,
            u.from_site,
            u.to_site
        );
    }

    // The aggregate Table III numbers follow from the records, but pin
    // them too — they are the paper-facing artifact.
    let tu = table3(&uncached);
    let tc = table3(&cached);
    assert_eq!(
        serde_json::to_string(&tu).unwrap(),
        serde_json::to_string(&tc).unwrap(),
        "Table III must not move under caching"
    );

    // Exclusions (no matching MPI) are cache-independent too.
    assert_eq!(
        serde_json::to_string(&uncached.excluded).unwrap(),
        serde_json::to_string(&cached.excluded).unwrap()
    );
}
