//! Cross-crate integration: the full FEAM pipeline from ELF synthesis to
//! prediction to ground-truth execution, spanning feam-elf, feam-sim,
//! feam-workloads and feam-core.

use feam::core::phases::{run_source_phase, run_target_phase, PhaseConfig};
use feam::core::predict::{Determinant, PredictionMode};
use feam::sim::compile::{compile, ProgramSpec};
use feam::sim::exec::{run_mpi, DEFAULT_ATTEMPTS};
use feam::sim::site::Session;
use feam::sim::toolchain::Language;
use feam::workloads::sites::{standard_sites, BLACKLIGHT, FIR, FORGE, INDIA, RANGER};

fn cfg() -> PhaseConfig {
    PhaseConfig::default()
}

#[test]
fn intra_era_migration_is_ready_and_runs() {
    // India and Fir share glibc 2.5 and GNU 4.1.2: a gnu Open MPI binary
    // moves cleanly between them.
    let sites = standard_sites(101);
    let india = &sites[INDIA];
    let fir = &sites[FIR];
    let stack = india
        .stacks
        .iter()
        .find(|s| s.stack.ident() == "openmpi-1.4.3-gnu-4.1.2")
        .unwrap()
        .clone();
    let bin = compile(
        india,
        Some(&stack),
        &ProgramSpec::new("cg", Language::Fortran),
        5,
    )
    .unwrap();
    let bundle = run_source_phase(india, &bin.image, &cfg()).unwrap();
    let outcome = run_target_phase(fir, Some(&bin.image), Some(&bundle), &cfg());
    assert!(
        outcome.prediction.ready(),
        "India→Fir gnu binary must be ready: {:?}",
        outcome.prediction.first_failure()
    );
    // Ground truth agrees.
    let plan = &outcome.evaluation.plan;
    let launcher = fir.stacks[plan.stack_index.unwrap()].clone();
    let mut sess = plan.apply(fir);
    sess.stage_file("/r/bin", bin.image.clone());
    assert!(run_mpi(&mut sess, "/r/bin", &launcher, 4, DEFAULT_ATTEMPTS).success);
}

#[test]
fn hot_glibc_binary_rejected_at_old_site_by_clibrary_determinant() {
    let sites = standard_sites(101);
    let forge = &sites[FORGE];
    let ranger = &sites[RANGER];
    let stack = forge.stacks[0].clone();
    let mut prog = ProgramSpec::new("hot-app", Language::C);
    prog.glibc_appetite = 1.0;
    let bin = compile(forge, Some(&stack), &prog, 5).unwrap();
    let outcome = run_target_phase(ranger, Some(&bin.image), None, &cfg());
    assert!(!outcome.prediction.ready());
    assert_eq!(
        outcome.prediction.first_failure().unwrap().determinant,
        Determinant::CLibrary
    );
    // The report names both versions.
    let detail = &outcome.prediction.first_failure().unwrap().detail;
    assert!(detail.contains("GLIBC_2.12"), "detail: {detail}");
    assert!(detail.contains("GLIBC_2.3.4"), "detail: {detail}");
}

#[test]
fn mpich2_binary_not_ready_where_mpich2_absent() {
    // Blacklight only has Open MPI; an MPICH2 binary is rejected at the
    // MPI-stack determinant (Table I identification at work).
    let sites = standard_sites(101);
    let fir = &sites[FIR];
    let blacklight = &sites[BLACKLIGHT];
    let stack = fir
        .stacks
        .iter()
        .find(|s| s.stack.ident().starts_with("mpich2") && s.stack.ident().contains("gnu"))
        .unwrap()
        .clone();
    let bin = compile(fir, Some(&stack), &ProgramSpec::new("is", Language::C), 5).unwrap();
    let outcome = run_target_phase(blacklight, Some(&bin.image), None, &cfg());
    assert!(!outcome.prediction.ready());
    let fail = outcome.prediction.first_failure().unwrap();
    assert_eq!(fail.determinant, Determinant::MpiStack);
    assert!(fail.detail.contains("MPICH2"), "detail: {}", fail.detail);
}

#[test]
fn resolution_turns_missing_library_failure_into_success() {
    // PGI binary from Fir at India (no PGI): fails naively, runs after
    // FEAM stages the PGI runtime copies.
    let sites = standard_sites(101);
    let fir = &sites[FIR];
    let india = &sites[INDIA];
    let stack = fir
        .stacks
        .iter()
        .find(|s| s.stack.ident() == "openmpi-1.4-pgi-10.9")
        .unwrap()
        .clone();
    let bin = compile(
        fir,
        Some(&stack),
        &ProgramSpec::new("lu", Language::Fortran),
        5,
    )
    .unwrap();

    // Naive run fails with a missing PGI library.
    let launcher = india
        .stacks
        .iter()
        .find(|s| s.stack.mpi == feam::sim::mpi::MpiImpl::OpenMpi && s.functional)
        .unwrap()
        .clone();
    let mut naive = Session::new(india);
    naive.load_stack(&launcher);
    naive.stage_file("/r/lu", bin.image.clone());
    let before = run_mpi(&mut naive, "/r/lu", &launcher, 4, DEFAULT_ATTEMPTS);
    assert!(!before.success);
    assert_eq!(before.failure.unwrap().class(), "missing-library");

    // Extended FEAM predicts ready and the plan actually works.
    let bundle = run_source_phase(fir, &bin.image, &cfg()).unwrap();
    assert!(bundle.libraries.keys().any(|k| k.starts_with("libpgf90")));
    let outcome = run_target_phase(india, Some(&bin.image), Some(&bundle), &cfg());
    assert!(
        outcome.prediction.ready(),
        "resolution must make this ready: {:?}",
        outcome.prediction.first_failure()
    );
    let res = outcome.evaluation.resolution.as_ref().unwrap();
    assert!(res.complete());
    assert!(res.staged_count() >= 3, "several PGI libs staged");
    let plan = &outcome.evaluation.plan;
    let launcher = india.stacks[plan.stack_index.unwrap()].clone();
    let mut after = plan.apply(india);
    after.stage_file("/r/lu", bin.image.clone());
    assert!(run_mpi(&mut after, "/r/lu", &launcher, 4, DEFAULT_ATTEMPTS).success);
}

#[test]
fn transported_hello_world_detects_fpe_that_basic_misses() {
    // Blacklight gcc-4.4.3 binaries raise FPE at Fir. Basic prediction
    // (native hello world, compiled with Fir's own compilers) misses it;
    // extended prediction (transported hello world, compiled with the
    // app's runtime) catches it.
    let sites = standard_sites(101);
    let blacklight = &sites[BLACKLIGHT];
    let fir = &sites[FIR];
    let stack = blacklight
        .stacks
        .iter()
        .find(|s| s.stack.ident().contains("gnu"))
        .unwrap()
        .clone();
    let mut prog = ProgramSpec::new("mg", Language::Fortran);
    prog.glibc_appetite = 0.0; // keep the C-library determinant out of the way
    let bin = compile(blacklight, Some(&stack), &prog, 5).unwrap();

    let basic = run_target_phase(fir, Some(&bin.image), None, &cfg());
    assert_eq!(basic.prediction.mode, PredictionMode::Basic);
    assert!(
        basic.prediction.ready(),
        "basic misses the FPE: {:?}",
        basic.prediction.first_failure()
    );
    // Ground truth: it actually fails with SIGFPE.
    let plan = &basic.evaluation.plan;
    let launcher = fir.stacks[plan.stack_index.unwrap()].clone();
    let mut sess = plan.apply(fir);
    sess.stage_file("/r/mg", bin.image.clone());
    let truth = run_mpi(&mut sess, "/r/mg", &launcher, 4, DEFAULT_ATTEMPTS);
    assert!(!truth.success);
    assert_eq!(truth.failure.unwrap().class(), "floating-point-exception");

    let bundle = run_source_phase(blacklight, &bin.image, &cfg()).unwrap();
    let extended = run_target_phase(fir, Some(&bin.image), Some(&bundle), &cfg());
    assert!(
        !extended.prediction.ready(),
        "extended catches the FPE via transported hello world"
    );
    assert_eq!(
        extended.prediction.first_failure().unwrap().determinant,
        Determinant::MpiStack
    );
}

#[test]
fn misconfigured_stack_detected_by_native_hello_world() {
    // India's mvapich2-gnu stack is advertised but unusable; FEAM's
    // hello-world functional test routes around it (and when no other
    // MVAPICH2+gnu candidate works, falls back to the intel one).
    let sites = standard_sites(101);
    let india = &sites[INDIA];
    let broken = india.stacks.iter().find(|s| !s.functional).unwrap();
    assert_eq!(broken.stack.mpi, feam::sim::mpi::MpiImpl::Mvapich2);
    let fir = &sites[FIR];
    let stack = fir
        .stacks
        .iter()
        .find(|s| s.stack.ident().starts_with("mvapich2") && s.stack.ident().contains("gnu"))
        .unwrap()
        .clone();
    let bin = compile(
        fir,
        Some(&stack),
        &ProgramSpec::new("ep", Language::Fortran),
        5,
    )
    .unwrap();
    let outcome = run_target_phase(india, Some(&bin.image), None, &cfg());
    // The broken stack appears in the test log as non-functioning.
    let broken_test = outcome
        .evaluation
        .stack_tests
        .iter()
        .find(|t| t.stack_ident == broken.stack.ident());
    if let Some(t) = broken_test {
        assert!(
            !t.native_ok,
            "misconfigured stack must fail its hello-world test"
        );
    }
    // Whatever stack FEAM ends up choosing, it is not the broken one.
    if let Some(chosen) = &outcome.evaluation.plan.stack_ident {
        assert_ne!(chosen, &broken.stack.ident());
    }
}

#[test]
fn phase_outputs_are_deterministic() {
    let sites_a = standard_sites(77);
    let sites_b = standard_sites(77);
    let stack_a = sites_a[RANGER].stacks[0].clone();
    let stack_b = sites_b[RANGER].stacks[0].clone();
    let bin_a = compile(
        &sites_a[RANGER],
        Some(&stack_a),
        &ProgramSpec::new("bt", Language::Fortran),
        3,
    )
    .unwrap();
    let bin_b = compile(
        &sites_b[RANGER],
        Some(&stack_b),
        &ProgramSpec::new("bt", Language::Fortran),
        3,
    )
    .unwrap();
    assert_eq!(bin_a.image, bin_b.image);
    let o_a = run_target_phase(&sites_a[INDIA], Some(&bin_a.image), None, &cfg());
    let o_b = run_target_phase(&sites_b[INDIA], Some(&bin_b.image), None, &cfg());
    assert_eq!(o_a.prediction.ready(), o_b.prediction.ready());
    assert_eq!(
        o_a.evaluation.plan.stack_ident,
        o_b.evaluation.plan.stack_ident
    );
}
