//! Golden schema tests for the machine-readable JSON surfaces.
//!
//! Each surface is reduced to a *schema signature*: the sorted set of
//! `path: type` lines obtained by walking the JSON value (array elements
//! are unioned under `path[]`). Values are deliberately ignored — these
//! tests pin the shape consumers script against, not the content. When a
//! surface legitimately grows a field, re-bless with:
//!
//! ```text
//! FEAM_BLESS=1 cargo test --test json_schema_golden
//! ```

use serde_json::Value;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::Command;

fn walk(path: &str, v: &Value, out: &mut BTreeSet<String>) {
    match v {
        Value::Null => {
            out.insert(format!("{path}: null"));
        }
        Value::Bool(_) => {
            out.insert(format!("{path}: bool"));
        }
        Value::Number(_) => {
            out.insert(format!("{path}: number"));
        }
        Value::String(_) => {
            out.insert(format!("{path}: string"));
        }
        Value::Array(items) => {
            out.insert(format!("{path}: array"));
            for item in items {
                walk(&format!("{path}[]"), item, out);
            }
        }
        Value::Object(map) => {
            out.insert(format!("{path}: object"));
            for (k, item) in map.iter() {
                walk(&format!("{path}.{k}"), item, out);
            }
        }
    }
}

fn signature(v: &Value) -> String {
    let mut out = BTreeSet::new();
    walk("$", v, &mut out);
    let mut s: String = out.into_iter().collect::<Vec<_>>().join("\n");
    s.push('\n');
    s
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.schema"))
}

fn assert_matches_golden(name: &str, v: &Value) {
    let sig = signature(v);
    let path = golden_path(name);
    if std::env::var_os("FEAM_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &sig).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden schema {} ({e}); run with FEAM_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        sig,
        golden,
        "JSON schema for {name} drifted from {}; if the change is intentional, \
         re-bless with FEAM_BLESS=1",
        path.display()
    );
}

/// A small deterministic MPI binary staged to a temp file for the CLI.
fn probe_elf() -> PathBuf {
    use feam::sim::compile::{compile, ProgramSpec};
    use feam::sim::toolchain::Language;
    use feam::workloads::sites::{standard_sites, RANGER};

    let sites = standard_sites(42);
    let site = &sites[RANGER];
    let stack = site.stacks[1].clone();
    let bin = compile(
        site,
        Some(&stack),
        &ProgramSpec::new("bt", Language::Fortran),
        42,
    )
    .expect("probe compiles");
    let path = std::env::temp_dir().join(format!("feam-golden-{}.elf", std::process::id()));
    std::fs::write(&path, bin.image.as_slice()).unwrap();
    path
}

fn cli_json(args: &[&str]) -> Value {
    let out = Command::new(env!("CARGO_BIN_EXE_feam"))
        .args(args)
        .output()
        .expect("feam runs");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    serde_json::from_str(&stdout).unwrap_or_else(|e| {
        panic!(
            "feam {args:?} did not print JSON ({e}); stdout: {stdout}\nstderr: {}",
            String::from_utf8_lossy(&out.stderr)
        )
    })
}

#[test]
fn report_json_schema_is_stable() {
    use feam::core::phases::{run_source_phase, run_target_phase, PhaseConfig};
    use feam::core::report::report_json;
    use feam::sim::compile::{compile, ProgramSpec};
    use feam::sim::toolchain::Language;
    use feam::workloads::sites::{standard_sites, INDIA, RANGER};

    let cfg = PhaseConfig::default();
    let sites = standard_sites(42);
    let stack = sites[RANGER].stacks[1].clone();
    let bin = compile(
        &sites[RANGER],
        Some(&stack),
        &ProgramSpec::new("bt", Language::Fortran),
        42,
    )
    .expect("probe compiles");
    let bundle = run_source_phase(&sites[RANGER], &bin.image, &cfg).expect("source phase");
    let outcome = run_target_phase(&sites[INDIA], Some(&bin.image), Some(&bundle), &cfg);
    assert_matches_golden("report_json", &report_json(&outcome));
}

#[test]
fn feam_describe_json_schema_is_stable() {
    let elf = probe_elf();
    assert_matches_golden(
        "feam_describe",
        &cli_json(&["describe", "--json", elf.to_str().unwrap()]),
    );
}

/// The stripped twin of [`probe_elf`]: `.comment` gone, so `feam identify`
/// exercises the fallback provenance tier and its JSON surface carries
/// populated claims.
fn stripped_probe_elf() -> PathBuf {
    use feam::sim::compile::{compile_variant, BinaryVariant, ProgramSpec};
    use feam::sim::toolchain::Language;
    use feam::workloads::sites::{standard_sites, RANGER};

    let sites = standard_sites(42);
    let site = &sites[RANGER];
    let stack = site.stacks[1].clone();
    let bin = compile_variant(
        site,
        Some(&stack),
        &ProgramSpec::new("bt", Language::Fortran),
        42,
        BinaryVariant::Stripped,
    )
    .expect("stripped probe compiles");
    let path =
        std::env::temp_dir().join(format!("feam-golden-stripped-{}.elf", std::process::id()));
    std::fs::write(&path, bin.image.as_slice()).unwrap();
    path
}

#[test]
fn feam_identify_json_schema_is_stable() {
    let elf = stripped_probe_elf();
    let v = cli_json(&["identify", "--json", elf.to_str().unwrap()]);
    // The fallback tier must be populated on a stripped binary — an empty
    // provenance object would silently pin the wrong schema.
    assert!(
        v["provenance"]["compiler"]["family"].as_str().is_some(),
        "{v}"
    );
    assert_matches_golden("feam_identify", &v);
}

#[test]
fn feam_check_json_schema_is_stable() {
    let elf = probe_elf();
    assert_matches_golden(
        "feam_check",
        &cli_json(&["check", "--json", elf.to_str().unwrap()]),
    );
}

#[test]
fn feam_plan_json_schema_is_stable() {
    let elf = probe_elf();
    assert_matches_golden(
        "feam_plan",
        &cli_json(&["plan", "--json", elf.to_str().unwrap()]),
    );
}
