//! Acceptance check for the observability layer: a traced end-to-end
//! migration (the `feam demo --trace` pipeline) must produce a parseable
//! JSONL trace containing a span for every pipeline component and at
//! least one launch-attempt event, and the telemetry snapshot merged into
//! the JSON report must agree with the span tree.

use feam::core::phases::{run_source_phase, run_target_phase, PhaseConfig};
use feam::core::report::report_json;
use feam::obs::{trace, EventKind, Recorder};
use feam::sim::compile::{compile, ProgramSpec};
use feam::sim::toolchain::Language;
use feam::workloads::sites::{standard_sites, INDIA, RANGER};

#[test]
fn traced_demo_pipeline_writes_complete_jsonl_trace() {
    let path = std::env::temp_dir().join(format!("feam-trace-{}.jsonl", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path");

    let recorder = Recorder::jsonl_file(path_str).expect("trace file opens");
    let cfg = PhaseConfig {
        recorder: recorder.clone(),
        ..PhaseConfig::default()
    };

    // The demo scenario: NPB bt built at Ranger, migrated to India.
    let sites = standard_sites(42);
    let stack = sites[RANGER].stacks[1].clone();
    let bin = compile(
        &sites[RANGER],
        Some(&stack),
        &ProgramSpec::new("bt", Language::Fortran),
        42,
    )
    .expect("demo binary compiles");
    let bundle = run_source_phase(&sites[RANGER], &bin.image, &cfg).expect("source phase succeeds");
    let outcome = run_target_phase(&sites[INDIA], Some(&bin.image), Some(&bundle), &cfg);
    recorder.flush();

    let text = std::fs::read_to_string(&path).expect("trace file readable");
    let _ = std::fs::remove_file(&path);

    // Every line is valid JSON with the documented schema.
    let mut lines = 0;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        lines += 1;
        let v: serde_json::Value = serde_json::from_str(line).expect("line parses as JSON");
        assert!(v["ts_us"].as_u64().is_some(), "ts_us present: {line}");
        assert!(v["kind"].as_str().is_some(), "kind present: {line}");
        assert!(v["name"].as_str().is_some(), "name present: {line}");
    }
    assert!(lines > 0, "trace is non-empty");
    let events = trace::parse_trace(&text);
    assert_eq!(
        events.len(),
        lines,
        "parse_trace keeps every well-formed line"
    );

    // Spans for every pipeline component.
    let span_names: Vec<&str> = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanStart)
        .map(|e| e.name.as_str())
        .collect();
    for required in ["source_phase", "target_phase", "bdc", "edc", "tec"] {
        assert!(
            span_names.contains(&required),
            "trace has a {required} span"
        );
    }
    // At least one launch attempt was traced (TEC hello-world runs).
    assert!(
        events
            .iter()
            .any(|e| e.kind == EventKind::Instant && e.name == "launch_attempt"),
        "trace has a launch_attempt event"
    );

    // The report's telemetry mirrors the span tree: for each span name,
    // count and total duration in the snapshot equal what the trace says.
    let j = report_json(&outcome);
    let spans_json = &j["telemetry"]["spans"];
    for name in ["source_phase", "target_phase", "bdc", "edc", "tec"] {
        let count = span_names.iter().filter(|n| **n == name).count() as u64;
        assert_eq!(
            spans_json[name]["count"].as_u64(),
            Some(count),
            "telemetry count for {name} matches the trace"
        );
        let total: u64 = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanEnd && e.name == name)
            .map(|e| e.dur_us.unwrap_or(0))
            .sum();
        assert_eq!(
            spans_json[name]["total_us"].as_u64(),
            Some(total),
            "telemetry duration for {name} matches the trace"
        );
    }

    // The human-readable breakdown renders every component.
    let breakdown = trace::render_breakdown(&events);
    for name in ["source_phase", "target_phase", "tec"] {
        assert!(breakdown.contains(name), "breakdown lists {name}");
    }
}
