//! Validate the from-scratch ELF writer against the host's real GNU
//! binutils, when available — the strongest possible check that the
//! synthetic binaries FEAM analyses are what a field deployment would see.
//!
//! Every test skips silently when the required tool is absent.

use feam::elf::{Class, ElfSpec, ImportSpec, Machine};
use std::process::Command;

fn tool_available(name: &str) -> bool {
    Command::new(name)
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

fn write_sample() -> Option<std::path::PathBuf> {
    let mut spec = ElfSpec::executable(Machine::X86_64, Class::Elf64);
    spec.needed = vec![
        "libmpi.so.0".into(),
        "libnsl.so.1".into(),
        "libutil.so.1".into(),
        "libgfortran.so.1".into(),
        "libc.so.6".into(),
    ];
    spec.imports = vec![
        ImportSpec::versioned("memcpy", "libc.so.6", "GLIBC_2.2.5"),
        ImportSpec::versioned("fopen64", "libc.so.6", "GLIBC_2.3.4"),
        ImportSpec::plain("MPI_Init", "libmpi.so.0"),
    ];
    spec.comments = vec!["GCC: (GNU) 4.1.2 20080704 (Red Hat 4.1.2-50)".into()];
    let bytes = spec.build().ok()?;
    let dir = std::env::temp_dir().join("feam-binutils-check");
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join("sample_mpi_app");
    std::fs::write(&path, bytes).ok()?;
    Some(path)
}

#[test]
fn readelf_parses_dynamic_section() {
    if !tool_available("readelf") {
        eprintln!("readelf not available; skipping");
        return;
    }
    let path = write_sample().expect("sample written");
    let out = Command::new("readelf")
        .arg("-d")
        .arg(&path)
        .output()
        .expect("readelf runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for lib in [
        "libmpi.so.0",
        "libnsl.so.1",
        "libutil.so.1",
        "libgfortran.so.1",
        "libc.so.6",
    ] {
        assert!(text.contains(lib), "readelf -d must list {lib}:\n{text}");
    }
}

#[test]
fn readelf_parses_version_references() {
    if !tool_available("readelf") {
        eprintln!("readelf not available; skipping");
        return;
    }
    let path = write_sample().expect("sample written");
    let out = Command::new("readelf")
        .arg("-V")
        .arg(&path)
        .output()
        .expect("readelf runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("GLIBC_2.2.5"), "{text}");
    assert!(text.contains("GLIBC_2.3.4"), "{text}");
    assert!(text.contains("libc.so.6"), "{text}");
}

#[test]
fn readelf_reads_comment_section() {
    if !tool_available("readelf") {
        eprintln!("readelf not available; skipping");
        return;
    }
    let path = write_sample().expect("sample written");
    let out = Command::new("readelf")
        .args(["-p", ".comment"])
        .arg(&path)
        .output()
        .expect("readelf runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("GCC: (GNU) 4.1.2"), "{text}");
}

#[test]
fn objdump_identifies_format_and_arch() {
    if !tool_available("objdump") {
        eprintln!("objdump not available; skipping");
        return;
    }
    let path = write_sample().expect("sample written");
    let out = Command::new("objdump")
        .arg("-p")
        .arg(&path)
        .output()
        .expect("objdump runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("elf64-x86-64"), "{text}");
    // The NEEDED list objdump prints is exactly what FEAM's BDC parses.
    assert!(
        text.contains("NEEDED") && text.contains("libmpi.so.0"),
        "{text}"
    );
}

#[test]
fn our_reader_parses_a_real_host_binary() {
    // The inverse check: feam-elf's reader digests a genuine ELF produced
    // by a real toolchain.
    for candidate in ["/bin/ls", "/usr/bin/env", "/bin/cat"] {
        let Ok(bytes) = std::fs::read(candidate) else {
            continue;
        };
        if bytes.len() < 4 || &bytes[..4] != b"\x7fELF" {
            continue;
        }
        let f = match feam::elf::ElfFile::parse(&bytes) {
            Ok(f) => f,
            Err(e) => panic!("feam-elf must parse {candidate}: {e}"),
        };
        assert!(f.is_dynamic(), "{candidate} should be dynamically linked");
        assert!(
            f.needed().iter().any(|n| n.starts_with("libc.so")),
            "{candidate} links libc: {:?}",
            f.needed()
        );
        // A real glibc-linked binary carries GLIBC version references.
        assert!(f.required_glibc().is_some(), "{candidate} has GLIBC refs");
        return; // one successful parse is enough
    }
    eprintln!("no suitable host binary found; skipping");
}
