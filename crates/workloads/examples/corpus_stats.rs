//! Dev helper: print corpus composition for calibration.
use feam_workloads::{standard_sites, Suite, TestSetBuilder};
fn main() {
    let sites = standard_sites(42);
    let set = TestSetBuilder::new(42).build(&sites);
    println!(
        "NAS: {}  SPEC: {}  compile_failures: {}  home_failures: {}",
        set.count(Suite::Npb),
        set.count(Suite::SpecMpi2007),
        set.compile_failures,
        set.home_run_failures
    );
    let mut per_site = [0usize; 5];
    for b in set.binaries() {
        per_site[b.compiled_at] += 1;
    }
    println!("per-site: {:?}", per_site);
}
