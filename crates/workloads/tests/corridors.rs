//! Migration-corridor tests: the compatibility structure of the five-site
//! testbed that the evaluation's aggregate numbers emerge from. Each test
//! pins one corridor's mechanics so calibration changes that would break
//! the paper's failure taxonomy fail loudly here.

use feam_sim::compile::{compile, ProgramSpec};
use feam_sim::exec::{run_mpi, DEFAULT_ATTEMPTS};
use feam_sim::site::{Session, Site};
use feam_sim::toolchain::Language;
use feam_workloads::sites::{standard_sites, BLACKLIGHT, FIR, FORGE, INDIA, RANGER};

fn run_at(
    target: &Site,
    image: &std::sync::Arc<Vec<u8>>,
    stack_pred: impl Fn(&feam_sim::site::InstalledStack) -> bool,
) -> feam_sim::exec::ExecOutcome {
    let launcher = target
        .stacks
        .iter()
        .find(|s| s.functional && stack_pred(s))
        .expect("launcher stack exists")
        .clone();
    let mut sess = Session::new(target);
    sess.load_stack(&launcher);
    sess.stage_file("/c/bin", image.clone());
    run_mpi(&mut sess, "/c/bin", &launcher, 4, DEFAULT_ATTEMPTS)
}

fn build(
    sites: &[Site],
    site_idx: usize,
    stack_ident: &str,
    prog: &str,
    lang: Language,
) -> std::sync::Arc<Vec<u8>> {
    let site = &sites[site_idx];
    let ist = site
        .stacks
        .iter()
        .find(|s| s.stack.ident() == stack_ident)
        .unwrap_or_else(|| panic!("{} has no {stack_ident}", site.name()))
        .clone();
    let mut p = ProgramSpec::new(prog, lang);
    p.glibc_appetite = 0.0; // corridor tests isolate one mechanism at a time
    compile(site, Some(&ist), &p, 1234).expect("compiles").image
}

#[test]
fn ranger_gnu_binaries_run_everywhere_via_compat_packages() {
    // Ranger's gcc-3.4 binaries (libg2c era) run at every other site
    // because each carries compat-gcc runtime packages.
    let sites = standard_sites(55);
    let img = build(
        &sites,
        RANGER,
        "openmpi-1.3-gnu-3.4.6",
        "ep",
        Language::Fortran,
    );
    for target in [FORGE, BLACKLIGHT, INDIA, FIR] {
        let out = run_at(&sites[target], &img, |s| {
            s.stack.mpi == feam_sim::mpi::MpiImpl::OpenMpi
                && s.stack.compiler.family == feam_sim::toolchain::CompilerFamily::Gnu
        });
        assert!(
            out.success,
            "Ranger gnu → {} must run: {:?}",
            sites[target].name(),
            out.failure
        );
    }
}

#[test]
fn forge_gnu_fortran_missing_at_rhel5_sites() {
    // Forge's gcc-4.4 Fortran binaries need libgfortran.so.3 — present at
    // India/Fir only via the gcc44 compat package, which IS installed
    // there, so they run; but at Ranger (CentOS 4.9) nothing provides it.
    let sites = standard_sites(55);
    let img = build(
        &sites,
        FORGE,
        "openmpi-1.4-gnu-4.4.5",
        "cg",
        Language::Fortran,
    );
    let at_ranger = run_at(&sites[RANGER], &img, |s| {
        s.stack.mpi == feam_sim::mpi::MpiImpl::OpenMpi
            && s.stack.compiler.family == feam_sim::toolchain::CompilerFamily::Gnu
    });
    assert!(!at_ranger.success);
    assert_eq!(at_ranger.failure.unwrap().class(), "missing-library");
}

#[test]
fn intel12_binaries_blocked_at_intel11_sites_by_libirng() {
    // Fir's Intel 12 binaries need libirng.so, which Intel ≤ 11 sites lack
    // (India carries an Intel 10 redistributable, not 12's libirng —
    // INDIA actually has intel("12.0") compat... pick Blacklight).
    let sites = standard_sites(55);
    let img = build(&sites, FIR, "openmpi-1.4-intel-12.0", "is", Language::C);
    let at_blacklight = run_at(&sites[BLACKLIGHT], &img, |s| {
        s.stack.compiler.family == feam_sim::toolchain::CompilerFamily::Intel
    });
    // Blacklight's compat includes intel 12 → actually runs there. Ranger
    // has Intel 10.1 only and no Intel-12 compat:
    let at_ranger = run_at(&sites[RANGER], &img, |s| {
        s.stack.compiler.family == feam_sim::toolchain::CompilerFamily::Intel
    });
    assert!(!at_ranger.success, "Fir intel-12 → Ranger must fail");
    let class = at_ranger.failure.unwrap().class().to_string();
    assert!(
        class == "missing-library" || class == "abi-incompatibility",
        "failure class: {class}"
    );
    // Whatever Blacklight does is fine; just make sure the call is exercised.
    let _ = at_blacklight;
}

#[test]
fn mvapich2_version_gap_breaks_at_ranger() {
    // MVAPICH2 1.7-built binaries import the 1.7 ABI marker; Ranger's 1.2
    // libraries don't export it.
    let sites = standard_sites(55);
    let img = build(
        &sites,
        FIR,
        "mvapich2-1.7a-gnu-4.1.2",
        "mg",
        Language::Fortran,
    );
    let out = run_at(&sites[RANGER], &img, |s| {
        s.stack.mpi == feam_sim::mpi::MpiImpl::Mvapich2
            && s.stack.compiler.family == feam_sim::toolchain::CompilerFamily::Gnu
    });
    assert!(!out.success);
    // gfortran.so.1 is absent at Ranger too, so either mechanism may fire
    // first; both are in the paper's taxonomy.
    let class = out.failure.unwrap().class().to_string();
    assert!(
        class == "abi-incompatibility" || class == "missing-library",
        "class: {class}"
    );
}

#[test]
fn openmpi_version_gap_is_tolerated() {
    // Open MPI's major-grained ABI: a 1.4 binary (India, gnu) runs against
    // Ranger's 1.3 — once its runtime libraries resolve. Using a C binary
    // avoids the Fortran-runtime gap, isolating the MPI corridor.
    let sites = standard_sites(55);
    let img = build(&sites, INDIA, "openmpi-1.4.3-gnu-4.1.2", "is", Language::C);
    let out = run_at(&sites[RANGER], &img, |s| {
        s.stack.mpi == feam_sim::mpi::MpiImpl::OpenMpi
            && s.stack.compiler.family == feam_sim::toolchain::CompilerFamily::Gnu
    });
    assert!(
        out.success,
        "Open MPI 1.4 binary on a 1.3 site must run (major-compatible): {:?}",
        out.failure
    );
}

#[test]
fn india_fir_mpich2_gap_is_one_directional() {
    // MPICH2 1.4 (India) binaries break on Fir's 1.3; 1.3 (Fir) binaries
    // run on India's 1.4 — backward compatibility is one-way.
    let sites = standard_sites(55);
    let newer = build(&sites, INDIA, "mpich2-1.4-gnu-4.1.2", "is", Language::C);
    let older = build(&sites, FIR, "mpich2-1.3-gnu-4.1.2", "is", Language::C);
    let new_on_old = run_at(&sites[FIR], &newer, |s| {
        s.stack.mpi == feam_sim::mpi::MpiImpl::Mpich2
            && s.stack.compiler.family == feam_sim::toolchain::CompilerFamily::Gnu
    });
    assert!(!new_on_old.success);
    assert_eq!(new_on_old.failure.unwrap().class(), "abi-incompatibility");
    let old_on_new = run_at(&sites[INDIA], &older, |s| {
        s.stack.mpi == feam_sim::mpi::MpiImpl::Mpich2
            && s.stack.compiler.family == feam_sim::toolchain::CompilerFamily::Gnu
    });
    assert!(old_on_new.success, "{:?}", old_on_new.failure);
}

#[test]
fn pgi_binaries_fail_everywhere_without_pgi() {
    let sites = standard_sites(55);
    let img = build(&sites, FIR, "openmpi-1.4-pgi-10.9", "lu", Language::Fortran);
    for target in [FORGE, BLACKLIGHT, INDIA] {
        let out = run_at(&sites[target], &img, |s| {
            s.stack.mpi == feam_sim::mpi::MpiImpl::OpenMpi
        });
        assert!(
            !out.success,
            "pgi binary must fail at {}",
            sites[target].name()
        );
        assert_eq!(out.failure.unwrap().class(), "missing-library");
    }
}
