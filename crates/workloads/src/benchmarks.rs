//! Benchmark models: NAS Parallel Benchmarks 2.4 and SPEC MPI2007.
//!
//! §VI.A: "From the NPB suite, our test set consisted of four kernels
//! (integer sort, embarrassingly parallel, conjugate gradient, and
//! multi-grid …) as well as three pseudo applications (block tridiagonal
//! solver, scalar penta-diagonal solver, and lower-upper Gauss-Seidel
//! solver). From the SPEC MPI2007 benchmark suite, our test set consisted
//! of a quantum chromodynamics code (104.milc), two computational fluid
//! dynamics codes (107.leslie3d and 115.fds4), a parallel ray tracing code
//! (122.tachyon), a molecular dynamics simulation code (126.lammps), a
//! weather prediction code (127.GAPgeofem), and a 3D Eulerian
//! hydrodynamics code (129.tera_tf)."

use feam_sim::compile::ProgramSpec;
use feam_sim::mpi::MpiStack;
use feam_sim::rng;
use feam_sim::toolchain::{CompilerFamily, Language};
use serde::{Deserialize, Serialize};

/// Which suite a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// NAS Parallel Benchmarks v2.4 (MPI reference implementation).
    Npb,
    /// SPEC MPI2007.
    SpecMpi2007,
}

impl Suite {
    /// Column label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Suite::Npb => "NAS",
            Suite::SpecMpi2007 => "SPEC",
        }
    }
}

/// One benchmark's model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Benchmark {
    /// Name as the paper writes it (`bt`, `104.milc`, …).
    pub name: String,
    /// Descriptive title.
    pub title: String,
    pub suite: Suite,
    pub language: Language,
    /// Nominal code size in bytes (drives binary sizes).
    pub text_size: usize,
    /// How eagerly the code uses newer glibc interfaces.
    pub glibc_appetite: f64,
    /// Base probability the source compiles with an arbitrary MPI stack
    /// (before the deterministic per-combination rules below).
    pub compile_base: f64,
}

impl Benchmark {
    /// The [`ProgramSpec`] handed to the simulated toolchain.
    pub fn program_spec(&self) -> ProgramSpec {
        let mut p = ProgramSpec::new(&self.name, self.language);
        p.glibc_appetite = self.glibc_appetite;
        p.text_size = self.text_size;
        p
    }

    /// Would this benchmark compile with `stack`? Deterministic in `seed`.
    /// Combines hard rules (e.g. C++ codes need a GLIBCXX-era toolchain;
    /// 2.4-era NPB Fortran chokes on strict PGI) with a seeded draw at the
    /// benchmark's base rate — the paper's "some benchmarks would not
    /// compile with certain MPI stack combinations".
    pub fn compiles_with(&self, stack: &MpiStack, seed: u64) -> bool {
        // Hard rules first.
        if self.language == Language::Cxx
            && stack.compiler.family == CompilerFamily::Gnu
            && stack.compiler.major() < 4
        {
            return false; // pre-GLIBCXX libstdc++ cannot build these C++ codes
        }
        if self.suite == Suite::Npb
            && self.language.needs_fortran_rt()
            && stack.compiler.family == CompilerFamily::Pgi
            && stack.compiler.major() < 10
        {
            return false; // NPB 2.4 Fortran vs old strict PGI f90
        }
        rng::chance(
            seed,
            &[&self.name, &stack.ident(), "compiles"],
            self.compile_base,
        )
    }
}

/// The seven NPB codes in the paper's test set.
pub fn npb_benchmarks() -> Vec<Benchmark> {
    let b = |name: &str, title: &str, language, text_size, compile_base| Benchmark {
        name: name.into(),
        title: title.into(),
        suite: Suite::Npb,
        language,
        text_size,
        glibc_appetite: 0.035,
        compile_base,
    };
    vec![
        b("is", "integer sort kernel", Language::C, 96 * 1024, 0.80),
        b(
            "ep",
            "embarrassingly parallel kernel",
            Language::Fortran,
            110 * 1024,
            0.72,
        ),
        b(
            "cg",
            "conjugate gradient kernel",
            Language::Fortran,
            150 * 1024,
            0.72,
        ),
        b(
            "mg",
            "multi-grid kernel",
            Language::Fortran,
            210 * 1024,
            0.70,
        ),
        b(
            "bt",
            "block tridiagonal solver",
            Language::Fortran,
            380 * 1024,
            0.66,
        ),
        b(
            "sp",
            "scalar penta-diagonal solver",
            Language::Fortran,
            340 * 1024,
            0.66,
        ),
        b(
            "lu",
            "lower-upper Gauss-Seidel solver",
            Language::Fortran,
            360 * 1024,
            0.68,
        ),
    ]
}

/// The seven SPEC MPI2007 codes in the paper's test set.
pub fn spec_benchmarks() -> Vec<Benchmark> {
    let b = |name: &str, title: &str, language, text_size, appetite, compile_base| Benchmark {
        name: name.into(),
        title: title.into(),
        suite: Suite::SpecMpi2007,
        language,
        text_size,
        glibc_appetite: appetite,
        compile_base,
    };
    vec![
        b(
            "104.milc",
            "quantum chromodynamics",
            Language::C,
            420 * 1024,
            0.12,
            0.92,
        ),
        b(
            "107.leslie3d",
            "computational fluid dynamics",
            Language::Fortran,
            530 * 1024,
            0.10,
            0.88,
        ),
        b(
            "115.fds4",
            "computational fluid dynamics (fire)",
            Language::MixedCFortran,
            1_400 * 1024,
            0.15,
            0.84,
        ),
        b(
            "122.tachyon",
            "parallel ray tracing",
            Language::C,
            310 * 1024,
            0.14,
            0.94,
        ),
        b(
            "126.lammps",
            "molecular dynamics",
            Language::Cxx,
            1_900 * 1024,
            0.06,
            0.86,
        ),
        b(
            "127.GAPgeofem",
            "geofem weather/ground simulation",
            Language::MixedCFortran,
            860 * 1024,
            0.13,
            0.86,
        ),
        b(
            "129.tera_tf",
            "3D Eulerian hydrodynamics",
            Language::Fortran,
            640 * 1024,
            0.11,
            0.90,
        ),
    ]
}

/// All fourteen benchmarks (NPB first).
pub fn all_benchmarks() -> Vec<Benchmark> {
    let mut v = npb_benchmarks();
    v.extend(spec_benchmarks());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use feam_sim::mpi::{MpiImpl, Network};
    use feam_sim::toolchain::Compiler;

    #[test]
    fn seven_plus_seven_benchmarks() {
        assert_eq!(npb_benchmarks().len(), 7);
        assert_eq!(spec_benchmarks().len(), 7);
        assert_eq!(all_benchmarks().len(), 14);
    }

    #[test]
    fn paper_names_present() {
        let names: Vec<String> = all_benchmarks().iter().map(|b| b.name.clone()).collect();
        for n in [
            "is",
            "ep",
            "cg",
            "mg",
            "bt",
            "sp",
            "lu",
            "104.milc",
            "107.leslie3d",
            "115.fds4",
            "122.tachyon",
            "126.lammps",
            "127.GAPgeofem",
            "129.tera_tf",
        ] {
            assert!(names.iter().any(|x| x == n), "missing {n}");
        }
    }

    #[test]
    fn lammps_needs_modern_gcc() {
        let lammps = spec_benchmarks()
            .into_iter()
            .find(|b| b.name == "126.lammps")
            .unwrap();
        let old = MpiStack::new(
            MpiImpl::OpenMpi,
            "1.3",
            Compiler::new(CompilerFamily::Gnu, "3.4.6"),
            Network::Infiniband,
        );
        // Hard rule: never compiles, regardless of seed.
        for seed in 0..20 {
            assert!(!lammps.compiles_with(&old, seed));
        }
        let new = MpiStack::new(
            MpiImpl::OpenMpi,
            "1.4",
            Compiler::new(CompilerFamily::Gnu, "4.4.5"),
            Network::Infiniband,
        );
        assert!((0..20).any(|seed| lammps.compiles_with(&new, seed)));
    }

    #[test]
    fn npb_fortran_rejects_old_pgi() {
        let bt = npb_benchmarks()
            .into_iter()
            .find(|b| b.name == "bt")
            .unwrap();
        let old_pgi = MpiStack::new(
            MpiImpl::Mvapich2,
            "1.2",
            Compiler::new(CompilerFamily::Pgi, "7.2"),
            Network::Infiniband,
        );
        for seed in 0..20 {
            assert!(!bt.compiles_with(&old_pgi, seed));
        }
        // But `is` (C) is allowed to compile with old PGI.
        let is = npb_benchmarks()
            .into_iter()
            .find(|b| b.name == "is")
            .unwrap();
        assert!((0..20).any(|seed| is.compiles_with(&old_pgi, seed)));
    }

    #[test]
    fn compile_viability_deterministic_per_seed() {
        let cg = npb_benchmarks()
            .into_iter()
            .find(|b| b.name == "cg")
            .unwrap();
        let s = MpiStack::new(
            MpiImpl::Mpich2,
            "1.4",
            Compiler::new(CompilerFamily::Intel, "11.1"),
            Network::Ethernet,
        );
        assert_eq!(cg.compiles_with(&s, 5), cg.compiles_with(&s, 5));
    }

    #[test]
    fn program_spec_carries_model_fields() {
        let lu = npb_benchmarks()
            .into_iter()
            .find(|b| b.name == "lu")
            .unwrap();
        let p = lu.program_spec();
        assert_eq!(p.name, "lu");
        assert_eq!(p.language, Language::Fortran);
        assert!((p.glibc_appetite - 0.035).abs() < 1e-9);
    }
}
