//! The five Table II computing sites, materialized as simulator
//! configurations.
//!
//! | Site | OS | glibc | Compilers | MPI stacks |
//! |---|---|---|---|---|
//! | Ranger (TACC, MPP 62,976) | CentOS 4.9 | 2.3.4 | GNU 3.4.6, Intel 10.1, PGI 7.2 | Open MPI 1.3 (i/g/p), MVAPICH2 1.2 (i/g/p) |
//! | Forge (NCSA, hybrid 576) | RHEL 6.1 | 2.12 | GNU 4.4.5, Intel 12.0 | Open MPI 1.4 (g/i), MVAPICH2 1.7rc1 (i) |
//! | Blacklight (PSC, SMP 4,096) | SLES 11 | 2.11.1 | GNU 4.4.3, Intel 11.1 | Open MPI 1.4 (i/g) |
//! | India (FutureGrid IU, 920) | RHEL 5.6 | 2.5 | GNU 4.1.2, Intel 11.1 | Open MPI 1.4.3 (i/g), MVAPICH2 1.7a2 (i/g), MPICH2 1.4 (i/g) |
//! | Fir (UVA ITS, 1,496) | CentOS 5.6 | 2.5 | GNU 4.1.2, Intel 12.0, PGI 10.9 | Open MPI 1.4 (i/g/p), MVAPICH2 1.7a (i/g/p), MPICH2 1.3 (i/g/p) |
//!
//! Calibration knobs (system-error rates, FPE triggers, misconfigured
//! stacks, hot-glibc biases) are set so that the evaluation's aggregate
//! numbers land in the neighbourhood of the paper's Tables III/IV; every
//! knob is an explicit constant here, not hidden in the harness.

use feam_elf::HostArch;
use feam_sim::mpi::{MpiImpl, MpiStack, Network};
use feam_sim::site::{EnvMgmt, OsInfo, Site, SiteConfig};
use feam_sim::toolchain::{Compiler, CompilerFamily};

/// Index of Ranger in [`standard_sites`]' output.
pub const RANGER: usize = 0;
/// Index of Forge.
pub const FORGE: usize = 1;
/// Index of Blacklight.
pub const BLACKLIGHT: usize = 2;
/// Index of India.
pub const INDIA: usize = 3;
/// Index of Fir.
pub const FIR: usize = 4;

/// Table II literals must come from the shared era vocabulary
/// ([`feam_sim::vocab`]) — the provenance signature database enumerates
/// that table, so a version only written here would be invisible to
/// signature matching.
fn vocab_compiler(family: CompilerFamily, v: &str) -> Compiler {
    debug_assert!(
        feam_sim::vocab::is_known(family, v),
        "{family:?} {v} missing from feam_sim::vocab::KNOWN_COMPILERS"
    );
    Compiler::new(family, v)
}
fn gnu(v: &str) -> Compiler {
    vocab_compiler(CompilerFamily::Gnu, v)
}
fn intel(v: &str) -> Compiler {
    vocab_compiler(CompilerFamily::Intel, v)
}
fn pgi(v: &str) -> Compiler {
    vocab_compiler(CompilerFamily::Pgi, v)
}

fn stack(mpi: MpiImpl, v: &str, c: Compiler, net: Network) -> (MpiStack, bool) {
    (MpiStack::new(mpi, v, c, net), true)
}

fn broken(mpi: MpiImpl, v: &str, c: Compiler, net: Network) -> (MpiStack, bool) {
    (MpiStack::new(mpi, v, c, net), false)
}

/// Ranger: XSEDE MPP system at TACC.
pub fn ranger(seed: u64) -> SiteConfig {
    let mut cfg = SiteConfig::new(
        "ranger",
        HostArch::X86_64,
        OsInfo::new("CentOS", "4.9", "2.6.9-103.ELsmp"),
        "2.3.4",
        seed ^ 0x5261_6e67,
    );
    cfg.description = "XSEDE Ranger, Texas Advanced Computing Center (MPP - 62,976)".into();
    cfg.compilers = vec![gnu("3.4.6"), intel("10.1"), pgi("7.2")];
    use MpiImpl::*;
    use Network::*;
    cfg.stacks = vec![
        stack(OpenMpi, "1.3", intel("10.1"), Infiniband),
        stack(OpenMpi, "1.3", gnu("3.4.6"), Infiniband),
        stack(OpenMpi, "1.3", pgi("7.2"), Infiniband),
        stack(Mvapich2, "1.2", intel("10.1"), Infiniband),
        stack(Mvapich2, "1.2", gnu("3.4.6"), Infiniband),
        stack(Mvapich2, "1.2", pgi("7.2"), Infiniband),
    ];
    cfg.env_mgmt = EnvMgmt::Modules;
    cfg.system_error_rate = 0.015;
    // Old glibc: everything built here is maximally portable.
    cfg.hot_glibc_bias = 0.25;
    cfg.ldd_flaky_rate = 0.10;
    cfg
}

/// Forge: XSEDE hybrid CPU/GPU system at NCSA.
pub fn forge(seed: u64) -> SiteConfig {
    let mut cfg = SiteConfig::new(
        "forge",
        HostArch::X86_64,
        OsInfo::new(
            "Red Hat Enterprise Linux Server",
            "6.1",
            "2.6.32-131.0.15.el6",
        ),
        "2.12",
        seed ^ 0x466f_7267,
    );
    cfg.description =
        "XSEDE Forge, National Center for Supercomputing Applications (Hybrid - 576)".into();
    cfg.compilers = vec![gnu("4.4.5"), intel("12.0")];
    use MpiImpl::*;
    use Network::*;
    cfg.stacks = vec![
        stack(OpenMpi, "1.4", gnu("4.4.5"), Infiniband),
        stack(OpenMpi, "1.4", intel("12.0"), Infiniband),
        stack(Mvapich2, "1.7rc1", intel("12.0"), Infiniband),
    ];
    cfg.env_mgmt = EnvMgmt::Modules;
    cfg.system_error_rate = 0.02;
    // Newest glibc on the testbed: runtimes here are built hot, making
    // library copies from Forge poorly portable (a resolution-failure
    // source).
    cfg.hot_glibc_bias = 0.85;
    // RHEL 6 compat packages + lingering older toolchain installs.
    cfg.compat_runtimes = vec![gnu("3.4.6"), gnu("4.1.2"), intel("10.1")];
    cfg
}

/// Blacklight: XSEDE SMP system at PSC.
pub fn blacklight(seed: u64) -> SiteConfig {
    let mut cfg = SiteConfig::new(
        "blacklight",
        HostArch::X86_64,
        OsInfo::new("SUSE Linux Enterprise Server", "11", "2.6.32.12-0.7"),
        "2.11.1",
        seed ^ 0x426c_6163,
    );
    cfg.description = "XSEDE Blacklight, Pittsburgh Supercomputing Center (SMP - 4,096)".into();
    cfg.compilers = vec![gnu("4.4.3"), intel("11.1")];
    use MpiImpl::*;
    use Network::*;
    cfg.stacks = vec![
        stack(OpenMpi, "1.4", intel("11.1"), Ethernet),
        stack(OpenMpi, "1.4", gnu("4.4.3"), Ethernet),
    ];
    cfg.env_mgmt = EnvMgmt::Modules;
    cfg.system_error_rate = 0.02;
    cfg.hot_glibc_bias = 0.7;
    // The SMP's FP environment trips binaries built with Forge's gcc
    // 4.4.5 runtime (vendor-patched FP defaults differ).
    cfg.fpe_triggers = vec![(CompilerFamily::Gnu, "4.4.5".to_string())];
    cfg.compat_runtimes = vec![gnu("3.4.6"), gnu("4.1.2"), intel("10.1"), intel("12.0")];
    // locate has no database on the big SMP.
    cfg.locate_present = false;
    cfg
}

/// India: FutureGrid cluster at Indiana University.
pub fn india(seed: u64) -> SiteConfig {
    let mut cfg = SiteConfig::new(
        "india",
        HostArch::X86_64,
        OsInfo::new("Red Hat Enterprise Linux Server", "5.6", "2.6.18-238.el5"),
        "2.5",
        seed ^ 0x496e_6469,
    );
    cfg.description = "FutureGrid India, Indiana University (Cluster - 920)".into();
    cfg.compilers = vec![gnu("4.1.2"), intel("11.1")];
    use MpiImpl::*;
    use Network::*;
    cfg.stacks = vec![
        stack(OpenMpi, "1.4.3", intel("11.1"), Infiniband),
        stack(OpenMpi, "1.4.3", gnu("4.1.2"), Infiniband),
        stack(Mvapich2, "1.7a2", intel("11.1"), Infiniband),
        // Misconfigured: advertised by softenv, but the libraries were
        // moved aside during an upgrade (§III.B's unusable stack).
        broken(Mvapich2, "1.7a2", gnu("4.1.2"), Infiniband),
        stack(Mpich2, "1.4", intel("11.1"), Ethernet),
        stack(Mpich2, "1.4", gnu("4.1.2"), Ethernet),
    ];
    cfg.env_mgmt = EnvMgmt::SoftEnv;
    cfg.system_error_rate = 0.02;
    cfg.hot_glibc_bias = 0.28;
    cfg.ldd_flaky_rate = 0.15;
    // RHEL 5 compat-gcc packages, the gcc44 preview package, and older /
    // newer Intel redistributables left by admins.
    cfg.compat_runtimes = vec![gnu("3.4.6"), gnu("4.4.3"), intel("10.1"), intel("12.0")];
    cfg
}

/// Fir: University of Virginia ITS cluster.
pub fn fir(seed: u64) -> SiteConfig {
    let mut cfg = SiteConfig::new(
        "fir",
        HostArch::X86_64,
        OsInfo::new("CentOS", "5.6", "2.6.18-238.9.1.el5"),
        "2.5",
        seed ^ 0x4669_7221,
    );
    cfg.description = "ITS Fir, University of Virginia (Cluster - 1,496)".into();
    cfg.compilers = vec![gnu("4.1.2"), intel("12.0"), pgi("10.9")];
    use MpiImpl::*;
    use Network::*;
    cfg.stacks = vec![
        stack(OpenMpi, "1.4", intel("12.0"), Infiniband),
        stack(OpenMpi, "1.4", gnu("4.1.2"), Infiniband),
        stack(OpenMpi, "1.4", pgi("10.9"), Infiniband),
        stack(Mvapich2, "1.7a", intel("12.0"), Infiniband),
        stack(Mvapich2, "1.7a", gnu("4.1.2"), Infiniband),
        stack(Mvapich2, "1.7a", pgi("10.9"), Infiniband),
        stack(Mpich2, "1.3", intel("12.0"), Ethernet),
        stack(Mpich2, "1.3", gnu("4.1.2"), Ethernet),
        stack(Mpich2, "1.3", pgi("10.9"), Ethernet),
    ];
    cfg.env_mgmt = EnvMgmt::Modules;
    cfg.system_error_rate = 0.02;
    cfg.hot_glibc_bias = 0.28;
    // Binaries built with Blacklight's gcc 4.4.3 runtime trip an
    // FP-environment quirk on Fir.
    cfg.fpe_triggers = vec![(CompilerFamily::Gnu, "4.4.3".to_string())];
    cfg.compat_runtimes = vec![gnu("3.4.6"), gnu("4.4.3"), intel("10.1")];
    cfg
}

/// All five Table II site configurations, in paper order.
pub fn standard_site_configs(seed: u64) -> Vec<SiteConfig> {
    vec![
        ranger(seed),
        forge(seed),
        blacklight(seed),
        india(seed),
        fir(seed),
    ]
}

/// Materialize the five sites. This builds every library image at every
/// site; construction is deterministic in `seed`.
pub fn standard_sites(seed: u64) -> Vec<Site> {
    standard_site_configs(seed)
        .into_iter()
        .map(Site::build)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_sites_with_paper_stack_counts() {
        let configs = standard_site_configs(1);
        assert_eq!(configs.len(), 5);
        let counts: Vec<usize> = configs.iter().map(|c| c.stacks.len()).collect();
        assert_eq!(counts, vec![6, 3, 2, 6, 9], "Table II stack matrix");
    }

    #[test]
    fn openmpi_available_at_all_five_sites() {
        for cfg in standard_site_configs(1) {
            assert!(
                cfg.stacks.iter().any(|(s, _)| s.mpi == MpiImpl::OpenMpi),
                "{} lacks Open MPI",
                cfg.name
            );
        }
    }

    #[test]
    fn mvapich2_at_four_mpich2_at_two() {
        let configs = standard_site_configs(1);
        let mv = configs
            .iter()
            .filter(|c| c.stacks.iter().any(|(s, _)| s.mpi == MpiImpl::Mvapich2))
            .count();
        let mp = configs
            .iter()
            .filter(|c| c.stacks.iter().any(|(s, _)| s.mpi == MpiImpl::Mpich2))
            .count();
        assert_eq!(mv, 4, "paper: MVAPICH2 is available at four sites");
        assert_eq!(mp, 2, "paper: MPICH2 is available at two sites");
    }

    #[test]
    fn glibc_versions_match_table_two() {
        let configs = standard_site_configs(1);
        let glibcs: Vec<&str> = configs.iter().map(|c| c.glibc.as_str()).collect();
        assert_eq!(glibcs, vec!["2.3.4", "2.12", "2.11.1", "2.5", "2.5"]);
    }

    #[test]
    fn sites_build_deterministically() {
        let a = standard_sites(42);
        let b = standard_sites(42);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name(), y.name());
            let px: Vec<&str> = x.vfs.all_paths().collect();
            let py: Vec<&str> = y.vfs.all_paths().collect();
            assert_eq!(px, py);
        }
    }

    #[test]
    fn india_has_one_misconfigured_stack() {
        let cfg = india(1);
        assert_eq!(cfg.stacks.iter().filter(|(_, ok)| !ok).count(), 1);
    }

    #[test]
    fn ranger_runs_old_everything() {
        let s = Site::build(ranger(1));
        assert_eq!(s.config.glibc, "2.3.4");
        // gcc 3.4 era: libg2c, not libgfortran.
        assert!(s.vfs.exists("/usr/lib64/libg2c.so.0"));
        assert!(!s.vfs.exists("/usr/lib64/libgfortran.so.3"));
        // libstdc++.so.5 era.
        assert!(s.vfs.exists("/usr/lib64/libstdc++.so.5"));
    }

    #[test]
    fn forge_runs_new_everything() {
        let s = Site::build(forge(1));
        assert!(s.vfs.exists("/usr/lib64/libgfortran.so.3"));
        assert!(s.vfs.exists("/usr/lib64/libstdc++.so.6"));
        // Compat packages also provide the old Fortran runtime system-wide.
        assert!(s.vfs.exists("/usr/lib64/libg2c.so.0"));
        assert!(s.vfs.exists("/usr/lib64/libgfortran.so.1"));
    }
}
