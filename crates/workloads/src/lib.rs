//! # feam-workloads — the paper's §VI testbed
//!
//! The five Table II computing sites ([`sites`]), the NPB 2.4 and SPEC
//! MPI2007 benchmark models ([`benchmarks`]), and the binary test-set
//! generator ([`testset`]) that reproduces the paper's corpus of ≈110 NPB
//! and ≈147 SPEC binaries (each benchmark × each site MPI stack, minus the
//! combinations that do not compile or do not run where built).

pub mod benchmarks;
pub mod hostile;
pub mod sites;
pub mod testset;
pub mod vocab;

pub use benchmarks::{all_benchmarks, npb_benchmarks, spec_benchmarks, Benchmark, Suite};
pub use hostile::{hostile_corpus, HostileCorpus, HostileItem, HOSTILE_VARIANTS};
pub use sites::{standard_site_configs, standard_sites};
pub use testset::{TestSet, TestSetBuilder, TestSetItem};
