//! Test-set construction — the paper's §VI.A corpus.
//!
//! Every benchmark is compiled with every MPI stack at every site; combos
//! that do not compile, or whose binary fails to run at the site where it
//! was compiled, are dropped — "This is why our final test set, with 110
//! NPB binaries and 147 SPEC MPI2007 binaries, is composed of a subset of
//! the benchmark suites." The shape (≈110 / ≈147 of 182 + 182 possible) is
//! reproduced by the compile-viability rules plus the home-site run check.

use crate::benchmarks::{all_benchmarks, Benchmark, Suite};
use feam_sim::compile::{compile, CompiledBinary};
use feam_sim::exec::{run_mpi, DEFAULT_ATTEMPTS};
use feam_sim::site::{Session, Site};
use std::sync::Arc;

/// One binary in the corpus, with its provenance.
#[derive(Debug, Clone)]
pub struct TestSetItem {
    /// The compiled binary (image + stack + identity).
    pub binary: CompiledBinary,
    /// The benchmark it came from.
    pub benchmark: Benchmark,
    /// Index of the site where it was compiled (its guaranteed execution
    /// environment).
    pub compiled_at: usize,
    /// Index into that site's `stacks` of the stack used.
    pub stack_index: usize,
    /// Shortcut to the ELF image.
    pub image: Arc<Vec<u8>>,
}

impl TestSetItem {
    /// Suite of the underlying benchmark.
    pub fn suite(&self) -> Suite {
        self.benchmark.suite
    }

    /// Human-readable identity (`bt@openmpi-1.3-intel-10.1@ranger`).
    pub fn label(&self) -> &str {
        &self.binary.identity
    }
}

/// The full corpus.
#[derive(Debug, Clone, Default)]
pub struct TestSet {
    items: Vec<TestSetItem>,
    /// (benchmark, site, stack) combos that failed to compile.
    pub compile_failures: usize,
    /// Compiled binaries dropped because they did not run at home.
    pub home_run_failures: usize,
}

impl TestSet {
    /// All binaries in the corpus.
    pub fn binaries(&self) -> &[TestSetItem] {
        &self.items
    }

    /// Add an item (for building custom / trimmed corpora).
    pub fn push(&mut self, item: TestSetItem) {
        self.items.push(item);
    }

    /// Number of binaries from `suite`.
    pub fn count(&self, suite: Suite) -> usize {
        self.items.iter().filter(|i| i.suite() == suite).count()
    }
}

/// Builds the corpus deterministically from a seed.
#[derive(Debug, Clone, Copy)]
pub struct TestSetBuilder {
    seed: u64,
}

impl TestSetBuilder {
    /// New builder with the experiment seed.
    pub fn new(seed: u64) -> Self {
        TestSetBuilder { seed }
    }

    /// Compile the corpus across `sites` (typically
    /// [`crate::sites::standard_sites`]).
    pub fn build(&self, sites: &[Site]) -> TestSet {
        let mut set = TestSet::default();
        let benchmarks = all_benchmarks();
        for (site_idx, site) in sites.iter().enumerate() {
            for (stack_idx, ist) in site.stacks.iter().enumerate() {
                for bench in &benchmarks {
                    // Misconfigured stacks cannot build anything — their
                    // wrappers do not produce working output.
                    if !ist.functional || !bench.compiles_with(&ist.stack, self.seed) {
                        set.compile_failures += 1;
                        continue;
                    }
                    let prog = bench.program_spec();
                    let Ok(bin) = compile(site, Some(ist), &prog, self.seed) else {
                        set.compile_failures += 1;
                        continue;
                    };
                    // §VI.A: "other binaries would not run at the site where
                    // they were compiled" — keep only binaries with a
                    // guaranteed execution environment.
                    let mut sess = Session::new(site);
                    sess.load_stack(ist);
                    let home_path = format!("/home/user/bin/{}", bin.identity);
                    sess.stage_file(&home_path, bin.image.clone());
                    let outcome = run_mpi(&mut sess, &home_path, ist, 4, DEFAULT_ATTEMPTS);
                    if !outcome.success {
                        set.home_run_failures += 1;
                        continue;
                    }
                    set.items.push(TestSetItem {
                        image: bin.image.clone(),
                        binary: bin,
                        benchmark: bench.clone(),
                        compiled_at: site_idx,
                        stack_index: stack_idx,
                    });
                }
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::standard_sites;

    #[test]
    fn corpus_shape_matches_paper() {
        let sites = standard_sites(42);
        let set = TestSetBuilder::new(42).build(&sites);
        let nas = set.count(Suite::Npb);
        let spec = set.count(Suite::SpecMpi2007);
        // Paper: 110 NPB and 147 SPEC binaries out of 7×26 possible each.
        assert!(
            (90..=130).contains(&nas),
            "NAS corpus size {nas} out of the paper's neighbourhood"
        );
        assert!(
            (125..=170).contains(&spec),
            "SPEC corpus size {spec} out of the paper's neighbourhood"
        );
        assert!(set.compile_failures > 0, "some combos must fail to compile");
    }

    #[test]
    fn corpus_is_deterministic() {
        let sites = standard_sites(7);
        let a = TestSetBuilder::new(7).build(&sites);
        let b = TestSetBuilder::new(7).build(&sites);
        assert_eq!(a.binaries().len(), b.binaries().len());
        for (x, y) in a.binaries().iter().zip(b.binaries()) {
            assert_eq!(x.label(), y.label());
            assert_eq!(x.image, y.image);
        }
    }

    #[test]
    fn every_item_runs_at_home() {
        // Spot-check a few corpus members: they must still execute at their
        // guaranteed execution environment (that is what "guaranteed" means).
        let sites = standard_sites(3);
        let set = TestSetBuilder::new(3).build(&sites);
        for item in set.binaries().iter().take(10) {
            let site = &sites[item.compiled_at];
            let ist = site.stacks[item.stack_index].clone();
            let mut sess = Session::new(site);
            sess.load_stack(&ist);
            sess.stage_file("/home/user/bin/check", item.image.clone());
            let out = run_mpi(&mut sess, "/home/user/bin/check", &ist, 4, DEFAULT_ATTEMPTS);
            assert!(
                out.success,
                "{} no longer runs at home: {:?}",
                item.label(),
                out.failure
            );
        }
    }

    #[test]
    fn items_span_multiple_sites_and_stacks() {
        let sites = standard_sites(42);
        let set = TestSetBuilder::new(42).build(&sites);
        let distinct_sites: std::collections::HashSet<usize> =
            set.binaries().iter().map(|i| i.compiled_at).collect();
        assert_eq!(distinct_sites.len(), 5, "corpus must cover all five sites");
    }
}
