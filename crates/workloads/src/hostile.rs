//! The hostile corpus — uncooperative twins of every corpus binary.
//!
//! Field binaries are frequently stripped, statically linked or
//! cross-compiled, which removes the direct evidence channels the BDC
//! reads (`.comment`, `DT_NEEDED`, `.gnu.version_r`). This module
//! synthesizes those shapes for every binary in the §VI.A test set —
//! [`BinaryVariant::Stripped`], [`BinaryVariant::Static`] and
//! [`BinaryVariant::Cross`] — keeping the build ground truth alongside so
//! the provenance matcher can be graded against it
//! (`feam-eval --provenance-bench`).
//!
//! The hostile corpus is a separate builder, not part of
//! [`TestSetBuilder::build`](crate::testset::TestSetBuilder), so the
//! default corpus shape (and everything seeded off it) is unchanged.

use crate::testset::TestSet;
use feam_sim::compile::{compile_variant, BinaryVariant, CompiledBinary};
use feam_sim::mpi::MpiImpl;
use feam_sim::site::Site;
use feam_sim::toolchain::Compiler;
use std::sync::Arc;

/// The hostile variants synthesized for each corpus binary.
pub const HOSTILE_VARIANTS: [BinaryVariant; 3] = [
    BinaryVariant::Stripped,
    BinaryVariant::Static,
    BinaryVariant::Cross,
];

/// One uncooperative twin, with the ground truth it hides.
#[derive(Debug, Clone)]
pub struct HostileItem {
    /// The compiled variant (image + identity with a `#variant` suffix).
    pub binary: CompiledBinary,
    /// Which hostile shape this is.
    pub variant: BinaryVariant,
    /// Index of the base binary in the source [`TestSet`].
    pub base_index: usize,
    /// Site index where it was compiled.
    pub compiled_at: usize,
    /// Index into that site's `stacks` of the stack used.
    pub stack_index: usize,
    /// Ground truth: the compiler that built it.
    pub truth_compiler: Compiler,
    /// Ground truth: the MPI implementation linked.
    pub truth_mpi: MpiImpl,
    /// Shortcut to the ELF image.
    pub image: Arc<Vec<u8>>,
}

impl HostileItem {
    /// Human-readable identity (`bt@openmpi-…@ranger#stripped`).
    pub fn label(&self) -> &str {
        &self.binary.identity
    }
}

/// The full hostile corpus.
#[derive(Debug, Clone, Default)]
pub struct HostileCorpus {
    items: Vec<HostileItem>,
    /// (base binary, variant) combos whose re-compile failed (should be
    /// zero: every base binary compiled once already).
    pub failures: usize,
}

impl HostileCorpus {
    /// All hostile binaries.
    pub fn binaries(&self) -> &[HostileItem] {
        &self.items
    }

    /// Number of binaries of `variant`.
    pub fn count(&self, variant: BinaryVariant) -> usize {
        self.items.iter().filter(|i| i.variant == variant).count()
    }
}

/// Synthesize the hostile twins of every binary in `base`.
///
/// `seed` must be the seed `base` was built with: the variants re-run the
/// same compilation draws, so a stripped twin is byte-identical to its
/// base binary with the section-header route removed.
pub fn hostile_corpus(seed: u64, sites: &[Site], base: &TestSet) -> HostileCorpus {
    let mut corpus = HostileCorpus::default();
    for (base_index, item) in base.binaries().iter().enumerate() {
        let site = &sites[item.compiled_at];
        let ist = &site.stacks[item.stack_index];
        let prog = item.benchmark.program_spec();
        for variant in HOSTILE_VARIANTS {
            let Ok(bin) = compile_variant(site, Some(ist), &prog, seed, variant) else {
                corpus.failures += 1;
                continue;
            };
            corpus.items.push(HostileItem {
                image: bin.image.clone(),
                binary: bin,
                variant,
                base_index,
                compiled_at: item.compiled_at,
                stack_index: item.stack_index,
                truth_compiler: ist.stack.compiler.clone(),
                truth_mpi: ist.stack.mpi,
            });
        }
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::standard_sites;
    use crate::testset::TestSetBuilder;
    use feam_elf::ElfFile;

    #[test]
    fn hostile_corpus_covers_every_base_binary_three_ways() {
        let sites = standard_sites(42);
        let base = TestSetBuilder::new(42).build(&sites);
        let hostile = hostile_corpus(42, &sites, &base);
        assert_eq!(hostile.failures, 0, "every base binary recompiles");
        assert_eq!(hostile.binaries().len(), base.binaries().len() * 3);
        for v in HOSTILE_VARIANTS {
            assert_eq!(hostile.count(v), base.binaries().len());
        }
    }

    #[test]
    fn hostile_items_hide_the_direct_evidence_they_claim_to() {
        let sites = standard_sites(7);
        let base = TestSetBuilder::new(7).build(&sites);
        let hostile = hostile_corpus(7, &sites, &base);
        for item in hostile.binaries().iter().take(30) {
            let f = ElfFile::parse(&item.image).expect("hostile twins still parse");
            match item.variant {
                BinaryVariant::Stripped => {
                    assert!(f.comments().is_empty(), "{}", item.label());
                    assert!(!f.needed().is_empty(), "segment route keeps DT_NEEDED");
                }
                BinaryVariant::Static => {
                    assert!(!f.is_dynamic(), "{}", item.label());
                    assert!(f.needed().is_empty());
                }
                BinaryVariant::Cross => {
                    assert!(f.comments().is_empty(), "{}", item.label());
                    let (native, _) = sites[item.compiled_at].config.arch.native_target();
                    assert_ne!(f.machine(), native, "cross targets a foreign ISA");
                }
                BinaryVariant::Normal => unreachable!(),
            }
        }
    }

    #[test]
    fn ground_truth_matches_the_build_stack() {
        let sites = standard_sites(7);
        let base = TestSetBuilder::new(7).build(&sites);
        let hostile = hostile_corpus(7, &sites, &base);
        for item in hostile.binaries().iter().take(20) {
            let ist = &sites[item.compiled_at].stacks[item.stack_index];
            assert_eq!(item.truth_compiler, ist.stack.compiler);
            assert_eq!(item.truth_mpi, ist.stack.mpi);
            let base_item = &base.binaries()[item.base_index];
            assert!(
                item.label().starts_with(base_item.label()),
                "{} should extend {}",
                item.label(),
                base_item.label()
            );
        }
    }
}
