//! Generator-grade scenario vocabulary.
//!
//! The hand-written Table II sites ([`crate::sites`]) pin one historic
//! configuration each; generators (the conformance universe builder,
//! future stress corpora) instead *sample* from the same era's
//! vocabulary. This module is that vocabulary: the compiler versions,
//! OS releases and helpers shared by everything that synthesizes sites
//! rather than transcribing them.

use feam_sim::rng;
use feam_sim::toolchain::{Compiler, CompilerFamily};

/// GNU compiler versions in circulation across the paper's site era.
pub const GNU_VERSIONS: &[&str] = &["3.4.6", "4.1.2", "4.4.5"];
/// Intel compiler versions in circulation across the paper's site era.
pub const INTEL_VERSIONS: &[&str] = &["10.1", "11.1", "12.0"];
/// PGI compiler versions in circulation across the paper's site era.
pub const PGI_VERSIONS: &[&str] = &["7.2", "10.9"];

/// `(distro, release, kernel)` triples a generated site may run —
/// contemporaries of the Table II machines.
pub const OS_TABLE: &[(&str, &str, &str)] = &[
    ("CentOS", "4.9", "2.6.9-103.ELsmp"),
    ("CentOS", "5.6", "2.6.18-238.el5"),
    (
        "Red Hat Enterprise Linux Server",
        "6.1",
        "2.6.32-131.0.15.el6",
    ),
    ("SUSE Linux Enterprise Server", "11.1", "2.6.32.29-0.3"),
];

/// A seeded pick of a `family` compiler from the era vocabulary.
pub fn compiler_from_vocab(family: CompilerFamily, seed: u64, parts: &[&str]) -> Compiler {
    let v = match family {
        CompilerFamily::Gnu => rng::pick(seed, parts, GNU_VERSIONS),
        CompilerFamily::Intel => rng::pick(seed, parts, INTEL_VERSIONS),
        CompilerFamily::Pgi => rng::pick(seed, parts, PGI_VERSIONS),
    };
    Compiler::new(family, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocab_picks_are_seed_deterministic_and_in_vocabulary() {
        for family in [
            CompilerFamily::Gnu,
            CompilerFamily::Intel,
            CompilerFamily::Pgi,
        ] {
            let a = compiler_from_vocab(family, 7, &["t"]);
            let b = compiler_from_vocab(family, 7, &["t"]);
            assert_eq!(a.ident(), b.ident());
            let pool = match family {
                CompilerFamily::Gnu => GNU_VERSIONS,
                CompilerFamily::Intel => INTEL_VERSIONS,
                CompilerFamily::Pgi => PGI_VERSIONS,
            };
            assert!(pool.contains(&a.version.as_str()));
        }
    }
}
