//! Generator-grade scenario vocabulary — re-exported from the canonical
//! shared table.
//!
//! The vocabulary used to live here, duplicated against the versions
//! hand-written into the Table II site configs. It is now owned by
//! [`feam_sim::vocab`] (one table shared by the Table II sites, the
//! conformance universe generator and the provenance signature
//! database); this module remains as the compatibility surface for
//! workload-side consumers.

pub use feam_sim::vocab::{
    compiler_from_vocab, is_known, known_compilers, GNU_VERSIONS, INTEL_VERSIONS, KNOWN_COMPILERS,
    OS_TABLE, PGI_VERSIONS,
};

#[cfg(test)]
mod tests {
    use super::*;
    use feam_sim::toolchain::CompilerFamily;

    #[test]
    fn reexport_points_at_the_shared_table() {
        let c = compiler_from_vocab(CompilerFamily::Gnu, 7, &["t"]);
        assert!(GNU_VERSIONS.contains(&c.version.as_str()));
        assert!(is_known(CompilerFamily::Gnu, &c.version));
    }
}
