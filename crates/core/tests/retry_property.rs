//! Property tests for `feam_core::retry`: generated `RetryPolicy`
//! configurations pin that backoff delays are monotone (for growth
//! factors ≥ 1), never exceed `max_delay_seconds`, and that consumed
//! attempt counts never exceed `max_attempts` — including the degenerate
//! zero- and one-attempt configurations.

use feam_core::retry::{compile_with_retry, launch_with_retry};
use feam_core::RetryPolicy;
use feam_elf::HostArch;
use feam_sim::compile::ProgramSpec;
use feam_sim::faults::{FaultPlan, FaultRate};
use feam_sim::mpi::{MpiImpl, MpiStack, Network};
use feam_sim::site::{OsInfo, Session, Site, SiteConfig};
use feam_sim::toolchain::{Compiler, CompilerFamily, Language};
use std::sync::Arc;

/// SplitMix64: a tiny, well-distributed generator for the policy corpus.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

fn gen_policy(state: &mut u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: (splitmix64(state) % 9) as u32, // 0..=8, incl. degenerates
        base_delay_seconds: unit(state) * 10.0,
        multiplier: 1.0 + unit(state) * 3.0, // growth factor >= 1
        max_delay_seconds: unit(state) * 20.0,
        jitter: 0.0,
        jitter_seed: 0,
    }
}

#[test]
fn generated_backoff_curves_are_monotone_capped_and_summable() {
    let mut state = 0xB0FF_u64;
    for case in 0..500 {
        let p = gen_policy(&mut state);
        let mut prev = 0.0_f64;
        let mut total = 0.0_f64;
        for attempt in 1..=40u32 {
            let d = p.delay_before(attempt);
            assert!(d.is_finite() && d >= 0.0, "case {case}: delay {d} ({p:?})");
            assert!(
                d <= p.max_delay_seconds + 1e-12,
                "case {case}: attempt {attempt} delay {d} exceeds cap {} ({p:?})",
                p.max_delay_seconds
            );
            assert!(
                d >= prev - 1e-12,
                "case {case}: delays not monotone at attempt {attempt}: {d} < {prev} ({p:?})"
            );
            prev = d;
            if attempt >= 2 {
                total += d;
            }
            assert!(
                (p.total_backoff(attempt) - total).abs() < 1e-9,
                "case {case}: total_backoff({attempt}) disagrees with the per-attempt sum"
            );
        }
        // The first attempt is always free.
        assert_eq!(p.delay_before(0), 0.0);
        assert_eq!(p.delay_before(1), 0.0);
        assert_eq!(p.total_backoff(0), 0.0);
        assert_eq!(p.total_backoff(1), 0.0);
    }
}

/// For every generated policy and jitter fraction, the jittered delay
/// stays inside `[envelope · (1 − jitter), envelope]`, replays exactly
/// for the same `(seed, key, attempt)`, and never disturbs the
/// jitter-free envelope itself.
#[test]
fn generated_jittered_delays_are_bounded_and_replayable() {
    let mut state = 0x7177E2_u64;
    for case in 0..200 {
        let base = gen_policy(&mut state);
        let jitter = unit(&mut state);
        let seed = splitmix64(&mut state);
        let p = base.clone().with_jitter(jitter, seed);
        for attempt in 1..=20u32 {
            let envelope = p.delay_before(attempt);
            assert_eq!(
                envelope,
                base.delay_before(attempt),
                "case {case}: enabling jitter must not change the envelope"
            );
            let d = p.jittered_delay_before(attempt, "prop-key");
            assert!(
                d <= envelope + 1e-12,
                "case {case}: attempt {attempt} jittered {d} exceeds envelope {envelope} ({p:?})"
            );
            assert!(
                d >= envelope * (1.0 - jitter) - 1e-12,
                "case {case}: attempt {attempt} jittered {d} below floor ({p:?})"
            );
            // Pure function of (seed, key, attempt): replays exactly.
            assert_eq!(d, p.jittered_delay_before(attempt, "prop-key"));
        }
        assert_eq!(p.jittered_delay_before(1, "prop-key"), 0.0);
    }
}

#[test]
fn with_attempts_clamps_the_degenerate_zero() {
    assert_eq!(RetryPolicy::with_attempts(0).max_attempts, 1);
    assert_eq!(RetryPolicy::with_attempts(1).max_attempts, 1);
    assert_eq!(RetryPolicy::with_attempts(5).max_attempts, 5);
}

fn probe_site() -> Site {
    let mut cfg = SiteConfig::new(
        "retry-prop",
        HostArch::X86_64,
        OsInfo::new("CentOS", "5.6", "2.6.18"),
        "2.5",
        23,
    );
    cfg.compilers = vec![Compiler::new(CompilerFamily::Gnu, "4.1.2")];
    cfg.stacks = vec![(
        MpiStack::new(
            MpiImpl::OpenMpi,
            "1.4",
            Compiler::new(CompilerFamily::Gnu, "4.1.2"),
            Network::Ethernet,
        ),
        true,
    )];
    cfg.system_error_rate = 0.0;
    Site::build(cfg)
}

/// Count the retries a compile actually consumed under an
/// always-transient fault plan: never more than `max_attempts - 1`
/// (one initial attempt plus retries), for every generated policy
/// including `max_attempts` of 0 and 1 (both mean "one attempt, no
/// retries" in `compile_with_retry`).
#[test]
fn consumed_attempts_never_exceed_max_attempts() {
    let site = probe_site();
    let ist = site.stacks[0].clone();
    let prog = ProgramSpec::mpi_hello_world(Language::C);
    let always_transient = Arc::new(FaultPlan {
        seed: 77,
        probe_compile: FaultRate {
            transient: 1.0,
            persistent: 0.0,
        },
        ..FaultPlan::default()
    });
    let mut state = 0xA77E_u64;
    for case in 0..40 {
        let p = gen_policy(&mut state);
        let (rec, sink) = feam_obs::Recorder::memory();
        let mut sess = Session::with_faults(&site, always_transient.clone());
        sess.recorder = rec;
        let before = sess.cpu_seconds;
        let result = compile_with_retry(&mut sess, Some(&ist), &prog, 7, &p);
        assert!(result.is_err(), "case {case}: always-transient must fail");
        let retries = sink
            .events()
            .iter()
            .filter(|e| e.name == "retry_attempt")
            .count() as u32;
        let effective_max = p.max_attempts.max(1);
        assert!(
            retries <= effective_max.saturating_sub(1),
            "case {case}: {retries} retries exceed max_attempts {} ({p:?})",
            p.max_attempts
        );
        // Every consumed retry charged exactly its backoff to the clock.
        let charged = sess.cpu_seconds - before;
        let expected = p.total_backoff(retries + 1);
        assert!(
            charged >= expected - 1e-9,
            "case {case}: charged {charged} < expected backoff {expected} ({p:?})"
        );
        if p.max_attempts <= 1 {
            assert_eq!(retries, 0, "case {case}: degenerate config must not retry");
        }
    }
}

/// A fault-free launch consumes exactly one attempt regardless of policy,
/// and a faulting launch under the paper's five-attempt policy never
/// exceeds it.
#[test]
fn launch_attempts_respect_the_policy_bound() {
    let site = probe_site();
    let ist = site.stacks[0].clone();
    let bin = feam_sim::compile::compile(
        &site,
        Some(&ist),
        &ProgramSpec::mpi_hello_world(Language::C),
        7,
    )
    .expect("probe compiles at a clean site");
    for max_attempts in [1u32, 2, 5, 8] {
        let p = RetryPolicy::with_attempts(max_attempts);
        let mut sess = Session::new(&site);
        sess.stage_file("/tmp/hello", bin.image.clone());
        let outcome = launch_with_retry(&mut sess, "/tmp/hello", &ist, 4, &p);
        assert!(outcome.attempts >= 1);
        assert!(
            outcome.attempts <= max_attempts,
            "attempts {} exceed policy max {max_attempts}",
            outcome.attempts
        );
    }
}
