//! Collision-safety properties of the BDC cache key.
//!
//! The cache is content-addressed by [`BdcKey`] = (primary hash, length,
//! second hash). A key carrying only the primary hash would let two
//! distinct images alias one description; these tests *engineer* a genuine
//! primary-hash collision between two valid, distinct ELF images and pin
//! that the full key still discriminates — plus the poisoning-guard
//! invariant that faulted or degraded computations are never memoized.

use feam_core::bdc::BinaryDescription;
use feam_core::cache::{BdcCache, BdcKey, PhaseCaches};
use feam_core::phases::{run_target_phase, PhaseConfig};
use feam_elf::{Class, ElfFile, ElfSpec, ImportSpec, Machine};
use std::sync::Arc;

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// Multiplicative inverse of the FNV prime mod 2^64 (Newton iteration —
/// the prime is odd, so the inverse exists).
fn fnv_prime_inv() -> u64 {
    let mut x: u64 = 1;
    for _ in 0..6 {
        x = x.wrapping_mul(2u64.wrapping_sub(FNV_PRIME.wrapping_mul(x)));
    }
    assert_eq!(FNV_PRIME.wrapping_mul(x), 1);
    x
}

fn words_of(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// The word-at-a-time FNV fold [`BdcKey::of`] uses for its primary hash
/// (whole words only — both images below share length and trailing bytes,
/// so the tail step cancels).
fn word_fnv(words: &[u64]) -> u64 {
    words
        .iter()
        .fold(FNV_BASIS, |h, &w| (h ^ w).wrapping_mul(FNV_PRIME))
}

/// Construct `b`: a copy of `a` that differs in the 8-byte words at
/// aligned offsets `j` and `k` (j < k) yet folds to the *same* primary
/// hash. Word `j` is perturbed arbitrarily; word `k` is solved so the FNV
/// state re-converges: each fold step `h' = (h ^ w) * P` is invertible,
/// so walk the target state backwards through the suffix and meet it.
fn engineer_collision(a: &[u8], j: usize, k: usize) -> Vec<u8> {
    assert!(j.is_multiple_of(8) && k.is_multiple_of(8) && j < k && k + 8 <= a.len());
    let p_inv = fnv_prime_inv();
    let words = words_of(a);
    let (wj, wk) = (j / 8, k / 8);
    let target = word_fnv(&words);

    let mut b_words = words.clone();
    b_words[wj] ^= 0xDEAD_BEEF_DEAD_BEEF;

    // State after the prefix [0, wk) of the mutated stream.
    let state_before_k = word_fnv(&b_words[..wk]);
    // Walk the final target backwards through the unchanged suffix
    // (wk, end) to find the state required right after word wk.
    let mut need_after_k = target;
    for &w in words[wk + 1..].iter().rev() {
        need_after_k = need_after_k.wrapping_mul(p_inv) ^ w;
    }
    // Solve (state_before_k ^ w) * P = need_after_k for w.
    b_words[wk] = state_before_k ^ need_after_k.wrapping_mul(p_inv);

    let mut b = Vec::with_capacity(a.len());
    for w in &b_words {
        b.extend_from_slice(&w.to_le_bytes());
    }
    b.extend_from_slice(&a[words.len() * 8..]);
    assert_eq!(b.len(), a.len());
    b
}

/// A valid dynamic executable with a .text payload large enough to hide
/// two engineered words without disturbing any parsed structure.
fn base_image() -> Vec<u8> {
    let mut spec = ElfSpec::executable(Machine::X86_64, Class::Elf64);
    spec.needed = vec!["libc.so.6".into()];
    spec.imports = vec![ImportSpec::versioned("fopen64", "libc.so.6", "GLIBC_2.3.4")];
    spec.text_size = 512;
    spec.build().expect("spec builds")
}

/// Aligned file offsets of two words inside the image's .text section.
fn text_word_offsets(bytes: &[u8]) -> (usize, usize) {
    let f = ElfFile::parse(bytes).expect("base image parses");
    let (_, text) = f
        .sections()
        .iter()
        .find(|(n, _)| n == ".text")
        .expect(".text present")
        .clone();
    let start = (text.offset as usize).div_ceil(8) * 8;
    let end = (text.offset + text.size) as usize;
    assert!(
        start + 64 <= end,
        ".text large enough for two aligned words"
    );
    (start, start + 32)
}

#[test]
fn engineered_fnv_collision_does_not_alias_cache_entries() {
    let a = base_image();
    let (j, k) = text_word_offsets(&a);
    let b = engineer_collision(&a, j, k);

    assert_ne!(a, b, "the images really are distinct byte strings");
    // Both remain valid ELF images with identical parsed structure.
    assert!(ElfFile::parse(&b).is_ok(), "mutated .text stays parseable");

    let ka = BdcKey::of(&a);
    let kb = BdcKey::of(&b);
    assert_eq!(ka.hash, kb.hash, "collision engineering produced the hash");
    assert_eq!(ka.len, kb.len, "same length — bare (hash, len) would alias");
    assert_ne!(
        ka, kb,
        "the second-hash discriminator must separate colliding images"
    );

    // The cache must treat them as different binaries.
    let cache = BdcCache::default();
    let da = Arc::new(BinaryDescription::from_bytes("/a", &a).unwrap());
    cache.put(ka, da.clone());
    assert!(
        cache.get(&kb).is_none(),
        "a colliding distinct image must miss, not cross-serve"
    );
    let db = Arc::new(BinaryDescription::from_bytes("/b", &b).unwrap());
    cache.put(kb, db.clone());
    assert!(
        Arc::ptr_eq(&cache.get(&ka).unwrap(), &da),
        "image A round-trips its own description"
    );
    assert!(
        Arc::ptr_eq(&cache.get(&kb).unwrap(), &db),
        "image B round-trips its own description"
    );
}

#[test]
fn forged_keys_sharing_partial_identity_miss() {
    let bytes = base_image();
    let key = BdcKey::of(&bytes);
    let cache = BdcCache::default();
    cache.put(
        key,
        Arc::new(BinaryDescription::from_bytes("/x", &bytes).unwrap()),
    );

    for forged in [
        BdcKey {
            alt: key.alt ^ 1,
            ..key
        },
        BdcKey {
            len: key.len + 1,
            ..key
        },
        BdcKey {
            hash: key.hash ^ 1,
            ..key
        },
    ] {
        assert!(
            cache.get(&forged).is_none(),
            "partial key agreement must never serve: {forged:?}"
        );
    }
    assert!(cache.get(&key).is_some(), "the true key still serves");
}

#[test]
fn distinct_images_get_distinct_keys_and_round_trip() {
    // Randomized-ish sweep: vary every spec axis that changes the bytes
    // and require pairwise-distinct keys plus identity round-trips.
    let mut images = Vec::new();
    for i in 0..24usize {
        let mut spec = ElfSpec::executable(Machine::X86_64, Class::Elf64);
        spec.needed = vec![format!("lib{}.so.{}", (b'a' + (i % 26) as u8) as char, i)];
        if i % 3 == 0 {
            spec.imports = vec![ImportSpec::versioned(
                "fopen64",
                "libc.so.6",
                &format!("GLIBC_2.{i}"),
            )];
        }
        spec.text_size = 64 + 16 * i;
        images.push(spec.build().expect("spec builds"));
    }
    // Same-length pairs with a one-byte difference, the tightest case the
    // length discriminator cannot help with.
    let tweaked = {
        let mut t = images[0].clone();
        let (j, _) = text_word_offsets(&t);
        t[j] ^= 0x01;
        t
    };
    images.push(tweaked);

    let keys: Vec<BdcKey> = images.iter().map(|i| BdcKey::of(i)).collect();
    for (i, ka) in keys.iter().enumerate() {
        for kb in &keys[i + 1..] {
            assert_ne!(ka, kb, "distinct images {i} share a full key");
        }
    }

    let cache = BdcCache::default();
    let descs: Vec<Arc<BinaryDescription>> = images
        .iter()
        .enumerate()
        .map(|(i, img)| {
            let d = Arc::new(BinaryDescription::from_bytes(&format!("/bin/{i}"), img).unwrap());
            cache.put(keys[i], d.clone());
            d
        })
        .collect();
    for (i, key) in keys.iter().enumerate() {
        assert!(
            Arc::ptr_eq(&cache.get(key).unwrap(), &descs[i]),
            "image {i} must round-trip its own description"
        );
    }
    assert_eq!(cache.len(), images.len());
}

#[test]
fn key_is_a_pure_function_of_content() {
    let bytes = base_image();
    assert_eq!(BdcKey::of(&bytes), BdcKey::of(&bytes.clone()));
    // Every prefix gets its own key: truncation can never alias.
    let k_full = BdcKey::of(&bytes);
    let k_trunc = BdcKey::of(&bytes[..bytes.len() - 1]);
    assert_ne!(k_full, k_trunc);
    assert_eq!(k_full.len, bytes.len() as u64);
}

#[test]
fn poisoning_guard_keeps_faulted_results_out_of_shared_caches() {
    use feam_sim::faults::FaultPlan;
    use feam_workloads::sites::{standard_sites, INDIA};

    let sites = standard_sites(23);
    let india = &sites[INDIA];
    let image = Arc::new(base_image());
    let caches = Arc::new(PhaseCaches::new(0));

    // Persistent faults on every observation channel: the run degrades and
    // nothing may be memoized — the guard must reject, not poison.
    let plan = FaultPlan {
        vfs_read: FaultPlan::persistent_vfs(77, 1.0).vfs_read,
        ..FaultPlan::persistent_edc(77, 1.0)
    };
    let chaotic = PhaseConfig {
        caches: Some(caches.clone()),
        faults: Arc::new(plan),
        ..PhaseConfig::default()
    };
    let degraded = run_target_phase(india, Some(&image), None, &chaotic);
    assert!(
        caches.bdc.is_empty(),
        "faulted BDC result must not be cached"
    );
    assert!(
        !caches.edc.contains(india.name()),
        "degraded EDC discovery must not be cached"
    );
    assert!(
        caches.bdc.stats().rejected + caches.edc.stats().rejected > 0,
        "the guard records its rejections"
    );
    assert!(
        !degraded.environment.unobserved.is_empty() || degraded.evaluation.degraded,
        "the chaotic run really was degraded"
    );

    // A clean run afterwards populates the caches and serves under the
    // same keys the degraded run was denied.
    let clean = PhaseConfig {
        caches: Some(caches.clone()),
        faults: Arc::new(FaultPlan::none()),
        ..PhaseConfig::default()
    };
    let healthy = run_target_phase(india, Some(&image), None, &clean);
    assert!(!caches.bdc.is_empty(), "clean description is cached");
    assert!(caches.edc.contains(india.name()));
    assert!(healthy.environment.unobserved.is_empty());
    assert_eq!(
        caches.bdc.get(&BdcKey::of(&image)).unwrap().content_hash,
        healthy.binary.content_hash,
        "the cached entry is the clean run's description"
    );
}
