//! Property tests for the per-request name arena (`feam_core::intern`):
//! id stability under insertion-order permutations, resolve round-trips,
//! collision freedom over seeded random names, and reset safety.

use feam_core::intern::{IStr, Interner, NameId};

/// SplitMix64-style deterministic generator.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// A soname-shaped random string.
    fn name(&mut self) -> String {
        let stem_len = self.range(3, 12);
        let stem: String = (0..stem_len)
            .map(|_| (b'a' + (self.next_u64() % 26) as u8) as char)
            .collect();
        format!("lib{}.so.{}", stem, self.range(0, 10))
    }
}

#[test]
fn resolve_round_trips_every_interned_name() {
    let mut g = Gen::new(0xA_1E4A);
    let mut arena = Interner::new();
    let mut pairs: Vec<(NameId, String)> = Vec::new();
    for _ in 0..1_000 {
        let n = g.name();
        let id = arena.intern(&n);
        pairs.push((id, n));
    }
    for (id, n) in &pairs {
        assert_eq!(arena.resolve(*id), n, "resolve(intern(s)) == s");
        // istr() must agree with resolve() and with the original string.
        assert_eq!(arena.istr(n), IStr::new(n));
    }
}

#[test]
fn ids_are_stable_under_insertion_order_permutations() {
    // First-intern order assigns ids; re-interning in any permuted order
    // afterwards must return the original ids unchanged.
    let names: Vec<String> = (0..64).map(|i| format!("libperm{i}.so")).collect();
    let mut arena = Interner::new();
    let original: Vec<NameId> = names.iter().map(|n| arena.intern(n)).collect();

    let mut g = Gen::new(0xD_DE5);
    for _round in 0..50 {
        // Fisher-Yates shuffle of the probe order.
        let mut order: Vec<usize> = (0..names.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, g.range(0, i + 1));
        }
        for &i in &order {
            assert_eq!(
                arena.intern(&names[i]),
                original[i],
                "re-interning {} under a permuted order changed its id",
                names[i]
            );
        }
    }
    assert_eq!(arena.len(), names.len(), "no phantom entries appeared");
}

#[test]
fn ten_thousand_seeded_names_never_collide() {
    let mut g = Gen::new(0x0C01_11DE);
    let mut arena = Interner::new();
    let mut seen: std::collections::HashMap<NameId, String> = Default::default();
    for _ in 0..10_000 {
        let n = g.name();
        let id = arena.intern(&n);
        match seen.get(&id) {
            // Same id must always mean same name ...
            Some(prev) => assert_eq!(prev, &n, "id {id:?} handed to two distinct names"),
            None => {
                seen.insert(id, n);
            }
        }
    }
    // ... and distinct names must get distinct ids.
    assert_eq!(seen.len(), arena.len(), "distinct-name/distinct-id count");
    // Dense ids: every index below len() resolves.
    for (id, n) in &seen {
        assert!(id.index() < arena.len());
        assert_eq!(arena.resolve(*id), n);
    }
}

#[test]
fn equal_names_share_storage_and_serialize_like_strings() {
    let mut arena = Interner::new();
    let a = arena.istr("libc.so.6");
    let b = arena.istr("libc.so.6");
    assert_eq!(a, b);
    // Shared storage: both IStrs view the same address.
    assert_eq!(a.as_str().as_ptr(), b.as_str().as_ptr());
    // Byte-identical serialization with String (golden-report safety).
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&"libc.so.6".to_string()).unwrap()
    );
}

#[test]
fn reset_recycles_the_arena_and_keeps_issued_istrs_valid() {
    let mut arena = Interner::new();
    let kept = arena.istr("libmpi.so.0");
    let id_before = arena.intern("libmpi.so.0");
    assert_eq!(id_before.index(), 0);
    arena.reset();
    assert!(arena.is_empty());

    // Previously issued IStrs own their storage and survive the reset.
    assert_eq!(kept, "libmpi.so.0");

    // A new generation starts from a clean slate: ids are reassigned in
    // first-intern order again.
    let id_x = arena.intern("libxyz.so.9");
    assert_eq!(id_x.index(), 0);
    assert_eq!(arena.resolve(id_x), "libxyz.so.9");
    assert_eq!(arena.len(), 1);

    // Re-interning the pre-reset name allocates a fresh entry rather than
    // resurrecting the old id.
    let id_again = arena.intern("libmpi.so.0");
    assert_eq!(id_again.index(), 1);
}
