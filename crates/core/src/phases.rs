//! FEAM's two phases (§V, Figure 2).
//!
//! * **Source phase** (optional, once per binary, at a guaranteed
//!   execution environment): BDC + EDC gather the binary's description,
//!   copies of its shared libraries, the GEE description and hello-world
//!   probes; the output is bundled for transport.
//! * **Target phase** (required, at every target site): BDC (when the
//!   binary is present) + EDC + TEC produce the prediction, the resolution
//!   plan and the matching configuration.

use crate::bdc::{self, BinaryDescription};
use crate::bundle::{HelloWorldProbe, SourceBundle};
use crate::edc::{self, EnvironmentDescription};
use crate::error::{FeamError, Result};
use crate::retry::{compile_with_retry, RetryPolicy};
use crate::tec::{self, TargetEvaluation};
use feam_sim::compile::ProgramSpec;
use feam_sim::faults::FaultPlan;
use feam_sim::site::{Session, Site};
use feam_sim::toolchain::Language;
use std::sync::Arc;

/// User-supplied configuration (§V: "Before running FEAM, a user needs to
/// specify (via a configuration file) a serial and parallel submission
/// script for the site … Our methods by default will use the `mpiexec`
/// command while allowing the user to specify otherwise").
#[derive(Debug, Clone)]
pub struct PhaseConfig {
    /// Serial submission command template.
    pub serial_submit: String,
    /// Parallel submission command template.
    pub parallel_submit: String,
    /// Override of the launch command per MPI type (defaults to mpiexec).
    pub mpiexec_override: Option<String>,
    /// Processes for test launches.
    pub nprocs: u32,
    /// Retry policy for probe compiles, launches and queue submissions
    /// (generalizes §VI.C's five spaced attempts with backoff).
    pub retry: RetryPolicy,
    /// Fault plan injected into every session the phases open (defaults to
    /// the environment-driven plan, which is silent unless
    /// `FEAM_CHAOS_RATE` is set).
    pub faults: Arc<FaultPlan>,
    /// Seed for FEAM's own probe compilations.
    pub seed: u64,
    /// Ablation switch: skip the transported hello-world compatibility
    /// tests even when a bundle is available (isolates what runtime
    /// testing contributes to the extended prediction).
    pub disable_transported_tests: bool,
    /// Ablation switch: skip the resolution model even when a bundle is
    /// available (isolates what library copies contribute).
    pub disable_resolution: bool,
    /// Trace/metrics recorder threaded through both phases. Defaults to
    /// the disabled recorder, which costs one branch per call site.
    pub recorder: feam_obs::Recorder,
    /// Explicit trace context to root this phase's spans under. `None`
    /// (the default) inherits the caller thread's live span — or mints a
    /// fresh trace when there is none, so a directly-driven phase is its
    /// own request. Callers that manage requests across threads (the
    /// service worker pool) set the request's [`feam_obs::TraceCtx`]
    /// here or open an enclosing span via
    /// [`feam_obs::Recorder::span_in`].
    pub ctx: Option<feam_obs::TraceCtx>,
    /// Shared description caches for the serving layer (`feam-svc`).
    /// `None` (the default) disables memoization entirely, so CLI and
    /// sweep behavior is bit-for-bit what it was before caching existed.
    pub caches: Option<Arc<crate::cache::PhaseCaches>>,
}

impl Default for PhaseConfig {
    fn default() -> Self {
        PhaseConfig {
            serial_submit: "./run_serial.sh".into(),
            parallel_submit: "./run_parallel.sh".into(),
            mpiexec_override: None,
            nprocs: 4,
            retry: RetryPolicy::default(),
            faults: feam_sim::faults::default_plan(),
            seed: 0xFEA4,
            disable_transported_tests: false,
            disable_resolution: false,
            recorder: feam_obs::Recorder::disabled(),
            ctx: None,
            caches: None,
        }
    }
}

/// Describe a binary whose bytes are already in hand, going through the
/// content-addressed BDC cache when one is configured.
///
/// On a hit the cached description is reused with only the site-local
/// `path` rewritten. On a miss the description is computed through the
/// session (so injected faults still apply) and inserted **only** when no
/// fault fired during the computation — a degraded read must be served to
/// its requester but never memoized.
fn describe_binary_cached(
    sess: &Session<'_>,
    path: &str,
    image: &Arc<Vec<u8>>,
    cfg: &PhaseConfig,
) -> Result<BinaryDescription> {
    let Some(caches) = cfg.caches.as_deref() else {
        return BinaryDescription::from_session(sess, path);
    };
    // Pointer-memoized: repeat requests for the same registered image skip
    // rehashing its bytes entirely.
    let key = crate::cache::content_key_of(image);
    if let Some(d) = caches.bdc_get(&key) {
        sess.recorder.count("cache.bdc.hit", 1);
        let mut d = (*d).clone();
        d.path = path.to_string();
        return Ok(d);
    }
    sess.recorder.count("cache.bdc.miss", 1);
    let before = sess.faults_seen.get();
    let d = BinaryDescription::from_session(sess, path)?;
    if sess.faults_seen.get() == before {
        caches.bdc_put(key, Arc::new(d.clone()));
    } else {
        caches.bdc.reject();
    }
    Ok(d)
}

/// Discover the session's environment, going through the per-site EDC
/// cache when one is configured.
///
/// Same poisoning guard as the BDC path: a discovery that saw an injected
/// fault or left `unobserved` holes is returned but never cached.
fn discover_cached(sess: &mut Session<'_>, cfg: &PhaseConfig) -> EnvironmentDescription {
    let Some(caches) = cfg.caches.as_deref() else {
        return edc::discover_with_retry(sess, &cfg.retry);
    };
    let site = sess.site.name().to_string();
    if let Some(env) = caches.edc_get(&site) {
        sess.recorder.count("cache.edc.hit", 1);
        return (*env).clone();
    }
    sess.recorder.count("cache.edc.miss", 1);
    let before = sess.faults_seen.get();
    let env = edc::discover_with_retry(sess, &cfg.retry);
    if sess.faults_seen.get() == before && env.unobserved.is_empty() {
        caches.edc_put(&site, Arc::new(env.clone()));
    } else {
        caches.edc.reject();
    }
    env
}

impl PhaseConfig {
    /// Open a session at `site` carrying this configuration's recorder and
    /// fault plan — every session the phases create goes through here so
    /// injected faults and telemetry are threaded uniformly.
    pub fn session<'s>(&self, site: &'s Site) -> Session<'s> {
        let mut sess = Session::with_recorder(site, self.recorder.clone());
        sess.faults = self.faults.clone();
        sess
    }
}

/// Output of a target phase.
#[derive(Debug, Clone)]
pub struct TargetOutcome {
    /// The prediction with per-determinant verdicts.
    pub prediction: crate::predict::Prediction,
    /// The full TEC output (plan, resolution, stack tests).
    pub evaluation: TargetEvaluation,
    /// The environment description gathered at the target.
    pub environment: EnvironmentDescription,
    /// The binary description used (from the target-site BDC run or from
    /// the bundle).
    pub binary: BinaryDescription,
    /// Simulated CPU seconds for the whole phase (§VI.C: "< 5 minutes").
    pub cpu_seconds: f64,
    /// Metrics accumulated by `PhaseConfig::recorder` up to the moment the
    /// phase returned (empty when the recorder is disabled).
    pub telemetry: feam_obs::TelemetrySnapshot,
}

/// Run the source phase at a guaranteed execution environment.
///
/// Describes the binary, discovers the environment, matches the binary to
/// the GEE stack it runs under, compiles hello-world probes with that
/// stack, and collects copies + descriptions of every shared library.
pub fn run_source_phase(
    gee: &Site,
    binary: &Arc<Vec<u8>>,
    cfg: &PhaseConfig,
) -> Result<SourceBundle> {
    let rec = cfg.recorder.clone();
    let _phase_span = rec.span_in("source_phase", cfg.ctx);
    let mut sess = cfg.session(gee);
    let app_path = "/home/user/feam/source_app.bin";
    sess.stage_file(app_path, binary.clone());
    let app = {
        let _span = rec.span("bdc");
        describe_binary_cached(&sess, app_path, binary, cfg)?
    };
    let gee_env = {
        let _span = rec.span("edc");
        discover_cached(&mut sess, cfg)
    };

    // Match the application to a GEE stack: same MPI implementation and,
    // when derivable from the .comment provenance, the same compiler
    // family.
    let bdc::MpiIdentification::Identified(imp) = app.mpi else {
        return Err(FeamError::NotAnMpiBinary(app.path.clone()));
    };
    let comp_family = feam_sim::exec::compiler_from_comments(&app.comments).map(|(f, _)| f);
    let candidates = gee_env.stacks_of(imp);
    let chosen = candidates
        .iter()
        .find(|c| comp_family.map(|f| c.compiler == f.tag()).unwrap_or(true))
        .or_else(|| candidates.first())
        .cloned()
        .cloned();
    let Some(chosen) = chosen else {
        return Err(FeamError::SourcePhaseFailed(format!(
            "no {} stack discovered at {}",
            imp.name(),
            gee.name()
        )));
    };
    let Some(ist) = edc::find_installed(gee, &chosen) else {
        return Err(FeamError::SourcePhaseFailed(format!(
            "discovered stack {} has no loadable installation",
            chosen.ident()
        )));
    };
    sess.load_stack(ist);

    // Confirm the loaded stack matches what the BDC found (§V.B) by
    // running the app's own dependency scan under it, then collect copies.
    let libraries = {
        let _span = rec.span("bdc.collect_libraries");
        bdc::collect_libraries_cached(&mut sess, app_path, cfg.caches.as_deref())?
    };

    // Compile hello worlds with the application's stack for transport.
    let mut hello_worlds = Vec::new();
    for lang in [Language::C, app_language(&app)] {
        sess.charge(12.0);
        if let Ok(hello) = compile_with_retry(
            &mut sess,
            Some(ist),
            &ProgramSpec::mpi_hello_world(lang),
            cfg.seed,
            &cfg.retry,
        ) {
            if hello_worlds
                .iter()
                .all(|h: &HelloWorldProbe| h.language != lang)
            {
                hello_worlds.push(HelloWorldProbe {
                    language: lang,
                    stack_ident: ist.stack.ident(),
                    image: hello.image,
                });
            }
        }
    }

    Ok(SourceBundle {
        gee_site: gee.name().to_string(),
        app,
        gee_env,
        app_stack_ident: Some(ist.stack.ident()),
        libraries,
        hello_worlds,
    })
}

/// Guess the application's language from its runtime dependencies (used
/// only to pick which extra hello world to bundle).
fn app_language(app: &BinaryDescription) -> Language {
    if app.needed.iter().any(|n| {
        n.starts_with("libgfortran")
            || n.starts_with("libg2c")
            || n.starts_with("libifcore")
            || n.starts_with("libpgf90")
            || n.starts_with("libmpi_f77")
            || n.starts_with("libmpichf90")
    }) {
        Language::Fortran
    } else if app.needed.iter().any(|n| n.starts_with("libstdc++")) {
        Language::Cxx
    } else {
        Language::C
    }
}

/// Run the target phase at a target site.
///
/// `binary` is the migrated binary when it was copied to the target;
/// `bundle` is the transported source-phase output. At least one must be
/// provided (§V: running both phases "provides the additional benefit of
/// not requiring the application binary to be present at a target site").
pub fn run_target_phase(
    target: &Site,
    binary: Option<&Arc<Vec<u8>>>,
    bundle: Option<&SourceBundle>,
    cfg: &PhaseConfig,
) -> TargetOutcome {
    let rec = cfg.recorder.clone();
    let phase_span = rec.span_in("target_phase", cfg.ctx);
    let mut sess = cfg.session(target);
    let environment = {
        let _span = rec.span("edc");
        discover_cached(&mut sess, cfg)
    };
    let description: BinaryDescription = match (binary, bundle) {
        (Some(image), _) => {
            let _span = rec.span("bdc");
            sess.stage_file(tec::APP_PATH, (*image).clone());
            match describe_binary_cached(&sess, tec::APP_PATH, image, cfg) {
                Ok(d) => d,
                // Graceful degradation: the staged binary could not be read
                // back (injected VFS fault or corrupt copy). Fall back to
                // the bundle's description when a source phase ran;
                // otherwise return an all-Unknown degraded prediction
                // instead of panicking.
                Err(_) if bundle.is_some() => {
                    rec.count("bdc.fallback_to_bundle", 1);
                    bundle.expect("checked above").app.clone()
                }
                Err(e) => {
                    let mut prediction =
                        crate::predict::Prediction::new(crate::predict::PredictionMode::Basic);
                    for d in crate::predict::Determinant::evaluation_order() {
                        prediction.record_unknown(
                            d,
                            format!("binary unreadable at target ({e}); determinant unobservable"),
                        );
                    }
                    rec.event(
                        "degraded_verdict",
                        &[("reason", "binary-unreadable".into())],
                    );
                    let evaluation = TargetEvaluation::conclude(
                        prediction.clone(),
                        Default::default(),
                        None,
                        Vec::new(),
                        sess.cpu_seconds,
                    );
                    drop(phase_span);
                    return TargetOutcome {
                        prediction,
                        evaluation,
                        environment,
                        binary: empty_description(),
                        cpu_seconds: sess.cpu_seconds,
                        telemetry: rec.snapshot(),
                    };
                }
            }
        }
        (None, Some(b)) => {
            let _span = rec.span("bdc");
            b.app.clone()
        }
        (None, None) => {
            // Nothing to evaluate; produce an empty negative outcome.
            let mut prediction =
                crate::predict::Prediction::new(crate::predict::PredictionMode::Basic);
            prediction.record(
                crate::predict::Determinant::Isa,
                false,
                "no binary and no bundle provided",
            );
            let evaluation = TargetEvaluation::conclude(
                prediction.clone(),
                Default::default(),
                None,
                Vec::new(),
                sess.cpu_seconds,
            );
            drop(phase_span);
            return TargetOutcome {
                prediction,
                evaluation,
                environment,
                binary: empty_description(),
                cpu_seconds: sess.cpu_seconds,
                telemetry: rec.snapshot(),
            };
        }
    };
    let evaluation = tec::evaluate(target, &description, binary, &environment, bundle, cfg);
    let cpu_seconds = sess.cpu_seconds + evaluation.cpu_seconds;
    drop(phase_span);
    TargetOutcome {
        prediction: evaluation.prediction.clone(),
        evaluation,
        environment,
        binary: description,
        cpu_seconds,
        telemetry: rec.snapshot(),
    }
}

fn empty_description() -> BinaryDescription {
    BinaryDescription {
        path: String::new(),
        format: String::new(),
        machine: feam_elf::Machine::Other(0),
        class: feam_elf::Class::Elf64,
        kind: feam_elf::FileKind::Other(0),
        is_dynamic: false,
        needed: Vec::new(),
        soname: None,
        embedded_version: None,
        required_glibc: None,
        version_refs: Vec::new(),
        mpi: bdc::MpiIdentification::NotMpi,
        comments: Vec::new(),
        build_env: Default::default(),
        abi_tag: None,
        evidence: Default::default(),
        provenance: None,
        size: 0,
        content_hash: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feam_sim::compile::{compile as sim_compile, ProgramSpec};
    use feam_sim::toolchain::Language;
    use feam_workloads::sites::{standard_sites, FIR, INDIA, RANGER};

    fn build_at(sites: &[feam_sim::site::Site], site_idx: usize, stack_idx: usize) -> Arc<Vec<u8>> {
        let site = &sites[site_idx];
        let ist = site.stacks[stack_idx].clone();
        sim_compile(
            site,
            Some(&ist),
            &ProgramSpec::new("bt", Language::Fortran),
            99,
        )
        .unwrap()
        .image
    }

    #[test]
    fn source_phase_bundles_libraries_and_hello_worlds() {
        let sites = standard_sites(23);
        let fir = &sites[FIR];
        let image = build_at(&sites, FIR, 1); // openmpi-gnu
        let bundle = run_source_phase(fir, &image, &PhaseConfig::default()).unwrap();
        assert_eq!(bundle.gee_site, "fir");
        assert!(!bundle.libraries.is_empty(), "must copy shared libraries");
        // The C library is never copied.
        assert!(!bundle.libraries.contains_key("libc.so.6"));
        // MPI and Fortran runtime copies are present.
        assert!(bundle.libraries.keys().any(|k| k.starts_with("libmpi")));
        assert!(bundle
            .libraries
            .keys()
            .any(|k| k.starts_with("libgfortran")));
        // Hello worlds: C plus the app's Fortran.
        assert!(bundle.hello_world(Language::C).is_some());
        assert!(bundle.hello_world(Language::Fortran).is_some());
        assert!(bundle.total_bytes() > 100_000);
        let manifest = bundle.manifest();
        assert!(manifest["libraries"].as_array().unwrap().len() >= 3);
    }

    #[test]
    fn source_phase_rejects_non_mpi_binary() {
        let sites = standard_sites(23);
        let fir = &sites[FIR];
        let img = sim_compile(fir, None, &ProgramSpec::serial_hello_world(), 1)
            .unwrap()
            .image;
        assert!(matches!(
            run_source_phase(fir, &img, &PhaseConfig::default()),
            Err(FeamError::NotAnMpiBinary(_))
        ));
    }

    #[test]
    fn target_phase_basic_end_to_end() {
        let sites = standard_sites(23);
        let image = build_at(&sites, RANGER, 1); // openmpi-gnu at Ranger
        let india = &sites[INDIA];
        let outcome = run_target_phase(india, Some(&image), None, &PhaseConfig::default());
        assert_eq!(
            outcome.prediction.mode,
            crate::predict::PredictionMode::Basic
        );
        assert!(!outcome.prediction.verdicts.is_empty());
        assert!(outcome.cpu_seconds > 0.0);
        // Whatever the verdict, a best-effort plan names a stack (India has
        // Open MPI).
        assert!(outcome.evaluation.plan.stack_ident.is_some());
    }

    #[test]
    fn target_phase_extended_without_binary_uses_bundle_description() {
        let sites = standard_sites(23);
        let ranger = &sites[RANGER];
        let image = build_at(&sites, RANGER, 1);
        let bundle = run_source_phase(ranger, &image, &PhaseConfig::default()).unwrap();
        let india = &sites[INDIA];
        let outcome = run_target_phase(india, None, Some(&bundle), &PhaseConfig::default());
        assert_eq!(
            outcome.prediction.mode,
            crate::predict::PredictionMode::Extended
        );
        assert_eq!(outcome.binary.path, bundle.app.path);
    }

    #[test]
    fn target_phase_with_nothing_is_negative() {
        let sites = standard_sites(23);
        let outcome = run_target_phase(&sites[INDIA], None, None, &PhaseConfig::default());
        assert!(!outcome.prediction.ready());
    }

    #[test]
    fn traced_target_phase_emits_component_spans_in_order() {
        let sites = standard_sites(23);
        let image = build_at(&sites, RANGER, 1);
        let (recorder, sink) = feam_obs::Recorder::memory();
        let cfg = PhaseConfig {
            recorder,
            ..PhaseConfig::default()
        };
        let outcome = run_target_phase(&sites[INDIA], Some(&image), None, &cfg);

        let events = sink.events();
        let starts: Vec<&feam_obs::Event> = events
            .iter()
            .filter(|e| e.kind == feam_obs::EventKind::SpanStart)
            .collect();
        let start_of = |name: &str| {
            let matching: Vec<&&feam_obs::Event> =
                starts.iter().filter(|e| e.name == name).collect();
            assert_eq!(
                matching.len(),
                1,
                "exactly one {name} span, got {}",
                matching.len()
            );
            *matching[0]
        };

        // Exactly one span per pipeline component, each a direct child of
        // the phase span.
        let phase = start_of("target_phase");
        assert_eq!(phase.parent, None, "target_phase is the root span");
        let edc = start_of("edc");
        let bdc = start_of("bdc");
        let tec = start_of("tec");
        for child in [edc, bdc, tec] {
            assert_eq!(
                child.parent,
                Some(phase.span),
                "{} nests in target_phase",
                child.name
            );
        }
        // Components start in pipeline order: EDC, then BDC, then TEC.
        assert!(edc.ts_us <= bdc.ts_us && bdc.ts_us <= tec.ts_us);

        // Every span closed, with a duration.
        for s in &starts {
            let end = events
                .iter()
                .find(|e| e.kind == feam_obs::EventKind::SpanEnd && e.span == s.span)
                .unwrap_or_else(|| panic!("span {} never closed", s.name));
            assert!(end.dur_us.is_some(), "{} has a duration", s.name);
            assert!(end.ts_us >= s.ts_us);
        }

        // The snapshot's per-span totals agree with the span tree: each
        // name's count and summed duration match the span_end events.
        for (name, stat) in &outcome.telemetry.spans {
            let ends: Vec<u64> = events
                .iter()
                .filter(|e| e.kind == feam_obs::EventKind::SpanEnd && &e.name == name)
                .map(|e| e.dur_us.unwrap())
                .collect();
            assert_eq!(stat.count, ends.len() as u64, "span count for {name}");
            assert_eq!(
                stat.total_us,
                ends.iter().sum::<u64>(),
                "span total for {name}"
            );
        }
        // Children can't outlast their parent.
        let phase_total = outcome.telemetry.spans["target_phase"].total_us;
        for name in ["edc", "bdc", "tec"] {
            assert!(outcome.telemetry.spans[name].total_us <= phase_total);
        }
    }

    #[test]
    fn disabled_recorder_leaves_telemetry_empty() {
        let sites = standard_sites(23);
        let image = build_at(&sites, RANGER, 1);
        let outcome = run_target_phase(&sites[INDIA], Some(&image), None, &PhaseConfig::default());
        assert!(outcome.telemetry.is_empty(), "no recorder, no telemetry");
    }

    #[test]
    fn cached_target_phase_reuses_descriptions_and_matches_uncached() {
        let sites = standard_sites(23);
        let image = build_at(&sites, RANGER, 1);
        let india = &sites[INDIA];
        let uncached = run_target_phase(india, Some(&image), None, &PhaseConfig::default());

        let caches = Arc::new(crate::cache::PhaseCaches::new(0));
        let cfg = PhaseConfig {
            caches: Some(caches.clone()),
            ..PhaseConfig::default()
        };
        let first = run_target_phase(india, Some(&image), None, &cfg);
        let second = run_target_phase(india, Some(&image), None, &cfg);

        // Warm run hits both layers; descriptions now populate the caches.
        assert_eq!(caches.bdc.stats().misses, 1, "one cold BDC lookup");
        assert!(caches.bdc.stats().hits >= 1, "warm run must hit the BDC");
        assert_eq!(caches.edc.stats().misses, 1, "one cold EDC lookup");
        assert!(caches.edc.stats().hits >= 1, "warm run must hit the EDC");

        // Caching is an optimization, not a semantic change.
        for outcome in [&first, &second] {
            assert_eq!(outcome.prediction.ready(), uncached.prediction.ready());
            assert_eq!(
                outcome.prediction.verdicts.len(),
                uncached.prediction.verdicts.len()
            );
            assert_eq!(outcome.binary.content_hash, uncached.binary.content_hash);
        }
    }

    #[test]
    fn faulted_computations_never_poison_caches() {
        let sites = standard_sites(23);
        let image = build_at(&sites, RANGER, 1);
        let india = &sites[INDIA];
        let caches = Arc::new(crate::cache::PhaseCaches::new(0));

        // Persistent faults on every VFS read and every EDC observation:
        // the staged binary is unreadable and the environment description
        // degrades. The degraded outputs must be served but never inserted
        // into the shared caches.
        let plan = feam_sim::faults::FaultPlan {
            vfs_read: feam_sim::faults::FaultPlan::persistent_vfs(77, 1.0).vfs_read,
            ..feam_sim::faults::FaultPlan::persistent_edc(77, 1.0)
        };
        let chaotic = PhaseConfig {
            caches: Some(caches.clone()),
            faults: Arc::new(plan),
            ..PhaseConfig::default()
        };
        let degraded = run_target_phase(india, Some(&image), None, &chaotic);
        assert!(
            caches.bdc.is_empty(),
            "faulted BDC computation must not be memoized"
        );
        assert!(
            !caches.edc.contains(india.name()),
            "degraded EDC discovery must not be memoized"
        );
        assert!(caches.bdc.stats().rejected + caches.edc.stats().rejected > 0);

        // A fault-free run afterwards fills the caches with clean entries
        // and is not contaminated by the degraded run.
        let clean = PhaseConfig {
            caches: Some(caches.clone()),
            ..PhaseConfig::default()
        };
        let healthy = run_target_phase(india, Some(&image), None, &clean);
        assert!(!caches.bdc.is_empty(), "clean description is cached");
        assert!(caches.edc.contains(india.name()));
        assert!(healthy.environment.unobserved.is_empty());
        assert_ne!(
            degraded.environment.unobserved.len(),
            0,
            "chaotic run really was degraded"
        );
    }

    #[test]
    fn phase_runtimes_under_five_minutes() {
        // §VI.C: "both FEAM's source and target phases always took less
        // than five minutes to complete."
        let sites = standard_sites(23);
        let ranger = &sites[RANGER];
        let image = build_at(&sites, RANGER, 0);
        let t0 = std::time::Instant::now();
        let bundle = run_source_phase(ranger, &image, &PhaseConfig::default()).unwrap();
        let outcome = run_target_phase(
            &sites[FIR],
            Some(&image),
            Some(&bundle),
            &PhaseConfig::default(),
        );
        assert!(
            t0.elapsed().as_secs() < 300,
            "wall clock must stay far below 5 minutes"
        );
        assert!(
            outcome.cpu_seconds < 300.0,
            "simulated CPU budget {} must stay below 5 minutes",
            outcome.cpu_seconds
        );
    }
}
