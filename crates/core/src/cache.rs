//! Description caches for the serving layer (`feam-svc`).
//!
//! FEAM's value proposition is answering "will this binary run there?"
//! without trial execution; in production that question arrives as a
//! stream of (binary, target-site) queries, and most queries repeat a
//! binary or a site already described. Two memoization layers exploit
//! that:
//!
//! * [`BdcCache`] — a **sharded, content-addressed** cache of binary
//!   descriptions keyed by [`BdcKey`], a fast content hash of the ELF
//!   bytes plus a length and second-hash discriminator (so a primary-hash
//!   collision between two distinct byte strings can never cross-serve a
//!   description — `crates/core/tests/cache_keys.rs` pins this). Identical
//!   images share one description regardless of path or site; recursive
//!   library descriptions gathered by the source phase go through the same
//!   cache ([`crate::bdc::collect_libraries_cached`]).
//! * [`EdcCache`] — environment descriptions keyed by **site name +
//!   configuration epoch**, with an optional TTL on a logical clock. A
//!   site reconfiguration bumps the epoch ([`EdcCache::invalidate`]) and
//!   instantly orphans stale entries; the TTL bounds staleness even
//!   without an explicit invalidation signal.
//!
//! **Poisoning guard:** only successful, non-degraded descriptions are
//! inserted. A computation that observed an injected (or real) fault —
//! `Session::faults_seen` moved, or the description carries `unobserved`
//! holes — is served to its requester but never memoized, so one transient
//! NFS hiccup cannot become every future client's answer. Caching is an
//! optimization, never a semantic change: the Table III sweep produces
//! byte-identical predictions with caches on and off (pinned by
//! `tests/cache_equivalence.rs`).

use crate::bdc::BinaryDescription;
use crate::edc::EnvironmentDescription;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently locked shards in the BDC cache. Sharding keeps
/// the service's worker pool from serializing on one mutex; 16 is far
/// beyond the worker counts we run.
pub const BDC_SHARDS: usize = 16;

/// Content identity of one byte string, used as the BDC cache key and as
/// the binary component of every serving-layer key.
///
/// A single 64-bit hash admits collisions: two *distinct* ELF images can
/// share it, and a content-addressed cache keyed on the bare hash would
/// then serve one binary's description for the other. The key therefore
/// carries two independent discriminators — the byte length and a second
/// hash over a different accumulator — and every lookup matches the
/// *whole* key. A forged key sharing only the primary hash misses.
///
/// Both hashes are computed in one word-at-a-time pass: the key is taken
/// on every cached describe call (multi-hundred-KB images, hot serving
/// path), so a per-byte loop would dominate the evaluation itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub struct BdcKey {
    /// Word-at-a-time FNV-style hash of the bytes — the primary
    /// (sharding) hash.
    pub hash: u64,
    /// Byte length of the image.
    pub len: u64,
    /// Independent second hash (SplitMix64-mixed accumulation with a
    /// different offset basis), so equal-length collisions also miss.
    pub alt: u64,
}

impl BdcKey {
    /// The content key of a byte string.
    ///
    /// Both lanes fold the same 8-byte words in one pass. The primary lane
    /// is the word-at-a-time FNV fold (pinned by the engineered-collision
    /// test). The alt lane used to run a full SplitMix64 finalizer per
    /// word; it now uses a single multiply-rotate per word — the
    /// accumulators stay independent (different basis, different update
    /// rule) and one SplitMix64 mix at the end restores avalanche for the
    /// final value. On multi-MB images this halves the per-word work of
    /// the key, which is taken on every cached describe call.
    pub fn of(bytes: &[u8]) -> Self {
        // FNV offset basis / golden-ratio basis.
        const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
        const ALT_MUL: u64 = 0xA24B_AED4_963E_E407;
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut alt: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            hash = (hash ^ w).wrapping_mul(FNV_PRIME);
            alt = (alt ^ w).wrapping_mul(ALT_MUL).rotate_left(29);
        }
        let mut tail: u64 = 0;
        for (i, &b) in chunks.remainder().iter().enumerate() {
            tail |= (b as u64) << (8 * i);
        }
        hash = (hash ^ tail).wrapping_mul(FNV_PRIME);
        alt = feam_sim::rng::mix(alt ^ tail.wrapping_add(bytes.len() as u64));
        BdcKey {
            hash,
            len: bytes.len() as u64,
            alt,
        }
    }
}

/// The content key of a shared byte buffer, memoized by allocation.
///
/// The serving layer re-hashes the same multi-MB images on every request:
/// the simulated VFS hands out `Arc`-shared buffers
/// ([`feam_sim::site::Session::read_bytes`] clones the stored `Arc`), so
/// the *allocation* is a sound memo key for as long as it stays alive. The
/// memo stores a `Weak` alongside the key and only serves a hit when the
/// weak still upgrades to the *same* allocation — a dead entry whose
/// address was reused by a new buffer fails the upgrade and is recomputed,
/// so the key remains a pure function of the bytes.
pub fn content_key_of(bytes: &Arc<Vec<u8>>) -> BdcKey {
    use std::sync::{OnceLock, Weak};
    // Past this many entries, dead weaks are purged before inserting; the
    // table tracks live buffers (corpus + library images), far below this.
    const PURGE_AT: usize = 4096;
    type Memo = Mutex<HashMap<usize, (Weak<Vec<u8>>, BdcKey)>>;
    static MEMO: OnceLock<Memo> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    let ptr = Arc::as_ptr(bytes) as usize;
    if let Some((weak, key)) = memo.lock().expect("content key memo").get(&ptr) {
        if let Some(live) = weak.upgrade() {
            if Arc::ptr_eq(&live, bytes) {
                return *key;
            }
        }
    }
    let key = BdcKey::of(bytes);
    let mut m = memo.lock().expect("content key memo");
    if m.len() >= PURGE_AT {
        m.retain(|_, (weak, _)| weak.strong_count() > 0);
    }
    m.insert(ptr, (Arc::downgrade(bytes), key));
    key
}

/// Is caching enabled for this process? `FEAM_CACHE=0` (or `false`/`off`)
/// disables every cache layer — CI runs the suite once this way to pin
/// that caching never changes results.
pub fn caching_enabled_from_env() -> bool {
    match std::env::var("FEAM_CACHE") {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | "no"),
        Err(_) => true,
    }
}

/// Hit/miss totals for one cache layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct CacheLayerStats {
    pub hits: u64,
    pub misses: u64,
    /// Insertions refused by the poisoning guard (faulted or degraded
    /// computations).
    pub rejected: u64,
}

impl CacheLayerStats {
    /// Hit fraction in [0, 1]; 0 when the layer was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Default)]
struct LayerCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
}

impl LayerCounters {
    fn snapshot(&self) -> CacheLayerStats {
        CacheLayerStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

/// Sharded content-addressed cache of binary descriptions.
pub struct BdcCache {
    shards: Vec<Mutex<HashMap<BdcKey, Arc<BinaryDescription>>>>,
    counters: LayerCounters,
}

impl Default for BdcCache {
    fn default() -> Self {
        BdcCache {
            shards: (0..BDC_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            counters: LayerCounters::default(),
        }
    }
}

impl BdcCache {
    fn shard(&self, key: &BdcKey) -> &Mutex<HashMap<BdcKey, Arc<BinaryDescription>>> {
        &self.shards[(key.hash % BDC_SHARDS as u64) as usize]
    }

    /// Look up a description by its full content key; a key agreeing only
    /// on the primary hash (a collision) misses.
    pub fn get(&self, key: &BdcKey) -> Option<Arc<BinaryDescription>> {
        let hit = self.shard(key).lock().expect("bdc shard").get(key).cloned();
        match &hit {
            Some(_) => self.counters.hits.fetch_add(1, Ordering::Relaxed),
            None => self.counters.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Insert a description under its content key.
    pub fn put(&self, key: BdcKey, desc: Arc<BinaryDescription>) {
        self.shard(&key)
            .lock()
            .expect("bdc shard")
            .insert(key, desc);
    }

    /// Record an insertion refused by the poisoning guard.
    pub fn reject(&self) {
        self.counters.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Entries currently cached (across all shards).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("bdc shard").len())
            .sum()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/reject totals so far.
    pub fn stats(&self) -> CacheLayerStats {
        self.counters.snapshot()
    }
}

struct EdcEntry {
    epoch: u64,
    inserted_at: u64,
    env: Arc<EnvironmentDescription>,
}

/// Environment-description cache keyed by site name + config epoch, with
/// an optional TTL on a logical clock (the service advances the clock once
/// per admitted request, so `ttl` is "requests of staleness tolerated").
pub struct EdcCache {
    /// 0 = entries never expire by age (epoch invalidation still applies).
    ttl: u64,
    clock: AtomicU64,
    entries: Mutex<HashMap<String, EdcEntry>>,
    epochs: Mutex<HashMap<String, u64>>,
    counters: LayerCounters,
}

impl EdcCache {
    /// New cache; `ttl` is in logical clock ticks (0 = no expiry).
    pub fn new(ttl: u64) -> Self {
        EdcCache {
            ttl,
            clock: AtomicU64::new(0),
            entries: Mutex::new(HashMap::new()),
            epochs: Mutex::new(HashMap::new()),
            counters: LayerCounters::default(),
        }
    }

    /// Advance the logical clock by one tick and return the new value.
    pub fn advance_clock(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The current configuration epoch of `site` (0 until invalidated).
    pub fn epoch(&self, site: &str) -> u64 {
        *self
            .epochs
            .lock()
            .expect("edc epochs")
            .get(site)
            .unwrap_or(&0)
    }

    /// Bump `site`'s configuration epoch, orphaning any cached entry (the
    /// "site was reconfigured" signal). Returns the new epoch.
    pub fn invalidate(&self, site: &str) -> u64 {
        let mut epochs = self.epochs.lock().expect("edc epochs");
        let e = epochs.entry(site.to_string()).or_insert(0);
        *e += 1;
        *e
    }

    /// Look up the environment description for `site`, honoring epoch and
    /// TTL.
    pub fn get(&self, site: &str) -> Option<Arc<EnvironmentDescription>> {
        let now = self.clock.load(Ordering::Relaxed);
        let epoch = self.epoch(site);
        let entries = self.entries.lock().expect("edc entries");
        let hit = entries.get(site).and_then(|e| {
            if e.epoch != epoch {
                return None; // site reconfigured since this was described
            }
            if self.ttl > 0 && now.saturating_sub(e.inserted_at) > self.ttl {
                return None; // older than the staleness budget
            }
            Some(e.env.clone())
        });
        match &hit {
            Some(_) => self.counters.hits.fetch_add(1, Ordering::Relaxed),
            None => self.counters.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Insert a description for `site` at the current epoch and clock.
    pub fn put(&self, site: &str, env: Arc<EnvironmentDescription>) {
        let entry = EdcEntry {
            epoch: self.epoch(site),
            inserted_at: self.clock.load(Ordering::Relaxed),
            env,
        };
        self.entries
            .lock()
            .expect("edc entries")
            .insert(site.to_string(), entry);
    }

    /// Record an insertion refused by the poisoning guard.
    pub fn reject(&self) {
        self.counters.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Is there a live (current-epoch, unexpired) entry for `site`? Does
    /// not touch the hit/miss counters — for tests and introspection.
    pub fn contains(&self, site: &str) -> bool {
        let now = self.clock.load(Ordering::Relaxed);
        let epoch = self.epoch(site);
        self.entries
            .lock()
            .expect("edc entries")
            .get(site)
            .is_some_and(|e| {
                e.epoch == epoch && (self.ttl == 0 || now.saturating_sub(e.inserted_at) <= self.ttl)
            })
    }

    /// Hit/miss/reject totals so far.
    pub fn stats(&self) -> CacheLayerStats {
        self.counters.snapshot()
    }
}

/// Memo of the §III.B native hello-world functional test. The verdict is
/// a function of (site, stack, seed, nprocs) alone — not of the binary
/// under evaluation — so one test per advertised stack serves every
/// evaluation at the site. Entries ride the EDC's configuration epoch
/// (reconfiguring a site orphans its memos), and only fault-free tests are
/// memoized, the same poisoning guard the description caches use.
#[derive(Default)]
pub struct StackTestCache {
    entries: Mutex<HashMap<StackTestKey, (u64, bool)>>,
    counters: LayerCounters,
}

/// (site name, stack ident, probe seed, nprocs).
type StackTestKey = (String, String, u64, u32);

impl StackTestCache {
    /// The memoized `native_ok` for this (site, stack) at `epoch`, if the
    /// test already ran under the same seed and process count.
    pub fn get(&self, site: &str, stack: &str, seed: u64, nprocs: u32, epoch: u64) -> Option<bool> {
        let hit = self
            .entries
            .lock()
            .expect("stack-test entries")
            .get(&(site.to_string(), stack.to_string(), seed, nprocs))
            .and_then(|&(e, ok)| (e == epoch).then_some(ok));
        match &hit {
            Some(_) => self.counters.hits.fetch_add(1, Ordering::Relaxed),
            None => self.counters.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Memoize a fault-free test verdict at `epoch`.
    pub fn put(&self, site: &str, stack: &str, seed: u64, nprocs: u32, epoch: u64, ok: bool) {
        self.entries.lock().expect("stack-test entries").insert(
            (site.to_string(), stack.to_string(), seed, nprocs),
            (epoch, ok),
        );
    }

    /// Record an insertion refused by the poisoning guard.
    pub fn reject(&self) {
        self.counters.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Hit/miss/reject totals so far.
    pub fn stats(&self) -> CacheLayerStats {
        self.counters.snapshot()
    }
}

/// The cache bundle threaded through [`crate::phases::PhaseConfig`].
///
/// `PhaseConfig::caches = None` (the default) keeps every phase exactly as
/// uncached — the CLI and the evaluation sweep pay nothing. The service
/// layer installs one shared `PhaseCaches` across all workers.
pub struct PhaseCaches {
    pub bdc: BdcCache,
    pub edc: EdcCache,
    pub stack_tests: StackTestCache,
}

impl std::fmt::Debug for PhaseCaches {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhaseCaches")
            .field("bdc", &self.bdc.stats())
            .field("edc", &self.edc.stats())
            .finish()
    }
}

impl PhaseCaches {
    /// New cache bundle; `edc_ttl` in logical ticks (0 = no expiry).
    pub fn new(edc_ttl: u64) -> Self {
        PhaseCaches {
            bdc: BdcCache::default(),
            edc: EdcCache::new(edc_ttl),
            stack_tests: StackTestCache::default(),
        }
    }

    /// Shorthands used by the phases.
    pub fn bdc_get(&self, key: &BdcKey) -> Option<Arc<BinaryDescription>> {
        self.bdc.get(key)
    }

    pub fn bdc_put(&self, key: BdcKey, desc: Arc<BinaryDescription>) {
        self.bdc.put(key, desc);
    }

    pub fn edc_get(&self, site: &str) -> Option<Arc<EnvironmentDescription>> {
        self.edc.get(site)
    }

    pub fn edc_put(&self, site: &str, env: Arc<EnvironmentDescription>) {
        self.edc.put(site, env);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_desc(site: &str) -> Arc<EnvironmentDescription> {
        Arc::new(EnvironmentDescription {
            isa: "x86_64".into(),
            arch: Some(feam_elf::HostArch::X86_64),
            os: format!("os-of-{site}"),
            c_library: feam_elf::VersionName::parse("GLIBC_2.5"),
            env_mgmt: None,
            available_stacks: vec![],
            loaded_stack: None,
            unobserved: vec![],
        })
    }

    fn bin_desc() -> Arc<BinaryDescription> {
        let mut spec =
            feam_elf::ElfSpec::executable(feam_elf::Machine::X86_64, feam_elf::Class::Elf64);
        spec.needed = vec!["libc.so.6".into()];
        let bytes = spec.build().unwrap();
        Arc::new(BinaryDescription::from_bytes("/tmp/app", &bytes).unwrap())
    }

    #[test]
    fn bdc_cache_round_trips_by_content_key() {
        let c = BdcCache::default();
        let d = bin_desc();
        let key = BdcKey {
            hash: d.content_hash,
            len: d.size as u64,
            alt: 7,
        };
        assert!(c.get(&key).is_none());
        c.put(key, d.clone());
        let got = c.get(&key).unwrap();
        assert_eq!(got.content_hash, d.content_hash);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn bdc_cache_spreads_across_shards() {
        let c = BdcCache::default();
        for h in 0..64u64 {
            c.put(
                BdcKey {
                    hash: h,
                    len: h,
                    alt: h,
                },
                bin_desc(),
            );
        }
        assert_eq!(c.len(), 64);
        let populated = c
            .shards
            .iter()
            .filter(|s| !s.lock().unwrap().is_empty())
            .count();
        assert_eq!(populated, BDC_SHARDS, "sequential hashes fill every shard");
    }

    #[test]
    fn bdc_key_discriminates_beyond_the_primary_hash() {
        let a = BdcKey::of(b"one byte string");
        let b = BdcKey::of(b"two byte string");
        assert_ne!(a, b);
        // Same bytes, same key — the identity is pure in the content.
        assert_eq!(a, BdcKey::of(b"one byte string"));
        // A forged key sharing only the primary hash is a different key.
        let forged = BdcKey { hash: a.hash, ..b };
        assert_ne!(a, forged);
    }

    #[test]
    fn edc_epoch_invalidation_orphans_entries() {
        let c = EdcCache::new(0);
        c.put("ranger", env_desc("ranger"));
        assert!(c.get("ranger").is_some());
        let e = c.invalidate("ranger");
        assert_eq!(e, 1);
        assert!(c.get("ranger").is_none(), "stale epoch must not serve");
        // Re-described at the new epoch: serves again.
        c.put("ranger", env_desc("ranger"));
        assert!(c.get("ranger").is_some());
    }

    #[test]
    fn edc_ttl_expires_on_logical_clock() {
        let c = EdcCache::new(5);
        c.put("india", env_desc("india"));
        for _ in 0..5 {
            c.advance_clock();
        }
        assert!(c.get("india").is_some(), "within the staleness budget");
        c.advance_clock();
        assert!(c.get("india").is_none(), "expired after ttl ticks");
        assert!(!c.contains("india"));
    }

    #[test]
    fn edc_zero_ttl_never_expires() {
        let c = EdcCache::new(0);
        c.put("fir", env_desc("fir"));
        for _ in 0..10_000 {
            c.advance_clock();
        }
        assert!(c.get("fir").is_some());
    }

    #[test]
    fn content_key_memo_matches_direct_key_and_survives_reuse() {
        let a: Arc<Vec<u8>> = Arc::new(b"some image bytes, long enough for words".to_vec());
        let k1 = content_key_of(&a);
        assert_eq!(k1, BdcKey::of(&a), "memoized key equals the direct key");
        assert_eq!(content_key_of(&a), k1, "second call serves the memo");
        drop(a);
        // Allocation reuse after the buffer dies must recompute, never
        // serve a stale key for a different byte string.
        for i in 0..64u8 {
            let b: Arc<Vec<u8>> = Arc::new(vec![i; 64]);
            assert_eq!(content_key_of(&b), BdcKey::of(&b));
        }
    }

    #[test]
    fn env_gate_parses_common_spellings() {
        // Only exercises the parser, not the process environment.
        for off in ["0", "false", "off", "no"] {
            assert!(matches!(off, "0" | "false" | "off" | "no"));
        }
    }
}
