//! User-facing output (§V.C: "If at any point we determine that execution
//! cannot occur, the reasons are detailed to the user via an output
//! file" … "We provide a description of the matching configuration details
//! to the user along with a script that will set them up automatically").

use crate::phases::TargetOutcome;
use std::fmt::Write as _;

/// Serialize the target-phase outcome as JSON (the machine-readable twin
/// of [`render_report`], for toolchains driving FEAM programmatically).
pub fn report_json(outcome: &TargetOutcome) -> serde_json::Value {
    serde_json::json!({
        "mode": format!("{:?}", outcome.prediction.mode),
        "ready": outcome.prediction.ready(),
        "degraded": outcome.prediction.degraded(),
        "confidence": outcome.prediction.confidence(),
        "binary": {
            "summary": outcome.binary.summary(),
            "required_glibc": outcome.binary.required_glibc.as_ref().map(|v| v.render()),
            "needed": outcome.binary.needed,
            "abi_tag": outcome.binary.abi_tag.as_ref().map(|t| t.render()),
            "evidence": evidence_json(&outcome.binary.evidence),
            "provenance": outcome.binary.provenance.as_ref().map(provenance_json),
        },
        "target": {
            "isa": outcome.environment.isa,
            "os": outcome.environment.os,
            "c_library": outcome.environment.c_library.as_ref().map(|v| v.render()),
            "stacks": outcome.environment.available_stacks.iter().map(|d| d.ident()).collect::<Vec<_>>(),
        },
        "determinants": outcome.prediction.verdicts.iter().map(|v| serde_json::json!({
            "determinant": format!("{:?}", v.determinant),
            "verdict": v.verdict.label(),
            "compatible": v.compatible(),
            "detail": v.detail,
        })).collect::<Vec<_>>(),
        "plan": {
            "stack": outcome.evaluation.plan.stack_ident,
            "extra_ld_dirs": outcome.evaluation.plan.extra_ld_dirs,
            "staged": outcome.evaluation.plan.staged.iter().map(|(p, b)| serde_json::json!({
                "path": p, "bytes": b.len(),
            })).collect::<Vec<_>>(),
            "setup_script": outcome.evaluation.plan.setup_script(),
        },
        "cpu_seconds": outcome.cpu_seconds,
        "telemetry": outcome.telemetry.to_json(),
    })
}

/// The evidence survey as JSON (which tables the image actually carries).
pub fn evidence_json(e: &feam_elf::EvidenceSurvey) -> serde_json::Value {
    serde_json::json!({
        "has_section_headers": e.has_section_headers,
        "has_symtab": e.has_symtab,
        "has_comment": e.has_comment,
        "has_dynamic": e.has_dynamic,
        "has_verneed": e.has_verneed,
        "needs_fallback": e.needs_fallback(),
    })
}

/// A provenance report as JSON (claims with tiers and calibrated
/// confidences — the fallback evidence surface of `feam identify`).
pub fn provenance_json(p: &feam_provenance::ProvenanceReport) -> serde_json::Value {
    serde_json::json!({
        "db_version": p.db_version,
        "confidence": p.confidence,
        "compiler": p.compiler.as_ref().map(|c| serde_json::json!({
            "family": c.family.tag(),
            "version": c.version,
            "tier": c.tier.label(),
            "confidence": c.confidence,
        })),
        "mpi_stack": p.mpi_stack.as_ref().map(|m| serde_json::json!({
            "implementation": m.implementation.name(),
            "tier": m.tier.label(),
            "confidence": m.confidence,
        })),
        "runtime": p.runtime.iter().map(|r| serde_json::json!({
            "runtime": r.runtime,
            "evidence": r.evidence,
            "confidence": r.confidence,
        })).collect::<Vec<_>>(),
    })
}

/// Render the target-phase outcome as the report file FEAM writes.
pub fn render_report(outcome: &TargetOutcome) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "==== FEAM target evaluation report ====");
    let _ = writeln!(s, "mode: {:?}", outcome.prediction.mode);
    let _ = writeln!(s, "binary: {}", outcome.binary.summary());
    if let Some(p) = &outcome.binary.provenance {
        let _ = writeln!(s, "---- provenance (fallback evidence) ----");
        if let Some(c) = &p.compiler {
            let _ = writeln!(s, "compiler: {}", c.render());
        }
        if let Some(m) = &p.mpi_stack {
            let _ = writeln!(s, "MPI stack: {}", m.render());
        }
        for r in &p.runtime {
            let _ = writeln!(s, "runtime: {} (via {})", r.runtime, r.evidence);
        }
    }
    let _ = writeln!(s, "target ISA: {}", outcome.environment.isa);
    let _ = writeln!(s, "target OS: {}", outcome.environment.os);
    let _ = writeln!(
        s,
        "target C library: {}",
        outcome
            .environment
            .c_library
            .as_ref()
            .map(|v| v.render())
            .unwrap_or_else(|| "unknown".into())
    );
    let _ = writeln!(s, "---- determinants ----");
    for v in &outcome.prediction.verdicts {
        let _ = writeln!(
            s,
            "[{}] {:?}: {}",
            match v.verdict {
                crate::predict::Determination::Compatible => "ok",
                crate::predict::Determination::Incompatible => "FAIL",
                crate::predict::Determination::Unknown => "??",
            },
            v.determinant,
            v.detail
        );
    }
    let _ = writeln!(s, "---- stack tests ----");
    for t in &outcome.evaluation.stack_tests {
        let _ = writeln!(
            s,
            "{}: native hello world {}{}",
            t.stack_ident,
            if t.native_ok { "passed" } else { "failed" },
            match t.transported_ok {
                Some(true) => ", transported hello world passed",
                Some(false) => ", transported hello world FAILED",
                None => "",
            }
        );
    }
    if let Some(res) = &outcome.evaluation.resolution {
        let _ = writeln!(s, "---- resolution ----");
        for o in &res.outcomes {
            match o {
                crate::resolve::LibraryResolution::Staged {
                    soname,
                    staged_path,
                } => {
                    let _ = writeln!(s, "resolved {soname} -> {staged_path}");
                }
                crate::resolve::LibraryResolution::Failed { soname, reason } => {
                    let _ = writeln!(s, "unresolved {soname}: {reason}");
                }
            }
        }
    }
    let _ = writeln!(s, "---- verdict ----");
    let _ = writeln!(
        s,
        "prediction: {}",
        if outcome.prediction.ready() {
            "READY for execution"
        } else {
            "NOT ready"
        }
    );
    let _ = writeln!(
        s,
        "confidence: {:.2}{}",
        outcome.prediction.confidence(),
        if outcome.prediction.degraded() {
            " (DEGRADED: some determinants could not be observed)"
        } else {
            ""
        }
    );
    if outcome.prediction.ready() {
        let _ = writeln!(s, "---- setup script ----");
        s.push_str(&outcome.evaluation.plan.setup_script());
    }
    let _ = writeln!(s, "phase CPU seconds: {:.1}", outcome.cpu_seconds);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::{run_source_phase, run_target_phase, PhaseConfig};
    use feam_sim::compile::{compile, ProgramSpec};
    use feam_sim::toolchain::Language;
    use feam_workloads::sites::{standard_sites, INDIA, RANGER};

    #[test]
    fn json_report_mirrors_text_report() {
        let sites = standard_sites(31);
        let ranger = &sites[RANGER];
        let ist = ranger.stacks[0].clone();
        let image = compile(ranger, Some(&ist), &ProgramSpec::new("is", Language::C), 4)
            .unwrap()
            .image;
        let cfg = PhaseConfig {
            recorder: feam_obs::Recorder::with_sink(Box::new(feam_obs::NullSink)),
            ..PhaseConfig::default()
        };
        let outcome = run_target_phase(&sites[INDIA], Some(&image), None, &cfg);
        let j = report_json(&outcome);
        assert_eq!(j["ready"], outcome.prediction.ready());
        assert_eq!(j["mode"], "Basic");
        assert!(j["determinants"].as_array().unwrap().len() >= 2);
        assert!(j["target"]["stacks"].as_array().unwrap().len() >= 3);
        // The enabled recorder's metrics ride along under "telemetry".
        assert!(j["telemetry"]["spans"]["target_phase"]["count"].as_u64() == Some(1));
        assert!(j["telemetry"]["spans"]["tec"]["count"].as_u64() == Some(1));
        // Round-trips through serde_json text.
        let text = serde_json::to_string(&j).unwrap();
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back, j);
        // And the telemetry subtree round-trips through the typed snapshot.
        let snap_text = serde_json::to_string(&outcome.telemetry).unwrap();
        let snap_back: feam_obs::TelemetrySnapshot = serde_json::from_str(&snap_text).unwrap();
        assert_eq!(snap_back.to_json(), outcome.telemetry.to_json());
    }

    #[test]
    fn report_contains_determinants_and_verdict() {
        let sites = standard_sites(29);
        let ranger = &sites[RANGER];
        let ist = ranger.stacks[1].clone();
        let image = compile(
            ranger,
            Some(&ist),
            &ProgramSpec::new("ep", Language::Fortran),
            3,
        )
        .unwrap()
        .image;
        let bundle = run_source_phase(ranger, &image, &PhaseConfig::default()).unwrap();
        let outcome = run_target_phase(
            &sites[INDIA],
            Some(&image),
            Some(&bundle),
            &PhaseConfig::default(),
        );
        let report = render_report(&outcome);
        assert!(report.contains("FEAM target evaluation report"));
        assert!(report.contains("determinants"));
        assert!(report.contains("Isa"));
        assert!(report.contains("CLibrary"));
        assert!(report.contains("prediction:"));
        if outcome.prediction.ready() {
            assert!(report.contains("module load"));
        }
    }
}
