//! The resolution model (§IV): make missing shared libraries available at
//! the target by staging copies gathered at a guaranteed execution
//! environment.
//!
//! "For any missing shared library, we recursively apply our prediction
//! model to determine if the library copy can be used. … If a library copy
//! is determined to be useable at a target site, we make the library
//! accessible at runtime by setting the appropriate environment
//! variables." Licensing issues are, as in the paper, out of scope.

use crate::bundle::SourceBundle;
use crate::predict::c_library_compatible;
use feam_elf::{HostArch, VersionName};
use feam_sim::site::Session;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Why a missing library could not be resolved.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum ResolutionFailure {
    /// The bundle has no copy of this soname (it was not found at the GEE
    /// either, or no source phase ran).
    NoCopyAvailable,
    /// The copy was built for a different ISA or word length.
    IsaIncompatible(String),
    /// The copy's C library requirement exceeds the target's C library
    /// (§VI.C: "shared libraries copies … required incompatible C library
    /// versions").
    CLibraryIncompatible {
        required: String,
        target: Option<String>,
    },
    /// A transitive dependency of the copy is missing and itself
    /// unresolvable.
    DependencyUnresolvable { dependency: String },
}

impl ResolutionFailure {
    /// Stable failure class, used as a metrics suffix
    /// (`resolution.failed.<class>`) and a trace-event field so telemetry
    /// can break failures down by cause instead of one generic bucket.
    pub fn class(&self) -> &'static str {
        match self {
            ResolutionFailure::NoCopyAvailable => "no-copy-available",
            ResolutionFailure::IsaIncompatible(_) => "isa-incompatible",
            ResolutionFailure::CLibraryIncompatible { .. } => "c-library-incompatible",
            ResolutionFailure::DependencyUnresolvable { .. } => "dependency-unresolvable",
        }
    }
}

impl std::fmt::Display for ResolutionFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolutionFailure::NoCopyAvailable => write!(f, "no copy available in bundle"),
            ResolutionFailure::IsaIncompatible(d) => write!(f, "copy ISA-incompatible: {d}"),
            ResolutionFailure::CLibraryIncompatible { required, target } => write!(
                f,
                "copy requires {required}, target provides {}",
                target.as_deref().unwrap_or("unknown")
            ),
            ResolutionFailure::DependencyUnresolvable { dependency } => {
                write!(f, "copy's dependency {dependency} unresolvable")
            }
        }
    }
}

/// Outcome of resolving one missing library.
#[derive(Debug, Clone)]
pub enum LibraryResolution {
    /// The copy is predicted usable and staged.
    Staged { soname: String, staged_path: String },
    /// Unresolvable, with the reason reported to the user.
    Failed {
        soname: String,
        reason: ResolutionFailure,
    },
}

/// The complete resolution plan for one (binary, target) pair.
#[derive(Debug, Clone, Default)]
pub struct ResolutionPlan {
    /// Copies staged into the session, as (path, bytes).
    pub staged: Vec<(String, Arc<Vec<u8>>)>,
    /// Per-library outcomes (staged and failed).
    pub outcomes: Vec<LibraryResolution>,
    /// The directory added to the runtime environment.
    pub staging_dir: String,
}

impl ResolutionPlan {
    /// Did every missing library resolve?
    pub fn complete(&self) -> bool {
        !self
            .outcomes
            .iter()
            .any(|o| matches!(o, LibraryResolution::Failed { .. }))
    }

    /// Sonames that failed with their reasons.
    pub fn failures(&self) -> Vec<(&str, &ResolutionFailure)> {
        self.outcomes
            .iter()
            .filter_map(|o| match o {
                LibraryResolution::Failed { soname, reason } => Some((soname.as_str(), reason)),
                _ => None,
            })
            .collect()
    }

    /// Number of staged copies.
    pub fn staged_count(&self) -> usize {
        self.staged.len()
    }
}

/// Recursive usability check for one copy: FEAM's prediction model applied
/// to the library (§IV). `visiting` breaks dependency cycles; `memo`
/// caches verdicts.
fn copy_usable(
    sess: &Session<'_>,
    bundle: &SourceBundle,
    soname: &str,
    target_arch: HostArch,
    target_c_library: Option<&VersionName>,
    memo: &mut BTreeMap<String, Result<(), ResolutionFailure>>,
    visiting: &mut Vec<String>,
) -> Result<(), ResolutionFailure> {
    if let Some(cached) = memo.get(soname) {
        return cached.clone();
    }
    if visiting.iter().any(|v| v == soname) {
        return Ok(()); // cycle: optimistically fine, as ld.so handles cycles
    }
    let Some(copy) = bundle.libraries.get(soname) else {
        let r = Err(ResolutionFailure::NoCopyAvailable);
        memo.insert(soname.to_string(), r.clone());
        return r;
    };
    // Determinant 1: ISA.
    if !target_arch.executes(copy.description.machine, copy.description.class) {
        let r = Err(ResolutionFailure::IsaIncompatible(format!(
            "{} {}-bit",
            copy.description.machine.name(),
            copy.description.class.bits()
        )));
        memo.insert(soname.to_string(), r.clone());
        return r;
    }
    // Determinant 3: C library requirement of the copy itself.
    if !c_library_compatible(copy.description.required_glibc.as_ref(), target_c_library) {
        let r = Err(ResolutionFailure::CLibraryIncompatible {
            required: copy
                .description
                .required_glibc
                .as_ref()
                .map(|v| v.render())
                .unwrap_or_default(),
            target: target_c_library.map(|v| v.render()),
        });
        memo.insert(soname.to_string(), r.clone());
        return r;
    }
    // Determinant 4, recursively: every dependency of the copy must be
    // present at the target or itself resolvable from the bundle.
    visiting.push(soname.to_string());
    let mut verdict: Result<(), ResolutionFailure> = Ok(());
    for dep in &copy.description.needed {
        if crate::bdc::is_c_library(dep) || library_visible(sess, dep) {
            continue;
        }
        if copy_usable(
            sess,
            bundle,
            dep,
            target_arch,
            target_c_library,
            memo,
            visiting,
        )
        .is_err()
        {
            verdict = Err(ResolutionFailure::DependencyUnresolvable {
                dependency: dep.to_string(),
            });
            break;
        }
    }
    visiting.pop();
    memo.insert(soname.to_string(), verdict.clone());
    verdict
}

/// Is a library already visible to the loader at the target (current
/// session paths or findable by FEAM's search)?
fn library_visible(sess: &Session<'_>, soname: &str) -> bool {
    let mut dirs = sess.ld_library_path();
    dirs.extend(sess.site.default_lib_dirs());
    if dirs.iter().any(|d| sess.exists(&format!("{d}/{soname}"))) {
        return true;
    }
    crate::bdc::locate_library(sess, soname).is_some()
}

/// Resolve every library in `missing` from the bundle, staging usable
/// copies (and their transitive missing dependencies) under `staging_dir`.
pub fn resolve_missing(
    sess: &mut Session<'_>,
    bundle: &SourceBundle,
    missing: &[String],
    target_arch: HostArch,
    target_c_library: Option<&VersionName>,
    staging_dir: &str,
) -> ResolutionPlan {
    let mut plan = ResolutionPlan {
        staging_dir: staging_dir.to_string(),
        ..Default::default()
    };
    let mut memo = BTreeMap::new();
    let mut to_stage: Vec<String> = Vec::new();
    for soname in missing {
        sess.charge(0.2);
        let mut visiting = Vec::new();
        match copy_usable(
            sess,
            bundle,
            soname,
            target_arch,
            target_c_library,
            &mut memo,
            &mut visiting,
        ) {
            Ok(()) => {
                sess.recorder.event(
                    "resolution",
                    &[
                        ("soname", soname.as_str().into()),
                        ("outcome", "staged".into()),
                    ],
                );
                sess.recorder.count("resolution.staged", 1);
                to_stage.push(soname.clone());
                plan.outcomes.push(LibraryResolution::Staged {
                    soname: soname.clone(),
                    staged_path: format!("{staging_dir}/{soname}"),
                });
            }
            Err(reason) => {
                sess.recorder.event(
                    "resolution",
                    &[
                        ("soname", soname.as_str().into()),
                        ("outcome", "failed".into()),
                        ("class", reason.class().into()),
                        ("reason", reason.to_string().as_str().into()),
                    ],
                );
                sess.recorder.count("resolution.failed", 1);
                sess.recorder
                    .count(&format!("resolution.failed.{}", reason.class()), 1);
                plan.outcomes.push(LibraryResolution::Failed {
                    soname: soname.clone(),
                    reason,
                });
            }
        }
    }
    // Stage resolved copies plus the transitive bundle dependencies they
    // pull in.
    let mut staged_set = std::collections::BTreeSet::new();
    while let Some(soname) = to_stage.pop() {
        if !staged_set.insert(soname.clone()) {
            continue;
        }
        let Some(copy) = bundle.libraries.get(&soname) else {
            continue;
        };
        let path = format!("{staging_dir}/{soname}");
        sess.stage_file(&path, copy.bytes.clone());
        plan.staged.push((path, copy.bytes.clone()));
        for dep in &copy.description.needed {
            if !crate::bdc::is_c_library(dep)
                && !library_visible(sess, dep)
                && bundle.libraries.contains_key(dep.as_str())
                && !staged_set.contains(dep.as_str())
            {
                to_stage.push(dep.to_string());
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdc::{BinaryDescription, LibraryCopy};
    use crate::edc::EnvironmentDescription;
    use feam_elf::{Class, ElfSpec, ImportSpec, Machine};
    use feam_sim::site::{OsInfo, Site, SiteConfig};
    use feam_sim::toolchain::{Compiler, CompilerFamily};

    fn target_site() -> Site {
        let mut cfg = SiteConfig::new(
            "resolve-target",
            HostArch::X86_64,
            OsInfo::new("CentOS", "5.6", "2.6.18"),
            "2.5",
            31,
        );
        cfg.compilers = vec![Compiler::new(CompilerFamily::Gnu, "4.1.2")];
        Site::build(cfg)
    }

    fn lib_copy(soname: &str, glibc_req: &str, needed: &[&str]) -> LibraryCopy {
        let mut spec = ElfSpec::shared_library(soname, Machine::X86_64, Class::Elf64);
        spec.needed = needed.iter().map(|s| s.to_string()).collect();
        spec.imports = vec![ImportSpec::versioned("memcpy", "libc.so.6", glibc_req)];
        let bytes = Arc::new(spec.build().unwrap());
        let description =
            BinaryDescription::from_bytes(&format!("/gee/lib/{soname}"), &bytes).unwrap();
        LibraryCopy {
            soname: soname.to_string(),
            origin: format!("/gee/lib/{soname}"),
            bytes,
            description,
        }
    }

    fn bundle_with(libs: Vec<LibraryCopy>) -> SourceBundle {
        let mut spec = ElfSpec::executable(Machine::X86_64, Class::Elf64);
        spec.needed = vec!["libc.so.6".into()];
        let app_bytes = spec.build().unwrap();
        SourceBundle {
            gee_site: "gee".into(),
            app: BinaryDescription::from_bytes("/gee/app", &app_bytes).unwrap(),
            gee_env: EnvironmentDescription {
                isa: "x86_64".into(),
                arch: Some(HostArch::X86_64),
                os: "gee os".into(),
                c_library: VersionName::parse("GLIBC_2.12"),
                env_mgmt: None,
                available_stacks: vec![],
                loaded_stack: None,
                unobserved: vec![],
            },
            app_stack_ident: None,
            libraries: libs.into_iter().map(|l| (l.soname.clone(), l)).collect(),
            hello_worlds: vec![],
        }
    }

    #[test]
    fn portable_copy_resolves_and_stages() {
        let site = target_site();
        let mut sess = Session::new(&site);
        let bundle = bundle_with(vec![lib_copy("libpgf90.so", "GLIBC_2.2.5", &["libc.so.6"])]);
        let target_glibc = site.glibc_version();
        let plan = resolve_missing(
            &mut sess,
            &bundle,
            &["libpgf90.so".to_string()],
            HostArch::X86_64,
            Some(&target_glibc),
            "/home/user/feam/libs",
        );
        assert!(plan.complete());
        assert_eq!(plan.staged_count(), 1);
        assert!(sess.exists("/home/user/feam/libs/libpgf90.so"));
    }

    #[test]
    fn hot_glibc_copy_rejected_at_old_site() {
        let site = target_site(); // glibc 2.5
        let mut sess = Session::new(&site);
        let bundle = bundle_with(vec![lib_copy(
            "libgfortran.so.3",
            "GLIBC_2.12",
            &["libc.so.6"],
        )]);
        let target_glibc = site.glibc_version();
        let plan = resolve_missing(
            &mut sess,
            &bundle,
            &["libgfortran.so.3".to_string()],
            HostArch::X86_64,
            Some(&target_glibc),
            "/home/user/feam/libs",
        );
        assert!(!plan.complete());
        let fails = plan.failures();
        assert_eq!(fails.len(), 1);
        assert!(matches!(
            fails[0].1,
            ResolutionFailure::CLibraryIncompatible { .. }
        ));
        assert_eq!(plan.staged_count(), 0);
    }

    #[test]
    fn missing_from_bundle_reported() {
        let site = target_site();
        let mut sess = Session::new(&site);
        let bundle = bundle_with(vec![]);
        let plan = resolve_missing(
            &mut sess,
            &bundle,
            &["libweird.so.4".to_string()],
            HostArch::X86_64,
            None,
            "/tmp/s",
        );
        assert!(!plan.complete());
        assert!(matches!(
            plan.failures()[0].1,
            ResolutionFailure::NoCopyAvailable
        ));
    }

    #[test]
    fn transitive_dependency_staged_too() {
        let site = target_site();
        let mut sess = Session::new(&site);
        // libA needs libB; both absent at target, both in bundle.
        let bundle = bundle_with(vec![
            lib_copy("libA.so.1", "GLIBC_2.2.5", &["libB.so.1", "libc.so.6"]),
            lib_copy("libB.so.1", "GLIBC_2.2.5", &["libc.so.6"]),
        ]);
        let target_glibc = site.glibc_version();
        let plan = resolve_missing(
            &mut sess,
            &bundle,
            &["libA.so.1".to_string()],
            HostArch::X86_64,
            Some(&target_glibc),
            "/stage",
        );
        assert!(plan.complete());
        assert_eq!(plan.staged_count(), 2, "dependency must be staged too");
        assert!(sess.exists("/stage/libB.so.1"));
    }

    #[test]
    fn unresolvable_dependency_poisons_the_copy() {
        let site = target_site(); // glibc 2.5
        let mut sess = Session::new(&site);
        // libA depends on libB whose copy needs glibc 2.12.
        let bundle = bundle_with(vec![
            lib_copy("libA.so.1", "GLIBC_2.2.5", &["libB.so.1", "libc.so.6"]),
            lib_copy("libB.so.1", "GLIBC_2.12", &["libc.so.6"]),
        ]);
        let target_glibc = site.glibc_version();
        let plan = resolve_missing(
            &mut sess,
            &bundle,
            &["libA.so.1".to_string()],
            HostArch::X86_64,
            Some(&target_glibc),
            "/stage",
        );
        assert!(!plan.complete());
        assert!(matches!(
            plan.failures()[0].1,
            ResolutionFailure::DependencyUnresolvable { .. }
        ));
    }

    #[test]
    fn failure_classes_counted_per_cause() {
        let site = target_site(); // glibc 2.5
        let (rec, _sink) = feam_obs::Recorder::memory();
        let mut sess = Session::with_recorder(&site, rec.clone());
        let bundle = bundle_with(vec![lib_copy(
            "libgfortran.so.3",
            "GLIBC_2.12",
            &["libc.so.6"],
        )]);
        let target_glibc = site.glibc_version();
        let plan = resolve_missing(
            &mut sess,
            &bundle,
            &[
                "libgfortran.so.3".to_string(), // copy needs newer glibc
                "libweird.so.4".to_string(),    // not in bundle at all
            ],
            HostArch::X86_64,
            Some(&target_glibc),
            "/stage",
        );
        assert!(!plan.complete());
        assert_eq!(
            plan.failures()[0].1.class(),
            "c-library-incompatible",
            "classes are stable strings"
        );
        let counters = rec.snapshot().counters;
        assert_eq!(counters.get("resolution.failed"), Some(&2));
        assert_eq!(
            counters.get("resolution.failed.c-library-incompatible"),
            Some(&1)
        );
        assert_eq!(
            counters.get("resolution.failed.no-copy-available"),
            Some(&1)
        );
    }

    #[test]
    fn wrong_isa_copy_rejected() {
        let site = target_site();
        let mut sess = Session::new(&site);
        let mut spec = ElfSpec::shared_library("libppc.so.1", Machine::Ppc64, Class::Elf64);
        spec.needed = vec!["libc.so.6".into()];
        let bytes = Arc::new(spec.build().unwrap());
        let description = BinaryDescription::from_bytes("/gee/libppc.so.1", &bytes).unwrap();
        let bundle = bundle_with(vec![LibraryCopy {
            soname: "libppc.so.1".into(),
            origin: "/gee/libppc.so.1".into(),
            bytes,
            description,
        }]);
        let plan = resolve_missing(
            &mut sess,
            &bundle,
            &["libppc.so.1".to_string()],
            HostArch::X86_64,
            None,
            "/stage",
        );
        assert!(matches!(
            plan.failures()[0].1,
            ResolutionFailure::IsaIncompatible(_)
        ));
    }
}
