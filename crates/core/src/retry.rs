//! Bounded retry with exponential backoff on the simulated clock.
//!
//! The paper worked around unpredictable site errors with "five execution
//! attempts spaced in time" (§VI.C). [`RetryPolicy`] generalizes that lone
//! counter into a uniform policy — bounded attempts plus exponential
//! backoff — applied to probe compiles, launches and queue submissions.
//! Backoff delays are charged to the session's simulated CPU clock, so the
//! "< 5 minutes per phase" statistic keeps honest under retries, and every
//! consumed retry emits a `retry_attempt` event on the session recorder.

use feam_sim::compile::{CompileError, CompiledBinary, ProgramSpec};
use feam_sim::exec::{run_mpi, ExecOutcome};
use feam_sim::site::{InstalledStack, Session};

/// Bounded attempts with exponential backoff.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts (≥ 1); the paper's five.
    pub max_attempts: u32,
    /// Delay before the second attempt, in simulated seconds.
    pub base_delay_seconds: f64,
    /// Multiplier applied to the delay for each further attempt.
    pub multiplier: f64,
    /// Upper bound on a single delay.
    pub max_delay_seconds: f64,
    /// Jitter fraction in `[0, 1]`: each backoff delay is scaled by a
    /// deterministic per-key draw in `[1 - jitter, 1]`, so a fleet of
    /// clients backing off from the same incident spreads out instead of
    /// retrying in lockstep. `0.0` (the default) is the pure exponential
    /// schedule.
    pub jitter: f64,
    /// Seed for the jitter draws; the schedule is a pure function of
    /// `(jitter_seed, key, attempt)`, so a run replays exactly.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: feam_sim::exec::DEFAULT_ATTEMPTS,
            base_delay_seconds: 1.0,
            multiplier: 2.0,
            max_delay_seconds: 8.0,
            jitter: 0.0,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` and the default backoff curve.
    pub fn with_attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// This policy with seeded jitter enabled (fraction clamped to
    /// `[0, 1]`).
    pub fn with_jitter(self, jitter: f64, jitter_seed: u64) -> Self {
        RetryPolicy {
            jitter: jitter.clamp(0.0, 1.0),
            jitter_seed,
            ..self
        }
    }

    /// Backoff delay charged before `attempt` (1-based; the first attempt
    /// is free). This is the deterministic exponential envelope — the
    /// upper bound a jittered delay is drawn under.
    pub fn delay_before(&self, attempt: u32) -> f64 {
        if attempt <= 1 {
            return 0.0;
        }
        let exp = (attempt - 2).min(30);
        (self.base_delay_seconds * self.multiplier.powi(exp as i32)).min(self.max_delay_seconds)
    }

    /// [`delay_before`](RetryPolicy::delay_before) with the policy's
    /// seeded jitter applied: a deterministic draw for
    /// `(jitter_seed, key, attempt)` scales the envelope into
    /// `[envelope · (1 − jitter), envelope]`. Two clients retrying the
    /// same incident under different seeds (or keys) desynchronize; the
    /// same `(seed, key, attempt)` always yields the same delay.
    pub fn jittered_delay_before(&self, attempt: u32, key: &str) -> f64 {
        let envelope = self.delay_before(attempt);
        let jitter = self.jitter.clamp(0.0, 1.0);
        if envelope <= 0.0 || jitter <= 0.0 {
            return envelope;
        }
        let u = feam_sim::rng::unit_f64(feam_sim::rng::hash_parts(
            self.jitter_seed,
            &["retry-jitter", key, &attempt.to_string()],
        ));
        envelope * (1.0 - jitter * u)
    }

    /// Total backoff spent when `attempts` attempts were consumed
    /// (jitter-free envelope; an upper bound on any jittered schedule).
    pub fn total_backoff(&self, attempts: u32) -> f64 {
        (2..=attempts).map(|a| self.delay_before(a)).sum()
    }
}

/// Record one consumed retry: charge its backoff to the simulated clock
/// and emit a `retry_attempt` event.
fn note_retry(sess: &mut Session<'_>, what: &str, attempt: u32, delay: f64) {
    sess.charge(delay);
    sess.recorder.event(
        "retry_attempt",
        &[
            ("what", what.into()),
            ("attempt", attempt.into()),
            ("delay_s", delay.into()),
        ],
    );
    sess.recorder.count("retry.attempts", 1);
}

/// [`run_mpi`] under a retry policy: the launch loop itself retries (as
/// the paper did), and the backoff between those attempts is charged to
/// the session clock and surfaced as `retry_attempt` events.
pub fn launch_with_retry(
    sess: &mut Session<'_>,
    path: &str,
    launcher: &InstalledStack,
    nprocs: u32,
    policy: &RetryPolicy,
) -> ExecOutcome {
    let outcome = run_mpi(sess, path, launcher, nprocs, policy.max_attempts);
    for attempt in 2..=outcome.attempts {
        note_retry(
            sess,
            "launch",
            attempt,
            policy.jittered_delay_before(attempt, path),
        );
    }
    outcome
}

/// Probe compile under a retry policy: transient toolchain failures
/// (injected or otherwise) are retried with backoff; hard errors return
/// immediately.
pub fn compile_with_retry(
    sess: &mut Session<'_>,
    stack: Option<&InstalledStack>,
    prog: &ProgramSpec,
    seed: u64,
    policy: &RetryPolicy,
) -> Result<CompiledBinary, CompileError> {
    let max = policy.max_attempts.max(1);
    let mut last = None;
    for attempt in 1..=max {
        match feam_sim::compile::compile_in_session(sess, stack, prog, seed, attempt) {
            Err(e) if e.is_transient() && attempt < max => {
                note_retry(
                    sess,
                    "compile",
                    attempt + 1,
                    policy.jittered_delay_before(attempt + 1, &prog.name),
                );
                last = Some(Err(e));
            }
            other => return other,
        }
    }
    last.expect("loop ran at least once")
}

#[cfg(test)]
mod tests {
    use super::*;
    use feam_elf::HostArch;
    use feam_sim::faults::{FaultPlan, FaultRate};
    use feam_sim::mpi::{MpiImpl, MpiStack, Network};
    use feam_sim::site::{OsInfo, Site, SiteConfig};
    use feam_sim::toolchain::{Compiler, CompilerFamily, Language};
    use std::sync::Arc;

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy::default();
        assert_eq!(p.delay_before(1), 0.0);
        assert_eq!(p.delay_before(2), 1.0);
        assert_eq!(p.delay_before(3), 2.0);
        assert_eq!(p.delay_before(4), 4.0);
        assert_eq!(p.delay_before(5), 8.0);
        assert_eq!(p.delay_before(6), 8.0, "capped at max_delay_seconds");
        assert_eq!(p.total_backoff(1), 0.0);
        assert_eq!(p.total_backoff(5), 15.0);
    }

    #[test]
    fn jitter_draws_are_seeded_bounded_and_decorrelated() {
        let p = RetryPolicy::default().with_jitter(0.5, 7);
        for attempt in 2..=6 {
            let envelope = p.delay_before(attempt);
            let d = p.jittered_delay_before(attempt, "compile@site-a");
            assert!(
                d > 0.0 && d <= envelope && d >= envelope * 0.5,
                "attempt {attempt}: jittered {d} outside [{}, {envelope}]",
                envelope * 0.5
            );
            // Pure function of (seed, key, attempt): replays exactly.
            assert_eq!(d, p.jittered_delay_before(attempt, "compile@site-a"));
        }
        // Different seeds (fleet clients) desynchronize the schedule.
        let q = RetryPolicy::default().with_jitter(0.5, 8);
        let schedule = |pol: &RetryPolicy| -> Vec<f64> {
            (2..=6)
                .map(|a| pol.jittered_delay_before(a, "compile@site-a"))
                .collect()
        };
        assert_ne!(schedule(&p), schedule(&q));
        // Different keys desynchronize too.
        assert_ne!(
            schedule(&p),
            (2..=6)
                .map(|a| p.jittered_delay_before(a, "compile@site-b"))
                .collect::<Vec<f64>>()
        );
        // The first attempt stays free, and zero jitter is the envelope.
        assert_eq!(p.jittered_delay_before(1, "x"), 0.0);
        let plain = RetryPolicy::default();
        for a in 2..=6 {
            assert_eq!(plain.jittered_delay_before(a, "x"), plain.delay_before(a));
        }
    }

    fn probe_site(f: impl FnOnce(&mut SiteConfig)) -> Site {
        let mut cfg = SiteConfig::new(
            "retry-test",
            HostArch::X86_64,
            OsInfo::new("CentOS", "5.6", "2.6.18"),
            "2.5",
            11,
        );
        cfg.compilers = vec![Compiler::new(CompilerFamily::Gnu, "4.1.2")];
        cfg.stacks = vec![(
            MpiStack::new(
                MpiImpl::OpenMpi,
                "1.4",
                Compiler::new(CompilerFamily::Gnu, "4.1.2"),
                Network::Ethernet,
            ),
            true,
        )];
        cfg.system_error_rate = 0.0;
        f(&mut cfg);
        Site::build(cfg)
    }

    #[test]
    fn transient_compile_faults_recover_under_retry() {
        let site = probe_site(|_| {});
        let ist = site.stacks[0].clone();
        let prog = ProgramSpec::mpi_hello_world(Language::C);
        // A high transient rate: the first attempt frequently faults, but
        // five attempts essentially always find a clean roll.
        let plan = FaultPlan {
            seed: 5,
            probe_compile: FaultRate {
                transient: 0.5,
                persistent: 0.0,
            },
            ..FaultPlan::default()
        };
        let mut sess = Session::with_faults(&site, Arc::new(plan));
        let result = compile_with_retry(&mut sess, Some(&ist), &prog, 7, &RetryPolicy::default());
        assert!(result.is_ok(), "retries should recover: {result:?}");
    }

    #[test]
    fn exhausted_transient_compile_reports_transient_error() {
        let site = probe_site(|_| {});
        let ist = site.stacks[0].clone();
        let prog = ProgramSpec::mpi_hello_world(Language::C);
        let plan = FaultPlan {
            seed: 5,
            probe_compile: FaultRate {
                transient: 1.0,
                persistent: 0.0,
            },
            ..FaultPlan::default()
        };
        let mut sess = Session::with_faults(&site, Arc::new(plan));
        let before = sess.cpu_seconds;
        let result = compile_with_retry(&mut sess, Some(&ist), &prog, 7, &RetryPolicy::default());
        assert!(
            matches!(result, Err(ref e) if e.is_transient()),
            "{result:?}"
        );
        // Four retries of backoff were charged to the simulated clock.
        assert!(
            sess.cpu_seconds - before >= 15.0,
            "backoff charged: {}",
            sess.cpu_seconds - before
        );
    }
}
