//! Name interning for the description pipeline.
//!
//! A described binary and its recursive library graph repeat the same
//! handful of names — sonames, version strings, compiler comments — across
//! dozens of `BinaryDescription`s per request. Two pieces keep that cheap:
//!
//! * [`IStr`] — an immutable refcounted string. Cloning a description (the
//!   BDC cache hit path) bumps reference counts instead of copying name
//!   bytes; serialization is byte-identical to `String`, so report JSON
//!   and golden fingerprints are unaffected.
//! * [`Interner`] — a per-request arena mapping names to stable dense ids
//!   and shared `IStr` storage. `collect_libraries` threads one through a
//!   request so every library that mentions `libc.so.6` holds the same
//!   allocation. Ids are assigned in first-intern order and stay stable
//!   for the arena's lifetime; `reset` recycles the arena between
//!   requests.
//!
//! Properties (id stability, round-trips, collision freedom, reset
//! safety) are pinned by `crates/core/tests/intern_properties.rs`.

use serde::{Content, Deserialize, Error as DeError, Serialize};
use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable string with `String` serialization.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IStr(Arc<str>);

impl IStr {
    /// Intern-free construction (one allocation, shared thereafter).
    pub fn new(s: &str) -> Self {
        IStr(Arc::from(s))
    }

    /// View as `&str`.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Deref for IStr {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for IStr {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for IStr {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl fmt::Debug for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

impl From<&str> for IStr {
    fn from(s: &str) -> Self {
        IStr::new(s)
    }
}

impl From<String> for IStr {
    fn from(s: String) -> Self {
        IStr(Arc::from(s))
    }
}

impl PartialEq<str> for IStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for IStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for IStr {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

// Serialized exactly like `String` so descriptions holding `IStr` fields
// stay byte-identical to earlier releases.
impl Serialize for IStr {
    fn to_content(&self) -> Content {
        Content::Str(self.0.to_string())
    }
}

impl Deserialize for IStr {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(IStr::new(s)),
            _ => Err(DeError("expected a string".into())),
        }
    }
}

/// Dense id of one interned name, stable for the arena's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(u32);

impl NameId {
    /// The id as a dense index into the arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A per-request name arena: first-intern order assigns dense ids, and
/// every equal name shares one `IStr` allocation.
#[derive(Debug, Default)]
pub struct Interner {
    names: Vec<IStr>,
    index: HashMap<IStr, NameId>,
}

impl Interner {
    /// An empty arena.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern `s`, returning its stable id. Re-interning an existing name
    /// returns the original id regardless of what was interned in between.
    pub fn intern(&mut self, s: &str) -> NameId {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = NameId(u32::try_from(self.names.len()).expect("interner overflow"));
        let name = IStr::new(s);
        self.names.push(name.clone());
        self.index.insert(name, id);
        id
    }

    /// Intern `s` and return the shared [`IStr`] for it.
    pub fn istr(&mut self, s: &str) -> IStr {
        let id = self.intern(s);
        self.names[id.index()].clone()
    }

    /// The name behind `id`. Panics on a foreign id (an id from another
    /// arena generation after [`reset`](Self::reset)).
    pub fn resolve(&self, id: NameId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct names interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Clear the arena between requests. Previously issued ids become
    /// invalid; previously issued `IStr`s remain valid (they own their
    /// storage).
    pub fn reset(&mut self) {
        self.names.clear();
        self.index.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn istr_behaves_like_str() {
        let s = IStr::new("libc.so.6");
        assert_eq!(s, "libc.so.6");
        assert_eq!(s.len(), 9);
        assert!(s.starts_with("libc"));
        assert_eq!(format!("{s}"), "libc.so.6");
        assert_eq!(format!("{s:?}"), "\"libc.so.6\"");
    }

    #[test]
    fn istr_serializes_exactly_like_string() {
        let s = IStr::new("GLIBC_2.5");
        assert_eq!(s.to_content(), "GLIBC_2.5".to_string().to_content());
        let back = IStr::from_content(&s.to_content()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn interner_dedupes_and_round_trips() {
        let mut arena = Interner::new();
        let a = arena.intern("libmpi.so.0");
        let b = arena.intern("libc.so.6");
        assert_ne!(a, b);
        assert_eq!(arena.intern("libmpi.so.0"), a);
        assert_eq!(arena.resolve(a), "libmpi.so.0");
        assert_eq!(arena.resolve(b), "libc.so.6");
        assert_eq!(arena.len(), 2);
        let x = arena.istr("libc.so.6");
        let y = arena.istr("libc.so.6");
        assert!(Arc::ptr_eq(&x.0, &y.0), "equal names share one allocation");
    }
}
