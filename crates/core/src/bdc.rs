//! The Binary Description Component (§V.A).
//!
//! Gathers the Figure 3 information about an MPI application binary:
//!
//! * ISA and file format of the binary,
//! * library name and version, if the binary is itself a shared library,
//! * required shared libraries (with copies and descriptions at a GEE),
//! * C library version requirements,
//! * MPI stack, operating system, and C library version used to build it.
//!
//! Information is gathered the way FEAM does it: primarily by parsing the
//! ELF image (`objdump -p` / `readelf` equivalents via `feam-elf`), with
//! `ldd`-based dependency location at guaranteed execution sites and
//! `locate`/`find` fallbacks when `ldd` is absent or unreliable.

use crate::error::{FeamError, Result};
use crate::intern::{IStr, Interner};
use feam_elf::comment::{extract_provenance, Provenance};
use feam_elf::{Class, FileKind, LazyElf, Machine, Soname, VersionName, VersionRef, VersionRefV};
use feam_sim::mpi::MpiImpl;
use feam_sim::site::Session;
use feam_sim::tools::{self, LddResult};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Identification of the MPI implementation a binary was compiled with,
/// using Table I's link-level signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MpiIdentification {
    /// Identified as one of the three implementations.
    Identified(MpiImpl),
    /// Dynamically linked but no MPI library among the dependencies.
    NotMpi,
}

/// Table I: identify the MPI implementation from the `DT_NEEDED` list.
///
/// * MVAPICH2 — `libmpich`/`libmpichf90` **and** `libibverbs` + `libibumad`;
/// * Open MPI — `libnsl` + `libutil` (and `libmpi`);
/// * MPICH2 — `libmpich`/`libmpichf90` and *not* the other identifiers.
pub fn identify_mpi<S: AsRef<str>>(needed: &[S]) -> MpiIdentification {
    let has = |prefix: &str| needed.iter().any(|n| n.as_ref().starts_with(prefix));
    let has_mpich = has("libmpich");
    let has_ibverbs = has("libibverbs");
    let has_ibumad = has("libibumad");
    let has_openmpi_lib = has("libmpi.so") || has("libmpi_f77") || has("libmpi_f90");
    let has_nsl = has("libnsl");
    let has_util = has("libutil");
    if has_mpich {
        if has_ibverbs && has_ibumad {
            MpiIdentification::Identified(MpiImpl::Mvapich2)
        } else {
            MpiIdentification::Identified(MpiImpl::Mpich2)
        }
    } else if has_openmpi_lib && has_nsl && has_util {
        MpiIdentification::Identified(MpiImpl::OpenMpi)
    } else if has_openmpi_lib {
        // libmpi present but the companion identifiers are not: still Open
        // MPI's library lineage.
        MpiIdentification::Identified(MpiImpl::OpenMpi)
    } else {
        MpiIdentification::NotMpi
    }
}

/// Build-environment hints recovered from `.comment` (what OS / compiler /
/// C library the binary was created with).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BuildEnvironment {
    /// Compiler identification string.
    pub compiler: Option<String>,
    /// Distribution hint from the compiler vendor string.
    pub distro_hint: Option<String>,
}

/// The Figure 3 description of one binary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BinaryDescription {
    /// Where the binary was read from.
    pub path: String,
    /// File format name (always `ELF` for parseable inputs).
    pub format: String,
    pub machine: Machine,
    pub class: Class,
    pub kind: FileKind,
    /// Whether the binary is dynamically linked.
    pub is_dynamic: bool,
    /// `DT_NEEDED` sonames.
    pub needed: Vec<IStr>,
    /// For shared libraries: the official shared-object name…
    pub soname: Option<IStr>,
    /// …and the version information embedded in it.
    pub embedded_version: Option<Soname>,
    /// The required C library version (§III.C).
    pub required_glibc: Option<VersionName>,
    /// Full Version References (used by extended compatibility checks).
    pub version_refs: Vec<VersionRef>,
    /// MPI implementation identification (Table I).
    pub mpi: MpiIdentification,
    /// Raw `.comment` strings.
    pub comments: Vec<IStr>,
    /// Parsed build-environment hints.
    pub build_env: BuildEnvironment,
    /// `NT_GNU_ABI_TAG` (OS + minimum kernel), when present.
    pub abi_tag: Option<feam_elf::AbiTag>,
    /// Which evidence tables the image actually carries (absence is a
    /// finding, not a fault).
    pub evidence: feam_elf::EvidenceSurvey,
    /// Fallback provenance claims from signature matching. Attached only
    /// when direct evidence is missing (`.comment` empty or the binary is
    /// statically linked), so cooperative binaries describe identically to
    /// earlier releases.
    pub provenance: Option<feam_provenance::ProvenanceReport>,
    /// Image size in bytes.
    pub size: usize,
    /// Stable content hash of the described image — the primary lane of
    /// the [`crate::cache::BdcKey`] the description caches key on, so the
    /// image is hashed once per describe, not once per consumer.
    pub content_hash: u64,
}

impl BinaryDescription {
    /// Describe an ELF image read from `path` bytes.
    pub fn from_bytes(path: &str, bytes: &[u8]) -> Result<Self> {
        Self::from_bytes_keyed(path, bytes, crate::cache::BdcKey::of(bytes), None)
    }

    /// [`from_bytes`](Self::from_bytes) with the content key precomputed —
    /// `content_hash` is the key's primary lane, so an image is hashed
    /// exactly once per describe instead of once per consumer — and an
    /// optional per-request name arena so every description in a request's
    /// library graph shares one allocation per distinct soname/comment.
    pub fn from_bytes_keyed(
        path: &str,
        bytes: &[u8],
        key: crate::cache::BdcKey,
        mut arena: Option<&mut Interner>,
    ) -> Result<Self> {
        let f = LazyElf::parse(bytes)
            .map_err(|e| FeamError::BinaryUnreadable(format!("{path}: {e}")))?;
        let provenance: Provenance = extract_provenance(f.comments());
        let evidence = f.evidence();
        // Fall back to signature matching only when a direct channel is
        // missing; a non-empty report then carries the calibrated claims.
        let fallback = if evidence.needs_fallback() {
            Some(feam_provenance::analyze(&f)).filter(|r| !r.is_empty())
        } else {
            None
        };
        let mut name = |s: &str| match arena.as_deref_mut() {
            Some(a) => a.istr(s),
            None => IStr::new(s),
        };
        let needed: Vec<IStr> = f.needed().iter().map(|s| name(s)).collect();
        let soname = f.soname().map(&mut name);
        let comments: Vec<IStr> = f.comments().iter().map(|s| name(s)).collect();
        Ok(BinaryDescription {
            path: path.to_string(),
            format: "ELF".to_string(),
            machine: f.machine(),
            class: f.class(),
            kind: f.kind(),
            is_dynamic: f.is_dynamic(),
            embedded_version: f.soname().and_then(Soname::parse),
            required_glibc: f.required_glibc(),
            version_refs: f.version_refs().iter().map(VersionRefV::owned).collect(),
            mpi: identify_mpi(&needed),
            needed,
            soname,
            comments,
            build_env: BuildEnvironment {
                compiler: provenance.compiler,
                distro_hint: provenance.distro_hint,
            },
            abi_tag: f.abi_tag(),
            evidence,
            provenance: fallback,
            size: bytes.len(),
            content_hash: key.hash,
        })
    }

    /// The historical eager twin of [`from_bytes`](Self::from_bytes), kept
    /// for the differential suite (`tests/elf_differential.rs`): parses
    /// with the owned `reader::ElfFile` and must serialize byte-identically
    /// to the lazy path on every input both accept.
    #[cfg(feature = "eager")]
    pub fn from_bytes_eager(path: &str, bytes: &[u8]) -> Result<Self> {
        let f = feam_elf::ElfFile::parse(bytes)
            .map_err(|e| FeamError::BinaryUnreadable(format!("{path}: {e}")))?;
        let provenance: Provenance = extract_provenance(f.comments());
        let evidence = f.evidence();
        let fallback = if evidence.needs_fallback() {
            Some(feam_provenance::analyze_eager(&f)).filter(|r| !r.is_empty())
        } else {
            None
        };
        let needed: Vec<IStr> = f.needed().iter().map(|s| IStr::new(s)).collect();
        Ok(BinaryDescription {
            path: path.to_string(),
            format: "ELF".to_string(),
            machine: f.machine(),
            class: f.class(),
            kind: f.kind(),
            is_dynamic: f.is_dynamic(),
            soname: f.soname().map(IStr::new),
            embedded_version: f.soname().and_then(Soname::parse),
            required_glibc: f.required_glibc(),
            version_refs: f.version_refs().to_vec(),
            mpi: identify_mpi(&needed),
            needed,
            comments: f.comments().iter().map(|s| IStr::new(s)).collect(),
            build_env: BuildEnvironment {
                compiler: provenance.compiler,
                distro_hint: provenance.distro_hint,
            },
            abi_tag: f.abi_tag(),
            evidence,
            provenance: fallback,
            size: bytes.len(),
            content_hash: crate::cache::BdcKey::of(bytes).hash,
        })
    }

    /// Describe the binary at `path` within a session. The content key is
    /// taken from the pointer-memoized [`crate::cache::content_key_of`], so
    /// a buffer shared with the VFS is hashed once per process, not once
    /// per request.
    pub fn from_session(sess: &Session<'_>, path: &str) -> Result<Self> {
        let bytes = sess
            .read_bytes(path)
            .ok_or_else(|| FeamError::BinaryUnreadable(format!("{path}: no such file")))?;
        Self::from_bytes_keyed(path, &bytes, crate::cache::content_key_of(&bytes), None)
    }

    /// One-line summary for reports.
    pub fn summary(&self) -> String {
        format!(
            "{} {}-bit {} [{}], {} shared library deps, requires {}",
            self.machine.name(),
            self.class.bits(),
            match self.kind {
                FileKind::Executable => "executable",
                FileKind::SharedObject => "shared object",
                _ => "object",
            },
            match self.mpi {
                MpiIdentification::Identified(i) => i.name(),
                MpiIdentification::NotMpi => "no MPI",
            },
            self.needed.len(),
            self.required_glibc
                .as_ref()
                .map(|v| v.render())
                .unwrap_or_else(|| "no versioned C library".into()),
        )
    }
}

/// A shared-library copy gathered at a guaranteed execution environment.
#[derive(Debug, Clone)]
pub struct LibraryCopy {
    /// The soname this copy provides.
    pub soname: String,
    /// Path it was copied from at the GEE.
    pub origin: String,
    /// The image bytes.
    pub bytes: Arc<Vec<u8>>,
    /// The copy's own recursive description.
    pub description: BinaryDescription,
}

/// Locate one shared library by soname using the §V.A fallback chain:
/// `ldd` output (caller passes it in) → `locate` → `find` over common
/// locations and `LD_LIBRARY_PATH`.
pub fn locate_library(sess: &Session<'_>, soname: &str) -> Option<String> {
    // locate: exact basename match among substring hits.
    if let Some(hits) = tools::locate(sess.site, soname) {
        if let Some(hit) = hits
            .into_iter()
            .find(|p| p.rsplit('/').next() == Some(soname) && sess.site.vfs.exists(p))
        {
            return Some(hit);
        }
    }
    // find over common library locations and LD_LIBRARY_PATH entries.
    let mut roots: Vec<String> = vec![
        "/lib64".into(),
        "/usr/lib64".into(),
        "/lib".into(),
        "/usr/lib".into(),
        "/opt".into(),
    ];
    roots.extend(sess.ld_library_path());
    let root_refs: Vec<&str> = roots.iter().map(String::as_str).collect();
    tools::find_name(sess.site, &root_refs, soname)
        .into_iter()
        .next()
}

/// Gather copies + descriptions of every shared library the binary at
/// `path` is linked against, recursively, at a guaranteed execution
/// environment (the source phase's collection step).
///
/// The C library itself and the dynamic loader are never copied (§IV:
/// "We copy each shared library except for the C library").
pub fn collect_libraries(
    sess: &mut Session<'_>,
    path: &str,
) -> Result<BTreeMap<String, LibraryCopy>> {
    collect_libraries_cached(sess, path, None)
}

/// [`collect_libraries`] with an optional description cache: every library
/// image is content-hashed and its recursive description is reused across
/// binaries that link the same bytes (the common case — a site's whole
/// corpus shares one MPI stack's libraries).
pub fn collect_libraries_cached(
    sess: &mut Session<'_>,
    path: &str,
    caches: Option<&crate::cache::PhaseCaches>,
) -> Result<BTreeMap<String, LibraryCopy>> {
    let mut arena = Interner::new();
    let mut out: BTreeMap<String, LibraryCopy> = BTreeMap::new();
    let mut pending: Vec<String> = vec![path.to_string()];
    let mut described: HashSet<String> = HashSet::new();
    // `DT_NEEDED` recorded per described object, so the `ldd`-fallback path
    // reuses work already done instead of reading and describing the same
    // image a second time.
    let mut needed_of: HashMap<String, Vec<IStr>> = HashMap::new();
    while let Some(obj_path) = pending.pop() {
        if !described.insert(obj_path.clone()) {
            continue;
        }
        sess.charge(0.2);
        // Primary: ldd gives sonames with locations.
        let entries: Vec<(String, Option<String>)> = match tools::ldd(sess, &obj_path) {
            LddResult::Resolved(map) => map,
            // Fallback: take DT_NEEDED ourselves and search each one.
            LddResult::NotRecognized | LddResult::NotPresent => {
                let needed = match needed_of.get(&obj_path) {
                    Some(n) => n.clone(),
                    // Not described yet (the root object): one read, one
                    // zero-copy parse, for the dependency list alone.
                    None => {
                        let bytes = sess.read_bytes(&obj_path).ok_or_else(|| {
                            FeamError::BinaryUnreadable(format!("{obj_path}: no such file"))
                        })?;
                        let f = LazyElf::parse(&bytes)
                            .map_err(|e| FeamError::BinaryUnreadable(format!("{obj_path}: {e}")))?;
                        f.needed().iter().map(|so| arena.istr(so)).collect()
                    }
                };
                needed
                    .iter()
                    .map(|so| (so.to_string(), locate_library(sess, so)))
                    .collect()
            }
        };
        for (soname, loc) in entries {
            if out.contains_key(&soname) || is_c_library(&soname) {
                continue;
            }
            let Some(loc) = loc.or_else(|| locate_library(sess, &soname)) else {
                continue; // not found even at the GEE; nothing to copy
            };
            let Some(bytes) = sess.read_bytes(&loc) else {
                continue;
            };
            // Describing is pure in the bytes, so the content key is a
            // sound memoization key: identical images at different paths
            // share one description (the path field is the cached origin).
            let key = crate::cache::content_key_of(&bytes);
            let description = match caches {
                Some(c) => match c.bdc_get(&key) {
                    Some(d) => {
                        sess.recorder.count("cache.bdc.hit", 1);
                        let mut d = (*d).clone();
                        // The description is content-addressed; only the
                        // origin path is site-local.
                        d.path = loc.clone();
                        d
                    }
                    None => {
                        sess.recorder.count("cache.bdc.miss", 1);
                        let d = BinaryDescription::from_bytes_keyed(
                            &loc,
                            &bytes,
                            key,
                            Some(&mut arena),
                        )?;
                        c.bdc_put(key, Arc::new(d.clone()));
                        d
                    }
                },
                None => BinaryDescription::from_bytes_keyed(&loc, &bytes, key, Some(&mut arena))?,
            };
            needed_of.insert(loc.clone(), description.needed.clone());
            out.insert(
                soname.clone(),
                LibraryCopy {
                    soname: soname.clone(),
                    origin: loc.clone(),
                    bytes,
                    description,
                },
            );
            pending.push(loc);
        }
    }
    Ok(out)
}

/// Is this soname part of the C library family that FEAM never copies?
pub fn is_c_library(soname: &str) -> bool {
    soname.starts_with("libc.so") || soname.starts_with("ld-linux") || soname.starts_with("ld.so")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn table_one_mvapich2_signature() {
        let needed = v(&[
            "libmpich.so.1.2",
            "libibverbs.so.1",
            "libibumad.so.3",
            "libc.so.6",
        ]);
        assert_eq!(
            identify_mpi(&needed),
            MpiIdentification::Identified(MpiImpl::Mvapich2)
        );
    }

    #[test]
    fn table_one_mpich2_signature() {
        let needed = v(&["libmpich.so.1.2", "libmpl.so.1", "libopa.so.1", "libc.so.6"]);
        assert_eq!(
            identify_mpi(&needed),
            MpiIdentification::Identified(MpiImpl::Mpich2)
        );
    }

    #[test]
    fn table_one_openmpi_signature() {
        let needed = v(&["libmpi.so.0", "libnsl.so.1", "libutil.so.1", "libc.so.6"]);
        assert_eq!(
            identify_mpi(&needed),
            MpiIdentification::Identified(MpiImpl::OpenMpi)
        );
    }

    #[test]
    fn mpich_without_ib_is_not_mvapich() {
        // libibverbs alone (no libibumad) must not flip MPICH2 → MVAPICH2.
        let needed = v(&["libmpich.so.1.2", "libibverbs.so.1", "libc.so.6"]);
        assert_eq!(
            identify_mpi(&needed),
            MpiIdentification::Identified(MpiImpl::Mpich2)
        );
    }

    #[test]
    fn non_mpi_binary() {
        let needed = v(&["libm.so.6", "libc.so.6"]);
        assert_eq!(identify_mpi(&needed), MpiIdentification::NotMpi);
    }

    #[test]
    fn c_library_family_not_copied() {
        assert!(is_c_library("libc.so.6"));
        assert!(is_c_library("ld-linux-x86-64.so.2"));
        assert!(!is_c_library("libm.so.6"));
        assert!(!is_c_library("libmpi.so.0"));
    }

    #[test]
    fn description_from_synthetic_binary() {
        let mut spec = feam_elf::ElfSpec::executable(Machine::X86_64, Class::Elf64);
        spec.needed = v(&["libmpi.so.0", "libnsl.so.1", "libutil.so.1", "libc.so.6"]);
        spec.imports = vec![feam_elf::ImportSpec::versioned(
            "fopen64",
            "libc.so.6",
            "GLIBC_2.3.4",
        )];
        spec.comments = vec!["GCC: (GNU) 4.1.2 20080704 (Red Hat 4.1.2-50)".into()];
        let bytes = spec.build().unwrap();
        let d = BinaryDescription::from_bytes("/tmp/app", &bytes).unwrap();
        assert_eq!(d.format, "ELF");
        assert_eq!(d.mpi, MpiIdentification::Identified(MpiImpl::OpenMpi));
        assert_eq!(d.required_glibc.as_ref().unwrap().render(), "GLIBC_2.3.4");
        assert!(d.is_dynamic);
        assert!(d.build_env.compiler.as_deref().unwrap().starts_with("GCC"));
        assert!(d.summary().contains("Open MPI"));
    }

    #[test]
    fn shared_library_description_extracts_embedded_version() {
        let mut spec =
            feam_elf::ElfSpec::shared_library("libdemo.so.2.4", Machine::X86_64, Class::Elf64);
        spec.needed = v(&["libc.so.6"]);
        let bytes = spec.build().unwrap();
        let d = BinaryDescription::from_bytes("/lib/libdemo.so.2.4", &bytes).unwrap();
        assert_eq!(d.kind, FileKind::SharedObject);
        assert_eq!(d.soname.as_deref(), Some("libdemo.so.2.4"));
        let emb = d.embedded_version.unwrap();
        assert_eq!(emb.major(), Some(2));
        assert_eq!(emb.minor(), Some(4));
    }

    #[test]
    fn garbage_input_is_error() {
        assert!(BinaryDescription::from_bytes("/tmp/x", &[0u8; 32]).is_err());
    }
}
