//! The Environment Discovery Component (§V.B).
//!
//! Gathers the Figure 4 information about a computing site:
//!
//! * ISA format (`uname -p`),
//! * operating system (`/proc/version`, `/etc/*release`),
//! * C library version (executing the libc binary),
//! * available / currently-loaded MPI stacks (Environment Modules or
//!   SoftEnv when present, else filesystem search with path-name
//!   inference and wrapper probing),
//! * missing shared libraries for a given binary (`ldd`, with search
//!   fallbacks).

use crate::retry::RetryPolicy;
use feam_elf::{HostArch, VersionName};
use feam_sim::faults::Chokepoint;
use feam_sim::mpi::MpiImpl;
use feam_sim::site::{InstalledStack, Session, Site};
use feam_sim::tools::{self, LddResult};
use serde::{Deserialize, Serialize};

/// How a stack was discovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiscoveryMethod {
    EnvironmentModules,
    SoftEnv,
    /// Filesystem search + path-name inference + wrapper probing.
    PathSearch,
}

/// One MPI stack discovered at a site.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiscoveredStack {
    pub mpi: MpiImpl,
    pub mpi_version: String,
    /// Compiler family tag (`gnu`, `intel`, `pgi`).
    pub compiler: String,
    pub compiler_version: String,
    /// Install prefix.
    pub prefix: String,
    pub via: DiscoveryMethod,
    /// Module / softenv key when applicable.
    pub key: Option<String>,
}

impl DiscoveredStack {
    /// Identifier like `openmpi-1.4.3-intel-11.1`.
    pub fn ident(&self) -> String {
        format!(
            "{}-{}-{}-{}",
            self.mpi.tag(),
            self.mpi_version,
            self.compiler,
            self.compiler_version
        )
    }
}

/// The Figure 4 description of a computing environment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnvironmentDescription {
    /// `uname -p` output.
    pub isa: String,
    /// Parsed host architecture, when recognized.
    pub arch: Option<HostArch>,
    /// OS description from `/proc/version` + `/etc/*release`.
    pub os: String,
    /// Discovered C library version.
    pub c_library: Option<VersionName>,
    /// Which user-environment management tool was found.
    pub env_mgmt: Option<DiscoveryMethod>,
    /// All MPI stacks discovered at the site.
    pub available_stacks: Vec<DiscoveredStack>,
    /// The stack currently loaded in the shell, if any.
    pub loaded_stack: Option<String>,
    /// Observations that failed even after retries (e.g. `"os"`,
    /// `"c_library"`): the graceful-degradation breadcrumbs that turn
    /// into `Unknown` determinant verdicts downstream.
    pub unobserved: Vec<String>,
}

impl EnvironmentDescription {
    /// Discovered stacks of one MPI implementation.
    pub fn stacks_of(&self, mpi: MpiImpl) -> Vec<&DiscoveredStack> {
        self.available_stacks
            .iter()
            .filter(|s| s.mpi == mpi)
            .collect()
    }
}

/// Parse a `uname -p` string into a [`HostArch`].
pub fn parse_arch(uname: &str) -> Option<HostArch> {
    match uname {
        "x86_64" => Some(HostArch::X86_64),
        "i686" | "i586" | "i386" => Some(HostArch::X86),
        "ppc64" => Some(HostArch::Ppc64),
        "ppc" => Some(HostArch::Ppc),
        "ia64" => Some(HostArch::Ia64),
        "aarch64" => Some(HostArch::Aarch64),
        _ => None,
    }
}

/// Parse the glibc banner ("GNU C Library … release version 2.11.1 …")
/// into a version.
pub fn parse_libc_banner(banner: &str) -> Option<VersionName> {
    let idx = banner.find("release version ")?;
    let tail = &banner[idx + "release version ".len()..];
    let ver: String = tail
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    VersionName::parse(&format!("GLIBC_{}", ver.trim_end_matches('.')))
}

/// Parse a stack identifier like `openmpi-1.4.3-intel-11.1` (module names,
/// softenv keys, and install-prefix leaves all use this shape — §V.B's
/// path-name inference).
pub fn parse_stack_ident(ident: &str) -> Option<(MpiImpl, String, String, String)> {
    let parts: Vec<&str> = ident.split('-').collect();
    if parts.len() < 4 {
        return None;
    }
    let mpi = match parts[0] {
        "openmpi" => MpiImpl::OpenMpi,
        "mpich2" => MpiImpl::Mpich2,
        "mvapich2" => MpiImpl::Mvapich2,
        _ => return None,
    };
    // Compiler tag is the first part that names a family; version pieces
    // may themselves contain '-'-free dotted text.
    let comp_idx = parts
        .iter()
        .position(|p| matches!(*p, "gnu" | "intel" | "pgi"))?;
    if comp_idx < 2 || comp_idx + 1 >= parts.len() {
        return None;
    }
    let mpi_version = parts[1..comp_idx].join("-");
    let compiler = parts[comp_idx].to_string();
    let compiler_version = parts[comp_idx + 1..].join("-");
    Some((mpi, mpi_version, compiler, compiler_version))
}

/// Run one observation with bounded retries against injected faults.
///
/// Retries only make sense when the session's fault plan can actually
/// produce transient faults at this chokepoint — otherwise a `None` means
/// "genuinely absent" and re-asking is pure waste, so a single attempt is
/// made. Consumed retries charge backoff to the simulated clock and emit
/// `retry_attempt` events.
fn observe<T>(
    sess: &mut Session<'_>,
    retry: &RetryPolicy,
    chokepoint: Chokepoint,
    what: &str,
    f: impl Fn(&Session<'_>, u32) -> Option<T>,
) -> Option<T> {
    let max = if sess.faults.rate(chokepoint).transient > 0.0 {
        retry.max_attempts.max(1)
    } else {
        1
    };
    for attempt in 1..=max {
        if let Some(v) = f(sess, attempt) {
            return Some(v);
        }
        if attempt < max {
            let delay = retry.jittered_delay_before(attempt + 1, what);
            sess.charge(delay);
            sess.recorder.event(
                "retry_attempt",
                &[
                    ("what", what.into()),
                    ("attempt", (attempt + 1).into()),
                    ("delay_s", delay.into()),
                ],
            );
            sess.recorder.count("retry.attempts", 1);
        }
    }
    None
}

/// Discover the MPI stacks at a site. A corrupt module/softenv database
/// (injected or real) degrades gracefully: discovery falls through to the
/// next method, ending with raw filesystem search.
fn discover_stacks(
    sess: &mut Session<'_>,
    retry: &RetryPolicy,
) -> (Option<DiscoveryMethod>, Vec<DiscoveredStack>) {
    let site = sess.site;
    // Environment Modules first.
    if let Some(modules) = observe(sess, retry, Chokepoint::ModuleDb, "module_avail", |s, a| {
        tools::module_avail(s, a)
    }) {
        let stacks = modules
            .iter()
            .filter_map(|m| {
                let (mpi, mv, comp, cv) = parse_stack_ident(m)?;
                let prefix = format!("/opt/{m}");
                // Confirm with a wrapper probe when possible.
                let confirmed = tools::wrapper_info(site, &format!("{prefix}/bin/mpicc"));
                confirmed.as_ref()?;
                Some(DiscoveredStack {
                    mpi,
                    mpi_version: mv,
                    compiler: comp,
                    compiler_version: cv,
                    prefix,
                    via: DiscoveryMethod::EnvironmentModules,
                    key: Some(m.clone()),
                })
            })
            .collect();
        return (Some(DiscoveryMethod::EnvironmentModules), stacks);
    }
    // SoftEnv next.
    if let Some(keys) = observe(sess, retry, Chokepoint::ModuleDb, "softenv_keys", |s, a| {
        tools::softenv_keys(s, a)
    }) {
        let stacks = keys
            .iter()
            .filter_map(|k| {
                let (mpi, mv, comp, cv) = parse_stack_ident(k)?;
                let prefix = format!("/opt/{k}");
                tools::wrapper_info(site, &format!("{prefix}/bin/mpicc"))?;
                Some(DiscoveredStack {
                    mpi,
                    mpi_version: mv,
                    compiler: comp,
                    compiler_version: cv,
                    prefix,
                    via: DiscoveryMethod::SoftEnv,
                    key: Some(k.clone()),
                })
            })
            .collect();
        return (Some(DiscoveryMethod::SoftEnv), stacks);
    }
    // Fall back to filesystem search: look for MPI libraries under common
    // prefixes, infer the stack from the path name, confirm via wrappers.
    let mut found = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let candidates = {
        let mut v = Vec::new();
        if let Some(hits) = tools::locate(site, "libmpi") {
            v.extend(hits);
        } else {
            v.extend(tools::find_name(site, &["/opt"], "libmpi.so.0"));
            v.extend(tools::find_name(site, &["/opt"], "libmpich.so.1.2"));
        }
        v
    };
    for path in candidates {
        // e.g. /opt/openmpi-1.4.3-intel-11.1/lib/libmpi.so.0
        let Some(rest) = path.strip_prefix("/opt/") else {
            continue;
        };
        let Some(leaf) = rest.split('/').next() else {
            continue;
        };
        if !seen.insert(leaf.to_string()) {
            continue;
        }
        let Some((mpi, mv, comp, cv)) = parse_stack_ident(leaf) else {
            continue;
        };
        let prefix = format!("/opt/{leaf}");
        if tools::wrapper_info(site, &format!("{prefix}/bin/mpicc")).is_none() {
            continue;
        }
        found.push(DiscoveredStack {
            mpi,
            mpi_version: mv,
            compiler: comp,
            compiler_version: cv,
            prefix,
            via: DiscoveryMethod::PathSearch,
            key: None,
        });
    }
    found.sort_by(|a, b| a.prefix.cmp(&b.prefix));
    (None, found)
}

/// Run the EDC against a session (the environment as the current shell
/// sees it), with the default retry policy for faulted observations.
pub fn discover(sess: &mut Session<'_>) -> EnvironmentDescription {
    discover_with_retry(sess, &RetryPolicy::default())
}

/// [`discover`] with an explicit retry policy. Observations that fail even
/// after retries are listed in [`EnvironmentDescription::unobserved`]
/// instead of aborting discovery — the description simply has holes.
pub fn discover_with_retry(sess: &mut Session<'_>, retry: &RetryPolicy) -> EnvironmentDescription {
    let site = sess.site;
    sess.charge(1.0);
    let mut unobserved = Vec::new();
    let isa = tools::uname_p(site).to_string();
    let arch = parse_arch(&isa);
    let pv = observe(
        sess,
        retry,
        Chokepoint::DescriptionFile,
        "proc_version",
        tools::proc_version,
    );
    let rel = observe(
        sess,
        retry,
        Chokepoint::DescriptionFile,
        "etc_release",
        tools::etc_release,
    );
    if pv.is_none() && rel.is_none() {
        unobserved.push("os".to_string());
    }
    let os = {
        let pv = pv.unwrap_or_default();
        let rel = rel.unwrap_or_default();
        let rel_line = rel.lines().next().unwrap_or("");
        if rel_line.is_empty() {
            pv
        } else {
            rel_line.to_string()
        }
    };
    let banner = observe(
        sess,
        retry,
        Chokepoint::DescriptionFile,
        "libc_banner",
        tools::run_libc_banner,
    );
    if banner.is_none() {
        unobserved.push("c_library".to_string());
    }
    let c_library = banner.and_then(|b| parse_libc_banner(&b));
    let (env_mgmt, available_stacks) = discover_stacks(sess, retry);
    let loaded_stack = tools::module_list(sess)
        .and_then(|l| l.into_iter().next())
        .or_else(|| {
            sess.env
                .get("LOADEDMODULES")
                .cloned()
                .filter(|s| !s.is_empty())
        });
    EnvironmentDescription {
        isa,
        arch,
        os,
        c_library,
        env_mgmt: env_mgmt.or_else(|| available_stacks.first().map(|s| s.via)),
        available_stacks,
        loaded_stack,
        unobserved,
    }
}

/// Find the site's installed stack matching a discovered one (the bridge
/// from discovery output to a loadable environment: in the field this is
/// `module load <key>`; in the simulator it is `Session::load_stack`).
pub fn find_installed<'s>(site: &'s Site, d: &DiscoveredStack) -> Option<&'s InstalledStack> {
    site.stacks.iter().find(|ist| ist.prefix == d.prefix)
}

/// Missing shared libraries for the binary at `path`, under the session's
/// current environment. Returns sonames that could not be located at all.
/// Uses `ldd` when it works, else the BDC's needed-list + search fallback.
pub fn missing_libraries(sess: &mut Session<'_>, path: &str) -> Vec<String> {
    sess.charge(0.3);
    match tools::ldd(sess, path) {
        LddResult::Resolved(map) => map
            .into_iter()
            .filter_map(|(soname, loc)| {
                if loc.is_some() {
                    return None;
                }
                // ldd could not resolve it through the loader's paths; FEAM
                // additionally searches common locations before declaring
                // it missing (a found-but-unconfigured library is handled
                // by emitting LD_LIBRARY_PATH configuration, not copies).
                crate::bdc::locate_library(sess, &soname)
                    .is_none()
                    .then_some(soname)
            })
            .collect(),
        LddResult::NotRecognized | LddResult::NotPresent => {
            let Ok(desc) = crate::bdc::BinaryDescription::from_session(sess, path) else {
                return Vec::new();
            };
            desc.needed
                .into_iter()
                .filter(|so| {
                    !session_lib_visible(sess, so) && crate::bdc::locate_library(sess, so).is_none()
                })
                .map(|so| so.to_string())
                .collect()
        }
    }
}

/// Libraries the loader would see on the session's current paths (used by
/// the non-ldd fallback).
fn session_lib_visible(sess: &Session<'_>, soname: &str) -> bool {
    let mut dirs = sess.ld_library_path();
    dirs.extend(sess.site.default_lib_dirs());
    dirs.iter().any(|d| sess.exists(&format!("{d}/{soname}")))
}

/// Directories (beyond the loader defaults and current `LD_LIBRARY_PATH`)
/// where needed libraries were found by search — FEAM adds these to the
/// generated environment setup.
pub fn extra_lib_dirs<S: AsRef<str>>(sess: &mut Session<'_>, needed: &[S]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut visible_dirs = sess.ld_library_path();
    visible_dirs.extend(sess.site.default_lib_dirs());
    for so in needed {
        let so = so.as_ref();
        if crate::bdc::is_c_library(so) {
            continue;
        }
        if visible_dirs
            .iter()
            .any(|d| sess.exists(&format!("{d}/{so}")))
        {
            continue;
        }
        if let Some(path) = crate::bdc::locate_library(sess, so) {
            let dir = feam_sim::vfs::dirname(&path).to_string();
            if !out.contains(&dir) && !visible_dirs.contains(&dir) {
                out.push(dir);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use feam_workloads::sites::{standard_sites, BLACKLIGHT, INDIA, RANGER};

    #[test]
    fn parse_arch_recognizes_testbed() {
        assert_eq!(parse_arch("x86_64"), Some(HostArch::X86_64));
        assert_eq!(parse_arch("ia64"), Some(HostArch::Ia64));
        assert_eq!(parse_arch("s390x"), None);
    }

    #[test]
    fn parse_libc_banner_versions() {
        let b = feam_sim::libc::libc_banner("2.11.1", "SUSE");
        assert_eq!(parse_libc_banner(&b).unwrap().render(), "GLIBC_2.11.1");
        assert!(parse_libc_banner("no version here").is_none());
    }

    #[test]
    fn parse_stack_ident_variants() {
        let (m, mv, c, cv) = parse_stack_ident("openmpi-1.4.3-intel-11.1").unwrap();
        assert_eq!(m, MpiImpl::OpenMpi);
        assert_eq!(mv, "1.4.3");
        assert_eq!(c, "intel");
        assert_eq!(cv, "11.1");
        let (m, mv, ..) = parse_stack_ident("mvapich2-1.7rc1-gnu-4.4.5").unwrap();
        assert_eq!(m, MpiImpl::Mvapich2);
        assert_eq!(mv, "1.7rc1");
        assert!(parse_stack_ident("gcc-4.1.2").is_none());
        assert!(parse_stack_ident("openmpi-1.4").is_none());
    }

    #[test]
    fn discovery_via_modules_finds_all_stacks() {
        let sites = standard_sites(9);
        let ranger = &sites[RANGER];
        let mut sess = Session::new(ranger);
        let env = discover(&mut sess);
        assert_eq!(env.env_mgmt, Some(DiscoveryMethod::EnvironmentModules));
        assert_eq!(env.available_stacks.len(), 6, "Ranger advertises 6 stacks");
        assert_eq!(env.stacks_of(MpiImpl::OpenMpi).len(), 3);
        assert_eq!(env.stacks_of(MpiImpl::Mvapich2).len(), 3);
        assert_eq!(env.isa, "x86_64");
        assert_eq!(env.c_library.as_ref().unwrap().render(), "GLIBC_2.3.4");
        assert!(env.os.contains("CentOS"));
    }

    #[test]
    fn discovery_via_softenv_on_india() {
        let sites = standard_sites(9);
        let india = &sites[INDIA];
        let mut sess = Session::new(india);
        let env = discover(&mut sess);
        assert_eq!(env.env_mgmt, Some(DiscoveryMethod::SoftEnv));
        // All six stacks advertised, including the misconfigured one.
        assert_eq!(env.available_stacks.len(), 6);
    }

    #[test]
    fn discovered_stack_maps_to_installed() {
        let sites = standard_sites(9);
        let bl = &sites[BLACKLIGHT];
        let mut sess = Session::new(bl);
        let env = discover(&mut sess);
        for d in &env.available_stacks {
            let ist = find_installed(bl, d).expect("discovered stack must exist");
            assert_eq!(ist.stack.mpi, d.mpi);
        }
    }

    #[test]
    fn loaded_stack_visible_after_module_load() {
        let sites = standard_sites(9);
        let ranger = &sites[RANGER];
        let mut sess = Session::new(ranger);
        let ist = ranger.stacks[0].clone();
        sess.load_stack(&ist);
        let env = discover(&mut sess);
        assert_eq!(
            env.loaded_stack.as_deref(),
            Some(ist.stack.ident().as_str())
        );
    }

    #[test]
    fn missing_libraries_detected_for_foreign_binary() {
        let sites = standard_sites(9);
        let ranger = &sites[RANGER];
        // A binary needing a library no site has.
        let mut spec =
            feam_elf::ElfSpec::executable(feam_elf::Machine::X86_64, feam_elf::Class::Elf64);
        spec.needed = vec!["libfancy.so.9".into(), "libc.so.6".into()];
        let img = std::sync::Arc::new(spec.build().unwrap());
        let mut sess = Session::new(ranger);
        sess.stage_file("/home/user/app", img);
        let missing = missing_libraries(&mut sess, "/home/user/app");
        assert_eq!(missing, vec!["libfancy.so.9".to_string()]);
    }

    #[test]
    fn extra_lib_dirs_found_for_unloaded_stack_libs() {
        let sites = standard_sites(9);
        let ranger = &sites[RANGER];
        let mut sess = Session::new(ranger); // no module loaded
        let needed = vec!["libmpi.so.0".to_string()];
        let dirs = extra_lib_dirs(&mut sess, &needed);
        assert!(
            dirs.iter().any(|d| d.contains("openmpi")),
            "search must surface the stack lib dir, got {dirs:?}"
        );
    }
}
