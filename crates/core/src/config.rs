//! FEAM's user configuration file (§V).
//!
//! "Before running FEAM, a user needs to specify (via a configuration
//! file) a serial and parallel submission script for the site. The
//! submission format is the only information about a new site our methods
//! require the user to determine. … Our methods by default will use the
//! `mpiexec` command for execution while allowing the user to specify
//! otherwise (per MPI type if necessary) via a configuration file."
//!
//! Format: one `key = value` pair per line; `#` starts a comment. Keys:
//!
//! ```text
//! serial_submit   = ./run_serial.sh
//! parallel_submit = qsub -q debug run.pbs
//! nprocs          = 8
//! max_attempts    = 5
//! seed            = 42
//! mpiexec         = mpiexec            # global launch command
//! mpiexec.openmpi = orterun            # per-MPI-type override
//! mpiexec.mpich2  = mpiexec.hydra
//! ```

use crate::phases::PhaseConfig;
use std::collections::BTreeMap;

/// A parsed configuration file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConfigFile {
    /// All key/value pairs, verbatim.
    pub entries: BTreeMap<String, String>,
}

/// A parse failure, with the offending line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl ConfigFile {
    /// Parse configuration text.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut entries = BTreeMap::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: i + 1,
                    message: format!("expected `key = value`, got {raw:?}"),
                });
            };
            let key = key.trim();
            let value = value.trim();
            if key.is_empty() {
                return Err(ConfigError {
                    line: i + 1,
                    message: "empty key".into(),
                });
            }
            if entries.insert(key.to_string(), value.to_string()).is_some() {
                return Err(ConfigError {
                    line: i + 1,
                    message: format!("duplicate key {key:?}"),
                });
            }
        }
        Ok(ConfigFile { entries })
    }

    /// Launch command for an MPI type: `mpiexec.<type>` override, then the
    /// global `mpiexec`, then the paper's default.
    pub fn mpiexec_for(&self, mpi_tag: &str) -> String {
        self.entries
            .get(&format!("mpiexec.{mpi_tag}"))
            .or_else(|| self.entries.get("mpiexec"))
            .cloned()
            .unwrap_or_else(|| "mpiexec".to_string())
    }

    /// Materialize a [`PhaseConfig`], starting from defaults and applying
    /// every recognized key. Unknown keys are preserved in `entries` but do
    /// not error (forward compatibility); malformed numeric values do.
    pub fn to_phase_config(&self) -> Result<PhaseConfig, ConfigError> {
        let mut cfg = PhaseConfig::default();
        if let Some(v) = self.entries.get("serial_submit") {
            cfg.serial_submit = v.clone();
        }
        if let Some(v) = self.entries.get("parallel_submit") {
            cfg.parallel_submit = v.clone();
        }
        if let Some(v) = self.entries.get("mpiexec") {
            cfg.mpiexec_override = Some(v.clone());
        }
        if let Some(v) = self.entries.get("nprocs") {
            cfg.nprocs = v.parse().map_err(|_| ConfigError {
                line: 0,
                message: format!("nprocs must be a positive integer, got {v:?}"),
            })?;
        }
        if let Some(v) = self.entries.get("max_attempts") {
            cfg.retry.max_attempts = v.parse().map_err(|_| ConfigError {
                line: 0,
                message: format!("max_attempts must be a positive integer, got {v:?}"),
            })?;
        }
        if let Some(v) = self.entries.get("retry_base_delay") {
            cfg.retry.base_delay_seconds = v.parse().map_err(|_| ConfigError {
                line: 0,
                message: format!("retry_base_delay must be a number of seconds, got {v:?}"),
            })?;
        }
        if let Some(v) = self.entries.get("retry_max_delay") {
            cfg.retry.max_delay_seconds = v.parse().map_err(|_| ConfigError {
                line: 0,
                message: format!("retry_max_delay must be a number of seconds, got {v:?}"),
            })?;
        }
        if let Some(v) = self.entries.get("retry_jitter") {
            let jitter: f64 = v.parse().map_err(|_| ConfigError {
                line: 0,
                message: format!("retry_jitter must be a fraction in [0, 1], got {v:?}"),
            })?;
            if !(0.0..=1.0).contains(&jitter) {
                return Err(ConfigError {
                    line: 0,
                    message: format!("retry_jitter must be a fraction in [0, 1], got {v:?}"),
                });
            }
            cfg.retry.jitter = jitter;
        }
        if let Some(v) = self.entries.get("retry_jitter_seed") {
            cfg.retry.jitter_seed = v.parse().map_err(|_| ConfigError {
                line: 0,
                message: format!("retry_jitter_seed must be a u64, got {v:?}"),
            })?;
        }
        if let Some(v) = self.entries.get("seed") {
            cfg.seed = v.parse().map_err(|_| ConfigError {
                line: 0,
                message: format!("seed must be an integer, got {v:?}"),
            })?;
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# FEAM site configuration for Fir
serial_submit   = ./run_serial.sh
parallel_submit = qsub -q debug run.pbs   # debug queue, per the paper
nprocs          = 8
max_attempts    = 5
mpiexec         = mpiexec
mpiexec.openmpi = orterun
mpiexec.mpich2  = mpiexec.hydra
";

    #[test]
    fn parses_sample_and_builds_phase_config() {
        let cf = ConfigFile::parse(SAMPLE).unwrap();
        let cfg = cf.to_phase_config().unwrap();
        assert_eq!(cfg.serial_submit, "./run_serial.sh");
        assert_eq!(cfg.parallel_submit, "qsub -q debug run.pbs");
        assert_eq!(cfg.nprocs, 8);
        assert_eq!(cfg.retry.max_attempts, 5);
        assert_eq!(cfg.mpiexec_override.as_deref(), Some("mpiexec"));
    }

    #[test]
    fn retry_jitter_keys_parse_and_validate() {
        let cf = ConfigFile::parse("retry_jitter = 0.5\nretry_jitter_seed = 42\n").unwrap();
        let cfg = cf.to_phase_config().unwrap();
        assert_eq!(cfg.retry.jitter, 0.5);
        assert_eq!(cfg.retry.jitter_seed, 42);
        // Defaults: no jitter, seed 0.
        let cfg = ConfigFile::parse("").unwrap().to_phase_config().unwrap();
        assert_eq!(cfg.retry.jitter, 0.0);
        assert_eq!(cfg.retry.jitter_seed, 0);
        // Out-of-range or malformed values are hard errors.
        assert!(ConfigFile::parse("retry_jitter = 1.5")
            .unwrap()
            .to_phase_config()
            .is_err());
        assert!(ConfigFile::parse("retry_jitter = -0.1")
            .unwrap()
            .to_phase_config()
            .is_err());
        assert!(ConfigFile::parse("retry_jitter = lots")
            .unwrap()
            .to_phase_config()
            .is_err());
        assert!(ConfigFile::parse("retry_jitter_seed = -1")
            .unwrap()
            .to_phase_config()
            .is_err());
    }

    #[test]
    fn per_mpi_type_override_with_fallbacks() {
        let cf = ConfigFile::parse(SAMPLE).unwrap();
        assert_eq!(cf.mpiexec_for("openmpi"), "orterun");
        assert_eq!(cf.mpiexec_for("mpich2"), "mpiexec.hydra");
        // mvapich2 has no override → the global value.
        assert_eq!(cf.mpiexec_for("mvapich2"), "mpiexec");
        // No keys at all → the paper's default.
        let empty = ConfigFile::parse("").unwrap();
        assert_eq!(empty.mpiexec_for("openmpi"), "mpiexec");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let cf = ConfigFile::parse("\n# only comments\n\n  # here\n").unwrap();
        assert!(cf.entries.is_empty());
    }

    #[test]
    fn malformed_line_is_error_with_line_number() {
        let err = ConfigFile::parse("serial_submit = ok\nthis is not a pair\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn duplicate_key_rejected() {
        let err = ConfigFile::parse("nprocs = 4\nnprocs = 8\n").unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn bad_numeric_value_rejected() {
        let cf = ConfigFile::parse("nprocs = lots\n").unwrap();
        assert!(cf.to_phase_config().is_err());
    }

    #[test]
    fn unknown_keys_tolerated() {
        let cf = ConfigFile::parse("future_knob = on\nnprocs = 2\n").unwrap();
        let cfg = cf.to_phase_config().unwrap();
        assert_eq!(cfg.nprocs, 2);
        assert_eq!(
            cf.entries.get("future_knob").map(String::as_str),
            Some("on")
        );
    }
}
