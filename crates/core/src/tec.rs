//! The Target Evaluation Component (§V.C).
//!
//! Joins the BDC's binary description with the EDC's environment
//! description through the prediction model, runs the MPI stack functional
//! tests ("hello world" programs compiled natively and, when a source
//! phase ran, transported from the guaranteed execution environment),
//! applies the resolution model to missing shared libraries, and emits the
//! matching configuration (stack selection + environment variables +
//! staged copies) for the user.

use crate::bdc::{BinaryDescription, MpiIdentification};
use crate::bundle::SourceBundle;
use crate::edc::{self, EnvironmentDescription};
use crate::phases::PhaseConfig;
use crate::predict::{
    c_library_compatible, Determinant, Determination, Prediction, PredictionMode,
};
use crate::resolve::{resolve_missing, ResolutionPlan};
use crate::retry::{compile_with_retry, launch_with_retry};
use feam_sim::compile::ProgramSpec;
use feam_sim::site::{Session, Site};
use feam_sim::toolchain::Language;
use std::sync::Arc;

/// Staging directory FEAM uses for resolved library copies.
pub const STAGING_DIR: &str = "/home/user/feam/resolved";
/// Path the migrated application binary is staged at.
pub const APP_PATH: &str = "/home/user/feam/app.bin";

/// The site configuration FEAM composes for execution (the paper's
/// "description of the matching configuration details … along with a
/// script that will set them up automatically on execution").
#[derive(Debug, Clone, Default)]
pub struct ExecutionPlan {
    /// Index into the site's stacks of the selected MPI stack.
    pub stack_index: Option<usize>,
    /// Its identifier, for reports.
    pub stack_ident: Option<String>,
    /// Launch command (`mpiexec` unless the user's configuration overrides
    /// it, §V.C).
    pub launch_command: Option<String>,
    /// Directories to prepend to `LD_LIBRARY_PATH` (search-found library
    /// locations plus the resolution staging directory).
    pub extra_ld_dirs: Vec<String>,
    /// Library copies to stage, as (path, bytes).
    pub staged: Vec<(String, Arc<Vec<u8>>)>,
}

impl ExecutionPlan {
    /// Materialize the plan as a session at `site` (the setup script's
    /// effect): module load, `LD_LIBRARY_PATH` additions, staged copies.
    pub fn apply<'s>(&self, site: &'s Site) -> Session<'s> {
        let mut sess = Session::new(site);
        if let Some(idx) = self.stack_index {
            if let Some(ist) = site.stacks.get(idx) {
                sess.load_stack(ist);
            }
        }
        for (path, bytes) in &self.staged {
            sess.stage_file(path, bytes.clone());
        }
        for dir in &self.extra_ld_dirs {
            feam_sim::site::env_prepend(&mut sess.env, "LD_LIBRARY_PATH", dir);
        }
        sess
    }

    /// Render as the setup shell script FEAM writes for the user.
    pub fn setup_script(&self) -> String {
        let mut s = String::from("#!/bin/sh\n# FEAM-generated site configuration\n");
        if let Some(ident) = &self.stack_ident {
            s.push_str(&format!("module load {ident}\n"));
        }
        for dir in &self.extra_ld_dirs {
            s.push_str(&format!("export LD_LIBRARY_PATH={dir}:$LD_LIBRARY_PATH\n"));
        }
        for (path, _) in &self.staged {
            s.push_str(&format!("# staged library copy: {path}\n"));
        }
        let launch = self.launch_command.as_deref().unwrap_or("mpiexec");
        s.push_str(&format!("{launch} -np $NPROCS ./$APP\n"));
        s
    }
}

/// One stack functional-test result, for the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackTest {
    pub stack_ident: String,
    /// Native hello world compiled and ran?
    pub native_ok: bool,
    /// Transported hello world ran (None when not available)?
    pub transported_ok: Option<bool>,
}

/// The complete TEC output for one (binary, target site) pair.
#[derive(Debug, Clone)]
pub struct TargetEvaluation {
    pub prediction: Prediction,
    /// Best-effort execution configuration, present even when the
    /// prediction is negative (used for ground-truth comparison).
    pub plan: ExecutionPlan,
    /// Resolution outcomes, when the resolution model ran.
    pub resolution: Option<ResolutionPlan>,
    /// Per-stack functional test log.
    pub stack_tests: Vec<StackTest>,
    /// Simulated CPU seconds consumed by the evaluation.
    pub cpu_seconds: f64,
    /// Fraction of determinants positively decided (mirrors
    /// [`Prediction::confidence`], denormalized for reports).
    pub confidence: f64,
    /// True when any determinant came back `Unknown` (mirrors
    /// [`Prediction::degraded`]).
    pub degraded: bool,
}

impl TargetEvaluation {
    /// Assemble an evaluation, deriving the confidence/degradation summary
    /// from the prediction — the single construction path, so the summary
    /// fields can never drift from the verdict list.
    pub fn conclude(
        prediction: Prediction,
        plan: ExecutionPlan,
        resolution: Option<ResolutionPlan>,
        stack_tests: Vec<StackTest>,
        cpu_seconds: f64,
    ) -> Self {
        let confidence = prediction.confidence();
        let degraded = prediction.degraded();
        TargetEvaluation {
            prediction,
            plan,
            resolution,
            stack_tests,
            cpu_seconds,
            confidence,
            degraded,
        }
    }
}

/// Record a determinant verdict in the prediction and mirror it into the
/// trace (`determinant` event) and the metrics
/// (`determinant.<Name>.pass|fail` counters), so a trace alone is enough
/// to reconstruct why a prediction came out the way it did.
fn record_determinant(
    rec: &feam_obs::Recorder,
    prediction: &mut Prediction,
    determinant: Determinant,
    verdict: Determination,
    detail: impl Into<String>,
) {
    let detail = detail.into();
    rec.event(
        "determinant",
        &[
            ("determinant", determinant.name().into()),
            ("ok", (verdict == Determination::Compatible).into()),
            ("verdict", verdict.label().into()),
            ("detail", detail.as_str().into()),
        ],
    );
    let tag = match verdict {
        Determination::Compatible => "pass",
        Determination::Incompatible => "fail",
        Determination::Unknown => "unknown",
    };
    rec.count(&format!("determinant.{}.{tag}", determinant.name()), 1);
    if verdict == Determination::Unknown {
        rec.event(
            "degraded_verdict",
            &[
                ("determinant", determinant.name().into()),
                ("detail", detail.as_str().into()),
            ],
        );
        rec.count("prediction.degraded_verdicts", 1);
    }
    prediction.record_determination(determinant, verdict, detail);
}

/// Evaluate execution readiness of a binary at a target site.
///
/// `binary_image` is the migrated binary when present at the target;
/// `bundle` is the (optional) source-phase output. At least one of the two
/// must provide a description — with both absent there is nothing to
/// evaluate (callers enforce this).
pub fn evaluate(
    site: &Site,
    description: &BinaryDescription,
    binary_image: Option<&Arc<Vec<u8>>>,
    env: &EnvironmentDescription,
    bundle: Option<&SourceBundle>,
    cfg: &PhaseConfig,
) -> TargetEvaluation {
    let rec = cfg.recorder.clone();
    let _tec_span = rec.span("tec");
    let mode = if bundle.is_some() {
        PredictionMode::Extended
    } else {
        PredictionMode::Basic
    };
    let mut prediction = Prediction::new(mode);
    let mut cpu = 0.0f64;

    // ---- Determinant 1: ISA --------------------------------------------------
    let isa_verdict = match env.arch {
        Some(a) => Determination::of(a.executes(description.machine, description.class)),
        // The target's ISA could not be parsed — no basis to veto, no
        // basis to pass: degrade instead of deciding.
        None => Determination::Unknown,
    };
    record_determinant(
        &rec,
        &mut prediction,
        Determinant::Isa,
        isa_verdict,
        format!(
            "binary is {} {}-bit; target reports {}",
            description.machine.name(),
            description.class.bits(),
            if env.isa.is_empty() {
                "unknown"
            } else {
                &env.isa
            }
        ),
    );

    // ---- Determinant 3 (checked second, §V.C): C library ----------------------
    let clib_unobservable = description.required_glibc.is_some()
        && env.c_library.is_none()
        && env.unobserved.iter().any(|u| u == "c_library");
    let clib_verdict = if clib_unobservable {
        // The target has a C library — we just could not read its banner
        // after retries. Degrade rather than veto on absent evidence.
        Determination::Unknown
    } else {
        Determination::of(c_library_compatible(
            description.required_glibc.as_ref(),
            env.c_library.as_ref(),
        ))
    };
    record_determinant(
        &rec,
        &mut prediction,
        Determinant::CLibrary,
        clib_verdict,
        format!(
            "binary requires {}; target provides {}",
            description
                .required_glibc
                .as_ref()
                .map(|v| v.render())
                .unwrap_or_else(|| "none".into()),
            env.c_library
                .as_ref()
                .map(|v| v.render())
                .unwrap_or_else(|| if clib_unobservable {
                    "unobservable (description faults persisted through retries)".into()
                } else {
                    "unknown".into()
                }),
        ),
    );

    // Naive fallback plan: first advertised stack of the matching MPI type.
    // When direct evidence is absent the provenance claims stand in — at
    // their calibrated confidence, never upgraded to a hard verdict.
    let bin_impl = match description.mpi {
        MpiIdentification::Identified(i) => Some(i),
        MpiIdentification::NotMpi => None,
    };
    let prov = description.provenance.as_ref();
    let prov_compiler = prov.and_then(|p| p.compiler.as_ref()).map(|c| c.family);
    let prov_mpi = prov.and_then(|p| p.mpi_stack.as_ref());
    let bin_compiler = feam_sim::exec::compiler_from_comments(&description.comments)
        .map(|(f, _)| f)
        .or(prov_compiler);
    let plan = naive_plan(
        site,
        env,
        bin_impl.or(prov_mpi.map(|m| m.implementation)),
        bin_compiler,
    );

    if isa_verdict == Determination::Incompatible || clib_verdict == Determination::Incompatible {
        // §V.C: "If at any point we determine that execution cannot occur,
        // the reasons are detailed to the user." Unknown verdicts do not
        // stop here — evaluation continues on partial evidence.
        return TargetEvaluation::conclude(prediction, plan, None, Vec::new(), cpu);
    }

    // ---- Determinant 2: a functioning, compatible MPI stack -------------------
    let Some(bin_impl) = bin_impl else {
        if !description.is_dynamic {
            // Statically linked: the DT_NEEDED channel does not exist, so
            // its silence is not evidence the binary is non-MPI. Degrade on
            // the provenance claim (calibrated below direct evidence)
            // instead of vetoing.
            let detail = match prov_mpi {
                Some(m) => format!(
                    "statically linked; provenance claims {} ({}, confidence {:.2})",
                    m.implementation.name(),
                    m.tier.label(),
                    m.confidence
                ),
                None => "statically linked; no provenance signal for an MPI runtime".to_string(),
            };
            record_determinant(
                &rec,
                &mut prediction,
                Determinant::MpiStack,
                Determination::Unknown,
                detail,
            );
            record_determinant(
                &rec,
                &mut prediction,
                Determinant::SharedLibraries,
                Determination::Compatible,
                "statically linked; no shared library dependencies",
            );
            return TargetEvaluation::conclude(prediction, plan, None, Vec::new(), cpu);
        }
        record_determinant(
            &rec,
            &mut prediction,
            Determinant::MpiStack,
            Determination::Incompatible,
            "binary is not an MPI application",
        );
        return TargetEvaluation::conclude(prediction, plan, None, Vec::new(), cpu);
    };
    let candidates = env.stacks_of(bin_impl);
    if candidates.is_empty() {
        record_determinant(
            &rec,
            &mut prediction,
            Determinant::MpiStack,
            Determination::Incompatible,
            format!("no {} installation advertised at target", bin_impl.name()),
        );
        return TargetEvaluation::conclude(prediction, plan, None, Vec::new(), cpu);
    }

    let mut stack_tests = Vec::new();
    let mut any_functioning: Option<String> = None;
    let mut best_incomplete: Option<(ExecutionPlan, Option<ResolutionPlan>, String)> = None;
    for cand in &candidates {
        let Some(ist) = edc::find_installed(site, cand) else {
            continue;
        };
        let mut sess = cfg.session(site);
        sess.load_stack(ist);

        // Native hello-world functional test (§III.B: "Our methods decide
        // an MPI stack is useable if a basic MPI program is able to be
        // executed when the MPI stack is selected"). The verdict depends
        // only on (site, stack, seed, nprocs) — never on the binary under
        // evaluation — so it is memoized across evaluations when caches
        // are installed, under the EDC's configuration epoch.
        let caches = cfg.caches.as_deref();
        let epoch = caches.map(|c| c.edc.epoch(site.name())).unwrap_or(0);
        let memo = caches.and_then(|c| {
            c.stack_tests
                .get(site.name(), &cand.ident(), cfg.seed, cfg.nprocs, epoch)
        });
        let native_ok = match memo {
            Some(ok) => ok,
            None => {
                sess.charge(12.0); // native compile cost
                let faults_before = sess.faults_seen.get();
                let ok = match compile_with_retry(
                    &mut sess,
                    Some(ist),
                    &ProgramSpec::mpi_hello_world(Language::C),
                    cfg.seed,
                    &cfg.retry,
                ) {
                    Ok(hello) => {
                        sess.stage_file("/home/user/feam/hello_native", hello.image.clone());
                        launch_with_retry(
                            &mut sess,
                            "/home/user/feam/hello_native",
                            ist,
                            cfg.nprocs,
                            &cfg.retry,
                        )
                        .success
                    }
                    Err(_) => false,
                };
                if let Some(c) = caches {
                    // Same poisoning guard as the description caches: a
                    // test that saw an injected fault is delivered but
                    // never becomes the memoized verdict.
                    if sess.faults_seen.get() == faults_before {
                        c.stack_tests.put(
                            site.name(),
                            &cand.ident(),
                            cfg.seed,
                            cfg.nprocs,
                            epoch,
                            ok,
                        );
                    } else {
                        c.stack_tests.reject();
                    }
                }
                ok
            }
        };
        if !native_ok {
            rec.event(
                "stack_test",
                &[
                    ("stack", cand.ident().as_str().into()),
                    ("native_ok", false.into()),
                ],
            );
            rec.count("stack_tests.failed", 1);
            stack_tests.push(StackTest {
                stack_ident: cand.ident(),
                native_ok: false,
                transported_ok: None,
            });
            cpu += sess.cpu_seconds;
            continue; // advertised but not useable; try the next stack
        }
        any_functioning = Some(cand.ident());

        // ---- Determinant 4: shared libraries under this stack ----------------
        let (missing, extra_dirs) = match binary_image {
            Some(image) => {
                sess.stage_file(APP_PATH, (*image).clone());
                let missing = edc::missing_libraries(&mut sess, APP_PATH);
                let dirs = edc::extra_lib_dirs(&mut sess, &description.needed);
                (missing, dirs)
            }
            None => {
                // Binary not present (bundle-only evaluation): work from the
                // description gathered at the GEE.
                let dirs = edc::extra_lib_dirs(&mut sess, &description.needed);
                let missing = description
                    .needed
                    .iter()
                    .filter(|so| {
                        !crate::bdc::is_c_library(so)
                            && crate::bdc::locate_library(&sess, so).is_none()
                            && !visible_on_paths(&sess, so)
                    })
                    .map(|so| so.to_string())
                    .collect();
                (missing, dirs)
            }
        };
        for d in &extra_dirs {
            feam_sim::site::env_prepend(&mut sess.env, "LD_LIBRARY_PATH", d);
        }

        // Resolution (extended mode only, §V.C: "Resolution can proceed if
        // a Source Phase has occurred").
        let mut resolution: Option<ResolutionPlan> = None;
        let mut all_libs_ok = missing.is_empty();
        let mut lib_detail = if missing.is_empty() {
            "all required shared libraries present".to_string()
        } else {
            format!("missing: {}", missing.join(", "))
        };
        if !missing.is_empty() && !cfg.disable_resolution {
            // Resolution needs the target ISA to vet copies; when the ISA
            // determinant came back Unknown there is no arch to vet
            // against, so resolution is skipped (degraded path).
            if let (Some(bundle), Some(arch)) = (bundle, env.arch) {
                let rp = resolve_missing(
                    &mut sess,
                    bundle,
                    &missing,
                    arch,
                    env.c_library.as_ref(),
                    STAGING_DIR,
                );
                if rp.complete() {
                    all_libs_ok = true;
                    lib_detail = format!(
                        "{} missing shared libraries resolved via copies from {}",
                        rp.staged_count(),
                        bundle.gee_site
                    );
                    feam_sim::site::env_prepend(&mut sess.env, "LD_LIBRARY_PATH", STAGING_DIR);
                } else {
                    let fails: Vec<String> = rp
                        .failures()
                        .iter()
                        .map(|(so, why)| format!("{so}: {why}"))
                        .collect();
                    lib_detail = format!("unresolvable: {}", fails.join("; "));
                }
                resolution = Some(rp);
            }
        }

        // Extended compatibility test: run the transported hello world
        // under the composed environment (catches ABI and floating-point
        // incompatibilities the static checks cannot see).
        let transported_probe = if cfg.disable_transported_tests {
            None
        } else {
            bundle.and_then(|b| {
                b.hello_world(Language::C)
                    .or_else(|| b.hello_worlds.first())
            })
        };
        let transported_ok = match transported_probe {
            Some(probe) => {
                sess.stage_file("/home/user/feam/hello_transported", probe.image.clone());
                let ok = launch_with_retry(
                    &mut sess,
                    "/home/user/feam/hello_transported",
                    ist,
                    cfg.nprocs,
                    &cfg.retry,
                )
                .success;
                Some(ok)
            }
            None => None,
        };
        {
            let mut fields: Vec<(&str, feam_obs::FieldValue)> = vec![
                ("stack", cand.ident().as_str().into()),
                ("native_ok", true.into()),
            ];
            if let Some(t) = transported_ok {
                fields.push(("transported_ok", t.into()));
            }
            rec.event("stack_test", &fields);
            rec.count("stack_tests.passed", 1);
        }
        stack_tests.push(StackTest {
            stack_ident: cand.ident(),
            native_ok: true,
            transported_ok,
        });

        // Assemble this candidate's plan.
        let mut cand_plan = ExecutionPlan {
            stack_index: site.stacks.iter().position(|s| s.prefix == ist.prefix),
            stack_ident: Some(cand.ident()),
            launch_command: cfg.mpiexec_override.clone(),
            extra_ld_dirs: extra_dirs.clone(),
            staged: resolution
                .as_ref()
                .map(|r| r.staged.clone())
                .unwrap_or_default(),
        };
        if resolution
            .as_ref()
            .map(|r| r.staged_count() > 0)
            .unwrap_or(false)
        {
            cand_plan.extra_ld_dirs.push(STAGING_DIR.to_string());
        }
        cpu += sess.cpu_seconds;

        let transported_passed = transported_ok.unwrap_or(true);
        if all_libs_ok && transported_passed {
            // Success: record positive verdicts and return.
            record_determinant(
                &rec,
                &mut prediction,
                Determinant::MpiStack,
                Determination::Compatible,
                format!(
                    "functioning {} stack: {}{}",
                    bin_impl.name(),
                    cand.ident(),
                    match transported_ok {
                        Some(true) => " (transported hello world passed)",
                        _ => " (native hello world passed)",
                    }
                ),
            );
            record_determinant(
                &rec,
                &mut prediction,
                Determinant::SharedLibraries,
                Determination::Compatible,
                lib_detail,
            );
            return TargetEvaluation::conclude(prediction, cand_plan, resolution, stack_tests, cpu);
        }
        // Keep the most promising incomplete candidate for the best-effort
        // plan and its failure detail.
        let detail = if !transported_passed {
            format!(
                "stack {} functioning but transported hello world failed (ABI/FP incompatibility)",
                cand.ident()
            )
        } else {
            lib_detail
        };
        if best_incomplete.is_none() {
            best_incomplete = Some((cand_plan, resolution, detail));
        }
    }

    // No candidate produced a positive prediction.
    match best_incomplete {
        Some((cand_plan, resolution, detail)) => {
            let transported_failed = detail.contains("transported");
            if transported_failed {
                record_determinant(
                    &rec,
                    &mut prediction,
                    Determinant::MpiStack,
                    Determination::Incompatible,
                    detail,
                );
            } else {
                record_determinant(
                    &rec,
                    &mut prediction,
                    Determinant::MpiStack,
                    Determination::Compatible,
                    format!(
                        "functioning {} stack: {}",
                        bin_impl.name(),
                        any_functioning.clone().unwrap_or_default()
                    ),
                );
                record_determinant(
                    &rec,
                    &mut prediction,
                    Determinant::SharedLibraries,
                    Determination::Incompatible,
                    detail,
                );
            }
            TargetEvaluation::conclude(prediction, cand_plan, resolution, stack_tests, cpu)
        }
        None => {
            record_determinant(
                &rec,
                &mut prediction,
                Determinant::MpiStack,
                Determination::Incompatible,
                format!(
                    "{} advertised at target but no stack passed the hello-world test",
                    bin_impl.name()
                ),
            );
            TargetEvaluation::conclude(prediction, plan, None, stack_tests, cpu)
        }
    }
}

fn visible_on_paths(sess: &Session<'_>, soname: &str) -> bool {
    let mut dirs = sess.ld_library_path();
    dirs.extend(sess.site.default_lib_dirs());
    dirs.iter().any(|d| sess.exists(&format!("{d}/{soname}")))
}

/// The configuration a scientist without FEAM would use: `module load` a
/// stack of the matching MPI implementation — preferring one built with
/// the same compiler family when the user knows it — and nothing else
/// (Table IV's "before resolution" baseline).
pub fn naive_plan(
    site: &Site,
    env: &EnvironmentDescription,
    bin_impl: Option<feam_sim::mpi::MpiImpl>,
    compiler_family: Option<feam_sim::toolchain::CompilerFamily>,
) -> ExecutionPlan {
    let Some(imp) = bin_impl else {
        return ExecutionPlan::default();
    };
    let candidates = env.stacks_of(imp);
    let preferred = compiler_family
        .and_then(|fam| candidates.iter().find(|c| c.compiler == fam.tag()).copied());
    for cand in preferred.into_iter().chain(candidates.iter().copied()) {
        if let Some(ist) = edc::find_installed(site, cand) {
            return ExecutionPlan {
                stack_index: site.stacks.iter().position(|s| s.prefix == ist.prefix),
                stack_ident: Some(cand.ident()),
                launch_command: None,
                extra_ld_dirs: Vec::new(),
                staged: Vec::new(),
            };
        }
    }
    ExecutionPlan::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdc::BinaryDescription;
    use crate::edc::discover;
    use feam_sim::compile::{compile as sim_compile, ProgramSpec};
    use feam_workloads::sites::{standard_sites, FIR, RANGER};

    fn cfg() -> PhaseConfig {
        PhaseConfig::default()
    }

    #[test]
    fn self_migration_predicts_ready() {
        // A binary evaluated at its own build site must be predicted ready.
        let sites = standard_sites(13);
        let fir = &sites[FIR];
        let ist = fir.stacks[0].clone();
        let bin = sim_compile(
            fir,
            Some(&ist),
            &ProgramSpec::new("cg", feam_sim::toolchain::Language::Fortran),
            13,
        )
        .unwrap();
        let desc = BinaryDescription::from_bytes("/home/user/cg", &bin.image).unwrap();
        let mut sess = Session::new(fir);
        let env = discover(&mut sess);
        let eval = evaluate(fir, &desc, Some(&bin.image), &env, None, &cfg());
        assert!(
            eval.prediction.ready(),
            "self-migration must be ready: {:?}",
            eval.prediction.first_failure()
        );
        assert!(eval.plan.stack_ident.is_some());
        assert!(eval.cpu_seconds > 0.0);
    }

    #[test]
    fn glibc_too_new_predicts_not_ready_before_stack_tests() {
        let sites = standard_sites(13);
        let forge = &sites[feam_workloads::sites::FORGE];
        let ranger = &sites[RANGER];
        // Build at Forge with maximum glibc appetite → requires 2.12.
        let ist = forge.stacks[0].clone();
        let mut prog = ProgramSpec::new("hot", feam_sim::toolchain::Language::C);
        prog.glibc_appetite = 1.0;
        let bin = sim_compile(forge, Some(&ist), &prog, 13).unwrap();
        let desc = BinaryDescription::from_bytes("/home/user/hot", &bin.image).unwrap();
        // Evaluate at Ranger (glibc 2.3.4).
        let mut sess = Session::new(ranger);
        let env = discover(&mut sess);
        let eval = evaluate(ranger, &desc, Some(&bin.image), &env, None, &cfg());
        assert!(!eval.prediction.ready());
        assert_eq!(
            eval.prediction.first_failure().unwrap().determinant,
            Determinant::CLibrary
        );
        // Evaluation stopped early: no stack tests were run.
        assert!(eval.stack_tests.is_empty());
    }

    #[test]
    fn missing_mpi_impl_predicts_not_ready() {
        let sites = standard_sites(13);
        let fir = &sites[FIR];
        let blacklight = &sites[feam_workloads::sites::BLACKLIGHT];
        // MPICH2 binary from Fir; Blacklight has only Open MPI.
        let mpich_stack = fir
            .stacks
            .iter()
            .find(|s| s.stack.mpi == feam_sim::mpi::MpiImpl::Mpich2)
            .unwrap()
            .clone();
        let bin = sim_compile(
            fir,
            Some(&mpich_stack),
            &ProgramSpec::new("is", feam_sim::toolchain::Language::C),
            13,
        )
        .unwrap();
        let desc = BinaryDescription::from_bytes("/home/user/is", &bin.image).unwrap();
        let mut sess = Session::new(blacklight);
        let env = discover(&mut sess);
        let eval = evaluate(blacklight, &desc, Some(&bin.image), &env, None, &cfg());
        assert!(!eval.prediction.ready());
        assert_eq!(
            eval.prediction.first_failure().unwrap().determinant,
            Determinant::MpiStack
        );
    }

    #[test]
    fn static_mpi_binary_degrades_to_unknown_with_provenance_plan() {
        // A statically linked MPI binary has no DT_NEEDED channel at all:
        // the stack determinant must degrade to Unknown on the provenance
        // claim — never veto — and shared libraries are trivially satisfied.
        let sites = standard_sites(13);
        let fir = &sites[FIR];
        let ist = fir.stacks[0].clone();
        let bin = feam_sim::compile::compile_variant(
            fir,
            Some(&ist),
            &ProgramSpec::new("cg", feam_sim::toolchain::Language::Fortran),
            13,
            feam_sim::compile::BinaryVariant::Static,
        )
        .unwrap();
        let desc = BinaryDescription::from_bytes("/home/user/cg", &bin.image).unwrap();
        assert!(!desc.is_dynamic);
        let prov = desc
            .provenance
            .as_ref()
            .expect("fallback evidence attached");
        assert_eq!(
            prov.mpi_stack.as_ref().unwrap().implementation,
            ist.stack.mpi
        );
        let mut sess = Session::new(fir);
        let env = discover(&mut sess);
        let eval = evaluate(fir, &desc, Some(&bin.image), &env, None, &cfg());
        assert!(eval.prediction.degraded(), "MpiStack must be Unknown");
        assert!(eval.prediction.first_failure().is_none(), "never a veto");
        let verdicts = &eval.prediction.verdicts;
        let mpi = verdicts
            .iter()
            .find(|v| v.determinant == Determinant::MpiStack)
            .unwrap();
        assert_eq!(mpi.verdict, Determination::Unknown);
        assert!(mpi.detail.contains("provenance claims"), "{}", mpi.detail);
        let libs = verdicts
            .iter()
            .find(|v| v.determinant == Determinant::SharedLibraries)
            .unwrap();
        assert_eq!(libs.verdict, Determination::Compatible);
        // The plan still names a stack, ranked through the claim.
        assert!(eval.plan.stack_ident.is_some());
        assert!(eval.confidence < 1.0);
    }

    #[test]
    fn static_non_mpi_binary_reports_no_provenance_signal() {
        let sites = standard_sites(13);
        let fir = &sites[FIR];
        let mut prog = ProgramSpec::serial_hello_world();
        prog.text_size = 16 * 1024;
        let bin = feam_sim::compile::compile_variant(
            fir,
            None,
            &prog,
            7,
            feam_sim::compile::BinaryVariant::Static,
        )
        .unwrap();
        let desc = BinaryDescription::from_bytes("/home/user/tool", &bin.image).unwrap();
        let mut sess = Session::new(fir);
        let env = discover(&mut sess);
        let eval = evaluate(fir, &desc, Some(&bin.image), &env, None, &cfg());
        let mpi = eval
            .prediction
            .verdicts
            .iter()
            .find(|v| v.determinant == Determinant::MpiStack)
            .unwrap();
        assert_eq!(mpi.verdict, Determination::Unknown);
        assert!(
            mpi.detail.contains("no provenance signal"),
            "{}",
            mpi.detail
        );
    }

    #[test]
    fn dynamic_non_mpi_binary_still_vetoes() {
        // The Unknown degrade is reserved for binaries whose DT_NEEDED
        // channel does not exist; a dynamic binary without MPI libraries
        // is positively not an MPI application.
        let sites = standard_sites(13);
        let fir = &sites[FIR];
        let bin = sim_compile(fir, None, &ProgramSpec::serial_hello_world(), 7).unwrap();
        let desc = BinaryDescription::from_bytes("/home/user/tool", &bin.image).unwrap();
        assert!(desc.is_dynamic);
        let mut sess = Session::new(fir);
        let env = discover(&mut sess);
        let eval = evaluate(fir, &desc, Some(&bin.image), &env, None, &cfg());
        assert_eq!(
            eval.prediction.first_failure().unwrap().determinant,
            Determinant::MpiStack
        );
    }

    #[test]
    fn stripped_binary_evaluates_like_its_normal_twin() {
        // Stripping loses `.comment` but keeps the dynamic segment route,
        // so the stack determinant works off direct evidence and the
        // provenance report rides along for the compiler claim.
        let sites = standard_sites(13);
        let fir = &sites[FIR];
        let ist = fir.stacks[0].clone();
        let prog = ProgramSpec::new("cg", feam_sim::toolchain::Language::Fortran);
        let bin = feam_sim::compile::compile_variant(
            fir,
            Some(&ist),
            &prog,
            13,
            feam_sim::compile::BinaryVariant::Stripped,
        )
        .unwrap();
        let desc = BinaryDescription::from_bytes("/home/user/cg", &bin.image).unwrap();
        assert!(desc.comments.is_empty());
        let prov = desc
            .provenance
            .as_ref()
            .expect("fallback evidence attached");
        assert_eq!(
            prov.compiler.as_ref().unwrap().family,
            ist.stack.compiler.family
        );
        let mut sess = Session::new(fir);
        let env = discover(&mut sess);
        let eval = evaluate(fir, &desc, Some(&bin.image), &env, None, &cfg());
        assert!(
            eval.prediction.ready(),
            "{:?}",
            eval.prediction.first_failure()
        );
    }

    #[test]
    fn cooperative_binary_carries_no_provenance_report() {
        let sites = standard_sites(13);
        let fir = &sites[FIR];
        let ist = fir.stacks[0].clone();
        let bin = sim_compile(
            fir,
            Some(&ist),
            &ProgramSpec::new("cg", feam_sim::toolchain::Language::Fortran),
            13,
        )
        .unwrap();
        let desc = BinaryDescription::from_bytes("/home/user/cg", &bin.image).unwrap();
        assert!(!desc.evidence.needs_fallback());
        assert!(desc.provenance.is_none());
    }

    #[test]
    fn setup_script_mentions_stack_and_dirs() {
        let plan = ExecutionPlan {
            stack_index: Some(0),
            stack_ident: Some("openmpi-1.4-gnu-4.1.2".into()),
            launch_command: Some("orterun".into()),
            extra_ld_dirs: vec!["/opt/openmpi-1.4-gnu-4.1.2/lib".into()],
            staged: vec![],
        };
        let script = plan.setup_script();
        assert!(script.contains("module load openmpi-1.4-gnu-4.1.2"));
        assert!(script.contains("LD_LIBRARY_PATH=/opt/openmpi-1.4-gnu-4.1.2/lib"));
        assert!(
            script.contains("orterun -np"),
            "configured launcher used: {script}"
        );
        // Default launcher when no override is configured.
        let plain = ExecutionPlan {
            launch_command: None,
            ..plan.clone()
        };
        assert!(plain.setup_script().contains("mpiexec -np"));
    }
}
