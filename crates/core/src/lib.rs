//! # feam-core — FEAM, a Framework for Efficient Application Migration
//!
//! The paper's contribution: predict whether an MPI application *binary*
//! will execute at a new computing site without recompilation, and raise
//! the odds by resolving missing shared libraries with copies gathered at
//! a guaranteed execution environment.
//!
//! Components (Figure 2):
//!
//! * [`bdc`] — Binary Description Component: ELF-level description, Table
//!   I MPI identification, required-C-library computation, GEE library
//!   collection.
//! * [`edc`] — Environment Discovery Component: ISA, OS, C library, MPI
//!   stack discovery (Environment Modules / SoftEnv / path search), missing
//!   library detection.
//! * [`tec`] — Target Evaluation Component: the four-determinant
//!   [`predict`]ion model, hello-world stack tests, the [`resolve`]
//!   resolution model, and the generated site configuration.
//!
//! Phases ([`phases`]): the optional source phase produces a
//! [`bundle::SourceBundle`]; the mandatory target phase produces a
//! [`phases::TargetOutcome`] whose [`predict::Prediction`] is the paper's
//! *basic* (target-only) or *extended* (source + target) prediction.
//!
//! ```
//! use feam_core::phases::{run_source_phase, run_target_phase, PhaseConfig};
//! use feam_workloads::sites::{standard_sites, FIR, INDIA};
//! use feam_sim::compile::{compile, ProgramSpec};
//! use feam_sim::toolchain::Language;
//!
//! let cfg = PhaseConfig::default();
//! let sites = standard_sites(7);
//! // An Open MPI + GNU binary built at India migrates cleanly to Fir.
//! let stack = sites[INDIA].stacks.iter()
//!     .find(|s| s.stack.ident() == "openmpi-1.4.3-gnu-4.1.2").unwrap().clone();
//! let bin = compile(&sites[INDIA], Some(&stack),
//!     &ProgramSpec::new("cg", Language::Fortran), 7).unwrap();
//! let bundle = run_source_phase(&sites[INDIA], &bin.image, &cfg).unwrap();
//! let outcome = run_target_phase(&sites[FIR], Some(&bin.image), Some(&bundle), &cfg);
//! assert!(outcome.prediction.ready());
//! ```

pub mod bdc;
pub mod bundle;
pub mod cache;
pub mod config;
pub mod edc;
pub mod error;
pub mod intern;
pub mod phases;
pub mod predict;
pub mod report;
pub mod resolve;
pub mod retry;
pub mod tec;

pub use bdc::{identify_mpi, BinaryDescription, MpiIdentification};
pub use bundle::SourceBundle;
pub use cache::{BdcKey, CacheLayerStats, PhaseCaches};
pub use config::{ConfigError, ConfigFile};
pub use edc::{discover, EnvironmentDescription};
pub use error::{FeamError, Result};
pub use intern::{IStr, Interner, NameId};
pub use phases::{run_source_phase, run_target_phase, PhaseConfig, TargetOutcome};
pub use predict::{Determinant, Determination, Dissent, MemberVote, Prediction, PredictionMode};
pub use resolve::{ResolutionFailure, ResolutionPlan};
pub use retry::RetryPolicy;
pub use tec::{evaluate, ExecutionPlan, TargetEvaluation};
