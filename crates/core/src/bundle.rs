//! The source-phase bundle (§V: "The output from a source phase is bundled
//! for the user and must be copied to each target site").
//!
//! Contains the application's description, copies + descriptions of every
//! shared library gathered at the guaranteed execution environment, the
//! GEE's environment description, and MPI hello-world probes compiled with
//! the application's stack. §VI.C: "a bundle of shared library copies
//! composed by FEAM's source phase averaged 45M in size".

use crate::bdc::{BinaryDescription, LibraryCopy};
use crate::edc::EnvironmentDescription;
use feam_sim::toolchain::Language;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A transported MPI hello-world probe.
#[derive(Debug, Clone)]
pub struct HelloWorldProbe {
    pub language: Language,
    /// Stack identifier it was compiled with at the GEE.
    pub stack_ident: String,
    pub image: Arc<Vec<u8>>,
}

/// The source-phase output.
#[derive(Debug, Clone)]
pub struct SourceBundle {
    /// Name of the guaranteed execution environment.
    pub gee_site: String,
    /// The application's description as gathered at the GEE.
    pub app: BinaryDescription,
    /// The GEE's environment description.
    pub gee_env: EnvironmentDescription,
    /// Stack the application was matched to at the GEE.
    pub app_stack_ident: Option<String>,
    /// Library copies keyed by soname.
    pub libraries: BTreeMap<String, LibraryCopy>,
    /// Transported hello worlds.
    pub hello_worlds: Vec<HelloWorldProbe>,
}

/// Manifest entry for one library copy (serializable summary).
#[derive(Debug, Clone, Serialize)]
pub struct ManifestEntry {
    pub soname: String,
    pub origin: String,
    pub size: usize,
    pub required_glibc: Option<String>,
    pub needed: Vec<String>,
}

impl SourceBundle {
    /// Total size in bytes of all library copies (the §VI.C statistic).
    pub fn library_bytes(&self) -> usize {
        self.libraries.values().map(|l| l.bytes.len()).sum()
    }

    /// Total bundle size (libraries + hello worlds).
    pub fn total_bytes(&self) -> usize {
        self.library_bytes()
            + self
                .hello_worlds
                .iter()
                .map(|h| h.image.len())
                .sum::<usize>()
    }

    /// Serializable manifest (what a real FEAM writes next to the copies).
    pub fn manifest(&self) -> serde_json::Value {
        let libs: Vec<ManifestEntry> = self
            .libraries
            .values()
            .map(|l| ManifestEntry {
                soname: l.soname.clone(),
                origin: l.origin.clone(),
                size: l.bytes.len(),
                required_glibc: l.description.required_glibc.as_ref().map(|v| v.render()),
                needed: l.description.needed.iter().map(|n| n.to_string()).collect(),
            })
            .collect();
        serde_json::json!({
            "gee_site": self.gee_site,
            "application": {
                "path": self.app.path,
                "summary": self.app.summary(),
                "required_glibc": self.app.required_glibc.as_ref().map(|v| v.render()),
            },
            "app_stack": self.app_stack_ident,
            "libraries": libs,
            "hello_worlds": self.hello_worlds.iter().map(|h| serde_json::json!({
                "language": format!("{:?}", h.language),
                "stack": h.stack_ident,
                "size": h.image.len(),
            })).collect::<Vec<_>>(),
            "total_bytes": self.total_bytes(),
        })
    }

    /// The hello world probe for a language, if present.
    pub fn hello_world(&self, language: Language) -> Option<&HelloWorldProbe> {
        self.hello_worlds.iter().find(|h| h.language == language)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdc::BinaryDescription;

    fn dummy_description(path: &str) -> BinaryDescription {
        let mut spec =
            feam_elf::ElfSpec::executable(feam_elf::Machine::X86_64, feam_elf::Class::Elf64);
        spec.needed = vec!["libc.so.6".into()];
        let bytes = spec.build().unwrap();
        BinaryDescription::from_bytes(path, &bytes).unwrap()
    }

    fn dummy_env() -> EnvironmentDescription {
        EnvironmentDescription {
            isa: "x86_64".into(),
            arch: Some(feam_elf::HostArch::X86_64),
            os: "CentOS release 5.6".into(),
            c_library: feam_elf::VersionName::parse("GLIBC_2.5"),
            env_mgmt: None,
            available_stacks: vec![],
            loaded_stack: None,
            unobserved: vec![],
        }
    }

    #[test]
    fn bundle_size_accounting() {
        let mut libraries = BTreeMap::new();
        let lib_bytes = Arc::new(vec![0u8; 10_000]);
        libraries.insert(
            "libx.so.1".to_string(),
            LibraryCopy {
                soname: "libx.so.1".into(),
                origin: "/usr/lib64/libx.so.1".into(),
                bytes: lib_bytes,
                description: dummy_description("/usr/lib64/libx.so.1"),
            },
        );
        let bundle = SourceBundle {
            gee_site: "ranger".into(),
            app: dummy_description("/home/user/app"),
            gee_env: dummy_env(),
            app_stack_ident: Some("openmpi-1.3-intel-10.1".into()),
            libraries,
            hello_worlds: vec![HelloWorldProbe {
                language: Language::C,
                stack_ident: "openmpi-1.3-intel-10.1".into(),
                image: Arc::new(vec![0u8; 500]),
            }],
        };
        assert_eq!(bundle.library_bytes(), 10_000);
        assert_eq!(bundle.total_bytes(), 10_500);
        let m = bundle.manifest();
        assert_eq!(m["gee_site"], "ranger");
        assert_eq!(m["libraries"].as_array().unwrap().len(), 1);
        assert_eq!(m["total_bytes"], 10_500);
        assert!(bundle.hello_world(Language::C).is_some());
        assert!(bundle.hello_world(Language::Fortran).is_none());
    }
}
