//! The execution prediction model (§III, Figure 1).
//!
//! Four determinants decide execution readiness:
//!
//! 1. **ISA compatibility** — compiled for an ISA (and word length) the
//!    target hardware executes.
//! 2. **MPI stack compatibility** — a *functioning* stack of the same MPI
//!    implementation type exists at the target (versions are deliberately
//!    not compared — §III.B found no reliable backward-compatibility rule).
//! 3. **C library compatibility** — the target's C library version is ≥
//!    the binary's required C library version.
//! 4. **Shared library compatibility** — every required shared library is
//!    available in an API-compatible (same major) version, possibly after
//!    resolution.

use feam_elf::{Class, HostArch, Machine, Soname, VersionName};
use serde::{Deserialize, Serialize};

/// The four determinants of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Determinant {
    Isa,
    MpiStack,
    CLibrary,
    SharedLibraries,
}

impl Determinant {
    /// The question the paper phrases for this determinant.
    pub fn question(self) -> &'static str {
        match self {
            Determinant::Isa => "Was the application compiled for a compatible ISA?",
            Determinant::MpiStack => {
                "Is there a compatible MPI stack functioning at the target site?"
            }
            Determinant::CLibrary => {
                "Are the application's C library requirements met at the target site?"
            }
            Determinant::SharedLibraries => {
                "Are all correct versions of the shared libraries available at the target site?"
            }
        }
    }

    /// Stable short label, used in reports, metric names and trace events.
    pub fn name(self) -> &'static str {
        match self {
            Determinant::Isa => "Isa",
            Determinant::MpiStack => "MpiStack",
            Determinant::CLibrary => "CLibrary",
            Determinant::SharedLibraries => "SharedLibraries",
        }
    }

    /// All four, in evaluation order (§V.C: ISA and C library first, then
    /// MPI stack, then shared libraries).
    pub fn evaluation_order() -> [Determinant; 4] {
        [
            Determinant::Isa,
            Determinant::CLibrary,
            Determinant::MpiStack,
            Determinant::SharedLibraries,
        ]
    }
}

/// Tri-state determination of one determinant.
///
/// `Unknown` is the graceful-degradation state: the evidence needed to
/// decide the determinant could not be observed (description files
/// unreadable, databases corrupt), so the prediction proceeds on partial
/// evidence with lowered confidence instead of aborting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Determination {
    Compatible,
    Incompatible,
    /// Could not be observed; counts against confidence, not readiness.
    Unknown,
}

impl Determination {
    /// Map a decided boolean onto the tri-state.
    pub fn of(compatible: bool) -> Self {
        if compatible {
            Determination::Compatible
        } else {
            Determination::Incompatible
        }
    }

    /// Stable short label used in reports and trace events.
    pub fn label(self) -> &'static str {
        match self {
            Determination::Compatible => "compatible",
            Determination::Incompatible => "incompatible",
            Determination::Unknown => "unknown",
        }
    }
}

/// The verdict on one determinant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeterminantVerdict {
    pub determinant: Determinant,
    pub verdict: Determination,
    /// Human-readable justification, written to the user's output file.
    pub detail: String,
}

impl DeterminantVerdict {
    /// True only for a positively decided determinant.
    pub fn compatible(&self) -> bool {
        self.verdict == Determination::Compatible
    }

    /// True when the determinant could not be observed.
    pub fn unknown(&self) -> bool {
        self.verdict == Determination::Unknown
    }
}

/// Which FEAM phases informed a prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictionMode {
    /// Target phase only (§VI.B's *basic prediction*).
    Basic,
    /// Source + target phases (*extended prediction*): transported
    /// hello-world tests and library-copy resolution available.
    Extended,
}

/// One ensemble member's readiness verdict, as recorded in a
/// [`Dissent`] report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemberVote {
    /// Checker name (`feam`, `symdiff`, `closure`).
    pub member: String,
    /// `ready`, `not-ready` or `unknown`.
    pub verdict: String,
}

/// Ensemble disagreement attached to a prediction by the checker
/// ensemble (`feam-agree`). Absent on every prediction the standalone
/// pipeline produces — only the ensemble/serving layer fills it in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dissent {
    /// Every member's verdict, in canonical member order.
    pub members: Vec<MemberVote>,
    /// Members that reached a decided (non-`unknown`) verdict.
    pub decided: u32,
    /// Unordered decided-member pairs that disagreed.
    pub disagreeing_pairs: u32,
    /// Total unordered decided-member pairs.
    pub total_pairs: u32,
}

impl Dissent {
    /// Contested: at least one decided pair of members disagreed.
    pub fn contested(&self) -> bool {
        self.disagreeing_pairs > 0
    }

    /// Chance-free agreement factor in `[0, 1]`: the fraction of decided
    /// member pairs that agreed (1.0 with fewer than two decided members
    /// — a lone voice cannot disagree with itself).
    pub fn agreement(&self) -> f64 {
        if self.total_pairs == 0 {
            return 1.0;
        }
        1.0 - self.disagreeing_pairs as f64 / self.total_pairs as f64
    }
}

/// A complete prediction for one (binary, target site) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Prediction {
    pub mode: PredictionMode,
    /// Verdicts in evaluation order; evaluation may stop early when a
    /// determinant fails (the paper details the reasons to the user).
    pub verdicts: Vec<DeterminantVerdict>,
    /// Checker-ensemble disagreement, when an ensemble ran (`feam-agree`).
    /// `None` — the default everywhere in the standalone pipeline —
    /// leaves confidence exactly at its pre-ensemble value.
    pub dissent: Option<Dissent>,
}

impl Prediction {
    /// Start an empty prediction.
    pub fn new(mode: PredictionMode) -> Self {
        Prediction {
            mode,
            verdicts: Vec::new(),
            dissent: None,
        }
    }

    /// Record a decided (boolean) verdict.
    pub fn record(
        &mut self,
        determinant: Determinant,
        compatible: bool,
        detail: impl Into<String>,
    ) {
        self.record_determination(determinant, Determination::of(compatible), detail);
    }

    /// Record a tri-state verdict.
    pub fn record_determination(
        &mut self,
        determinant: Determinant,
        verdict: Determination,
        detail: impl Into<String>,
    ) {
        self.verdicts.push(DeterminantVerdict {
            determinant,
            verdict,
            detail: detail.into(),
        });
    }

    /// Record an unobservable determinant (graceful degradation).
    pub fn record_unknown(&mut self, determinant: Determinant, detail: impl Into<String>) {
        self.record_determination(determinant, Determination::Unknown, detail);
    }

    /// Ready iff no evaluated determinant is incompatible and at least one
    /// was positively decided. `Unknown` verdicts do not veto readiness —
    /// they lower [`Prediction::confidence`] instead.
    pub fn ready(&self) -> bool {
        self.verdicts.iter().any(|v| v.compatible())
            && !self
                .verdicts
                .iter()
                .any(|v| v.verdict == Determination::Incompatible)
    }

    /// The first incompatible determinant, if any.
    pub fn first_failure(&self) -> Option<&DeterminantVerdict> {
        self.verdicts
            .iter()
            .find(|v| v.verdict == Determination::Incompatible)
    }

    /// Degraded iff any determinant could not be observed.
    pub fn degraded(&self) -> bool {
        self.verdicts.iter().any(|v| v.unknown())
    }

    /// Fraction of evaluated determinants that were actually decided
    /// (1.0 = fully observed, 0.0 = nothing evaluated or all unknown),
    /// discounted by the ensemble agreement factor when a checker
    /// ensemble attached a [`Dissent`] — each disagreeing member pair
    /// shaves a proportional slice off, so confidence is monotonically
    /// non-increasing in the disagreement count.
    pub fn confidence(&self) -> f64 {
        if self.verdicts.is_empty() {
            return 0.0;
        }
        let decided = self.verdicts.iter().filter(|v| !v.unknown()).count();
        let base = decided as f64 / self.verdicts.len() as f64;
        match &self.dissent {
            Some(d) => base * d.agreement(),
            None => base,
        }
    }

    /// Contested: an ensemble ran and its decided members disagreed.
    pub fn contested(&self) -> bool {
        self.dissent.as_ref().is_some_and(Dissent::contested)
    }
}

/// Determinant 1: ISA compatibility.
pub fn isa_compatible(target: HostArch, machine: Machine, class: Class) -> bool {
    target.executes(machine, class)
}

/// Determinant 3: C library compatibility — target version ≥ required.
/// A binary without versioned C library references is compatible with any
/// target; a target whose C library version could not be discovered is
/// treated as incompatible (no basis for a positive claim).
pub fn c_library_compatible(required: Option<&VersionName>, target: Option<&VersionName>) -> bool {
    match (required, target) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some(req), Some(t)) => t.cmp_same_prefix(req).map(|o| o.is_ge()).unwrap_or(false),
    }
}

/// Determinant 4 helper: §III.D's naming-convention compatibility — a
/// provided library satisfies a request when base names match and, when the
/// request pins a major version, the majors agree.
pub fn shared_library_compatible(requested: &str, provided: &str) -> bool {
    match (Soname::parse(requested), Soname::parse(provided)) {
        (Some(req), Some(prov)) => req.api_compatible_with(&prov),
        _ => requested == provided,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn questions_match_paper_wording() {
        assert!(Determinant::Isa.question().contains("ISA"));
        assert!(Determinant::MpiStack.question().contains("MPI stack"));
        assert!(Determinant::CLibrary.question().contains("C library"));
        assert!(Determinant::SharedLibraries
            .question()
            .contains("shared libraries"));
    }

    #[test]
    fn prediction_ready_requires_all_compatible() {
        let mut p = Prediction::new(PredictionMode::Basic);
        assert!(!p.ready(), "empty prediction is not ready");
        p.record(Determinant::Isa, true, "x86-64 on x86_64");
        p.record(Determinant::CLibrary, true, "GLIBC_2.3.4 <= GLIBC_2.5");
        assert!(p.ready());
        p.record(
            Determinant::MpiStack,
            false,
            "no functioning Open MPI stack",
        );
        assert!(!p.ready());
        assert_eq!(
            p.first_failure().unwrap().determinant,
            Determinant::MpiStack
        );
    }

    #[test]
    fn unknown_verdicts_degrade_confidence_without_vetoing_readiness() {
        let mut p = Prediction::new(PredictionMode::Basic);
        p.record(Determinant::Isa, true, "x86-64 on x86_64");
        p.record_unknown(Determinant::CLibrary, "target C library unobservable");
        p.record(Determinant::MpiStack, true, "openmpi-1.4 functioning");
        p.record(Determinant::SharedLibraries, true, "all resolved");
        assert!(p.ready(), "Unknown does not veto readiness");
        assert!(p.degraded());
        assert!((p.confidence() - 0.75).abs() < 1e-9);
        assert!(p.first_failure().is_none());

        let mut all_unknown = Prediction::new(PredictionMode::Basic);
        all_unknown.record_unknown(Determinant::Isa, "binary unreadable");
        assert!(!all_unknown.ready(), "nothing positively decided");
        assert_eq!(all_unknown.confidence(), 0.0);

        let mut mixed = Prediction::new(PredictionMode::Basic);
        mixed.record_unknown(Determinant::CLibrary, "unobservable");
        mixed.record(Determinant::Isa, false, "ppc64 binary");
        assert!(!mixed.ready());
        assert_eq!(mixed.first_failure().unwrap().determinant, Determinant::Isa);
    }

    #[test]
    fn c_library_rule_is_greater_or_equal() {
        let v234 = VersionName::parse("GLIBC_2.3.4").unwrap();
        let v25 = VersionName::parse("GLIBC_2.5").unwrap();
        let v212 = VersionName::parse("GLIBC_2.12").unwrap();
        assert!(c_library_compatible(Some(&v234), Some(&v25)));
        assert!(c_library_compatible(Some(&v25), Some(&v25)));
        assert!(!c_library_compatible(Some(&v212), Some(&v25)));
        assert!(c_library_compatible(None, Some(&v25)));
        assert!(c_library_compatible(None, None));
        assert!(!c_library_compatible(Some(&v25), None));
    }

    #[test]
    fn shared_library_major_rule() {
        assert!(shared_library_compatible(
            "libgfortran.so.1",
            "libgfortran.so.1.0.0"
        ));
        assert!(!shared_library_compatible(
            "libgfortran.so.1",
            "libgfortran.so.3"
        ));
        assert!(shared_library_compatible("libimf.so", "libimf.so"));
        assert!(!shared_library_compatible("libimf.so", "libsvml.so"));
    }

    #[test]
    fn isa_determinant_delegates_to_hardware_model() {
        assert!(isa_compatible(HostArch::X86_64, Machine::X86, Class::Elf32));
        assert!(!isa_compatible(
            HostArch::X86_64,
            Machine::Ppc64,
            Class::Elf64
        ));
    }

    #[test]
    fn dissent_discounts_confidence_and_marks_contested() {
        let mut p = Prediction::new(PredictionMode::Basic);
        p.record(Determinant::Isa, true, "ok");
        p.record(Determinant::CLibrary, true, "ok");
        assert_eq!(p.confidence(), 1.0);
        assert!(!p.contested(), "no ensemble, nothing contested");

        // Three decided members, one dissenter: 2 of 3 pairs disagree.
        p.dissent = Some(Dissent {
            members: vec![
                MemberVote {
                    member: "feam".into(),
                    verdict: "ready".into(),
                },
                MemberVote {
                    member: "symdiff".into(),
                    verdict: "not-ready".into(),
                },
                MemberVote {
                    member: "closure".into(),
                    verdict: "ready".into(),
                },
            ],
            decided: 3,
            disagreeing_pairs: 2,
            total_pairs: 3,
        });
        assert!(p.contested());
        assert!((p.confidence() - 1.0 / 3.0).abs() < 1e-9);

        // Unanimous ensembles change nothing.
        let d = p.dissent.as_mut().unwrap();
        d.disagreeing_pairs = 0;
        assert!(!p.contested());
        assert_eq!(p.confidence(), 1.0);

        // A lone decided member has no pairs and full agreement.
        let lone = Dissent {
            members: vec![MemberVote {
                member: "feam".into(),
                verdict: "ready".into(),
            }],
            decided: 1,
            disagreeing_pairs: 0,
            total_pairs: 0,
        };
        assert_eq!(lone.agreement(), 1.0);
        assert!(!lone.contested());
    }

    #[test]
    fn evaluation_order_checks_cheap_determinants_first() {
        let order = Determinant::evaluation_order();
        assert_eq!(order[0], Determinant::Isa);
        assert_eq!(order[1], Determinant::CLibrary);
        assert_eq!(order[3], Determinant::SharedLibraries);
    }
}
