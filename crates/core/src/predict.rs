//! The execution prediction model (§III, Figure 1).
//!
//! Four determinants decide execution readiness:
//!
//! 1. **ISA compatibility** — compiled for an ISA (and word length) the
//!    target hardware executes.
//! 2. **MPI stack compatibility** — a *functioning* stack of the same MPI
//!    implementation type exists at the target (versions are deliberately
//!    not compared — §III.B found no reliable backward-compatibility rule).
//! 3. **C library compatibility** — the target's C library version is ≥
//!    the binary's required C library version.
//! 4. **Shared library compatibility** — every required shared library is
//!    available in an API-compatible (same major) version, possibly after
//!    resolution.

use feam_elf::{Class, HostArch, Machine, Soname, VersionName};
use serde::{Deserialize, Serialize};

/// The four determinants of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Determinant {
    Isa,
    MpiStack,
    CLibrary,
    SharedLibraries,
}

impl Determinant {
    /// The question the paper phrases for this determinant.
    pub fn question(self) -> &'static str {
        match self {
            Determinant::Isa => "Was the application compiled for a compatible ISA?",
            Determinant::MpiStack => {
                "Is there a compatible MPI stack functioning at the target site?"
            }
            Determinant::CLibrary => {
                "Are the application's C library requirements met at the target site?"
            }
            Determinant::SharedLibraries => {
                "Are all correct versions of the shared libraries available at the target site?"
            }
        }
    }

    /// Stable short label, used in reports, metric names and trace events.
    pub fn name(self) -> &'static str {
        match self {
            Determinant::Isa => "Isa",
            Determinant::MpiStack => "MpiStack",
            Determinant::CLibrary => "CLibrary",
            Determinant::SharedLibraries => "SharedLibraries",
        }
    }

    /// All four, in evaluation order (§V.C: ISA and C library first, then
    /// MPI stack, then shared libraries).
    pub fn evaluation_order() -> [Determinant; 4] {
        [
            Determinant::Isa,
            Determinant::CLibrary,
            Determinant::MpiStack,
            Determinant::SharedLibraries,
        ]
    }
}

/// The verdict on one determinant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeterminantVerdict {
    pub determinant: Determinant,
    pub compatible: bool,
    /// Human-readable justification, written to the user's output file.
    pub detail: String,
}

/// Which FEAM phases informed a prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictionMode {
    /// Target phase only (§VI.B's *basic prediction*).
    Basic,
    /// Source + target phases (*extended prediction*): transported
    /// hello-world tests and library-copy resolution available.
    Extended,
}

/// A complete prediction for one (binary, target site) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Prediction {
    pub mode: PredictionMode,
    /// Verdicts in evaluation order; evaluation may stop early when a
    /// determinant fails (the paper details the reasons to the user).
    pub verdicts: Vec<DeterminantVerdict>,
}

impl Prediction {
    /// Start an empty prediction.
    pub fn new(mode: PredictionMode) -> Self {
        Prediction {
            mode,
            verdicts: Vec::new(),
        }
    }

    /// Record a verdict.
    pub fn record(
        &mut self,
        determinant: Determinant,
        compatible: bool,
        detail: impl Into<String>,
    ) {
        self.verdicts.push(DeterminantVerdict {
            determinant,
            compatible,
            detail: detail.into(),
        });
    }

    /// Ready iff every evaluated determinant is compatible.
    pub fn ready(&self) -> bool {
        !self.verdicts.is_empty() && self.verdicts.iter().all(|v| v.compatible)
    }

    /// The first failing determinant, if any.
    pub fn first_failure(&self) -> Option<&DeterminantVerdict> {
        self.verdicts.iter().find(|v| !v.compatible)
    }
}

/// Determinant 1: ISA compatibility.
pub fn isa_compatible(target: HostArch, machine: Machine, class: Class) -> bool {
    target.executes(machine, class)
}

/// Determinant 3: C library compatibility — target version ≥ required.
/// A binary without versioned C library references is compatible with any
/// target; a target whose C library version could not be discovered is
/// treated as incompatible (no basis for a positive claim).
pub fn c_library_compatible(required: Option<&VersionName>, target: Option<&VersionName>) -> bool {
    match (required, target) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some(req), Some(t)) => t.cmp_same_prefix(req).map(|o| o.is_ge()).unwrap_or(false),
    }
}

/// Determinant 4 helper: §III.D's naming-convention compatibility — a
/// provided library satisfies a request when base names match and, when the
/// request pins a major version, the majors agree.
pub fn shared_library_compatible(requested: &str, provided: &str) -> bool {
    match (Soname::parse(requested), Soname::parse(provided)) {
        (Some(req), Some(prov)) => req.api_compatible_with(&prov),
        _ => requested == provided,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn questions_match_paper_wording() {
        assert!(Determinant::Isa.question().contains("ISA"));
        assert!(Determinant::MpiStack.question().contains("MPI stack"));
        assert!(Determinant::CLibrary.question().contains("C library"));
        assert!(Determinant::SharedLibraries
            .question()
            .contains("shared libraries"));
    }

    #[test]
    fn prediction_ready_requires_all_compatible() {
        let mut p = Prediction::new(PredictionMode::Basic);
        assert!(!p.ready(), "empty prediction is not ready");
        p.record(Determinant::Isa, true, "x86-64 on x86_64");
        p.record(Determinant::CLibrary, true, "GLIBC_2.3.4 <= GLIBC_2.5");
        assert!(p.ready());
        p.record(
            Determinant::MpiStack,
            false,
            "no functioning Open MPI stack",
        );
        assert!(!p.ready());
        assert_eq!(
            p.first_failure().unwrap().determinant,
            Determinant::MpiStack
        );
    }

    #[test]
    fn c_library_rule_is_greater_or_equal() {
        let v234 = VersionName::parse("GLIBC_2.3.4").unwrap();
        let v25 = VersionName::parse("GLIBC_2.5").unwrap();
        let v212 = VersionName::parse("GLIBC_2.12").unwrap();
        assert!(c_library_compatible(Some(&v234), Some(&v25)));
        assert!(c_library_compatible(Some(&v25), Some(&v25)));
        assert!(!c_library_compatible(Some(&v212), Some(&v25)));
        assert!(c_library_compatible(None, Some(&v25)));
        assert!(c_library_compatible(None, None));
        assert!(!c_library_compatible(Some(&v25), None));
    }

    #[test]
    fn shared_library_major_rule() {
        assert!(shared_library_compatible(
            "libgfortran.so.1",
            "libgfortran.so.1.0.0"
        ));
        assert!(!shared_library_compatible(
            "libgfortran.so.1",
            "libgfortran.so.3"
        ));
        assert!(shared_library_compatible("libimf.so", "libimf.so"));
        assert!(!shared_library_compatible("libimf.so", "libsvml.so"));
    }

    #[test]
    fn isa_determinant_delegates_to_hardware_model() {
        assert!(isa_compatible(HostArch::X86_64, Machine::X86, Class::Elf32));
        assert!(!isa_compatible(
            HostArch::X86_64,
            Machine::Ppc64,
            Class::Elf64
        ));
    }

    #[test]
    fn evaluation_order_checks_cheap_determinants_first() {
        let order = Determinant::evaluation_order();
        assert_eq!(order[0], Determinant::Isa);
        assert_eq!(order[1], Determinant::CLibrary);
        assert_eq!(order[3], Determinant::SharedLibraries);
    }
}
