//! Error type for FEAM operations.

use std::fmt;

/// Result alias for `feam-core`.
pub type Result<T> = std::result::Result<T, FeamError>;

/// Errors surfaced by FEAM's components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeamError {
    /// The binary could not be read or parsed.
    BinaryUnreadable(String),
    /// The binary does not appear to be an MPI application.
    NotAnMpiBinary(String),
    /// The guaranteed execution environment is unusable for the source
    /// phase (no matching stack, no library locations).
    SourcePhaseFailed(String),
    /// A required input was not provided.
    MissingInput(&'static str),
}

impl fmt::Display for FeamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeamError::BinaryUnreadable(msg) => write!(f, "cannot describe binary: {msg}"),
            FeamError::NotAnMpiBinary(msg) => write!(f, "not an MPI binary: {msg}"),
            FeamError::SourcePhaseFailed(msg) => write!(f, "source phase failed: {msg}"),
            FeamError::MissingInput(what) => write!(f, "missing input: {what}"),
        }
    }
}

impl std::error::Error for FeamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cause() {
        assert!(FeamError::BinaryUnreadable("x".into())
            .to_string()
            .contains("x"));
        assert!(FeamError::MissingInput("bundle")
            .to_string()
            .contains("bundle"));
    }
}
