//! The prediction service: bounded admission, single-flight coalescing,
//! result memoization, and a worker pool running the FEAM phases.
//!
//! Request lifecycle:
//!
//! 1. **Resolve** — `binary_ref` and `target_site` must be registered;
//!    unknown names fail fast without touching the queue.
//! 2. **Result cache** — a completed evaluation for the same
//!    `(binary, site, epoch, mode)` key answers immediately.
//! 3. **Coalesce** — an in-flight evaluation for the same key adopts this
//!    request as an extra waiter; one phase run fans out to all of them.
//! 4. **Admit or shed** — a fixed-capacity queue feeds the workers; a
//!    full queue sheds with the retryable [`SvcError::Overloaded`] rather
//!    than queueing unboundedly.
//!
//! Workers run the ordinary [`feam_core::phases`] entry points with the
//! shared [`PhaseCaches`] installed, so the BDC/EDC description caches are
//! populated and consulted exactly as the phases themselves decide —
//! including the poisoning guard that keeps faulted computations out.

use feam_core::cache::{BdcKey, PhaseCaches};
use feam_core::phases::{run_source_phase, run_target_phase, PhaseConfig};
use feam_core::predict::{Prediction, PredictionMode};
use feam_core::tec::TargetEvaluation;
use feam_obs::TraceCtx;
use feam_sim::faults::FaultPlan;
use feam_sim::site::Site;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::time::Instant;

use crate::registry::{BinaryRegistry, RegisteredBinary, RegistryError};

/// One prediction query.
#[derive(Debug, Clone)]
pub struct PredictRequest {
    /// Registered name of the binary ([`crate::BinaryRegistry`]).
    pub binary_ref: String,
    /// Name of the target site.
    pub target_site: String,
    /// Basic (target-only) or extended (source + target) prediction.
    pub mode: PredictionMode,
    /// Optional deadline. Checked when a worker dequeues the request: an
    /// expired waiter is answered with [`SvcError::DeadlineExceeded`]
    /// instead of being evaluated, and a flight whose every waiter has
    /// expired is dropped without running the phases at all. Result-cache
    /// hits always answer (the work is already done). `None` never
    /// expires.
    pub deadline: Option<Instant>,
}

/// A completed prediction.
#[derive(Debug, Clone)]
pub struct PredictResponse {
    pub binary_ref: String,
    pub target_site: String,
    /// The per-determinant prediction (mode may downgrade to `Basic` when
    /// an extended request's source phase is impossible, e.g. no GEE).
    pub prediction: Prediction,
    /// The full TEC output backing the prediction.
    pub evaluation: TargetEvaluation,
    /// Whether this answer came straight from the result cache.
    pub from_result_cache: bool,
    /// Whether this answer was clean enough to memoize (current
    /// generation, not degraded, fully observed environment). Fleet
    /// replication forwards only cacheable answers to replica peers.
    pub cacheable: bool,
    /// This waiter's end-to-end latency, submit to delivery.
    pub latency_us: u64,
    /// The same latency at nanosecond resolution: result-cache hits
    /// routinely answer in under a microsecond, where `latency_us`
    /// truncates to 0.
    pub latency_ns: u64,
}

/// Why a request was rejected without being evaluated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SvcError {
    /// `binary_ref` is not registered.
    UnknownBinary(String),
    /// `target_site` names no known site.
    UnknownSite(String),
    /// The admission queue is full; retry after backoff.
    Overloaded { queue_depth: usize },
    /// A registration presented different bytes for an already-bound
    /// name. Changed content goes through
    /// [`PredictService::update_binary`] (which bumps the name's
    /// generation) or takes a new name; silently rebinding would let
    /// coalesced waiters and cached results answer for the wrong binary.
    ContentChanged { name: String },
    /// The request's deadline passed before a worker dequeued it; it was
    /// shed without being evaluated. Not retryable as-is — the caller
    /// must extend or drop the deadline.
    DeadlineExceeded,
    /// The service is shutting down; in-flight work is abandoned.
    ShuttingDown,
}

impl SvcError {
    /// Should the caller retry (with backoff)? Shedding is a transient
    /// condition; unknown names and shutdown are not.
    pub fn retryable(&self) -> bool {
        matches!(self, SvcError::Overloaded { .. })
    }
}

impl std::fmt::Display for SvcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SvcError::UnknownBinary(b) => write!(f, "unknown binary {b:?}"),
            SvcError::UnknownSite(s) => write!(f, "unknown site {s:?}"),
            SvcError::Overloaded { queue_depth } => {
                write!(f, "admission queue full ({queue_depth} deep); retry later")
            }
            SvcError::ContentChanged { name } => write!(
                f,
                "binary name {name:?} is already bound to different content; \
                 use update_binary or register under a new name"
            ),
            SvcError::DeadlineExceeded => {
                write!(f, "deadline expired before evaluation; request shed")
            }
            SvcError::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

impl std::error::Error for SvcError {}

/// Outcome of a non-blocking [`PredictService::submit`].
// The Ready variant carries the full response inline: result-cache hits
// are the hot path and boxing them would trade a variant-size lint for an
// allocation per hit.
#[allow(clippy::large_enum_variant)]
pub enum Delivery {
    /// Answered from the result cache without queueing.
    Ready(PredictResponse),
    /// Queued (or coalesced onto an in-flight evaluation); the response —
    /// or a post-admission rejection such as
    /// [`SvcError::DeadlineExceeded`] — arrives on the receiver.
    Pending(mpsc::Receiver<Result<PredictResponse, SvcError>>),
}

impl std::fmt::Debug for Delivery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Delivery::Ready(r) => f.debug_tuple("Ready").field(r).finish(),
            Delivery::Pending(_) => f.write_str("Pending(..)"),
        }
    }
}

/// Service tuning knobs.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Worker threads evaluating queued requests.
    pub workers: usize,
    /// Admission queue capacity; submissions beyond it shed.
    pub queue_capacity: usize,
    /// EDC entry time-to-live in logical ticks (one tick per submitted
    /// request); 0 = entries live until their site's epoch is bumped.
    pub edc_ttl: u64,
    /// Memoize full evaluations by `(binary, site, epoch, mode)`.
    pub result_cache: bool,
    /// Master cache switch; `false` turns every layer off (the
    /// `FEAM_CACHE=0` twin used to pin result equivalence).
    pub caching: bool,
    /// Seed for the simulated standard sites.
    pub sites_seed: u64,
    /// Seed for FEAM's own probe compilations.
    pub phase_seed: u64,
    /// Telemetry recorder threaded through the service and the phases.
    pub recorder: feam_obs::Recorder,
    /// Explicit fault plan for the phases. `None` uses the ambient plan
    /// from `FEAM_CHAOS_*`; tests that require strict determinism pin
    /// [`FaultPlan::none`] here regardless of the environment.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            edc_ttl: 0,
            result_cache: true,
            caching: feam_core::cache::caching_enabled_from_env(),
            sites_seed: 7,
            phase_seed: 0xFEA4,
            recorder: feam_obs::Recorder::disabled(),
            fault_plan: None,
        }
    }
}

/// The memoization key: full content key of the binary (primary hash +
/// length + second-hash discriminators, so FNV collisions cannot alias),
/// target site at a specific configuration epoch, and the prediction mode.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct RequestKey {
    binary_key: BdcKey,
    site: String,
    epoch: u64,
    extended: bool,
}

/// The configuration coordinates an evaluation was computed under: the
/// binding's content key and the target site's EDC epoch. Replicated
/// results carry their origin's coordinates so
/// [`install_result`](PredictService::install_result) can refuse a
/// payload whose configuration has moved on — and key accepted entries
/// by the state they actually derive from, never by state read at
/// install time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResultOrigin {
    /// Content key of the binary the answer was computed for.
    pub content: BdcKey,
    /// EDC epoch of the target site the answer was computed under.
    pub edc_epoch: u64,
}

struct Waiter {
    since: Instant,
    /// This waiter's deadline; checked when its flight is dequeued.
    deadline: Option<Instant>,
    /// This waiter's own request context: every waiter gets its own
    /// `svc.request` span (begun at submit, ended at delivery) and trace
    /// id, even when coalesced onto another request's evaluation.
    ctx: TraceCtx,
    tx: mpsc::Sender<Result<PredictResponse, SvcError>>,
}

/// One in-flight evaluation: the leader request whose context the worker
/// evaluates under, plus every waiter (leader included) to fan out to.
struct Flight {
    leader: TraceCtx,
    waiters: Vec<Waiter>,
}

struct Job {
    key: RequestKey,
    /// The leader's trace context; the worker parents `svc.eval` (and
    /// thereby the phases) on it across the thread hop.
    ctx: TraceCtx,
    /// Queue entry time, for `svc.queue.wait_us` (wall-clock time spent
    /// waiting for a worker, separate from evaluation time).
    enqueued: Instant,
    binary_ref: String,
    /// The binding as resolved at submit time: the evaluation always runs
    /// over the bytes the waiters asked about, even if the name is
    /// updated mid-flight.
    binary: Arc<RegisteredBinary>,
    /// Registry generation of the binding at submit time; compared
    /// against the current generation before memoizing, so an evaluation
    /// that raced an update never publishes a stale result.
    generation: u64,
    site_idx: usize,
    mode: PredictionMode,
}

struct Inner {
    cfg: ServiceConfig,
    sites: Vec<Site>,
    site_idx: HashMap<String, usize>,
    registry: RwLock<BinaryRegistry>,
    phase_cfg: PhaseConfig,
    caches: Option<Arc<PhaseCaches>>,
    results: Mutex<HashMap<RequestKey, Arc<(Prediction, TargetEvaluation)>>>,
    inflight: Mutex<HashMap<RequestKey, Flight>>,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    /// Evaluations actually run by the worker pool (i.e. not answered by
    /// the result cache or coalesced onto another request's flight).
    evaluated: AtomicU64,
}

/// The long-running prediction service. Construct, register binaries,
/// [`start`](PredictService::start) the workers, then
/// [`predict`](PredictService::predict) / [`submit`](PredictService::submit)
/// from any thread. Dropping the service joins the workers.
pub struct PredictService {
    inner: Arc<Inner>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl PredictService {
    /// A service over the paper's standard simulated sites.
    pub fn new(cfg: ServiceConfig) -> Self {
        let sites = feam_workloads::sites::standard_sites(cfg.sites_seed);
        Self::with_sites(cfg, sites)
    }

    /// A service over an explicit site list.
    pub fn with_sites(cfg: ServiceConfig, sites: Vec<Site>) -> Self {
        let caches = cfg.caching.then(|| Arc::new(PhaseCaches::new(cfg.edc_ttl)));
        let mut phase_cfg = PhaseConfig {
            seed: cfg.phase_seed,
            recorder: cfg.recorder.clone(),
            caches: caches.clone(),
            ..PhaseConfig::default()
        };
        if let Some(plan) = &cfg.fault_plan {
            phase_cfg.faults = plan.clone();
        }
        let site_idx = sites
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name().to_string(), i))
            .collect();
        PredictService {
            inner: Arc::new(Inner {
                cfg,
                sites,
                site_idx,
                registry: RwLock::new(BinaryRegistry::default()),
                phase_cfg,
                caches,
                results: Mutex::new(HashMap::new()),
                inflight: Mutex::new(HashMap::new()),
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                shutdown: AtomicBool::new(false),
                evaluated: AtomicU64::new(0),
            }),
            handles: Vec::new(),
        }
    }

    /// Register a binary under `name`; valid before or after
    /// [`start`](PredictService::start). Re-registering the same content
    /// is an idempotent no-op; different content under an existing name
    /// is rejected with [`SvcError::ContentChanged`] — a changed binary
    /// goes through [`update_binary`](PredictService::update_binary) (or
    /// takes a new name) so cached answers and coalesced waiters never
    /// alias.
    pub fn register_binary(&self, name: &str, binary: RegisteredBinary) -> Result<(), SvcError> {
        self.inner
            .registry
            .write()
            .expect("registry")
            .insert(name, binary)
            .map_err(|RegistryError::ContentConflict { name }| SvcError::ContentChanged { name })
    }

    /// Replace `name`'s bytes (or create the binding), bumping its
    /// generation. Results memoized for the displaced content are purged,
    /// and any evaluation already in flight for the old bytes will
    /// deliver to its waiters but is barred from the result cache by the
    /// generation check in `process`. Returns the new generation.
    pub fn update_binary(&self, name: &str, binary: RegisteredBinary) -> u64 {
        let (generation, displaced) = self
            .inner
            .registry
            .write()
            .expect("registry")
            .update(name, binary);
        if let Some(old) = displaced {
            // Results derived from the displaced bytes are unreachable
            // (the key embeds the content key) — drop them eagerly.
            self.inner
                .results
                .lock()
                .expect("results")
                .retain(|k, _| k.binary_key != old.content_key);
        }
        self.inner.cfg.recorder.count("svc.binary_update", 1);
        generation
    }

    /// Spawn the worker pool. Idempotent; tests submit against an
    /// unstarted service to observe queueing, coalescing and shedding
    /// deterministically.
    pub fn start(&mut self) {
        if !self.handles.is_empty() {
            return;
        }
        for i in 0..self.inner.cfg.workers.max(1) {
            let inner = self.inner.clone();
            self.handles.push(
                std::thread::Builder::new()
                    .name(format!("feam-svc-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker"),
            );
        }
    }

    /// Number of registered binaries.
    pub fn registered(&self) -> usize {
        self.inner.registry.read().expect("registry").len()
    }

    /// The current generation of `name`'s binding (bumped by every
    /// [`update_binary`](PredictService::update_binary)).
    pub fn binary_generation(&self, name: &str) -> Option<u64> {
        self.inner
            .registry
            .read()
            .expect("registry")
            .generation(name)
    }

    /// Site names served, in site order.
    pub fn site_names(&self) -> Vec<String> {
        self.inner
            .sites
            .iter()
            .map(|s| s.name().to_string())
            .collect()
    }

    /// Registered binary names, sorted (the load generator's universe).
    pub fn binary_names(&self) -> Vec<String> {
        self.inner.registry.read().expect("registry").names()
    }

    /// Evaluations the worker pool has actually run.
    pub fn evaluations(&self) -> u64 {
        self.inner.evaluated.load(Ordering::Relaxed)
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.lock().expect("queue").len()
    }

    /// The shared description caches (None when caching is off).
    pub fn caches(&self) -> Option<&Arc<PhaseCaches>> {
        self.inner.caches.as_ref()
    }

    /// The telemetry recorder threaded through the service.
    pub fn recorder(&self) -> &feam_obs::Recorder {
        &self.inner.cfg.recorder
    }

    /// Transient-error rate of `site`'s queueing system — the planner's
    /// expected-launch-attempts input. `None` for unknown sites.
    pub fn site_transient_rate(&self, site: &str) -> Option<f64> {
        self.inner
            .site_idx
            .get(site)
            .map(|&i| self.inner.sites[i].config.transient_error_rate)
    }

    /// The served [`Site`] named `name`, if any. Checker ensembles scan
    /// site library inventories through this.
    pub fn site(&self, name: &str) -> Option<&Site> {
        self.inner.site_idx.get(name).map(|&i| &self.inner.sites[i])
    }

    /// The registered ELF image behind `name`, if any.
    pub fn binary_image(&self, name: &str) -> Option<Arc<Vec<u8>>> {
        self.inner
            .registry
            .read()
            .expect("registry")
            .get(name)
            .map(|b| b.image.clone())
    }

    /// The fault plan every service-side session runs under. Ensemble
    /// checkers collect inventories under the same plan so chaos
    /// perturbs them exactly like the pipeline's own reads.
    pub fn fault_plan(&self) -> Arc<feam_sim::faults::FaultPlan> {
        self.inner.phase_cfg.faults.clone()
    }

    /// Entries currently memoized in the result cache.
    pub fn result_cache_len(&self) -> usize {
        self.inner.results.lock().expect("results").len()
    }

    /// Signal that `site` was reconfigured: bumps its EDC epoch so every
    /// cached description and result derived from the stale environment is
    /// orphaned. Returns the new epoch (0 when caching is off — there is
    /// nothing to invalidate).
    pub fn reconfigure_site(&self, site: &str) -> Result<u64, SvcError> {
        if !self.inner.site_idx.contains_key(site) {
            return Err(SvcError::UnknownSite(site.to_string()));
        }
        let Some(caches) = &self.inner.caches else {
            return Ok(0);
        };
        let epoch = caches.edc.invalidate(site);
        // Old-epoch results are unreachable (the key embeds the epoch);
        // drop them eagerly so the map doesn't accumulate garbage.
        self.inner
            .results
            .lock()
            .expect("results")
            .retain(|k, _| k.site != site);
        self.inner.cfg.recorder.count("svc.epoch_bump", 1);
        Ok(epoch)
    }

    /// Submit without blocking: either an immediate cached answer or a
    /// receiver the worker pool will deliver on.
    pub fn submit(&self, req: &PredictRequest) -> Result<Delivery, SvcError> {
        self.submit_traced(req, TraceCtx::NONE)
    }

    /// [`submit`](PredictService::submit) with an explicit parent trace
    /// context: the request's `svc.request` span parents on
    /// `parent.span_id` and joins `parent.trace_id` (the planner hands
    /// its per-site span context here so a whole plan correlates under
    /// one trace id). Pass [`TraceCtx::NONE`] for a standalone request —
    /// it mints its own trace.
    pub fn submit_traced(
        &self,
        req: &PredictRequest,
        parent: TraceCtx,
    ) -> Result<Delivery, SvcError> {
        let inner = &self.inner;
        let rec = &inner.cfg.recorder;
        let t0 = Instant::now();
        rec.count("svc.requests", 1);

        if inner.shutdown.load(Ordering::SeqCst) {
            return Err(SvcError::ShuttingDown);
        }
        let Some(&site_idx) = inner.site_idx.get(&req.target_site) else {
            return Err(SvcError::UnknownSite(req.target_site.clone()));
        };
        let (binary, generation) = {
            let registry = inner.registry.read().expect("registry");
            let Some(binary) = registry.get(&req.binary_ref) else {
                return Err(SvcError::UnknownBinary(req.binary_ref.clone()));
            };
            (
                binary.clone(),
                registry
                    .generation(&req.binary_ref)
                    .expect("resolved names have a generation"),
            )
        };

        // One logical tick per submitted request: the EDC TTL is measured
        // in "requests of staleness".
        let epoch = match &inner.caches {
            Some(c) => {
                c.edc.advance_clock();
                c.edc.epoch(&req.target_site)
            }
            None => 0,
        };
        let key = RequestKey {
            binary_key: binary.content_key,
            site: req.target_site.clone(),
            epoch,
            extended: req.mode == PredictionMode::Extended,
        };

        // Every request gets a trace context. A cache hit never opens a
        // span (keeping the hot path to a handful of atomics), so its
        // trace id appears only in the latency observation; queued and
        // coalesced requests get a full `svc.request` span.
        let ctx = {
            let minted = rec.mint_ctx();
            if parent.is_none() || minted.is_none() {
                minted
            } else {
                TraceCtx {
                    trace_id: parent.trace_id,
                    span_id: minted.span_id,
                }
            }
        };
        let parent_opt = (!parent.is_none()).then_some(parent);

        // Fast path: a finished evaluation for this exact key.
        if inner.cfg.result_cache && inner.caches.is_some() {
            if let Some(hit) = inner.results.lock().expect("results").get(&key).cloned() {
                rec.count("svc.result.hit", 1);
                rec.count("svc.responses", 1);
                let latency_ns = t0.elapsed().as_nanos() as u64;
                let latency_us = latency_ns / 1_000;
                rec.observe_tail("svc.latency_us", latency_us as f64, ctx);
                rec.finish_trace(ctx);
                return Ok(Delivery::Ready(PredictResponse {
                    binary_ref: req.binary_ref.clone(),
                    target_site: req.target_site.clone(),
                    prediction: hit.0.clone(),
                    evaluation: hit.1.clone(),
                    from_result_cache: true,
                    cacheable: true,
                    latency_us,
                    latency_ns,
                }));
            }
            rec.count("svc.result.miss", 1);
        }

        // This request will wait on a worker (its own flight or another
        // request's): open its span now; it ends at delivery.
        rec.span_begin_at("svc.request", ctx, parent_opt);
        let (tx, rx) = mpsc::channel();
        let waiter = Waiter {
            since: t0,
            deadline: req.deadline,
            ctx,
            tx,
        };

        // Single flight: adopt an in-flight evaluation when one exists.
        // The waiter keeps its own span and trace; the explicit
        // `svc.coalesced_onto` link records whose evaluation will answer
        // it, so the leader's trace is reachable from the waiter's.
        let mut inflight = inner.inflight.lock().expect("inflight");
        if let Some(flight) = inflight.get_mut(&key) {
            rec.event_at(
                "svc.coalesced_onto",
                ctx,
                &[("leader_trace", flight.leader.trace_id.into())],
            );
            flight.waiters.push(waiter);
            rec.count("svc.coalesced", 1);
            return Ok(Delivery::Pending(rx));
        }

        // The flight may have landed between the fast-path probe and
        // taking the inflight lock: `process` publishes its result and
        // clears the inflight entry atomically under this lock, so a
        // re-check here (lock order inflight → results, same as process)
        // closes the window where a key is in neither map and would be
        // evaluated twice.
        if inner.cfg.result_cache && inner.caches.is_some() {
            if let Some(hit) = inner.results.lock().expect("results").get(&key).cloned() {
                rec.count("svc.result.hit", 1);
                rec.count("svc.responses", 1);
                let latency_ns = t0.elapsed().as_nanos() as u64;
                let latency_us = latency_ns / 1_000;
                rec.span_end_at("svc.request", ctx, latency_us);
                rec.observe_tail("svc.latency_us", latency_us as f64, ctx);
                rec.finish_trace(ctx);
                return Ok(Delivery::Ready(PredictResponse {
                    binary_ref: req.binary_ref.clone(),
                    target_site: req.target_site.clone(),
                    prediction: hit.0.clone(),
                    evaluation: hit.1.clone(),
                    from_result_cache: true,
                    cacheable: true,
                    latency_us,
                    latency_ns,
                }));
            }
        }

        // Admission control: shed when the queue is full.
        let mut queue = inner.queue.lock().expect("queue");
        if queue.len() >= inner.cfg.queue_capacity {
            rec.count("queue.shed", 1);
            let depth = queue.len();
            drop(queue);
            drop(inflight);
            rec.event_at("svc.shed", ctx, &[("queue_depth", depth.into())]);
            rec.span_end_at("svc.request", ctx, t0.elapsed().as_micros() as u64);
            rec.finish_trace(ctx);
            return Err(SvcError::Overloaded { queue_depth: depth });
        }
        inflight.insert(
            key.clone(),
            Flight {
                leader: ctx,
                waiters: vec![waiter],
            },
        );
        queue.push_back(Job {
            key,
            ctx,
            enqueued: Instant::now(),
            binary_ref: req.binary_ref.clone(),
            binary,
            generation,
            site_idx,
            mode: req.mode,
        });
        rec.observe("queue.depth", queue.len() as f64);
        rec.gauge("svc.queue.depth", queue.len() as f64);
        drop(queue);
        drop(inflight);
        inner.available.notify_one();
        Ok(Delivery::Pending(rx))
    }

    /// The configuration coordinates a result was computed under — the
    /// binding's content key and the target site's EDC epoch. A
    /// replicated payload carries its origin's coordinates so the
    /// installer can verify them against (and key the entry by) the
    /// state the answer actually derives from.
    pub fn result_origin(&self, binary_ref: &str, site: &str) -> Option<ResultOrigin> {
        let content = self
            .inner
            .registry
            .read()
            .expect("registry")
            .get(binary_ref)
            .map(|b| b.content_key)?;
        let edc_epoch = self
            .inner
            .caches
            .as_ref()
            .map(|c| c.edc.epoch(site))
            .unwrap_or(0);
        Some(ResultOrigin { content, edc_epoch })
    }

    /// Install a completed evaluation into the result cache, as if this
    /// node had evaluated it itself — the fleet's asynchronous
    /// replication path. The caller passes the [`ResultOrigin`] the
    /// payload was computed under, and the cache key is derived from
    /// those coordinates after verifying they still match this node's
    /// current binding and epoch. A config op racing the install
    /// therefore cannot land an old payload under a new-state key: if
    /// the op is observed here the payload is refused, and if it lands
    /// after the checks the entry's key still embeds the old
    /// coordinates (content- and epoch-addressed), so the new binding
    /// can never reach it and the op's own purge sweeps it. Degraded
    /// payloads are refused. Returns whether the entry was installed.
    pub fn install_result(
        &self,
        binary_ref: &str,
        site: &str,
        mode: PredictionMode,
        origin: ResultOrigin,
        prediction: &Prediction,
        evaluation: &TargetEvaluation,
    ) -> bool {
        let inner = &self.inner;
        if !inner.cfg.result_cache || evaluation.degraded {
            return false;
        }
        let Some(caches) = &inner.caches else {
            return false;
        };
        if !inner.site_idx.contains_key(site) {
            return false;
        }
        let current = inner
            .registry
            .read()
            .expect("registry")
            .get(binary_ref)
            .map(|b| b.content_key);
        if current != Some(origin.content) {
            return false; // the binding moved since the origin evaluated
        }
        if caches.edc.epoch(site) != origin.edc_epoch {
            return false; // the site was reconfigured since
        }
        let key = RequestKey {
            binary_key: origin.content,
            site: site.to_string(),
            epoch: origin.edc_epoch,
            extended: mode == PredictionMode::Extended,
        };
        inner
            .results
            .lock()
            .expect("results")
            .insert(key, Arc::new((prediction.clone(), evaluation.clone())));
        inner.cfg.recorder.count("svc.result.replicated_in", 1);
        true
    }

    /// Submit and block until the answer arrives.
    pub fn predict(&self, req: &PredictRequest) -> Result<PredictResponse, SvcError> {
        match self.submit(req)? {
            Delivery::Ready(resp) => Ok(resp),
            Delivery::Pending(rx) => rx.recv().map_err(|_| SvcError::ShuttingDown)?,
        }
    }
}

impl Drop for PredictService {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let (job, depth) = {
            let mut queue = inner.queue.lock().expect("queue");
            loop {
                if let Some(job) = queue.pop_front() {
                    break (job, queue.len());
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner.available.wait(queue).expect("queue wait");
            }
        };
        // Sample the depth at dequeue as well as at enqueue, so a
        // draining queue is visible even with no new submissions.
        inner.cfg.recorder.gauge("svc.queue.depth", depth as f64);
        process(inner, job);
    }
}

/// Evaluate one queued request and fan the answer out to every waiter.
fn process(inner: &Inner, job: Job) {
    let rec = &inner.cfg.recorder;
    // Queue wait is everything between enqueue and this dequeue —
    // separated from evaluation time so breakdowns can tell "slow
    // because busy" from "slow because expensive".
    rec.observe(
        "svc.queue.wait_us",
        job.enqueued.elapsed().as_micros() as f64,
    );

    // Deadline check at dequeue: waiters whose deadline passed while the
    // job sat in the queue are answered with `DeadlineExceeded` now, and
    // a flight left with no live waiter is dropped without running the
    // phases — the whole point of a deadline is not to spend worker time
    // on an answer nobody is waiting for. (A deadline that expires *mid*
    // evaluation still gets its answer: the work was already sunk.)
    let now = Instant::now();
    let evaluate = {
        let mut inflight = inner.inflight.lock().expect("inflight");
        let Some(flight) = inflight.get_mut(&job.key) else {
            return;
        };
        let (expired, live): (Vec<Waiter>, Vec<Waiter>) = flight
            .waiters
            .drain(..)
            .partition(|w| w.deadline.is_some_and(|d| d <= now));
        flight.waiters = live;
        let evaluate = !flight.waiters.is_empty();
        if !evaluate {
            inflight.remove(&job.key);
        }
        drop(inflight);
        for w in expired {
            let waited_us = w.since.elapsed().as_micros() as u64;
            rec.count("svc.deadline.shed", 1);
            rec.event_at(
                "svc.deadline_shed",
                w.ctx,
                &[("waited_us", waited_us.into())],
            );
            rec.span_end_at("svc.request", w.ctx, waited_us);
            rec.finish_trace(w.ctx);
            let _ = w.tx.send(Err(SvcError::DeadlineExceeded));
        }
        evaluate
    };
    if !evaluate {
        rec.count("svc.deadline.flight_dropped", 1);
        return;
    }

    // The evaluation span parents on the leader's request span across
    // the thread hop; the phases underneath inherit trace and parent
    // through the thread-local context this guard installs.
    let span = rec.span_in("svc.eval", Some(job.ctx));
    inner.evaluated.fetch_add(1, Ordering::Relaxed);
    let site = &inner.sites[job.site_idx];
    let binary = &job.binary;

    // Extended predictions need the source-phase bundle from the binary's
    // home site; computed once per home-site configuration epoch, then
    // memoized. A reconfigured home site (epoch bump) orphans the memo.
    let bundle = if job.mode == PredictionMode::Extended {
        let home_epoch = inner
            .caches
            .as_ref()
            .map(|c| c.edc.epoch(&binary.home_site))
            .unwrap_or(0);
        binary.bundle_for_epoch(home_epoch, || {
            let _span = rec.span("svc.source_phase");
            let home = inner
                .site_idx
                .get(&binary.home_site)
                .map(|&i| &inner.sites[i])?;
            run_source_phase(home, &binary.image, &inner.phase_cfg)
                .ok()
                .map(Arc::new)
        })
    } else {
        None
    };

    let outcome = run_target_phase(
        site,
        Some(&binary.image),
        bundle.as_deref(),
        &inner.phase_cfg,
    );

    // Publish and land the flight atomically: the result-cache insert and
    // the inflight removal happen under the inflight lock (order inflight
    // → results, matching submit's re-check), so at every instant a key
    // is in at least one of the two maps and a racing submit either
    // coalesces or hits the cache — never evaluates a second time.
    //
    // Memoize only clean evaluations: a degraded outcome (faults,
    // unreadable binary, unobservable environment) is delivered to its
    // waiters but never becomes the canonical cached answer. Likewise an
    // evaluation whose binding was updated mid-flight: the waiters asked
    // about the old bytes and get their answer, but the stale result must
    // not linger in the cache. (The generation is read before the
    // inflight lock — the registry lock never nests inside the
    // inflight/results pair.)
    let generation_current = inner
        .registry
        .read()
        .expect("registry")
        .generation(&job.binary_ref)
        == Some(job.generation);
    if !generation_current {
        rec.count("svc.stale_result_dropped", 1);
    }
    // One flag for "clean enough to memoize": it also rides out on every
    // response so the fleet knows which answers are safe to replicate.
    let cacheable = generation_current
        && !outcome.evaluation.degraded
        && outcome.environment.unobserved.is_empty();
    let waiters = {
        let mut inflight = inner.inflight.lock().expect("inflight");
        if inner.cfg.result_cache && inner.caches.is_some() && cacheable {
            inner.results.lock().expect("results").insert(
                job.key.clone(),
                Arc::new((outcome.prediction.clone(), outcome.evaluation.clone())),
            );
        }
        inflight
            .remove(&job.key)
            .map(|f| f.waiters)
            .unwrap_or_default()
    };
    drop(span);
    let degraded = outcome.evaluation.degraded;
    for w in waiters {
        let latency_ns = w.since.elapsed().as_nanos() as u64;
        let latency_us = latency_ns / 1_000;
        rec.count("svc.responses", 1);
        if degraded {
            rec.count("svc.response.degraded", 1);
        }
        // Close this waiter's request span (begun on its submit thread),
        // then let the latency observation decide whether its buffered
        // span tree becomes a tail exemplar.
        rec.span_end_at("svc.request", w.ctx, latency_us);
        rec.observe_tail("svc.latency_us", latency_us as f64, w.ctx);
        rec.finish_trace(w.ctx);
        // A waiter that gave up (dropped its receiver) is fine to miss.
        let _ = w.tx.send(Ok(PredictResponse {
            binary_ref: job.binary_ref.clone(),
            target_site: job.key.site.clone(),
            prediction: outcome.prediction.clone(),
            evaluation: outcome.evaluation.clone(),
            from_result_cache: false,
            cacheable,
            latency_us,
            latency_ns,
        }));
    }
}
