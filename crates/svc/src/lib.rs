//! # feam-svc — the FEAM prediction service
//!
//! The paper evaluates FEAM as a one-shot tool: run the phases, read the
//! prediction. In production the same question arrives as a *stream* —
//! "will binary B run at site S?" — from schedulers and users, with heavy
//! repetition (popular binaries, few sites). This crate wraps the
//! existing phase machinery ([`feam_core::phases`]) in a long-running
//! service shaped for that stream:
//!
//! * **Content-addressed memoization.** Binary descriptions are keyed by
//!   the FNV-1a hash of the ELF image, environment descriptions by site
//!   name + configuration epoch ([`feam_core::cache`]); full evaluations
//!   by the `(binary, site, epoch, mode)` tuple. A site reconfiguration
//!   ([`PredictService::reconfigure_site`]) bumps the epoch and orphans
//!   everything derived from the stale environment.
//! * **Single-flight coalescing.** Concurrent requests for the same key
//!   share one evaluation — N callers, one phase run, N answers.
//! * **Bounded admission.** A fixed-capacity queue feeds the worker pool;
//!   when it is full the service sheds with a *retryable*
//!   [`SvcError::Overloaded`] instead of building unbounded backlog.
//! * **Placement planning.** [`plan`] fans one binary out to per-site
//!   evaluations running concurrently on the same pool and returns a
//!   deterministic readiness ranking — degraded or errored sites rank
//!   last but never abort the plan.
//!
//! All of it is observable through [`feam_obs`]: per-request spans,
//! `cache.{bdc,edc}.{hit,miss}` / `svc.result.{hit,miss}` counters, queue
//! depth and shed counters, and latency histograms.
//!
//! [`bench`] provides the deterministic, Zipf-skewed load generator
//! behind `feam-eval --serve-bench`, which pins the speedup caching buys
//! and — run against a cache-disabled twin — that caching never changes a
//! prediction.
//!
//! ```
//! use feam_svc::{PredictService, PredictRequest, ServiceConfig};
//! use feam_core::predict::PredictionMode;
//!
//! let mut svc = PredictService::new(ServiceConfig::default());
//! svc.register_binary("cg.B.4", feam_svc::registry::demo_binary(7)).unwrap();
//! svc.start();
//! let resp = svc.predict(&PredictRequest {
//!     binary_ref: "cg.B.4".into(),
//!     target_site: "india".into(),
//!     mode: PredictionMode::Basic,
//!     deadline: None,
//! }).unwrap();
//! assert!(!resp.prediction.verdicts.is_empty());
//! ```

pub mod bench;
pub mod ensemble;
pub mod fleet;
pub mod health;
pub mod obsctl;
pub mod plan;
pub mod registry;
pub mod router;
pub mod service;

pub use bench::{run_serve_bench, BenchParams, ServeBenchComparison, ServeBenchReport};
pub use ensemble::annotate_with_ensemble;
pub use fleet::{Fleet, FleetConfig, FleetError, FleetResponse};
pub use health::{HealthConfig, HealthTracker, NodeState};
pub use obsctl::{default_slos, run_observed, ObsRunOutcome, ObsRunParams};
pub use plan::{Placement, PlanRequest, SitePlacement, SiteSelection};
pub use registry::{BinaryRegistry, RegisteredBinary, RegistryError};
pub use router::HashRing;
pub use service::{
    Delivery, PredictRequest, PredictResponse, PredictService, ResultOrigin, ServiceConfig,
    SvcError,
};
