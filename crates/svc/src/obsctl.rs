//! The `feam obs` driver: run a seeded, observed workload against a
//! serving-grade recorder, snapshot the windowed metrics, evaluate the
//! SLO monitors, and surface tail exemplars.
//!
//! This is the harness behind `feam obs snapshot` and `feam obs check
//! --slo`. It builds a [`PredictService`] over the standard simulated
//! sites with a [`Recorder::serving`] recorder, registers a handful of
//! deterministic demo binaries, replays the serve bench's Zipf stream
//! ([`crate::bench::stream_request`]) against it, and reads everything
//! back: a [`MetricsSnapshot`] with SLO evaluations and exemplar
//! summaries filled in.
//!
//! Fault injection is explicit: [`ObsRunParams::fault_plan`] is threaded
//! into the service untouched, so `None` inherits the ambient
//! `FEAM_CHAOS_RATE` plan (the CLI path — chaos in the environment shows
//! up in the SLO verdict) while tests pin [`FaultPlan::none`] or an
//! explicit [`FaultPlan::chaos`] for determinism either way.

use std::sync::Arc;

use feam_obs::slo::{evaluate_all, worst_state};
use feam_obs::{
    MetricsSnapshot, NullSink, Recorder, SloEvaluation, SloKind, SloSpec, SloState, WindowSpec,
};
use feam_sim::faults::FaultPlan;

use crate::bench::{stream_request, BenchParams};
use crate::registry::demo_binary;
use crate::service::{Delivery, PredictService, ServiceConfig, SvcError};

/// Parameters for one observed run.
#[derive(Debug, Clone)]
pub struct ObsRunParams {
    /// Master seed: request stream, site simulation, and demo binaries.
    pub seed: u64,
    /// Requests replayed against the service.
    pub requests: usize,
    /// Distinct demo binaries registered (and in the Zipf distribution).
    pub binaries: usize,
    /// Explicit fault plan; `None` inherits the ambient `FEAM_CHAOS_*`
    /// plan. Tests pass `Some` to be deterministic under any environment.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Sliding-window geometry for the metrics registry.
    pub window: WindowSpec,
    /// Tail-exemplar store capacity.
    pub exemplar_cap: usize,
}

impl ObsRunParams {
    /// The default `feam obs` configuration.
    pub fn standard(seed: u64) -> Self {
        ObsRunParams {
            seed,
            requests: 1200,
            binaries: 12,
            fault_plan: None,
            window: WindowSpec::default(),
            exemplar_cap: 8,
        }
    }

    /// A smaller run for tests and `--quick`.
    pub fn quick(seed: u64) -> Self {
        ObsRunParams {
            requests: 300,
            binaries: 6,
            ..Self::standard(seed)
        }
    }
}

/// Everything an observed run produced.
pub struct ObsRunOutcome {
    /// The serving recorder (registry and exemplar store still live, so
    /// callers can re-snapshot or re-evaluate).
    pub recorder: Recorder,
    /// Windowed snapshot over the full window horizon, with `slos` and
    /// `exemplars` filled in.
    pub snapshot: MetricsSnapshot,
    /// The SLO evaluations (same as `snapshot.slos`).
    pub evaluations: Vec<SloEvaluation>,
    /// Worst state across `evaluations` — the exit-code driver for
    /// `feam obs check --slo`.
    pub worst: SloState,
}

/// The default SLO set for the FEAM prediction service.
///
/// The fault-rate objective is the deterministic chaos pager: ambient
/// chaos ([`FaultPlan::chaos`]) is transient-only and the phases retry
/// through it, so degraded responses stay near zero even at high fault
/// rates — but every injected fault increments `faults.injected`, so the
/// fault/response ratio rises with `FEAM_CHAOS_RATE` no matter how well
/// the retries mask it.
pub fn default_slos() -> Vec<SloSpec> {
    vec![
        SloSpec {
            name: "cached-latency".into(),
            kind: SloKind::LatencyBudget {
                metric: "svc.latency_us".into(),
                threshold: 2_000_000,
                allowed_fraction: 0.02,
            },
            short_ms: 10_000,
            long_ms: 60_000,
            warn_burn: 2.0,
            page_burn: 10.0,
        },
        SloSpec {
            name: "fault-rate".into(),
            kind: SloKind::RatioBudget {
                bad: "faults.injected".into(),
                total: "svc.responses".into(),
                allowed_fraction: 0.002,
            },
            short_ms: 10_000,
            long_ms: 60_000,
            warn_burn: 2.0,
            page_burn: 10.0,
        },
        SloSpec {
            name: "degraded-rate".into(),
            kind: SloKind::RatioBudget {
                bad: "svc.response.degraded".into(),
                total: "svc.responses".into(),
                allowed_fraction: 0.02,
            },
            short_ms: 10_000,
            long_ms: 60_000,
            warn_burn: 2.0,
            page_burn: 10.0,
        },
        SloSpec {
            name: "shed-rate".into(),
            kind: SloKind::RatioBudget {
                bad: "queue.shed".into(),
                total: "svc.requests".into(),
                allowed_fraction: 0.05,
            },
            short_ms: 10_000,
            long_ms: 60_000,
            warn_burn: 2.0,
            page_burn: 10.0,
        },
    ]
}

/// Run the observed workload and evaluate `slos` against what it
/// recorded.
pub fn run_observed(params: &ObsRunParams, slos: &[SloSpec]) -> ObsRunOutcome {
    let recorder = Recorder::serving(Box::new(NullSink), params.window, params.exemplar_cap);
    let mut svc = PredictService::new(ServiceConfig {
        recorder: recorder.clone(),
        fault_plan: params.fault_plan.clone(),
        sites_seed: params.seed,
        ..ServiceConfig::default()
    });
    for i in 0..params.binaries {
        svc.register_binary(&format!("bin-{i:02}"), demo_binary(params.seed + i as u64))
            .expect("fresh names cannot collide");
    }
    svc.start();

    let bench = BenchParams {
        seed: params.seed,
        requests: params.requests,
        uncached_requests: 0,
        binaries: params.binaries,
        zipf_s: 1.5,
        extended_share: 0.3,
        wave: 32,
    };
    let names = svc.binary_names();
    let sites = svc.site_names();
    let mut i = 0;
    while i < bench.requests {
        let wave_end = (i + bench.wave).min(bench.requests);
        let mut pending = Vec::new();
        for j in i..wave_end {
            let req = stream_request(&bench, &names, &sites, j);
            loop {
                match svc.submit(&req) {
                    Ok(Delivery::Ready(_)) => break,
                    Ok(Delivery::Pending(rx)) => {
                        pending.push(rx);
                        break;
                    }
                    Err(SvcError::Overloaded { .. }) => std::thread::yield_now(),
                    Err(e) => panic!("obs run hit non-retryable error: {e}"),
                }
            }
        }
        for rx in pending {
            rx.recv()
                .expect("worker delivers every queued request")
                .expect("deadline-free obs requests are never shed post-admission");
        }
        i = wave_end;
    }
    drop(svc);

    let horizon_ms = params.window.slots as u64 * params.window.slot_ms;
    let mut snapshot = recorder
        .metrics_snapshot(horizon_ms)
        .expect("serving recorder always snapshots");
    let registry = recorder.registry().expect("serving recorder");
    let evaluations = evaluate_all(slos, &registry, recorder.now_ms());
    snapshot.slos = evaluations.clone();
    let worst = worst_state(&evaluations);
    ObsRunOutcome {
        recorder,
        snapshot,
        evaluations,
        worst,
    }
}
