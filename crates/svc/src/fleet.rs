//! The sharded serving fleet: N [`PredictService`] nodes behind a
//! consistent-hash router with health-gated failover, hedged requests,
//! asynchronous result replication, and epoch-propagated invalidation.
//!
//! ## Failure domains
//!
//! Each node is a full single-node service — worker pool, BDC/EDC shard,
//! result cache — so a node loss costs capacity and cache warmth, never
//! correctness. The router consistent-hashes `(binary content hash,
//! target site)` onto a replica set of `replication` nodes and walks it:
//!
//! 1. **Primary** — the first replica whose breaker admits traffic and
//!    whose process is up and reachable.
//! 2. **Failover** — a down / partitioned / open / overloaded replica is
//!    skipped (`fleet.failover`); the next replica takes the request.
//! 3. **Hedge** — a primary that is up but slow past `hedge_after` gets a
//!    duplicate dispatched to the next viable node
//!    (`fleet.hedge.fired`/`fleet.hedge.won`); first answer wins, the
//!    loser's answer is discarded when it lands.
//! 4. **Degraded fallback** — when *every* replica refuses, any up node
//!    serves (`fleet.fallback.degraded`): worse cache locality, same
//!    answer, which beats refusing outright.
//!
//! ## Replication and invalidation ordering
//!
//! All configuration mutations (register / update / reconfigure) append
//! to a fleet-wide ordered op log; the log length is the **fleet
//! epoch**. Reachable nodes apply the op immediately; a node that was
//! down or partitioned replays the missed suffix (catch-up) before it is
//! ever dispatched to again — a rejoined node can never serve from stale
//! configuration. Result replication is asynchronous and epoch-gated:
//! each cacheable answer is forwarded to the rest of its replica set
//! tagged with the fleet epoch captured *before* the answer was
//! computed — so any config op landing while the answer was in flight
//! makes the stamp stale — and the installer drops any payload whose
//! epoch no longer matches both the target node and the current fleet
//! epoch (`fleet.replication.{applied,dropped}`, lag on
//! `fleet.replication.lag_us`). As a last line of defence the install
//! itself re-verifies the payload's origin coordinates (content key,
//! EDC epoch) against the target's current state and keys the entry by
//! those coordinates, so an op racing the install can only orphan the
//! entry, never relabel it. Dropping is always safe — a replica that
//! misses a replicated result merely re-evaluates on its first hit.

use crate::health::{HealthConfig, HealthTracker, NodeState};
use crate::registry::RegisteredBinary;
use crate::router::HashRing;
use crate::service::{Delivery, PredictRequest, PredictResponse, PredictService, SvcError};
use feam_core::predict::{Prediction, PredictionMode};
use feam_core::tec::TargetEvaluation;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Fleet tuning knobs.
#[derive(Clone)]
pub struct FleetConfig {
    /// Replica-set size R: how many nodes a key maps onto.
    pub replication: usize,
    /// Ring points per node; more = smoother balance.
    pub vnodes: usize,
    /// Seed for ring placement and routing hashes.
    pub ring_seed: u64,
    /// Hedge a pending request to the next viable node after this long;
    /// `None` disables hedging.
    pub hedge_after: Option<Duration>,
    /// Per-node breaker tuning.
    pub health: HealthConfig,
    /// Fleet-level telemetry (node gauges, failover/hedge/replication
    /// counters). Per-node service telemetry rides each node's own
    /// recorder.
    pub recorder: feam_obs::Recorder,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            replication: 2,
            vnodes: 64,
            ring_seed: 0xF1EE7,
            hedge_after: Some(Duration::from_millis(250)),
            health: HealthConfig::default(),
            recorder: feam_obs::Recorder::disabled(),
        }
    }
}

/// Why the fleet rejected a request.
#[derive(Debug)]
pub enum FleetError {
    /// A service-level rejection that failover cannot cure (unknown
    /// name/site, expired deadline).
    Svc(SvcError),
    /// Every candidate node refused or failed.
    Unavailable { attempts: u32 },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Svc(e) => write!(f, "{e}"),
            FleetError::Unavailable { attempts } => {
                write!(f, "no node could serve the request ({attempts} tried)")
            }
        }
    }
}

impl std::error::Error for FleetError {}

/// A fleet answer: the service response plus its routing provenance.
#[derive(Debug)]
pub struct FleetResponse {
    /// Name of the node that answered.
    pub node: String,
    /// Replicas skipped (down / open / overloaded) before dispatch.
    pub failovers: u32,
    /// The winning answer came from a hedge, not the primary dispatch.
    pub hedged: bool,
    /// Served outside the replica set (all replicas refused).
    pub degraded_route: bool,
    /// The underlying service response.
    pub response: PredictResponse,
}

/// One logged configuration mutation. The log index order *is* the
/// invalidation order fleet-wide.
enum ConfigOp {
    Register {
        name: String,
        image: Arc<Vec<u8>>,
        home_site: String,
    },
    Update {
        name: String,
        image: Arc<Vec<u8>>,
        home_site: String,
    },
    Reconfigure {
        site: String,
    },
}

struct FleetNode {
    name: String,
    svc: PredictService,
    /// Process up? A killed node fast-fails dispatch (connection
    /// refused); its already-queued work still completes.
    up: AtomicBool,
    /// Network-partitioned from the router? Dispatch and config ops
    /// cannot reach it; the process itself stays healthy.
    partitioned: AtomicBool,
    health: Mutex<HealthTracker>,
    /// Ops applied so far (index into the op log).
    applied_epoch: AtomicU64,
}

impl FleetNode {
    fn reachable(&self) -> bool {
        self.up.load(Ordering::SeqCst) && !self.partitioned.load(Ordering::SeqCst)
    }
}

/// An asynchronous replication payload: one cacheable answer headed for
/// the rest of its replica set, tagged with the fleet epoch captured
/// before it was computed and the origin coordinates (content key, EDC
/// epoch) it was computed under.
struct ReplicationJob {
    binary_ref: String,
    site: String,
    mode: PredictionMode,
    prediction: Prediction,
    evaluation: TargetEvaluation,
    /// Fleet epoch captured before the winner evaluated.
    epoch: u64,
    /// The coordinates (content key, EDC epoch) the answer was computed
    /// under.
    origin: crate::service::ResultOrigin,
    targets: Vec<usize>,
    enqueued: Instant,
}

struct FleetInner {
    cfg: FleetConfig,
    nodes: Vec<FleetNode>,
    ring: HashRing,
    /// Ordered configuration log; `len()` is the fleet epoch.
    ops: Mutex<Vec<ConfigOp>>,
    /// Fleet epoch mirror for lock-free reads on the dispatch path.
    epoch: AtomicU64,
    /// name → content hash, for ring placement without touching a node.
    routes: Mutex<HashMap<String, u64>>,
    /// Breaker clock origin: `now_ms` is milliseconds since fleet build.
    t0: Instant,
}

/// The fleet. Build with [`Fleet::with_factory`], register binaries
/// through the fleet (never directly on a node), `start`, then `predict`
/// from any thread.
pub struct Fleet {
    inner: Arc<FleetInner>,
    repl_tx: Option<mpsc::Sender<ReplicationJob>>,
    repl_handle: Option<std::thread::JoinHandle<()>>,
}

impl Fleet {
    /// Build `n` nodes from a factory. The factory must produce
    /// *identically configured* services (same sites seed, phase seed and
    /// fault plan) — the fleet's correctness contract is that any node
    /// answers any request exactly as a single-node service would.
    pub fn with_factory(
        cfg: FleetConfig,
        n: usize,
        factory: impl Fn(usize) -> PredictService,
    ) -> Self {
        let mut ring = HashRing::new(cfg.ring_seed, cfg.vnodes);
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n.max(1) {
            let name = format!("node-{i}");
            ring.add(&name);
            nodes.push(FleetNode {
                name,
                svc: factory(i),
                up: AtomicBool::new(true),
                partitioned: AtomicBool::new(false),
                health: Mutex::new(HealthTracker::new(cfg.health.clone())),
                applied_epoch: AtomicU64::new(0),
            });
        }
        Fleet {
            inner: Arc::new(FleetInner {
                cfg,
                nodes,
                ring,
                ops: Mutex::new(Vec::new()),
                epoch: AtomicU64::new(0),
                routes: Mutex::new(HashMap::new()),
                t0: Instant::now(),
            }),
            repl_tx: None,
            repl_handle: None,
        }
    }

    /// Spawn every node's worker pool plus the replication thread.
    pub fn start(&mut self) {
        for node in &mut Arc::get_mut(&mut self.inner)
            .expect("start before sharing the fleet")
            .nodes
        {
            node.svc.start();
        }
        let (tx, rx) = mpsc::channel::<ReplicationJob>();
        let inner = self.inner.clone();
        self.repl_tx = Some(tx);
        self.repl_handle = Some(
            std::thread::Builder::new()
                .name("feam-fleet-repl".into())
                .spawn(move || replication_loop(&inner, rx))
                .expect("spawn replication thread"),
        );
    }

    /// Node count (fixed at build; kill/revive toggles availability, not
    /// membership).
    pub fn len(&self) -> usize {
        self.inner.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.nodes.is_empty()
    }

    /// Current fleet epoch (= configuration ops applied).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::SeqCst)
    }

    /// A node's applied epoch, for tests and the bench report.
    pub fn node_applied_epoch(&self, i: usize) -> u64 {
        self.inner.nodes[i].applied_epoch.load(Ordering::SeqCst)
    }

    /// Direct access to a node's service (tests: cache introspection).
    pub fn node_service(&self, i: usize) -> &PredictService {
        &self.inner.nodes[i].svc
    }

    /// A node's breaker state right now.
    pub fn node_state(&self, i: usize) -> NodeState {
        let now = self.inner.now_ms();
        self.inner.nodes[i]
            .health
            .lock()
            .expect("health")
            .state(now)
    }

    /// Milliseconds since fleet build — the breaker clock.
    pub fn now_ms(&self) -> u64 {
        self.inner.now_ms()
    }

    /// The replica set (node indices) a request routes onto.
    pub fn replica_set(&self, binary_ref: &str, site: &str) -> Option<Vec<usize>> {
        let routes = self.inner.routes.lock().expect("routes");
        let &content = routes.get(binary_ref)?;
        let point = self.inner.ring.key_point(content, site);
        Some(self.inner.ring.replicas(point, self.inner.cfg.replication))
    }

    // ---- configuration plane ------------------------------------------

    /// Register a binary fleet-wide. Appends to the op log (bumping the
    /// fleet epoch) and applies to every reachable node; unreachable
    /// nodes replay it during catch-up before they serve again.
    /// Same-content re-registration is an idempotent no-op that does not
    /// bump the epoch.
    pub fn register_binary(
        &self,
        name: &str,
        image: Arc<Vec<u8>>,
        home_site: &str,
    ) -> Result<(), SvcError> {
        let content = feam_core::cache::BdcKey::of(&image).hash;
        let mut ops = self.inner.ops.lock().expect("ops");
        {
            let mut routes = self.inner.routes.lock().expect("routes");
            match routes.get(name) {
                Some(&existing) if existing == content => return Ok(()),
                Some(_) => {
                    return Err(SvcError::ContentChanged {
                        name: name.to_string(),
                    })
                }
                None => {
                    routes.insert(name.to_string(), content);
                }
            }
        }
        ops.push(ConfigOp::Register {
            name: name.to_string(),
            image,
            home_site: home_site.to_string(),
        });
        self.inner.apply_tail(&ops);
        Ok(())
    }

    /// Replace a name's bytes fleet-wide (epoch bump; stale cached
    /// results become unreachable on every node, exactly as on a single
    /// node). Returns the new fleet epoch.
    pub fn update_binary(&self, name: &str, image: Arc<Vec<u8>>, home_site: &str) -> u64 {
        let content = feam_core::cache::BdcKey::of(&image).hash;
        let mut ops = self.inner.ops.lock().expect("ops");
        self.inner
            .routes
            .lock()
            .expect("routes")
            .insert(name.to_string(), content);
        ops.push(ConfigOp::Update {
            name: name.to_string(),
            image,
            home_site: home_site.to_string(),
        });
        self.inner.apply_tail(&ops);
        self.inner.cfg.recorder.count("fleet.config.update", 1);
        ops.len() as u64
    }

    /// Propagate a site reconfiguration fleet-wide: every node bumps its
    /// EDC epoch for `site`, orphaning descriptions and results derived
    /// from the stale environment. Returns the new fleet epoch.
    pub fn reconfigure_site(&self, site: &str) -> Result<u64, SvcError> {
        // Validate against any node's site table (all nodes share one).
        if self.inner.nodes[0].svc.site_transient_rate(site).is_none() {
            return Err(SvcError::UnknownSite(site.to_string()));
        }
        let mut ops = self.inner.ops.lock().expect("ops");
        ops.push(ConfigOp::Reconfigure {
            site: site.to_string(),
        });
        self.inner.apply_tail(&ops);
        self.inner.cfg.recorder.count("fleet.config.reconfigure", 1);
        Ok(ops.len() as u64)
    }

    // ---- chaos plane --------------------------------------------------

    /// Kill node `i`: dispatch fast-fails, config ops stop reaching it,
    /// its breaker is forced open. Queued work already inside the node
    /// still completes (a process death would lose it; the simulated kill
    /// models a crash *after* the in-flight answers drain, which is the
    /// graceful-brownout bound the bench gates on).
    pub fn kill_node(&self, i: usize) {
        let node = &self.inner.nodes[i];
        node.up.store(false, Ordering::SeqCst);
        let now = self.inner.now_ms();
        node.health.lock().expect("health").force_open(now);
        self.inner.cfg.recorder.count("fleet.node.killed", 1);
        self.inner.publish_state_gauges();
    }

    /// Revive node `i`: replay every missed configuration op, reset the
    /// breaker, then readmit traffic. Catch-up runs *before* the up flag
    /// flips, so the node can never serve from stale configuration.
    pub fn revive_node(&self, i: usize) {
        {
            let ops = self.inner.ops.lock().expect("ops");
            self.inner.catch_up(i, &ops);
        }
        let node = &self.inner.nodes[i];
        node.health.lock().expect("health").reset();
        node.up.store(true, Ordering::SeqCst);
        self.inner.cfg.recorder.count("fleet.node.revived", 1);
        self.inner.publish_state_gauges();
    }

    /// Trip node `i`'s breaker without marking the process down — models
    /// a browned-out node that must re-earn traffic through HalfOpen
    /// probes once the cooldown elapses.
    pub fn trip_breaker(&self, i: usize) {
        let now = self.inner.now_ms();
        self.inner.nodes[i]
            .health
            .lock()
            .expect("health")
            .force_open(now);
        self.inner.cfg.recorder.count("fleet.node.tripped", 1);
        self.inner.publish_state_gauges();
    }

    /// Partition node `i` from the router: dispatch errors, config ops
    /// miss it, but the node itself keeps running.
    pub fn partition_node(&self, i: usize) {
        self.inner.nodes[i]
            .partitioned
            .store(true, Ordering::SeqCst);
        self.inner.cfg.recorder.count("fleet.node.partitioned", 1);
    }

    /// Heal the partition: catch up missed ops, then readmit.
    pub fn heal_node(&self, i: usize) {
        {
            let ops = self.inner.ops.lock().expect("ops");
            self.inner.catch_up(i, &ops);
        }
        self.inner.nodes[i]
            .partitioned
            .store(false, Ordering::SeqCst);
        self.inner.cfg.recorder.count("fleet.node.healed", 1);
    }

    // ---- data plane ---------------------------------------------------

    /// Route, dispatch (with failover and hedging) and answer one
    /// request.
    pub fn predict(&self, req: &PredictRequest) -> Result<FleetResponse, FleetError> {
        let inner = &self.inner;
        let rec = &inner.cfg.recorder;
        rec.count("fleet.requests", 1);

        let Some(replicas) = self.replica_set(&req.binary_ref, &req.target_site) else {
            return Err(FleetError::Svc(SvcError::UnknownBinary(
                req.binary_ref.clone(),
            )));
        };

        // Candidate order: the replica set, then (degraded fallback)
        // every other node. `degraded_from` marks where fallback starts.
        let degraded_from = replicas.len();
        let mut candidates = replicas;
        for i in 0..inner.nodes.len() {
            if !candidates.contains(&i) {
                candidates.push(i);
            }
        }

        let mut failovers = 0u32;
        let mut attempts = 0u32;
        for (pos, &i) in candidates.iter().enumerate() {
            let degraded_route = pos >= degraded_from;
            let now = inner.now_ms();
            if !inner.nodes[i].reachable()
                || !inner.nodes[i].health.lock().expect("health").admit(now)
            {
                if pos < degraded_from {
                    rec.count("fleet.failover", 1);
                    failovers += 1;
                }
                continue;
            }
            if degraded_route && pos == degraded_from {
                rec.count("fleet.fallback.degraded", 1);
            }
            attempts += 1;
            match inner.dispatch(i, req) {
                Ok(Delivery::Ready(resp)) => {
                    inner.observe_success(i, &resp);
                    return Ok(FleetResponse {
                        node: inner.nodes[i].name.clone(),
                        failovers,
                        hedged: false,
                        degraded_route,
                        response: resp,
                    });
                }
                Ok(Delivery::Pending(rx)) => {
                    return self.await_answer(
                        i,
                        rx,
                        &candidates[pos + 1..],
                        req,
                        failovers,
                        degraded_route,
                    );
                }
                Err(e) if e.retryable() || matches!(e, SvcError::ShuttingDown) => {
                    // Overloaded (node sheds) or a kill raced the admit
                    // check: the next replica takes the request and the
                    // breaker hears about it.
                    inner.observe_error(i);
                    if pos < degraded_from {
                        rec.count("fleet.failover", 1);
                        failovers += 1;
                    }
                    continue;
                }
                Err(e) => {
                    // A request-level rejection (unknown site, expired
                    // deadline) says nothing about the node: return the
                    // admitted probe slot without an outcome so a
                    // HalfOpen breaker is not wedged by it.
                    inner.release_probe(i);
                    return Err(FleetError::Svc(e));
                }
            }
        }
        rec.count("fleet.unavailable", 1);
        Err(FleetError::Unavailable { attempts })
    }

    /// Wait for a pending answer, hedging to the next viable candidate if
    /// the primary is slow. First answer wins; the loser's (eventual)
    /// answer is discarded with its receiver.
    fn await_answer(
        &self,
        primary: usize,
        rx: mpsc::Receiver<Result<PredictResponse, SvcError>>,
        backups: &[usize],
        req: &PredictRequest,
        failovers: u32,
        degraded_route: bool,
    ) -> Result<FleetResponse, FleetError> {
        let inner = &self.inner;
        let rec = &inner.cfg.recorder;

        let hedge_after = match inner.cfg.hedge_after {
            Some(d) => d,
            None => {
                return match rx.recv() {
                    Ok(out) => inner.settle(primary, out, failovers, false, degraded_route),
                    Err(_) => {
                        // The answer channel died without an outcome to
                        // attribute: free the admitted probe slot.
                        inner.release_probe(primary);
                        Err(FleetError::Svc(SvcError::ShuttingDown))
                    }
                };
            }
        };

        // Phase 1: give the primary `hedge_after` to answer.
        match rx.recv_timeout(hedge_after) {
            Ok(out) => return inner.settle(primary, out, failovers, false, degraded_route),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                inner.release_probe(primary);
                return Err(FleetError::Svc(SvcError::ShuttingDown));
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
        }

        // Phase 2: fire one hedge at the first viable backup.
        let mut hedge: Option<(usize, mpsc::Receiver<Result<PredictResponse, SvcError>>)> = None;
        for &b in backups {
            let now = inner.now_ms();
            if !inner.nodes[b].reachable()
                || !inner.nodes[b].health.lock().expect("health").admit(now)
            {
                continue;
            }
            match inner.dispatch(b, req) {
                Ok(Delivery::Ready(resp)) => {
                    rec.count("fleet.hedge.fired", 1);
                    rec.count("fleet.hedge.won", 1);
                    inner.observe_success(b, &resp);
                    // The primary's eventual answer is discarded — its
                    // probe slot comes back without an outcome.
                    inner.release_probe(primary);
                    return Ok(FleetResponse {
                        node: inner.nodes[b].name.clone(),
                        failovers,
                        hedged: true,
                        degraded_route,
                        response: resp,
                    });
                }
                Ok(Delivery::Pending(hrx)) => {
                    rec.count("fleet.hedge.fired", 1);
                    hedge = Some((b, hrx));
                    break;
                }
                Err(_) => {
                    inner.observe_error(b);
                    continue;
                }
            }
        }

        let Some((hb, hrx)) = hedge else {
            // No viable hedge target: wait the primary out.
            return match rx.recv() {
                Ok(out) => inner.settle(primary, out, failovers, false, degraded_route),
                Err(_) => {
                    inner.release_probe(primary);
                    Err(FleetError::Svc(SvcError::ShuttingDown))
                }
            };
        };

        // Phase 3: race primary and hedge; first answer wins. The loser's
        // discarded dispatch returns its probe slot without an outcome —
        // exactly once, guarded by the alive flags.
        let tick = Duration::from_millis(1);
        let mut primary_alive = true;
        let mut hedge_alive = true;
        loop {
            if primary_alive {
                match rx.recv_timeout(tick) {
                    Ok(out) => {
                        if hedge_alive {
                            inner.release_probe(hb);
                        }
                        return inner.settle(primary, out, failovers, false, degraded_route);
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        primary_alive = false;
                        inner.release_probe(primary);
                    }
                }
            }
            if hedge_alive {
                match hrx.recv_timeout(tick) {
                    Ok(out) => {
                        rec.count("fleet.hedge.won", 1);
                        if primary_alive {
                            inner.release_probe(primary);
                        }
                        return inner.settle(hb, out, failovers, true, degraded_route);
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        hedge_alive = false;
                        inner.release_probe(hb);
                    }
                }
            }
            if !primary_alive && !hedge_alive {
                return Err(FleetError::Svc(SvcError::ShuttingDown));
            }
        }
    }

    /// Fleet shutdown: stop replication, then drop the nodes (each joins
    /// its workers).
    pub fn shutdown(&mut self) {
        self.repl_tx = None; // closes the channel; the thread drains and exits
        if let Some(h) = self.repl_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Fleet {
    /// Hand a cacheable answer to the replication thread (non-blocking).
    /// `epoch` is the fleet epoch captured *before* the answer was
    /// computed; the origin coordinates (content key, EDC epoch) are
    /// read from the winner. Any config op landing anywhere in the
    /// window is caught by the epoch gate in `replication_loop` (epochs
    /// only grow, so a stale stamp can never match again) or, for ops
    /// racing the install itself, by the coordinate verification inside
    /// `install_result`.
    fn replicate(&self, req: &PredictRequest, winner: usize, resp: &PredictResponse, epoch: u64) {
        let Some(tx) = &self.repl_tx else { return };
        let Some(replicas) = self.replica_set(&req.binary_ref, &req.target_site) else {
            return;
        };
        let targets: Vec<usize> = replicas.into_iter().filter(|&i| i != winner).collect();
        if targets.is_empty() {
            return;
        }
        let svc = &self.inner.nodes[winner].svc;
        let Some(origin) = svc.result_origin(&req.binary_ref, &req.target_site) else {
            return;
        };
        let _ = tx.send(ReplicationJob {
            binary_ref: req.binary_ref.clone(),
            site: req.target_site.clone(),
            mode: req.mode,
            prediction: resp.prediction.clone(),
            evaluation: resp.evaluation.clone(),
            epoch,
            origin,
            targets,
            enqueued: Instant::now(),
        });
    }

    /// `predict`, then replicate the answer if it is clean and fresh.
    /// The public entry point used by the bench and conform crossing.
    pub fn predict_replicated(&self, req: &PredictRequest) -> Result<FleetResponse, FleetError> {
        // Capture the epoch BEFORE evaluating, so a config op landing
        // while the answer is in flight leaves the job stamped with the
        // pre-op epoch and the freshness gate drops it. Stamping after
        // the fact would let an answer computed against old bytes or a
        // stale environment slip through under the new epoch.
        let epoch = self.epoch();
        let out = self.predict(req)?;
        if out.response.cacheable && !out.response.from_result_cache {
            if let Some(winner) = self.inner.nodes.iter().position(|n| n.name == out.node) {
                self.replicate(req, winner, &out.response, epoch);
            }
        }
        Ok(out)
    }
}

impl FleetInner {
    fn now_ms(&self) -> u64 {
        self.t0.elapsed().as_millis() as u64
    }

    /// Apply the newest op (tail of the log) to every reachable node and
    /// advance the fleet epoch. Callers hold the ops lock.
    fn apply_tail(&self, ops: &[ConfigOp]) {
        let epoch = ops.len() as u64;
        for (i, node) in self.nodes.iter().enumerate() {
            if node.reachable() {
                self.catch_up(i, ops);
            }
        }
        self.epoch.store(epoch, Ordering::SeqCst);
    }

    /// Replay every op the node has not yet applied, in log order.
    /// Callers hold the ops lock (so no op lands mid-replay).
    fn catch_up(&self, i: usize, ops: &[ConfigOp]) {
        let node = &self.nodes[i];
        let from = node.applied_epoch.load(Ordering::SeqCst) as usize;
        for op in &ops[from..] {
            match op {
                ConfigOp::Register {
                    name,
                    image,
                    home_site,
                } => {
                    // ContentChanged cannot happen: the routes map
                    // rejected conflicting registrations before logging.
                    let _ = node
                        .svc
                        .register_binary(name, RegisteredBinary::new(image.clone(), home_site));
                }
                ConfigOp::Update {
                    name,
                    image,
                    home_site,
                } => {
                    node.svc
                        .update_binary(name, RegisteredBinary::new(image.clone(), home_site));
                }
                ConfigOp::Reconfigure { site } => {
                    let _ = node.svc.reconfigure_site(site);
                }
            }
        }
        node.applied_epoch.store(ops.len() as u64, Ordering::SeqCst);
    }

    /// Dispatch one request to node `i`, enforcing reachability and epoch
    /// freshness. A reachable node behind the fleet epoch (possible when
    /// it healed between the admit check and here) catches up first —
    /// stale epochs are never served.
    fn dispatch(&self, i: usize, req: &PredictRequest) -> Result<Delivery, SvcError> {
        let node = &self.nodes[i];
        if !node.reachable() {
            return Err(SvcError::ShuttingDown);
        }
        if node.applied_epoch.load(Ordering::SeqCst) != self.epoch.load(Ordering::SeqCst) {
            let ops = self.ops.lock().expect("ops");
            self.catch_up(i, &ops);
        }
        node.svc.submit(req)
    }

    /// The terminal accounting for an answered dispatch.
    fn settle(
        &self,
        node_idx: usize,
        out: Result<PredictResponse, SvcError>,
        failovers: u32,
        hedged: bool,
        degraded_route: bool,
    ) -> Result<FleetResponse, FleetError> {
        match out {
            Ok(resp) => {
                self.observe_success(node_idx, &resp);
                Ok(FleetResponse {
                    node: self.nodes[node_idx].name.clone(),
                    failovers,
                    hedged,
                    degraded_route,
                    response: resp,
                })
            }
            // A deadline shed is the *request's* failure, not the
            // node's: the worker was healthy enough to shed on time.
            // Hand back the admitted probe slot without an outcome so a
            // HalfOpen breaker cannot be wedged by expired requests.
            Err(SvcError::DeadlineExceeded) => {
                self.release_probe(node_idx);
                Err(FleetError::Svc(SvcError::DeadlineExceeded))
            }
            Err(e) => {
                self.observe_error(node_idx);
                Err(FleetError::Svc(e))
            }
        }
    }

    fn observe_success(&self, i: usize, resp: &PredictResponse) {
        let now = self.now_ms();
        self.nodes[i]
            .health
            .lock()
            .expect("health")
            .record_success(now, resp.latency_us as f64);
        self.publish_state_gauges();
    }

    /// Return node `i`'s admitted probe slot without recording an
    /// outcome — the dispatch resolved in a way that says nothing about
    /// the node's health (request-scoped rejection, discarded hedge
    /// loser, dead answer channel). Every `admit` must be balanced by
    /// exactly one of `observe_success` / `observe_error` /
    /// `release_probe`, or a HalfOpen breaker leaks its probe budget and
    /// wedges.
    fn release_probe(&self, i: usize) {
        self.nodes[i].health.lock().expect("health").release_probe();
    }

    fn observe_error(&self, i: usize) {
        let now = self.now_ms();
        self.nodes[i]
            .health
            .lock()
            .expect("health")
            .record_error(now);
        self.publish_state_gauges();
    }

    /// One gauge per node: `fleet.node.state.<name>` (0 Closed,
    /// 1 HalfOpen, 2 Open).
    fn publish_state_gauges(&self) {
        let now = self.now_ms();
        for node in &self.nodes {
            let state = node.health.lock().expect("health").state(now);
            self.cfg
                .recorder
                .gauge(&format!("fleet.node.state.{}", node.name), state.as_gauge());
        }
    }
}

/// The replication thread: installs cacheable answers on replica peers,
/// dropping anything whose epoch went stale in flight.
fn replication_loop(inner: &FleetInner, rx: mpsc::Receiver<ReplicationJob>) {
    let rec = &inner.cfg.recorder;
    while let Ok(job) = rx.recv() {
        let lag_us = job.enqueued.elapsed().as_micros() as f64;
        for &t in &job.targets {
            let node = &inner.nodes[t];
            let fresh = node.reachable()
                && node.applied_epoch.load(Ordering::SeqCst) == job.epoch
                && inner.epoch.load(Ordering::SeqCst) == job.epoch;
            let installed = fresh
                && node.svc.install_result(
                    &job.binary_ref,
                    &job.site,
                    job.mode,
                    job.origin,
                    &job.prediction,
                    &job.evaluation,
                );
            if installed {
                rec.count("fleet.replication.applied", 1);
            } else {
                rec.count("fleet.replication.dropped", 1);
            }
        }
        rec.observe("fleet.replication.lag_us", lag_us);
    }
}
