//! Per-node health tracking for the serving fleet: a circuit breaker
//! driven by consecutive errors and a latency EWMA.
//!
//! Every fleet node carries a [`HealthTracker`]. The router consults it
//! before dispatch and feeds it every outcome:
//!
//! - **Closed** — healthy; requests route normally.
//! - **Open** — tripped by `error_threshold` consecutive errors *or* a
//!   latency EWMA above `latency_threshold_us` (a browned-out node is as
//!   useless as a dead one); no traffic until `open_cooldown_ms` passes.
//! - **HalfOpen** — the cooldown elapsed; up to `halfopen_probes`
//!   in-flight probes are allowed through. `halfopen_successes` clean
//!   answers close the breaker; any error reopens it and restarts the
//!   cooldown.
//!
//! Time is an explicit `now_ms` argument on every transition (the same
//! convention as `feam_obs`' windowed metrics), so breaker behaviour is
//! fully deterministic under test and in the simulated fleet bench.

/// Breaker tuning.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Consecutive errors that trip Closed → Open.
    pub error_threshold: u32,
    /// Latency EWMA (µs) above which the node is considered browned out
    /// and the breaker trips; `f64::INFINITY` disables the latency trip.
    pub latency_threshold_us: f64,
    /// EWMA smoothing factor in `(0, 1]`; higher = more reactive.
    pub ewma_alpha: f64,
    /// How long an Open breaker blocks traffic before probing, in ms.
    pub open_cooldown_ms: u64,
    /// Concurrent probes admitted while HalfOpen.
    pub halfopen_probes: u32,
    /// Clean probe answers required to close from HalfOpen.
    pub halfopen_successes: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            error_threshold: 3,
            latency_threshold_us: f64::INFINITY,
            ewma_alpha: 0.3,
            open_cooldown_ms: 500,
            halfopen_probes: 1,
            halfopen_successes: 1,
        }
    }
}

/// Breaker state, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Healthy; full traffic.
    Closed,
    /// Tripped; no traffic until the cooldown elapses.
    Open,
    /// Probing; limited traffic decides whether to close or reopen.
    HalfOpen,
}

impl NodeState {
    /// Stable numeric encoding for the `fleet.node.state` gauge
    /// (0 = Closed, 1 = HalfOpen, 2 = Open — higher is sicker).
    pub fn as_gauge(self) -> f64 {
        match self {
            NodeState::Closed => 0.0,
            NodeState::HalfOpen => 1.0,
            NodeState::Open => 2.0,
        }
    }
}

/// One node's health state machine. Not internally synchronized — the
/// fleet wraps each tracker in a mutex.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    cfg: HealthConfig,
    consecutive_errors: u32,
    /// Latency EWMA in µs; `None` until the first success.
    ewma_us: Option<f64>,
    /// `Some(when)` while Open: the instant the breaker tripped.
    opened_at_ms: Option<u64>,
    /// Probes admitted since entering HalfOpen.
    halfopen_inflight: u32,
    /// Clean answers since entering HalfOpen.
    halfopen_ok: u32,
    /// Lifetime trips, for the bench report.
    trips: u64,
}

impl HealthTracker {
    pub fn new(cfg: HealthConfig) -> Self {
        HealthTracker {
            cfg,
            consecutive_errors: 0,
            ewma_us: None,
            opened_at_ms: None,
            halfopen_inflight: 0,
            halfopen_ok: 0,
            trips: 0,
        }
    }

    /// Current state at `now_ms`. Open lazily decays to HalfOpen once the
    /// cooldown has elapsed — there is no background timer.
    pub fn state(&self, now_ms: u64) -> NodeState {
        match self.opened_at_ms {
            None => NodeState::Closed,
            Some(at) if now_ms.saturating_sub(at) >= self.cfg.open_cooldown_ms => {
                NodeState::HalfOpen
            }
            Some(_) => NodeState::Open,
        }
    }

    /// May a request be dispatched to this node right now? Closed always
    /// admits; HalfOpen admits while probe slots remain; Open refuses.
    /// An admitted HalfOpen probe consumes a slot — the caller must
    /// report its outcome via [`record_success`](Self::record_success) /
    /// [`record_error`](Self::record_error).
    pub fn admit(&mut self, now_ms: u64) -> bool {
        match self.state(now_ms) {
            NodeState::Closed => true,
            NodeState::Open => false,
            NodeState::HalfOpen => {
                if self.halfopen_inflight < self.cfg.halfopen_probes {
                    self.halfopen_inflight += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a clean answer observed at `now_ms` with the given latency.
    pub fn record_success(&mut self, now_ms: u64, latency_us: f64) {
        self.consecutive_errors = 0;
        let ewma = match self.ewma_us {
            None => latency_us,
            Some(prev) => self.cfg.ewma_alpha * latency_us + (1.0 - self.cfg.ewma_alpha) * prev,
        };
        self.ewma_us = Some(ewma);
        match self.state(now_ms) {
            NodeState::HalfOpen => {
                // The probe resolved: return its slot and count it.
                self.halfopen_inflight = self.halfopen_inflight.saturating_sub(1);
                self.halfopen_ok += 1;
                if self.halfopen_ok >= self.cfg.halfopen_successes {
                    self.close();
                }
            }
            NodeState::Closed => {
                // A browned-out node trips on latency alone: answering
                // slowly enough is indistinguishable from failing.
                if ewma > self.cfg.latency_threshold_us {
                    self.trip(now_ms);
                }
            }
            NodeState::Open => {}
        }
    }

    /// Return an admitted probe slot without recording an outcome — for
    /// dispatches that resolved in a way that says nothing about the
    /// node's health (an expired deadline, a request-level rejection, a
    /// hedge loser whose answer was discarded). Without this, a probe
    /// whose outcome is never attributed would permanently consume a
    /// HalfOpen slot and wedge the breaker: with `halfopen_probes = 1`
    /// no further probe could ever be admitted, so no outcome could ever
    /// close *or* reopen it.
    pub fn release_probe(&mut self) {
        self.halfopen_inflight = self.halfopen_inflight.saturating_sub(1);
    }

    /// Record a dispatch failure observed at `now_ms`.
    pub fn record_error(&mut self, now_ms: u64) {
        self.consecutive_errors += 1;
        match self.state(now_ms) {
            // Any HalfOpen error reopens immediately and restarts the
            // cooldown — the node gets no further traffic for a while.
            NodeState::HalfOpen => self.trip(now_ms),
            NodeState::Closed => {
                if self.consecutive_errors >= self.cfg.error_threshold {
                    self.trip(now_ms);
                }
            }
            NodeState::Open => {}
        }
    }

    /// Force the breaker open (e.g. the fleet killed the node): no point
    /// burning the error threshold on a node known to be down.
    pub fn force_open(&mut self, now_ms: u64) {
        if self.opened_at_ms.is_none() {
            self.trip(now_ms);
        } else {
            // Restart the cooldown; the node just went down again.
            self.opened_at_ms = Some(now_ms);
        }
    }

    /// Reset to Closed (e.g. the node rejoined after catch-up).
    pub fn reset(&mut self) {
        self.close();
    }

    /// Latency EWMA in µs (`None` before the first success).
    pub fn ewma_us(&self) -> Option<f64> {
        self.ewma_us
    }

    /// Lifetime Closed/HalfOpen → Open transitions.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    fn trip(&mut self, now_ms: u64) {
        self.opened_at_ms = Some(now_ms);
        self.halfopen_inflight = 0;
        self.halfopen_ok = 0;
        // A latency trip must not instantly re-trip on the stale EWMA
        // when the breaker half-opens: start the next life fresh.
        self.ewma_us = None;
        self.trips += 1;
    }

    fn close(&mut self) {
        self.opened_at_ms = None;
        self.consecutive_errors = 0;
        self.halfopen_inflight = 0;
        self.halfopen_ok = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig {
            error_threshold: 3,
            latency_threshold_us: 10_000.0,
            ewma_alpha: 0.5,
            open_cooldown_ms: 100,
            halfopen_probes: 1,
            halfopen_successes: 2,
        }
    }

    #[test]
    fn consecutive_errors_trip_and_cooldown_halfopens() {
        let mut h = HealthTracker::new(cfg());
        assert_eq!(h.state(0), NodeState::Closed);
        h.record_error(0);
        h.record_error(1);
        assert_eq!(h.state(1), NodeState::Closed, "two errors: not yet");
        h.record_error(2);
        assert_eq!(h.state(2), NodeState::Open, "third consecutive trips");
        assert!(!h.admit(50), "open refuses traffic");
        assert_eq!(h.state(101), NodeState::Open, "cooldown measured from trip");
        assert_eq!(h.state(102), NodeState::HalfOpen);
        assert_eq!(h.trips(), 1);
    }

    #[test]
    fn success_between_errors_resets_the_streak() {
        let mut h = HealthTracker::new(cfg());
        h.record_error(0);
        h.record_error(1);
        h.record_success(2, 100.0);
        h.record_error(3);
        h.record_error(4);
        assert_eq!(h.state(4), NodeState::Closed, "streak was reset");
    }

    #[test]
    fn halfopen_probe_budget_then_close_or_reopen() {
        let mut h = HealthTracker::new(cfg());
        for t in 0..3 {
            h.record_error(t);
        }
        // After cooldown: exactly one probe slot.
        assert!(h.admit(200));
        assert!(!h.admit(200), "probe budget exhausted");
        // First success returns the probe slot but needs a second clean
        // answer to close.
        h.record_success(201, 50.0);
        assert_eq!(h.state(201), NodeState::HalfOpen, "one of two successes");
        assert!(h.admit(202), "resolved probe returned its slot");
        h.record_success(203, 50.0);
        assert_eq!(h.state(203), NodeState::Closed, "two successes close");

        // Reopen path: an error while HalfOpen trips immediately.
        for t in 300..303 {
            h.record_error(t);
        }
        assert_eq!(h.state(303), NodeState::Open);
        assert!(h.admit(500), "half-open again after cooldown");
        h.record_error(501);
        assert_eq!(h.state(501), NodeState::Open, "probe failure reopens");
        assert_eq!(h.state(550), NodeState::Open, "cooldown restarted");
        assert_eq!(h.state(602), NodeState::HalfOpen);
    }

    #[test]
    fn released_probe_slots_return_without_an_outcome() {
        let mut h = HealthTracker::new(cfg());
        for t in 0..3 {
            h.record_error(t);
        }
        // After cooldown: the single probe slot is admitted, then the
        // dispatch resolves with a request-scoped failure — no outcome.
        assert!(h.admit(200));
        assert!(!h.admit(200), "slot consumed");
        h.release_probe();
        assert_eq!(h.state(201), NodeState::HalfOpen, "nothing was counted");
        // The returned slot admits a fresh probe, which can still close
        // the breaker — the node is not wedged.
        assert!(h.admit(201), "released slot admits again");
        h.record_success(202, 50.0);
        assert!(h.admit(203));
        h.record_success(204, 50.0);
        assert_eq!(h.state(204), NodeState::Closed);
    }

    #[test]
    fn latency_ewma_trips_the_breaker() {
        let mut h = HealthTracker::new(cfg());
        h.record_success(0, 1_000.0);
        assert_eq!(h.state(0), NodeState::Closed);
        // One slow answer: EWMA 0.5·30k + 0.5·1k = 15.5k > 10k — brownout.
        h.record_success(1, 30_000.0);
        assert_eq!(h.state(1), NodeState::Open, "brownout trips on latency");
        // After cooldown + clean probes, the EWMA restarts rather than
        // instantly re-tripping on stale history.
        assert!(h.admit(200));
        h.record_success(201, 1_000.0);
        assert!(h.admit(202));
        h.record_success(203, 1_000.0);
        assert_eq!(h.state(204), NodeState::Closed);
        assert_eq!(h.ewma_us(), Some(1_000.0));
    }

    #[test]
    fn force_open_and_reset() {
        let mut h = HealthTracker::new(cfg());
        h.force_open(10);
        assert_eq!(h.state(10), NodeState::Open);
        assert_eq!(h.state(109), NodeState::Open);
        h.force_open(109); // went down again: cooldown restarts
        assert_eq!(h.state(208), NodeState::Open);
        h.reset();
        assert_eq!(h.state(208), NodeState::Closed);
    }

    #[test]
    fn gauge_encoding_orders_by_sickness() {
        assert!(NodeState::Closed.as_gauge() < NodeState::HalfOpen.as_gauge());
        assert!(NodeState::HalfOpen.as_gauge() < NodeState::Open.as_gauge());
    }
}
