//! Consistent-hash routing for the serving fleet.
//!
//! Each node contributes `vnodes` points to a 64-bit hash ring; a request
//! key — the binary's content hash plus the target site — hashes to a
//! point and walks clockwise collecting the first `r` *distinct* nodes as
//! its replica set. Because every node's points depend only on its own
//! name (and the shared ring seed), a node leaving or rejoining moves
//! only the keys whose nearest points belonged to it: bounded key
//! movement, no global reshuffle.

use feam_sim::rng::hash_parts;
use std::collections::HashMap;

/// A consistent-hash ring over named nodes.
#[derive(Debug, Clone)]
pub struct HashRing {
    seed: u64,
    vnodes: usize,
    /// Sorted `(point, node index)` pairs.
    ring: Vec<(u64, usize)>,
    /// Node names by index; a removed node leaves a `None` tombstone.
    nodes: Vec<Option<String>>,
    /// Every name's permanently reserved index. Rejoin restores the
    /// exact former slot — even when several nodes leave and rejoin out
    /// of order — so callers comparing `replicas()` index sets across
    /// churn never see a name re-bind to a different index. Fresh names
    /// always extend the index space rather than reusing a departed
    /// node's slot; the index space therefore grows with distinct names
    /// ever added, not with current membership.
    home: HashMap<String, usize>,
}

impl HashRing {
    /// An empty ring. `vnodes` points per node (≥ 1); more points =
    /// smoother balance, linearly larger ring.
    pub fn new(seed: u64, vnodes: usize) -> Self {
        HashRing {
            seed,
            vnodes: vnodes.max(1),
            ring: Vec::new(),
            nodes: Vec::new(),
            home: HashMap::new(),
        }
    }

    /// Add a node, returning its index. A name that previously left
    /// rejoins under its reserved former index with byte-identical ring
    /// points, regardless of how many other nodes departed or joined in
    /// between; a fresh name gets a fresh index (never a departed
    /// node's slot).
    pub fn add(&mut self, name: &str) -> usize {
        if let Some(idx) = self.index_of(name) {
            return idx; // already present
        }
        let idx = match self.home.get(name) {
            Some(&reserved) => {
                debug_assert!(
                    self.nodes[reserved].is_none(),
                    "reserved slot occupied by another name"
                );
                self.nodes[reserved] = Some(name.to_string());
                reserved
            }
            None => {
                self.nodes.push(Some(name.to_string()));
                let idx = self.nodes.len() - 1;
                self.home.insert(name.to_string(), idx);
                idx
            }
        };
        for v in 0..self.vnodes {
            let point = hash_parts(self.seed, &["vnode", name, &v.to_string()]);
            let at = self.ring.binary_search(&(point, idx)).unwrap_or_else(|e| e);
            self.ring.insert(at, (point, idx));
        }
        idx
    }

    /// Remove a node by name; its keys redistribute to ring successors.
    /// Unknown names are a no-op.
    pub fn remove(&mut self, name: &str) {
        let Some(idx) = self.index_of(name) else {
            return;
        };
        self.ring.retain(|&(_, i)| i != idx);
        self.nodes[idx] = None;
    }

    /// Index of a present node.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.nodes
            .iter()
            .position(|slot| slot.as_deref() == Some(name))
    }

    /// Present node count.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|s| s.is_some()).count()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The ring point for a request key. The key deliberately hashes the
    /// binary's *content* (not its registered name) with the site, so two
    /// names bound to the same bytes route identically.
    pub fn key_point(&self, content_hash: u64, site: &str) -> u64 {
        hash_parts(self.seed, &["key", &content_hash.to_string(), site])
    }

    /// The replica set for a key point: the first `r` distinct nodes at
    /// or after the point, wrapping. A fleet smaller than `r` returns
    /// every present node — a tiny fleet degrades to full replication
    /// rather than failing.
    pub fn replicas(&self, point: u64, r: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(r.min(self.len()));
        if self.ring.is_empty() || r == 0 {
            return out;
        }
        let start = self.ring.partition_point(|&(p, _)| p < point);
        for step in 0..self.ring.len() {
            let (_, idx) = self.ring[(start + step) % self.ring.len()];
            if !out.contains(&idx) {
                out.push(idx);
                if out.len() == r {
                    break;
                }
            }
        }
        out
    }

    /// Convenience: replica *names* for a key.
    pub fn replica_names(&self, point: u64, r: usize) -> Vec<String> {
        self.replicas(point, r)
            .into_iter()
            .map(|i| {
                self.nodes[i]
                    .clone()
                    .expect("ring points only to present nodes")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_of(names: &[&str]) -> HashRing {
        let mut ring = HashRing::new(0xF1EE7, 64);
        for n in names {
            ring.add(n);
        }
        ring
    }

    fn sample_keys(ring: &HashRing, n: usize) -> Vec<u64> {
        (0..n)
            .map(|i| ring.key_point(0x1000 + i as u64, "india"))
            .collect()
    }

    #[test]
    fn replica_sets_are_distinct_and_sized() {
        let ring = ring_of(&["n0", "n1", "n2", "n3"]);
        for key in sample_keys(&ring, 200) {
            let reps = ring.replicas(key, 2);
            assert_eq!(reps.len(), 2);
            assert_ne!(reps[0], reps[1]);
        }
    }

    #[test]
    fn tiny_fleet_returns_every_node() {
        let ring = ring_of(&["n0", "n1"]);
        for key in sample_keys(&ring, 50) {
            let reps = ring.replicas(key, 3);
            assert_eq!(reps.len(), 2, "R > N degrades to full replication");
        }
        let empty = HashRing::new(1, 8);
        assert!(empty.replicas(42, 2).is_empty());
    }

    #[test]
    fn balance_is_reasonable_with_vnodes() {
        let ring = ring_of(&["n0", "n1", "n2", "n3"]);
        let mut counts = [0usize; 4];
        for key in sample_keys(&ring, 4000) {
            counts[ring.replicas(key, 1)[0]] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (400..=2200).contains(&c),
                "node {i} owns {c} of 4000 keys — ring badly unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn leave_moves_only_the_departed_nodes_keys() {
        let before = ring_of(&["n0", "n1", "n2", "n3"]);
        let mut after = before.clone();
        after.remove("n2");
        let mut moved = 0;
        let keys = sample_keys(&before, 2000);
        for &key in &keys {
            let owner_before = before.replicas(key, 1)[0];
            let owner_after = after.replicas(key, 1)[0];
            if owner_before != owner_after {
                moved += 1;
                assert_eq!(
                    owner_before, 2,
                    "a key moved whose owner did not leave (key {key:#x})"
                );
            }
        }
        // Roughly 1/4 of keys lived on n2; all of them — and only them — moved.
        assert!(
            (300..=800).contains(&moved),
            "{moved} of 2000 keys moved; expected ≈ the departed node's share"
        );
    }

    #[test]
    fn rejoin_restores_the_original_mapping_exactly() {
        let original = ring_of(&["n0", "n1", "n2", "n3"]);
        let mut churned = original.clone();
        churned.remove("n2");
        churned.add("n2");
        for key in sample_keys(&original, 2000) {
            assert_eq!(
                original.replicas(key, 2),
                churned.replicas(key, 2),
                "leave + rejoin must restore the exact mapping"
            );
        }
    }

    #[test]
    fn out_of_order_rejoins_restore_original_indices() {
        let original = ring_of(&["n0", "n1", "n2", "n3"]);
        let mut churned = original.clone();
        churned.remove("n1");
        churned.remove("n2");
        // Rejoin in the opposite order of departure: each name must get
        // its own reserved slot back, not the first free tombstone.
        assert_eq!(churned.add("n2"), original.index_of("n2").unwrap());
        assert_eq!(churned.add("n1"), original.index_of("n1").unwrap());
        for key in sample_keys(&original, 1000) {
            assert_eq!(
                original.replicas(key, 2),
                churned.replicas(key, 2),
                "out-of-order churn must restore the exact index mapping"
            );
        }
    }

    #[test]
    fn new_nodes_never_steal_a_departed_nodes_slot() {
        let mut ring = ring_of(&["n0", "n1", "n2"]);
        ring.remove("n1");
        assert_eq!(ring.add("n3"), 3, "fresh name extends the index space");
        assert_eq!(ring.add("n1"), 1, "n1 rejoins under its reserved index");
        assert_eq!(ring.len(), 4);
    }

    #[test]
    fn key_point_uses_content_not_name() {
        let ring = ring_of(&["n0", "n1", "n2"]);
        // Same content hash + site → same point regardless of caller.
        assert_eq!(ring.key_point(99, "india"), ring.key_point(99, "india"));
        assert_ne!(ring.key_point(99, "india"), ring.key_point(99, "forge"));
        assert_ne!(ring.key_point(99, "india"), ring.key_point(100, "india"));
    }
}
