//! Binary registry: the service's name → image mapping.
//!
//! A [`PredictRequest`](crate::PredictRequest) carries a `binary_ref`
//! string; the registry resolves it to the staged ELF image, its stable
//! content key (the BDC cache key) and — for extended predictions — the
//! site whose guaranteed execution environment runs the source phase. The
//! source-phase bundle is memoized **per home-site configuration epoch**:
//! however many extended requests arrive, the source phase runs once, but
//! a reconfiguration of the home site (epoch bump) orphans the memo so the
//! planner can never rank against a source description gathered in a
//! stale environment.
//!
//! Names bind content: re-registering an existing name with *different*
//! content is rejected ([`RegistryError::ContentConflict`]) so every
//! cached result and ranking derived from the old name stays honest. The
//! sanctioned way to change a name's bytes is [`BinaryRegistry::update`],
//! which bumps the name's **generation**; the service compares the
//! generation it captured at submit time against the current one before
//! memoizing, so an evaluation that raced an update can never publish a
//! stale result.

use feam_core::bundle::SourceBundle;
use feam_core::cache::BdcKey;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Why a registration was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The name is already bound to different content. Registering changed
    /// bytes under an existing name would let memoized source bundles and
    /// cached results answer for the wrong binary.
    ContentConflict { name: String },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::ContentConflict { name } => write!(
                f,
                "binary name {name:?} is already bound to different content; \
                 register the changed binary under a new name"
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The memoized source phase for one home-site configuration epoch.
struct BundleMemo {
    /// Home-site EDC epoch the bundle was gathered under.
    epoch: u64,
    /// `None` records a failed source phase (e.g. a non-MPI image) so it
    /// is not retried per request within the same epoch.
    bundle: Option<Arc<SourceBundle>>,
}

/// One binary known to the service.
pub struct RegisteredBinary {
    /// The ELF image as staged at sites.
    pub image: Arc<Vec<u8>>,
    /// Full content key of the image (FNV-1a primary hash + length +
    /// second-hash discriminators) — the content-addressed identity every
    /// cache layer keys on.
    pub content_key: BdcKey,
    /// Site whose GEE runs the source phase for extended predictions.
    pub home_site: String,
    /// Source-phase output, computed on the first extended request per
    /// home-site configuration epoch.
    bundle: Mutex<Option<BundleMemo>>,
}

impl RegisteredBinary {
    /// Register an image built at (or considered native to) `home_site`.
    pub fn new(image: Arc<Vec<u8>>, home_site: &str) -> Self {
        let content_key = BdcKey::of(&image);
        RegisteredBinary {
            image,
            content_key,
            home_site: home_site.to_string(),
            bundle: Mutex::new(None),
        }
    }

    /// Primary content hash (the sharding component of the full key).
    pub fn content_hash(&self) -> u64 {
        self.content_key.hash
    }

    /// The memoized source-phase bundle for `epoch`; `compute` runs at
    /// most once per epoch — a stale-epoch memo (the home site was
    /// reconfigured since the bundle was gathered) is discarded and
    /// recomputed. Concurrent extended requests for the same binary
    /// serialize here, which is exactly the single-computation guarantee.
    pub fn bundle_for_epoch(
        &self,
        epoch: u64,
        compute: impl FnOnce() -> Option<Arc<SourceBundle>>,
    ) -> Option<Arc<SourceBundle>> {
        let mut memo = self.bundle.lock().expect("bundle memo");
        if let Some(m) = memo.as_ref() {
            if m.epoch == epoch {
                return m.bundle.clone();
            }
        }
        let bundle = compute();
        *memo = Some(BundleMemo {
            epoch,
            bundle: bundle.clone(),
        });
        bundle
    }

    /// The epoch of the current memo, for introspection and tests.
    pub fn bundle_epoch(&self) -> Option<u64> {
        self.bundle
            .lock()
            .expect("bundle memo")
            .as_ref()
            .map(|m| m.epoch)
    }
}

/// One registry slot: the binding plus its generation (bumped by every
/// [`BinaryRegistry::update`], never by an idempotent re-insert).
struct Slot {
    generation: u64,
    binary: Arc<RegisteredBinary>,
}

/// Name → binary mapping with per-name generations.
#[derive(Default)]
pub struct BinaryRegistry {
    entries: HashMap<String, Slot>,
}

impl BinaryRegistry {
    /// Register `name`. Re-registering the same content under the same
    /// name is an idempotent no-op (the existing entry, with its memoized
    /// bundle and generation, is kept); different content under an
    /// existing name is rejected — changed bytes go through
    /// [`update`](BinaryRegistry::update) or take a new name.
    pub fn insert(&mut self, name: &str, binary: RegisteredBinary) -> Result<(), RegistryError> {
        if let Some(existing) = self.entries.get(name) {
            if existing.binary.content_key != binary.content_key {
                return Err(RegistryError::ContentConflict {
                    name: name.to_string(),
                });
            }
            return Ok(());
        }
        self.entries.insert(
            name.to_string(),
            Slot {
                generation: 0,
                binary: Arc::new(binary),
            },
        );
        Ok(())
    }

    /// Replace `name`'s content (or create the binding), bumping its
    /// generation. Returns `(new generation, displaced binary)` — the
    /// displaced entry's content key is what the service uses to purge
    /// results derived from the old bytes.
    pub fn update(
        &mut self,
        name: &str,
        binary: RegisteredBinary,
    ) -> (u64, Option<Arc<RegisteredBinary>>) {
        match self.entries.get_mut(name) {
            Some(slot) => {
                let old = std::mem::replace(&mut slot.binary, Arc::new(binary));
                slot.generation += 1;
                (slot.generation, Some(old))
            }
            None => {
                self.entries.insert(
                    name.to_string(),
                    Slot {
                        generation: 0,
                        binary: Arc::new(binary),
                    },
                );
                (0, None)
            }
        }
    }

    /// Resolve a request's `binary_ref`.
    pub fn get(&self, name: &str) -> Option<&Arc<RegisteredBinary>> {
        self.entries.get(name).map(|s| &s.binary)
    }

    /// The current generation of `name`'s binding.
    pub fn generation(&self, name: &str) -> Option<u64> {
        self.entries.get(name).map(|s| s.generation)
    }

    /// Number of registered binaries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registered names in sorted order (deterministic iteration for the
    /// load generator).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.entries.keys().cloned().collect();
        v.sort();
        v
    }
}

/// A small MPI binary compiled at the first standard site — for examples
/// and doctests.
pub fn demo_binary(seed: u64) -> RegisteredBinary {
    use feam_sim::compile::{compile, ProgramSpec};
    use feam_sim::toolchain::Language;
    use feam_workloads::sites::{standard_sites, RANGER};

    let sites = standard_sites(seed);
    let site = &sites[RANGER];
    let ist = site.stacks[1].clone();
    let bin = compile(
        site,
        Some(&ist),
        &ProgramSpec::new("cg", Language::Fortran),
        seed,
    )
    .expect("demo binary compiles");
    RegisteredBinary::new(bin.image, site.name())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_and_hashes() {
        let mut reg = BinaryRegistry::default();
        assert!(reg.is_empty());
        let b = demo_binary(3);
        let key = b.content_key;
        assert_ne!(key.hash, 0);
        assert_ne!(key.len, 0);
        reg.insert("cg.B.4", b).unwrap();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get("cg.B.4").unwrap().content_key, key);
        assert!(reg.get("missing").is_none());
        assert_eq!(reg.names(), vec!["cg.B.4".to_string()]);
    }

    #[test]
    fn bundle_computed_at_most_once_per_epoch() {
        let b = demo_binary(4);
        let mut calls = 0;
        for _ in 0..3 {
            b.bundle_for_epoch(0, || {
                calls += 1;
                None
            });
        }
        assert_eq!(calls, 1, "source phase memoized, even when it failed");
        assert_eq!(b.bundle_epoch(), Some(0));

        // An epoch bump (home site reconfigured) orphans the memo.
        b.bundle_for_epoch(1, || {
            calls += 1;
            None
        });
        assert_eq!(calls, 2, "stale-epoch memo must be recomputed");
        assert_eq!(b.bundle_epoch(), Some(1));
        b.bundle_for_epoch(1, || {
            calls += 1;
            None
        });
        assert_eq!(calls, 2, "fresh-epoch memo is reused");
    }

    #[test]
    fn changed_content_under_an_existing_name_is_rejected() {
        let mut reg = BinaryRegistry::default();
        let a = demo_binary(5);
        let a_image = a.image.clone();
        reg.insert("app", a).unwrap();

        // Same name, same bytes: idempotent.
        reg.insert("app", RegisteredBinary::new(a_image, "ranger"))
            .unwrap();
        assert_eq!(reg.len(), 1);

        // Same name, different bytes: rejected, original entry kept.
        let changed = demo_binary(6);
        let before = reg.get("app").unwrap().content_key;
        assert_eq!(
            reg.insert("app", changed),
            Err(RegistryError::ContentConflict { name: "app".into() })
        );
        assert_eq!(reg.get("app").unwrap().content_key, before);

        // The changed binary registers fine under a new name.
        reg.insert("app-v2", demo_binary(6)).unwrap();
        assert_eq!(reg.len(), 2);
    }
}
