//! Binary registry: the service's name → image mapping.
//!
//! A [`PredictRequest`](crate::PredictRequest) carries a `binary_ref`
//! string; the registry resolves it to the staged ELF image, its stable
//! content hash (the BDC cache key) and — for extended predictions — the
//! site whose guaranteed execution environment runs the source phase. The
//! source-phase bundle is computed at most once per binary and memoized,
//! whatever the number of extended requests.

use feam_core::bundle::SourceBundle;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// One binary known to the service.
pub struct RegisteredBinary {
    /// The ELF image as staged at sites.
    pub image: Arc<Vec<u8>>,
    /// FNV-1a hash of the image — the content-addressed identity every
    /// cache layer keys on.
    pub content_hash: u64,
    /// Site whose GEE runs the source phase for extended predictions.
    pub home_site: String,
    /// Source-phase output, computed on the first extended request.
    /// `Some(None)` records a failed source phase (e.g. a non-MPI image)
    /// so it is not retried per request.
    bundle: OnceLock<Option<Arc<SourceBundle>>>,
}

impl RegisteredBinary {
    /// Register an image built at (or considered native to) `home_site`.
    pub fn new(image: Arc<Vec<u8>>, home_site: &str) -> Self {
        let content_hash = feam_sim::rng::fnv1a(&image);
        RegisteredBinary {
            image,
            content_hash,
            home_site: home_site.to_string(),
            bundle: OnceLock::new(),
        }
    }

    /// The memoized source-phase bundle; `compute` runs at most once.
    pub fn bundle_or_init(
        &self,
        compute: impl FnOnce() -> Option<Arc<SourceBundle>>,
    ) -> Option<Arc<SourceBundle>> {
        self.bundle.get_or_init(compute).clone()
    }
}

/// Name → binary mapping. Immutable once the service starts, so lookups
/// are lock-free.
#[derive(Default)]
pub struct BinaryRegistry {
    entries: HashMap<String, RegisteredBinary>,
}

impl BinaryRegistry {
    /// Register `name`; replaces an existing entry of the same name.
    pub fn insert(&mut self, name: &str, binary: RegisteredBinary) {
        self.entries.insert(name.to_string(), binary);
    }

    /// Resolve a request's `binary_ref`.
    pub fn get(&self, name: &str) -> Option<&RegisteredBinary> {
        self.entries.get(name)
    }

    /// Number of registered binaries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registered names in sorted order (deterministic iteration for the
    /// load generator).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.entries.keys().cloned().collect();
        v.sort();
        v
    }
}

/// A small MPI binary compiled at the first standard site — for examples
/// and doctests.
pub fn demo_binary(seed: u64) -> RegisteredBinary {
    use feam_sim::compile::{compile, ProgramSpec};
    use feam_sim::toolchain::Language;
    use feam_workloads::sites::{standard_sites, RANGER};

    let sites = standard_sites(seed);
    let site = &sites[RANGER];
    let ist = site.stacks[1].clone();
    let bin = compile(
        site,
        Some(&ist),
        &ProgramSpec::new("cg", Language::Fortran),
        seed,
    )
    .expect("demo binary compiles");
    RegisteredBinary::new(bin.image, site.name())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_and_hashes() {
        let mut reg = BinaryRegistry::default();
        assert!(reg.is_empty());
        let b = demo_binary(3);
        let hash = b.content_hash;
        assert_ne!(hash, 0);
        reg.insert("cg.B.4", b);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get("cg.B.4").unwrap().content_hash, hash);
        assert!(reg.get("missing").is_none());
        assert_eq!(reg.names(), vec!["cg.B.4".to_string()]);
    }

    #[test]
    fn bundle_computed_at_most_once() {
        let b = demo_binary(4);
        let mut calls = 0;
        for _ in 0..3 {
            b.bundle_or_init(|| {
                calls += 1;
                None
            });
        }
        assert_eq!(calls, 1, "source phase memoized, even when it failed");
    }
}
