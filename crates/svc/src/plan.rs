//! Site-placement planning: "where should this binary run?"
//!
//! The service answers point queries — binary B at site S. The planner
//! answers the question schedulers actually ask: given a binary, evaluate
//! *every* candidate site and rank them by execution readiness. One
//! source-phase description fans out to per-site target evaluations that
//! run concurrently on the service's worker pool, sharing the BDC/EDC
//! description caches and the single-flight machinery, so an all-sites
//! plan costs little more than the slowest single evaluation.
//!
//! Ranking is deterministic and total. Sites are ordered by:
//!
//! 1. **Readiness class** — ready & clean, ready but degraded, not ready
//!    & clean, not ready & degraded, errored (shed after retries, unknown
//!    site). Degraded or faulted evaluations rank below clean ones but
//!    never abort the plan: a partial placement is a first-class answer.
//! 2. **Confidence** (descending) — fraction of determinants positively
//!    decided.
//! 3. **Resolution cost** — number, then bytes, of libraries FEAM must
//!    ship to the site, then libraries left unresolved.
//! 4. **Expected launch attempts** — `1 / (1 − transient_error_rate)` of
//!    the site's queueing system, the retry model's cost of getting a job
//!    through.
//! 5. **Site name** — the final total-order tiebreak.
//!
//! [`plan_batch`] shards `(binary, site)` work units across the pool and
//! coalesces duplicate pairs planner-side: a pair shared by many requests
//! is submitted once and its response reused (on top of the service's own
//! single-flight, which catches races the planner cannot see).
//! [`plan_sequential`] is the same computation driven one blocking call
//! at a time — the oracle the benchmark compares ranking and speedup
//! against.

use crate::service::{Delivery, PredictRequest, PredictResponse, PredictService, SvcError};
use feam_core::predict::{Prediction, PredictionMode};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Which sites to evaluate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SiteSelection {
    /// Every site the service serves.
    All,
    /// An explicit candidate list (unknown names become per-site errors,
    /// not plan failures).
    Sites(Vec<String>),
}

/// One placement query: rank candidate sites for a registered binary.
#[derive(Debug, Clone)]
pub struct PlanRequest {
    /// Registered name of the binary.
    pub binary_ref: String,
    /// Candidate sites.
    pub sites: SiteSelection,
    /// Basic (target-only) or extended (source + target) prediction.
    pub mode: PredictionMode,
    /// Truncate the ranking to the top `k` sites (`None` = all).
    pub k: Option<usize>,
    /// Optional deadline, propagated to every per-site prediction. A
    /// pair shared by several plan requests carries the *latest* of
    /// their deadlines (and no deadline at all if any sharer is
    /// unbounded) — the evaluation runs as long as anyone still wants
    /// it; a pair shed at dequeue ranks as an errored site.
    pub deadline: Option<Instant>,
}

impl PlanRequest {
    /// An all-sites basic-mode plan.
    pub fn all_sites(binary_ref: &str) -> Self {
        PlanRequest {
            binary_ref: binary_ref.to_string(),
            sites: SiteSelection::All,
            mode: PredictionMode::Basic,
            k: None,
            deadline: None,
        }
    }
}

/// One ranked site in a [`Placement`].
#[derive(Debug, Clone, serde::Serialize)]
pub struct SitePlacement {
    /// Site name.
    pub site: String,
    /// The per-determinant prediction (absent when the pair errored).
    pub prediction: Option<Prediction>,
    /// Will the binary execute here, per the model?
    pub ready: bool,
    /// Any determinant unobservable (faults, missing tooling)?
    pub degraded: bool,
    /// Did checker-ensemble members disagree on this verdict? Only ever
    /// true after [`crate::ensemble::annotate_with_ensemble`] ran; the
    /// bare planner leaves it false.
    pub contested: bool,
    /// Fraction of determinants positively decided.
    pub confidence: f64,
    /// Libraries FEAM must ship for the binary to run.
    pub resolution_libraries: usize,
    /// Their total size in bytes.
    pub resolution_bytes: u64,
    /// Missing libraries the resolution model could not source.
    pub unresolved: usize,
    /// `1 / (1 − transient_error_rate)` of the site's queueing system.
    pub expected_launch_attempts: f64,
    /// Why the pair produced no prediction (shed after retries, unknown
    /// site). Errored sites rank last but stay in the placement.
    pub error: Option<String>,
    /// Whether the service answered from its result cache.
    pub from_result_cache: bool,
    /// End-to-end latency of this pair's evaluation.
    pub latency_us: u64,
}

/// The stable per-site view behind [`Placement::fingerprint`]: ranking
/// order, verdicts and costs, with per-run measurement noise
/// (`latency_us`, `from_result_cache`) deliberately excluded so identical
/// rankings fingerprint byte-identically across runs.
#[derive(serde::Serialize)]
struct RankFingerprint {
    site: String,
    class: u8,
    contested: bool,
    prediction: Option<Prediction>,
    confidence: f64,
    resolution_libraries: usize,
    resolution_bytes: u64,
    unresolved: usize,
    expected_launch_attempts: f64,
    error: Option<String>,
}

impl SitePlacement {
    /// Readiness class, the primary sort key (lower ranks first).
    pub fn class(&self) -> u8 {
        match (self.error.is_some(), self.ready, self.degraded) {
            (true, _, _) => 4,
            (false, true, false) => 0,
            (false, true, true) => 1,
            (false, false, false) => 2,
            (false, false, true) => 3,
        }
    }

    /// One-word verdict for reports.
    pub fn verdict(&self) -> &'static str {
        match self.class() {
            0 => "ready",
            1 => "ready*",
            2 => "not-ready",
            3 => "not-ready*",
            _ => "error",
        }
    }

    fn from_response(resp: &PredictResponse, attempts: f64) -> Self {
        let (libs, bytes, unresolved) = match &resp.evaluation.resolution {
            Some(r) => (
                r.staged_count(),
                r.staged.iter().map(|(_, b)| b.len() as u64).sum(),
                r.failures().len(),
            ),
            None => (0, 0, 0),
        };
        SitePlacement {
            site: resp.target_site.clone(),
            prediction: Some(resp.prediction.clone()),
            ready: resp.prediction.ready(),
            degraded: resp.evaluation.degraded,
            contested: resp.prediction.contested(),
            confidence: resp.evaluation.confidence,
            resolution_libraries: libs,
            resolution_bytes: bytes,
            unresolved,
            expected_launch_attempts: attempts,
            error: None,
            from_result_cache: resp.from_result_cache,
            latency_us: resp.latency_us,
        }
    }

    fn errored(site: &str, attempts: f64, error: String) -> Self {
        SitePlacement {
            site: site.to_string(),
            prediction: None,
            ready: false,
            degraded: false,
            contested: false,
            confidence: 0.0,
            resolution_libraries: 0,
            resolution_bytes: 0,
            unresolved: 0,
            expected_launch_attempts: attempts,
            error: Some(error),
            from_result_cache: false,
            latency_us: 0,
        }
    }
}

/// The deterministic total order over ranked sites.
pub fn rank_cmp(a: &SitePlacement, b: &SitePlacement) -> std::cmp::Ordering {
    a.class()
        .cmp(&b.class())
        // At equal readiness a contested verdict (ensemble members
        // disagreed) ranks below an uncontested one.
        .then_with(|| a.contested.cmp(&b.contested))
        .then_with(|| b.confidence.total_cmp(&a.confidence))
        .then_with(|| a.resolution_libraries.cmp(&b.resolution_libraries))
        .then_with(|| a.resolution_bytes.cmp(&b.resolution_bytes))
        .then_with(|| a.unresolved.cmp(&b.unresolved))
        .then_with(|| {
            a.expected_launch_attempts
                .total_cmp(&b.expected_launch_attempts)
        })
        .then_with(|| a.site.cmp(&b.site))
}

/// A ranked placement for one binary.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Placement {
    /// Registered name of the binary.
    pub binary_ref: String,
    /// Prediction mode the plan ran under.
    pub mode: PredictionMode,
    /// Sites in rank order (best first), truncated to the request's `k`.
    pub sites: Vec<SitePlacement>,
    /// Candidate sites considered before truncation.
    pub candidates: usize,
    /// How many candidates evaluated degraded.
    pub degraded_sites: usize,
    /// How many candidates errored (shed after retries, unknown site).
    pub error_sites: usize,
}

impl Placement {
    /// The top-ranked site, if any candidate produced a prediction.
    pub fn best(&self) -> Option<&SitePlacement> {
        self.sites.first().filter(|s| s.error.is_none())
    }

    /// Stable fingerprint of the ranking (order + verdicts + costs;
    /// excludes latency and cache provenance). Two runs over the same
    /// inputs must produce byte-identical fingerprints.
    pub fn fingerprint(&self) -> String {
        let view: Vec<RankFingerprint> = self
            .sites
            .iter()
            .map(|s| RankFingerprint {
                site: s.site.clone(),
                class: s.class(),
                contested: s.contested,
                prediction: s.prediction.clone(),
                confidence: s.confidence,
                resolution_libraries: s.resolution_libraries,
                resolution_bytes: s.resolution_bytes,
                unresolved: s.unresolved,
                expected_launch_attempts: s.expected_launch_attempts,
                error: s.error.clone(),
            })
            .collect();
        format!(
            "{}|{}|{}",
            self.binary_ref,
            self.candidates,
            serde_json::to_string(&view).expect("ranking serializes")
        )
    }
}

/// `(binary, site, mode)` — the planner-side coalescing key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PairKey {
    binary_ref: String,
    site: String,
    extended: bool,
}

/// How a unique pair's evaluation ended.
enum PairOutcome {
    Done(Box<PredictResponse>),
    Failed(String),
}

/// How often a shed submission is retried before the pair is declared
/// errored. Workers drain the queue concurrently, so a yield-then-sleep
/// loop normally gets through; an unstarted or wedged service exhausts
/// the budget in well under a second instead of deadlocking the plan.
const SHED_RETRIES: u32 = 400;

fn submit_with_retry(svc: &PredictService, req: &PredictRequest) -> Result<Delivery, SvcError> {
    submit_traced_with_retry(svc, req, feam_obs::TraceCtx::NONE)
}

fn submit_traced_with_retry(
    svc: &PredictService,
    req: &PredictRequest,
    parent: feam_obs::TraceCtx,
) -> Result<Delivery, SvcError> {
    let mut attempt = 0u32;
    loop {
        match svc.submit_traced(req, parent) {
            Err(e) if e.retryable() && attempt < SHED_RETRIES => {
                attempt += 1;
                if attempt < 8 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            other => return other,
        }
    }
}

fn candidate_sites(svc: &PredictService, sel: &SiteSelection) -> Vec<String> {
    match sel {
        SiteSelection::All => svc.site_names(),
        SiteSelection::Sites(list) => list.clone(),
    }
}

/// Plan a batch of placement queries concurrently.
///
/// All `(binary, site, mode)` pairs across the batch are deduplicated —
/// a pair shared by several requests is submitted once and its response
/// reused — then fanned out through non-blocking submissions so the
/// worker pool evaluates them in parallel, and drained in deterministic
/// pair order. A request whose `binary_ref` is unregistered yields
/// `Err(UnknownBinary)` for that element only; per-site failures become
/// errored entries ranked last.
pub fn plan_batch(svc: &PredictService, reqs: &[PlanRequest]) -> Vec<Result<Placement, SvcError>> {
    let rec = svc.recorder().clone();
    let _batch_span = rec.span("plan.request");

    // Collect the unique pairs in first-seen order (deterministic).
    let known: std::collections::HashSet<String> = svc.binary_names().into_iter().collect();
    let mut pair_order: Vec<PairKey> = Vec::new();
    // A shared pair evaluates under the most generous deadline among its
    // sharers: `Some(None)` (unbounded sharer) beats any instant.
    let mut deadlines: HashMap<PairKey, Option<Instant>> = HashMap::new();
    let mut coalesced = 0u64;
    for req in reqs {
        if !known.contains(&req.binary_ref) {
            continue;
        }
        for site in candidate_sites(svc, &req.sites) {
            let key = PairKey {
                binary_ref: req.binary_ref.clone(),
                site,
                extended: req.mode == PredictionMode::Extended,
            };
            match deadlines.entry(key.clone()) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(req.deadline);
                    pair_order.push(key);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let merged = match (*e.get(), req.deadline) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        _ => None,
                    };
                    e.insert(merged);
                    coalesced += 1;
                }
            }
        }
    }
    rec.count("plan.pairs.coalesced", coalesced);

    // Fan out: one non-blocking submission per unique pair. The span
    // guard rides in the pending list so `plan.site` covers submit
    // through delivery.
    let mut pending: Vec<(PairKey, Result<Delivery, SvcError>, feam_obs::Span)> =
        Vec::with_capacity(pair_order.len());
    for key in &pair_order {
        let span = rec.span("plan.site");
        let preq = PredictRequest {
            binary_ref: key.binary_ref.clone(),
            target_site: key.site.clone(),
            mode: if key.extended {
                PredictionMode::Extended
            } else {
                PredictionMode::Basic
            },
            deadline: deadlines.get(key).copied().flatten(),
        };
        // The service request joins the plan's trace, parented on this
        // pair's `plan.site` span, so one trace id covers the whole plan
        // through the pool-side evaluations.
        let delivery = submit_traced_with_retry(svc, &preq, span.ctx());
        pending.push((key.clone(), delivery, span));
    }
    rec.count("plan.pairs.evaluated", pair_order.len() as u64);

    // Drain in pair order; workers complete in whatever order they like.
    let mut outcomes: HashMap<PairKey, PairOutcome> = HashMap::with_capacity(pending.len());
    let mut degraded = 0u64;
    for (key, delivery, span) in pending {
        let outcome = match delivery {
            Ok(Delivery::Ready(resp)) => PairOutcome::Done(Box::new(resp)),
            Ok(Delivery::Pending(rx)) => match rx.recv() {
                Ok(Ok(resp)) => PairOutcome::Done(Box::new(resp)),
                Ok(Err(e)) => PairOutcome::Failed(e.to_string()),
                Err(_) => PairOutcome::Failed(SvcError::ShuttingDown.to_string()),
            },
            Err(e) => PairOutcome::Failed(e.to_string()),
        };
        if let PairOutcome::Done(r) = &outcome {
            if r.evaluation.degraded {
                degraded += 1;
            }
        }
        drop(span);
        outcomes.insert(key, outcome);
    }
    rec.count("plan.pairs.degraded", degraded);

    // Assemble each request's ranking from the shared outcomes.
    reqs.iter()
        .map(|req| assemble(svc, req, &known, &outcomes))
        .collect()
}

/// Plan a single placement query (batch of one).
pub fn plan(svc: &PredictService, req: &PlanRequest) -> Result<Placement, SvcError> {
    plan_batch(svc, std::slice::from_ref(req))
        .pop()
        .expect("one request yields one placement")
}

/// The sequential oracle: the identical computation driven one blocking
/// prediction at a time, in candidate order. The benchmark pins that the
/// parallel planner's ranking is byte-identical to this and measures the
/// speedup against it.
pub fn plan_sequential(svc: &PredictService, req: &PlanRequest) -> Result<Placement, SvcError> {
    let known: std::collections::HashSet<String> = svc.binary_names().into_iter().collect();
    if !known.contains(&req.binary_ref) {
        return Err(SvcError::UnknownBinary(req.binary_ref.clone()));
    }
    let mut outcomes: HashMap<PairKey, PairOutcome> = HashMap::new();
    for site in candidate_sites(svc, &req.sites) {
        let key = PairKey {
            binary_ref: req.binary_ref.clone(),
            site: site.clone(),
            extended: req.mode == PredictionMode::Extended,
        };
        if outcomes.contains_key(&key) {
            continue;
        }
        let preq = PredictRequest {
            binary_ref: req.binary_ref.clone(),
            target_site: site,
            mode: req.mode,
            deadline: req.deadline,
        };
        let outcome = match submit_with_retry(svc, &preq) {
            Ok(Delivery::Ready(resp)) => PairOutcome::Done(Box::new(resp)),
            Ok(Delivery::Pending(rx)) => match rx.recv() {
                Ok(Ok(resp)) => PairOutcome::Done(Box::new(resp)),
                Ok(Err(e)) => PairOutcome::Failed(e.to_string()),
                Err(_) => PairOutcome::Failed(SvcError::ShuttingDown.to_string()),
            },
            Err(e) => PairOutcome::Failed(e.to_string()),
        };
        outcomes.insert(key, outcome);
    }
    assemble(svc, req, &known, &outcomes)
}

fn assemble(
    svc: &PredictService,
    req: &PlanRequest,
    known: &std::collections::HashSet<String>,
    outcomes: &HashMap<PairKey, PairOutcome>,
) -> Result<Placement, SvcError> {
    if !known.contains(&req.binary_ref) {
        return Err(SvcError::UnknownBinary(req.binary_ref.clone()));
    }
    let mut sites: Vec<SitePlacement> = Vec::new();
    let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
    for site in candidate_sites(svc, &req.sites) {
        if !seen.insert(site.clone()) {
            continue;
        }
        // Unknown candidate sites have no transient rate; rank them with
        // the worst possible launch expectation.
        let attempts = match svc.site_transient_rate(&site) {
            Some(rate) if rate < 1.0 => 1.0 / (1.0 - rate),
            _ => f64::INFINITY,
        };
        let key = PairKey {
            binary_ref: req.binary_ref.clone(),
            site: site.clone(),
            extended: req.mode == PredictionMode::Extended,
        };
        let placement = match outcomes.get(&key) {
            Some(PairOutcome::Done(resp)) => SitePlacement::from_response(resp, attempts),
            Some(PairOutcome::Failed(e)) => SitePlacement::errored(&site, attempts, e.clone()),
            None => SitePlacement::errored(
                &site,
                attempts,
                SvcError::UnknownSite(site.clone()).to_string(),
            ),
        };
        sites.push(placement);
    }
    sites.sort_by(rank_cmp);
    let candidates = sites.len();
    let degraded_sites = sites
        .iter()
        .filter(|s| s.error.is_none() && s.degraded)
        .count();
    let error_sites = sites.iter().filter(|s| s.error.is_some()).count();
    if let Some(k) = req.k {
        sites.truncate(k);
    }
    Ok(Placement {
        binary_ref: req.binary_ref.clone(),
        mode: req.mode,
        sites,
        candidates,
        degraded_sites,
        error_sites,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stub(site: &str, class_inputs: (bool, bool), confidence: f64) -> SitePlacement {
        let (ready, degraded) = class_inputs;
        SitePlacement {
            site: site.to_string(),
            prediction: None,
            ready,
            degraded,
            contested: false,
            confidence,
            resolution_libraries: 0,
            resolution_bytes: 0,
            unresolved: 0,
            expected_launch_attempts: 1.0,
            error: None,
            from_result_cache: false,
            latency_us: 0,
        }
    }

    #[test]
    fn rank_orders_classes_then_confidence_then_cost() {
        let ready_clean = stub("a", (true, false), 0.75);
        let ready_degraded = stub("b", (true, true), 1.0);
        let not_ready = stub("c", (false, false), 1.0);
        let mut errored = stub("d", (false, false), 1.0);
        errored.error = Some("shed".into());

        let mut v = [
            errored.clone(),
            not_ready.clone(),
            ready_degraded.clone(),
            ready_clean.clone(),
        ];
        v.sort_by(rank_cmp);
        let order: Vec<&str> = v.iter().map(|s| s.site.as_str()).collect();
        assert_eq!(order, ["a", "b", "c", "d"], "class dominates confidence");

        // Within a class: higher confidence first, then cheaper resolution,
        // then fewer expected launch attempts, then name.
        let mut hi = stub("x", (true, false), 1.0);
        let lo = stub("y", (true, false), 0.5);
        let mut v = [lo.clone(), hi.clone()];
        v.sort_by(rank_cmp);
        assert_eq!(v[0].site, "x");

        hi.confidence = 0.5;
        hi.resolution_libraries = 2;
        let mut v = [hi.clone(), lo.clone()];
        v.sort_by(rank_cmp);
        assert_eq!(v[0].site, "y", "fewer libraries to ship ranks first");

        let mut slow = stub("y", (true, false), 0.5);
        slow.expected_launch_attempts = 2.0;
        let fast = stub("z", (true, false), 0.5);
        let mut v = [slow, fast];
        v.sort_by(rank_cmp);
        assert_eq!(v[0].site, "z", "fewer expected launch attempts first");
    }

    #[test]
    fn contested_ranks_below_uncontested_at_equal_readiness() {
        // Same class, same confidence: the contested verdict loses.
        let clean = stub("b-clean", (true, false), 0.8);
        let mut contested = stub("a-contested", (true, false), 0.8);
        contested.contested = true;
        let mut v = [contested.clone(), clean.clone()];
        v.sort_by(rank_cmp);
        assert_eq!(v[0].site, "b-clean", "contested loses the tiebreak");

        // But contested never outranks class: a contested ready site
        // still beats an uncontested not-ready one.
        let not_ready = stub("c", (false, false), 1.0);
        let mut v = [not_ready, contested];
        v.sort_by(rank_cmp);
        assert_eq!(v[0].site, "a-contested", "class still dominates");
    }

    #[test]
    fn verdict_labels_track_class() {
        assert_eq!(stub("a", (true, false), 1.0).verdict(), "ready");
        assert_eq!(stub("a", (true, true), 1.0).verdict(), "ready*");
        assert_eq!(stub("a", (false, false), 1.0).verdict(), "not-ready");
        assert_eq!(stub("a", (false, true), 1.0).verdict(), "not-ready*");
        let mut e = stub("a", (false, false), 1.0);
        e.error = Some("shed".into());
        assert_eq!(e.verdict(), "error");
    }
}
