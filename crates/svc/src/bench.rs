//! Deterministic serving benchmark: the engine behind
//! `feam-eval --serve-bench`.
//!
//! The workload models what a prediction service actually sees: a
//! Zipf-skewed stream — a few popular binaries dominate, the tail is
//! long — of (binary, site, mode) queries over the simulated five-site
//! testbed. Everything is seeded: the same `BenchParams::seed` produces
//! the same request stream, so the cached service and its cache-disabled
//! twin answer *identical* queries and their predictions can be compared
//! request-for-request ([`ServeBenchComparison::equivalent`]).
//!
//! The twin runs a deterministic prefix of the same stream (full-length
//! uncached runs would dominate CI wall clock); throughput is reported in
//! requests/second so the comparison is length-independent.

use crate::service::{Delivery, PredictRequest, PredictService, SvcError};
use feam_core::predict::PredictionMode;
use feam_sim::rng;
use std::time::Instant;

/// Load-generator parameters. Everything that shapes the stream is here
/// and seeded — two runs with equal params issue identical requests.
#[derive(Debug, Clone)]
pub struct BenchParams {
    /// Master seed for the request stream.
    pub seed: u64,
    /// Requests issued against the cached service.
    pub requests: usize,
    /// Requests issued against the cache-disabled twin (a prefix of the
    /// same stream).
    pub uncached_requests: usize,
    /// Distinct binaries in the popularity distribution.
    pub binaries: usize,
    /// Zipf skew exponent (1.0 = classic Zipf; higher = more skew).
    pub zipf_s: f64,
    /// Fraction of requests asking for the extended prediction.
    pub extended_share: f64,
    /// Requests submitted before draining responses (bounds concurrent
    /// in-flight work; keep at or below the service's queue capacity).
    pub wave: usize,
}

impl BenchParams {
    /// The committed-baseline configuration (`BENCH_serve.json`).
    pub fn standard(seed: u64) -> Self {
        BenchParams {
            seed,
            requests: 4000,
            uncached_requests: 240,
            binaries: 24,
            zipf_s: 1.5,
            extended_share: 0.3,
            wave: 32,
        }
    }

    /// CI-sized run (`--serve-bench --quick`).
    pub fn quick(seed: u64) -> Self {
        BenchParams {
            seed,
            requests: 800,
            uncached_requests: 80,
            binaries: 8,
            zipf_s: 1.5,
            extended_share: 0.25,
            wave: 16,
        }
    }
}

/// One service run's results.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ServeBenchReport {
    pub seed: u64,
    pub caching: bool,
    pub requests: u64,
    pub completed: u64,
    /// Retryable rejections observed (each shed request was retried until
    /// admitted, so `completed` still covers the whole stream).
    pub shed: u64,
    /// Requests answered straight from the result cache.
    pub result_cache_hits: u64,
    /// Requests adopted by an in-flight evaluation.
    pub coalesced: u64,
    pub wall_seconds: f64,
    pub throughput_rps: f64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    /// Nanosecond-resolution percentiles of the same samples. Result-cache
    /// hits answer in well under a microsecond, where the `_us` fields
    /// truncate to 0 — these carry the real tail.
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub bdc_hit_rate: f64,
    pub edc_hit_rate: f64,
}

/// Cached run vs cache-disabled twin over the same seeded stream.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ServeBenchComparison {
    pub cached: ServeBenchReport,
    pub uncached: ServeBenchReport,
    /// `cached.throughput_rps / uncached.throughput_rps`.
    pub speedup: f64,
    /// Predictions byte-identical, request-for-request, over the shared
    /// stream prefix.
    pub equivalent: bool,
}

/// One request of the seeded stream. Public so other drivers (the obs
/// check harness, the telemetry overhead bench) can replay the exact
/// workload the serve bench measures.
pub fn stream_request(
    params: &BenchParams,
    names: &[String],
    sites: &[String],
    i: usize,
) -> PredictRequest {
    let idx = i.to_string();
    // Zipf-skewed binary popularity: rank r drawn with weight 1/r^s.
    let n = names.len().min(params.binaries).max(1);
    let total: f64 = (1..=n).map(|r| 1.0 / (r as f64).powf(params.zipf_s)).sum();
    let mut u = rng::unit_f64(rng::hash_parts(params.seed, &["bin", &idx])) * total;
    let mut rank = n;
    for r in 1..=n {
        u -= 1.0 / (r as f64).powf(params.zipf_s);
        if u <= 0.0 {
            rank = r;
            break;
        }
    }
    let binary_ref = names[rank - 1].clone();
    let target_site = rng::pick(params.seed, &["site", &idx], sites).clone();
    let mode = if rng::chance(params.seed, &["mode", &idx], params.extended_share) {
        PredictionMode::Extended
    } else {
        PredictionMode::Basic
    };
    PredictRequest {
        binary_ref,
        target_site,
        mode,
        deadline: None,
    }
}

/// Exact percentile from collected samples (nearest-rank on the sorted
/// list); 0 when no samples were collected.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct RunOutput {
    report: ServeBenchReport,
    /// Per-request prediction fingerprints, in stream order.
    fingerprints: Vec<String>,
}

fn run_one(
    params: &BenchParams,
    svc: &PredictService,
    requests: usize,
    caching: bool,
) -> RunOutput {
    let names = svc.binary_names();
    let sites = svc.site_names();
    assert!(!names.is_empty(), "serve bench needs registered binaries");

    // Nanosecond samples; microsecond fields are derived at report time.
    let mut latencies: Vec<u64> = Vec::with_capacity(requests);
    let mut fingerprints: Vec<Option<String>> = vec![None; requests];
    let mut shed = 0u64;
    let mut result_cache_hits = 0u64;
    let t0 = Instant::now();

    let mut i = 0;
    while i < requests {
        let wave_end = (i + params.wave).min(requests);
        let mut pending = Vec::new();
        // `j` is the stream position, not just a `fingerprints` index.
        #[allow(clippy::needless_range_loop)]
        for j in i..wave_end {
            let req = stream_request(params, &names, &sites, j);
            // Shed requests are retried until admitted — the bench
            // measures the cost of the whole stream, and counts how often
            // admission control pushed back.
            loop {
                match svc.submit(&req) {
                    Ok(Delivery::Ready(resp)) => {
                        result_cache_hits += 1;
                        latencies.push(resp.latency_ns);
                        fingerprints[j] = Some(fingerprint(&req, &resp.prediction));
                        break;
                    }
                    Ok(Delivery::Pending(rx)) => {
                        pending.push((j, req.clone(), rx));
                        break;
                    }
                    Err(SvcError::Overloaded { .. }) => {
                        shed += 1;
                        std::thread::yield_now();
                    }
                    Err(e) => panic!("serve bench hit non-retryable error: {e}"),
                }
            }
        }
        for (j, req, rx) in pending {
            let resp = rx
                .recv()
                .expect("worker delivers every queued request")
                .expect("deadline-free bench requests are never shed post-admission");
            latencies.push(resp.latency_ns);
            fingerprints[j] = Some(fingerprint(&req, &resp.prediction));
        }
        i = wave_end;
    }

    let wall_seconds = t0.elapsed().as_secs_f64();
    let completed = latencies.len() as u64;
    latencies.sort_unstable();
    let (bdc_hit_rate, edc_hit_rate) = match svc.caches() {
        Some(c) => (c.bdc.stats().hit_rate(), c.edc.stats().hit_rate()),
        None => (0.0, 0.0),
    };
    let coalesced = completed
        .saturating_sub(result_cache_hits)
        .saturating_sub(evaluations(svc));

    RunOutput {
        report: ServeBenchReport {
            seed: params.seed,
            caching,
            requests: requests as u64,
            completed,
            shed,
            result_cache_hits,
            coalesced,
            wall_seconds,
            throughput_rps: if wall_seconds > 0.0 {
                completed as f64 / wall_seconds
            } else {
                0.0
            },
            p50_us: percentile(&latencies, 0.50) / 1_000,
            p95_us: percentile(&latencies, 0.95) / 1_000,
            p99_us: percentile(&latencies, 0.99) / 1_000,
            p50_ns: percentile(&latencies, 0.50),
            p95_ns: percentile(&latencies, 0.95),
            p99_ns: percentile(&latencies, 0.99),
            bdc_hit_rate,
            edc_hit_rate,
        },
        fingerprints: fingerprints
            .into_iter()
            .map(|f| f.expect("all answered"))
            .collect(),
    }
}

/// Number of evaluations the worker pool actually ran (distinct keys that
/// reached a worker): queued = completed - result-hits - coalesced.
fn evaluations(svc: &PredictService) -> u64 {
    svc.evaluations()
}

/// Canonical per-request answer: the serialized prediction. Byte-equal
/// fingerprints mean byte-equal predictions.
fn fingerprint(req: &PredictRequest, prediction: &feam_core::predict::Prediction) -> String {
    format!(
        "{}@{}:{}",
        req.binary_ref,
        req.target_site,
        serde_json::to_string(prediction).expect("prediction serializes")
    )
}

/// Run the benchmark: the full stream against a caching service, a prefix
/// of the same stream against its cache-disabled twin, and compare.
///
/// `build` constructs a service (with its registry populated) for the
/// given caching flag; both twins must be built identically otherwise.
pub fn run_serve_bench<F>(params: &BenchParams, build: F) -> ServeBenchComparison
where
    F: Fn(bool) -> PredictService,
{
    let mut cached_svc = build(true);
    cached_svc.start();
    let cached = run_one(params, &cached_svc, params.requests, true);
    drop(cached_svc);

    let mut uncached_svc = build(false);
    uncached_svc.start();
    let uncached_n = params.uncached_requests.min(params.requests);
    let uncached = run_one(params, &uncached_svc, uncached_n, false);
    drop(uncached_svc);

    let shared = uncached.fingerprints.len().min(cached.fingerprints.len());
    let equivalent = cached.fingerprints[..shared] == uncached.fingerprints[..shared];
    let speedup = if uncached.report.throughput_rps > 0.0 {
        cached.report.throughput_rps / uncached.report.throughput_rps
    } else {
        0.0
    };
    ServeBenchComparison {
        cached: cached.report,
        uncached: uncached.report,
        speedup,
        equivalent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_zipf_skewed() {
        let params = BenchParams::quick(11);
        let names: Vec<String> = (0..12).map(|i| format!("bin-{i:02}")).collect();
        let sites = vec!["ranger".to_string(), "india".to_string()];
        let a: Vec<String> = (0..200)
            .map(|i| stream_request(&params, &names, &sites, i).binary_ref)
            .collect();
        let b: Vec<String> = (0..200)
            .map(|i| stream_request(&params, &names, &sites, i).binary_ref)
            .collect();
        assert_eq!(a, b, "same seed, same stream");

        // Rank-1 must dominate any single tail binary by a wide margin.
        let count = |name: &str| a.iter().filter(|n| n.as_str() == name).count();
        assert!(count("bin-00") > 4 * count("bin-11"));
    }

    #[test]
    fn report_schema_is_pinned() {
        // `BENCH_serve.json` and the eval renderer both consume this
        // serialization; field set and order are part of the contract.
        // In particular the ns-resolution percentiles must be present —
        // they carry the cached tail that `_us` fields truncate to 0.
        let report = ServeBenchReport {
            seed: 42,
            caching: true,
            requests: 10,
            completed: 10,
            shed: 0,
            result_cache_hits: 7,
            coalesced: 1,
            wall_seconds: 0.5,
            throughput_rps: 20.0,
            p50_us: 0,
            p95_us: 3,
            p99_us: 12,
            p50_ns: 640,
            p95_ns: 3_100,
            p99_ns: 12_400,
            bdc_hit_rate: 0.9,
            edc_hit_rate: 0.8,
        };
        let json = serde_json::to_string(&report).unwrap();
        let expected_order = [
            "seed",
            "caching",
            "requests",
            "completed",
            "shed",
            "result_cache_hits",
            "coalesced",
            "wall_seconds",
            "throughput_rps",
            "p50_us",
            "p95_us",
            "p99_us",
            "p50_ns",
            "p95_ns",
            "p99_ns",
            "bdc_hit_rate",
            "edc_hit_rate",
        ];
        let mut at = 0;
        for key in expected_order {
            let needle = format!("\"{key}\":");
            let pos = json[at..]
                .find(&needle)
                .unwrap_or_else(|| panic!("field {key} missing or out of order in {json}"));
            at += pos + needle.len();
        }
        // Sub-microsecond latencies survive in the ns lane even when the
        // µs lane floors to zero.
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["p50_us"].as_u64(), Some(0));
        assert_eq!(v["p50_ns"].as_u64(), Some(640));
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let s: Vec<u64> = (1..=100).collect();
        // (len-1) * q rounds half away from zero: index 50, value 51.
        assert_eq!(percentile(&s, 0.50), 51);
        assert_eq!(percentile(&s, 0.95), 95);
        assert_eq!(percentile(&s, 0.99), 99);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }
}
