//! Contested-verdict annotation: run the checker ensemble over a
//! finished [`Placement`] and surface member disagreement.
//!
//! This is a strictly additive post-pass over the planner's output. The
//! FEAM member is the placement's *existing* prediction read through the
//! [`feam_agree::feam_member`] adapter — never a re-evaluation — so the
//! annotated plan's predictions stay byte-identical to the bare
//! planner's modulo the attached [`Dissent`] record and the re-ranking
//! it implies. Sites that errored (no prediction) are left untouched.

use crate::plan::{rank_cmp, Placement};
use crate::service::PredictService;
use feam_agree::{dissent_of, feam_member, Ensemble};

/// Annotate every non-errored site of `placement` with the checker
/// ensemble's dissent record:
///
/// * each site's members are the placement's own FEAM prediction plus
///   the symbol-diff and ldd-closure checkers run against that site's
///   library inventory (collected under the service's fault plan);
/// * `prediction.dissent` is filled in, which discounts
///   `prediction.confidence()` by the agreement factor;
/// * `contested` and `confidence` on the site placement are refreshed;
/// * sites are re-ranked with [`rank_cmp`] — at equal readiness a
///   contested verdict now sinks below an uncontested one;
/// * the `agree.contested` counter tallies contested verdicts.
///
/// Returns the number of contested sites. Unknown binaries (nothing
/// registered under `placement.binary_ref`) are a no-op: there is no
/// image to check.
pub fn annotate_with_ensemble(svc: &PredictService, placement: &mut Placement) -> usize {
    let Some(image) = svc.binary_image(&placement.binary_ref) else {
        return 0;
    };
    let mut ensemble = Ensemble::new(svc.fault_plan());
    let mut contested = 0usize;
    for sp in &mut placement.sites {
        if sp.error.is_some() {
            continue;
        }
        let Some(site) = svc.site(&sp.site) else {
            continue;
        };
        let Some(pred) = sp.prediction.as_mut() else {
            continue;
        };
        let mut members = vec![feam_member(pred)];
        members.extend(ensemble.static_members(site, &image));
        let dissent = dissent_of(&members);
        if dissent.contested() {
            contested += 1;
        }
        pred.dissent = Some(dissent);
        sp.contested = pred.contested();
        sp.confidence = pred.confidence();
    }
    placement.sites.sort_by(rank_cmp);
    svc.recorder().count("agree.contested", contested as u64);
    contested
}
