//! Registry generation edge cases: a binding updated while an evaluation
//! is in flight must never publish the stale result; an update after a
//! shed request must leave the service fully functional; and a
//! `ContentChanged` rejection racing a coalesced waiter must not disturb
//! the flight the waiter joined.
//!
//! All three tests submit against an *unstarted* service so the race
//! windows are deterministic: the job sits in the queue while the test
//! interleaves the registry operation, then `start()` releases the
//! workers.

use feam_core::predict::PredictionMode;
use feam_svc::registry::demo_binary;
use feam_svc::{
    Delivery, PredictRequest, PredictService, RegisteredBinary, ServiceConfig, SvcError,
};

fn test_service(queue_capacity: usize) -> (PredictService, std::sync::Arc<feam_obs::MemorySink>) {
    let (recorder, sink) = feam_obs::Recorder::memory();
    let cfg = ServiceConfig {
        workers: 1,
        queue_capacity,
        result_cache: true,
        caching: true,
        recorder,
        fault_plan: Some(std::sync::Arc::new(feam_sim::faults::FaultPlan::none())),
        ..ServiceConfig::default()
    };
    (PredictService::new(cfg), sink)
}

fn basic(binary_ref: &str, target_site: &str) -> PredictRequest {
    PredictRequest {
        binary_ref: binary_ref.to_string(),
        target_site: target_site.to_string(),
        mode: PredictionMode::Basic,
        deadline: None,
    }
}

#[test]
fn update_during_inflight_evaluation_drops_the_stale_result() {
    let (mut svc, _sink) = test_service(16);
    svc.register_binary("app", demo_binary(5)).unwrap();
    let site = svc.site_names()[0].clone();

    // Queue an evaluation for generation 0, then update the binding
    // before any worker exists: the flight is now stale by construction.
    let rx = match svc.submit(&basic("app", &site)).unwrap() {
        Delivery::Pending(rx) => rx,
        Delivery::Ready(_) => panic!("no worker has run; nothing can be cached yet"),
    };
    let generation = svc.update_binary("app", demo_binary(6));
    assert_eq!(generation, 1, "update bumps the generation");

    svc.start();
    let resp = rx
        .recv()
        .expect("the stale flight still answers its waiter")
        .expect("deadline-free request is never shed post-admission");
    assert!(!resp.from_result_cache);

    // The stale evaluation must not have been memoized: the next request
    // (same name, new bytes) evaluates fresh rather than hitting a cache
    // entry, and the one after that hits the cache filled by *it*.
    let evals_before = svc.evaluations();
    let first = svc.predict(&basic("app", &site)).unwrap();
    assert!(
        !first.from_result_cache,
        "updated binding must evaluate fresh, not reuse the stale flight's result"
    );
    assert_eq!(svc.evaluations(), evals_before + 1);
    let second = svc.predict(&basic("app", &site)).unwrap();
    assert!(second.from_result_cache, "the fresh result is cacheable");
    let snapshot = svc.recorder().snapshot();
    assert_eq!(
        snapshot.counters.get("svc.stale_result_dropped"),
        Some(&1),
        "the guard must have fired exactly once"
    );
}

#[test]
fn update_after_a_shed_request_leaves_the_service_functional() {
    let (mut svc, _sink) = test_service(1);
    svc.register_binary("a", demo_binary(5)).unwrap();
    svc.register_binary("b", demo_binary(6)).unwrap();
    let site = svc.site_names()[0].clone();

    // Fill the single queue slot, then shed a request for "b".
    let rx_a = match svc.submit(&basic("a", &site)).unwrap() {
        Delivery::Pending(rx) => rx,
        Delivery::Ready(_) => panic!("queue is empty and no worker has run"),
    };
    let shed = svc.submit(&basic("b", &site));
    assert!(
        matches!(shed, Err(SvcError::Overloaded { queue_depth: 1 })),
        "{shed:?}"
    );

    // The shed request left no in-flight entry behind: updating "b" and
    // evaluating it afterwards works normally.
    let generation = svc.update_binary("b", demo_binary(7));
    assert_eq!(generation, 1);
    svc.start();
    assert!(rx_a.recv().is_ok(), "queued request still completes");
    let first = svc.predict(&basic("b", &site)).unwrap();
    assert!(!first.from_result_cache);
    let second = svc.predict(&basic("b", &site)).unwrap();
    assert!(
        second.from_result_cache,
        "post-update evaluations are cacheable — the shed didn't wedge the flight table"
    );
    let snapshot = svc.recorder().snapshot();
    assert_eq!(snapshot.counters.get("queue.shed"), Some(&1));
    assert_eq!(
        snapshot.counters.get("svc.stale_result_dropped"),
        None,
        "the shed request never evaluated, so nothing stale was dropped"
    );
}

#[test]
fn content_changed_rejection_racing_a_coalesced_waiter() {
    let (mut svc, _sink) = test_service(16);
    let original = demo_binary(5);
    let original_image = original.image.clone();
    svc.register_binary("app", original).unwrap();
    let site = svc.site_names()[0].clone();

    // Two waiters coalesce onto one queued flight.
    let rx1 = match svc.submit(&basic("app", &site)).unwrap() {
        Delivery::Pending(rx) => rx,
        Delivery::Ready(_) => panic!("nothing cached yet"),
    };
    let rx2 = match svc.submit(&basic("app", &site)).unwrap() {
        Delivery::Pending(rx) => rx,
        Delivery::Ready(_) => panic!("second submit must coalesce, not hit a cache"),
    };

    // A racing re-registration with different bytes is rejected...
    let rejected = svc.register_binary("app", demo_binary(6));
    assert!(
        matches!(rejected, Err(SvcError::ContentChanged { ref name }) if name == "app"),
        "{rejected:?}"
    );
    // ...and the same bytes are an idempotent no-op.
    svc.register_binary("app", RegisteredBinary::new(original_image, "ranger"))
        .unwrap();
    assert_eq!(
        svc.binary_generation("app"),
        Some(0),
        "rejection must not bump"
    );

    svc.start();
    let r1 = rx1
        .recv()
        .expect("first waiter answered")
        .expect("answered");
    let r2 = rx2
        .recv()
        .expect("coalesced waiter answered")
        .expect("answered");
    assert_eq!(
        format!("{:?}", r1.prediction),
        format!("{:?}", r2.prediction),
        "both waiters see the same evaluation of the original bytes"
    );
    assert_eq!(svc.evaluations(), 1, "one flight served both waiters");
    let snapshot = svc.recorder().snapshot();
    assert_eq!(snapshot.counters.get("svc.coalesced"), Some(&1));
    // The undisturbed flight's result was cached for the original bytes.
    let third = svc.predict(&basic("app", &site)).unwrap();
    assert!(third.from_result_cache);
}
