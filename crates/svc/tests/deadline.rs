//! Deadline propagation on the single-node service: a request whose
//! deadline expires while it sits in the admission queue is shed at
//! dequeue with the distinct [`SvcError::DeadlineExceeded`] — never
//! silently evaluated — while coalesced waiters with live deadlines still
//! get their answer from the same flight.

use feam_core::predict::PredictionMode;
use feam_obs::Recorder;
use feam_sim::faults::FaultPlan;
use feam_svc::{Delivery, PredictRequest, PredictService, ServiceConfig, SvcError};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn test_service() -> (PredictService, Arc<feam_obs::MemorySink>) {
    let (recorder, sink) = Recorder::memory();
    let cfg = ServiceConfig {
        workers: 1,
        recorder,
        fault_plan: Some(Arc::new(FaultPlan::none())),
        ..ServiceConfig::default()
    };
    let svc = PredictService::new(cfg);
    svc.register_binary("app", feam_svc::registry::demo_binary(7))
        .expect("fresh name registers");
    (svc, sink)
}

fn req(deadline: Option<Instant>) -> PredictRequest {
    PredictRequest {
        binary_ref: "app".into(),
        target_site: "india".into(),
        mode: PredictionMode::Basic,
        deadline,
    }
}

/// An already-expired request queued against an unstarted service is shed
/// when a worker finally dequeues it: `Err(DeadlineExceeded)` on the
/// pending channel, zero evaluations, and the deadline counters fired.
#[test]
fn expired_request_is_shed_at_dequeue_not_evaluated() {
    let (mut svc, _sink) = test_service();
    let expired = Instant::now() - Duration::from_millis(1);
    let rx = match svc.submit(&req(Some(expired))).expect("admitted") {
        Delivery::Pending(rx) => rx,
        Delivery::Ready(_) => panic!("cold cache cannot answer immediately"),
    };
    svc.start();
    let err = rx
        .recv()
        .expect("shed requests still answer their waiter")
        .expect_err("expired request must not be evaluated");
    assert_eq!(err, SvcError::DeadlineExceeded);
    assert!(
        !err.retryable(),
        "an expired deadline is not cured by retrying as-is"
    );

    // The flight was dropped without running the phases.
    // Quiesce: a follow-up unbounded request proves the worker is alive
    // and orders the assertion after the shed was processed.
    let resp = svc.predict(&req(None)).expect("unbounded request answers");
    assert!(!resp.prediction.verdicts.is_empty());
    assert_eq!(
        svc.evaluations(),
        1,
        "only the follow-up evaluated; the expired flight never ran"
    );
    let counters = svc.recorder().snapshot().counters;
    assert_eq!(counters.get("svc.deadline.shed"), Some(&1));
    assert_eq!(counters.get("svc.deadline.flight_dropped"), Some(&1));
}

/// Coalesced waiters keep individual deadlines: on one flight, the
/// expired waiter is shed at dequeue while the live one is evaluated and
/// answered — one evaluation total.
#[test]
fn coalesced_waiters_shed_individually() {
    let (mut svc, _sink) = test_service();
    let expired = Instant::now() - Duration::from_millis(1);
    let rx_expired = match svc.submit(&req(Some(expired))).expect("admitted") {
        Delivery::Pending(rx) => rx,
        Delivery::Ready(_) => panic!("cold cache cannot answer immediately"),
    };
    let rx_live = match svc.submit(&req(None)).expect("coalesces") {
        Delivery::Pending(rx) => rx,
        Delivery::Ready(_) => panic!("must coalesce onto the queued flight"),
    };
    svc.start();
    let shed = rx_expired.recv().expect("answered");
    assert!(matches!(shed, Err(SvcError::DeadlineExceeded)), "{shed:?}");
    let resp = rx_live
        .recv()
        .expect("answered")
        .expect("live waiter gets the evaluation");
    assert!(!resp.prediction.verdicts.is_empty());
    assert_eq!(svc.evaluations(), 1, "one flight served the live waiter");
    let counters = svc.recorder().snapshot().counters;
    assert_eq!(counters.get("svc.deadline.shed"), Some(&1));
    assert_eq!(
        counters.get("svc.deadline.flight_dropped"),
        None,
        "a flight with a live waiter is not dropped"
    );
}

/// A result-cache hit answers instantly regardless of deadline — the work
/// is already done, so there is nothing to shed.
#[test]
fn cache_hits_answer_even_with_expired_deadlines() {
    if !feam_core::cache::caching_enabled_from_env() {
        return; // FEAM_CACHE=0 run: there are no cache hits to assert on
    }
    let (mut svc, _sink) = test_service();
    svc.start();
    let warm = svc.predict(&req(None)).expect("warms the result cache");
    assert!(!warm.from_result_cache);
    let expired = Instant::now() - Duration::from_millis(1);
    let hit = svc
        .predict(&req(Some(expired)))
        .expect("cache hit beats the deadline check");
    assert!(hit.from_result_cache);
    assert!(hit.cacheable);
}

/// The distinct error is distinguishable from every other rejection in
/// both variant and message.
#[test]
fn deadline_error_is_distinct() {
    let e = SvcError::DeadlineExceeded;
    assert_ne!(e, SvcError::ShuttingDown);
    assert!(e.to_string().contains("deadline"));
}
