//! Trace-context regression tests: every span and event recorded while a
//! service (or planner) request is in flight must carry that request's
//! trace id — including work done on worker-pool threads and requests
//! coalesced onto another request's evaluation.
//!
//! These pin the explicit-context model: before it, spans opened on pool
//! threads fell back to the thread-local parent stack of *that* thread
//! and came out parentless and untraced.

use feam_core::predict::PredictionMode;
use feam_obs::{Event, EventKind};
use feam_svc::plan::plan;
use feam_svc::{
    Delivery, PlanRequest, PredictRequest, PredictService, RegisteredBinary, ServiceConfig,
    SiteSelection,
};
use std::sync::Arc;

/// A service with `n` small MPI binaries and a memory-sink recorder;
/// faults pinned off so the event stream is deterministic under ambient
/// `FEAM_CHAOS_RATE`.
fn observed_service(n: usize) -> (PredictService, std::sync::Arc<feam_obs::MemorySink>) {
    use feam_sim::compile::{compile, ProgramSpec};
    use feam_sim::toolchain::Language;
    use feam_workloads::sites::{standard_sites, RANGER};

    let (recorder, sink) = feam_obs::Recorder::memory();
    let cfg = ServiceConfig {
        recorder,
        fault_plan: Some(Arc::new(feam_sim::faults::FaultPlan::none())),
        ..ServiceConfig::default()
    };
    let sites = standard_sites(cfg.sites_seed);
    let ranger = &sites[RANGER];
    let ist = ranger.stacks[1].clone();
    let svc = PredictService::new(cfg);
    let programs = ["cg", "mg", "ft", "lu"];
    for i in 0..n {
        let name = programs[i % programs.len()];
        let bin = compile(
            ranger,
            Some(&ist),
            &ProgramSpec::new(name, Language::Fortran),
            2000 + i as u64,
        )
        .expect("test binary compiles");
        svc.register_binary(
            &format!("{name}.{i}"),
            RegisteredBinary::new(bin.image, ranger.name()),
        )
        .expect("fresh name registers");
    }
    (svc, sink)
}

fn req(binary: &str, site: &str) -> PredictRequest {
    PredictRequest {
        binary_ref: binary.into(),
        target_site: site.into(),
        mode: PredictionMode::Basic,
        deadline: None,
    }
}

/// Root spans of the serving plane; everything else must have a parent.
fn is_root_name(name: &str) -> bool {
    name == "svc.request" || name == "plan.request"
}

fn span_starts(events: &[Event]) -> Vec<&Event> {
    events
        .iter()
        .filter(|e| e.kind == EventKind::SpanStart)
        .collect()
}

#[test]
fn every_event_in_a_request_carries_its_trace_and_a_parent() {
    let (mut svc, sink) = observed_service(2);
    svc.start();
    for r in [req("cg.0", "india"), req("mg.1", "forge")] {
        match svc.submit(&r).expect("valid request") {
            Delivery::Ready(_) => {}
            Delivery::Pending(rx) => {
                rx.recv().expect("worker answers").expect("answered");
            }
        }
    }
    // Repeat: a result-cache hit (no new spans, but also no orphans).
    match svc.submit(&req("cg.0", "india")).expect("valid request") {
        Delivery::Ready(_) => {}
        Delivery::Pending(rx) => {
            rx.recv().expect("worker answers").expect("answered");
        }
    }
    drop(svc);

    let events = sink.events();
    assert!(!events.is_empty());
    for e in &events {
        assert_ne!(
            e.trace, 0,
            "untraced {:?} record `{}` (span {})",
            e.kind, e.name, e.span
        );
    }
    let starts = span_starts(&events);
    assert!(starts.iter().any(|e| e.name == "svc.request"));
    assert!(starts.iter().any(|e| e.name == "svc.eval"));
    // Phases ran on pool threads; they must still be parented and traced.
    assert!(starts.iter().any(|e| e.name == "target_phase"));
    for e in &starts {
        if is_root_name(&e.name) {
            assert!(e.parent.is_none(), "{} grew a parent", e.name);
        } else {
            assert!(
                e.parent.is_some(),
                "parentless span `{}` (trace {}) — cross-thread context lost",
                e.name,
                e.trace
            );
        }
    }
    // Each svc.request trace covers its whole evaluation: the svc.eval
    // span belongs to the (leader) request's trace.
    let request_traces: Vec<u64> = starts
        .iter()
        .filter(|e| e.name == "svc.request")
        .map(|e| e.trace)
        .collect();
    for e in &starts {
        if e.name == "svc.eval" || e.name == "target_phase" {
            assert!(
                request_traces.contains(&e.trace),
                "{} ran under trace {} which is not a request trace",
                e.name,
                e.trace
            );
        }
    }
}

#[test]
fn coalesced_requests_keep_their_own_trace_and_link_to_the_leader() {
    let (mut svc, sink) = observed_service(1);
    // Submit twice before starting the workers: the second submission
    // deterministically coalesces onto the first one's flight.
    let r = req("cg.0", "india");
    let rx1 = match svc.submit(&r).expect("valid request") {
        Delivery::Pending(rx) => rx,
        Delivery::Ready(_) => panic!("nothing cached yet"),
    };
    let rx2 = match svc.submit(&r).expect("valid request") {
        Delivery::Pending(rx) => rx,
        Delivery::Ready(_) => panic!("must coalesce, not hit"),
    };
    svc.start();
    rx1.recv().expect("leader answered").expect("answered");
    rx2.recv().expect("waiter answered").expect("answered");
    drop(svc);

    let events = sink.events();
    let starts = span_starts(&events);
    let request_traces: Vec<u64> = starts
        .iter()
        .filter(|e| e.name == "svc.request")
        .map(|e| e.trace)
        .collect();
    assert_eq!(request_traces.len(), 2, "one span per waiter");
    assert_ne!(
        request_traces[0], request_traces[1],
        "coalesced waiter keeps its own trace"
    );
    // Both spans complete (span_end each) even though only one evaluated.
    let ends = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanEnd && e.name == "svc.request")
        .count();
    assert_eq!(ends, 2);

    let link = events
        .iter()
        .find(|e| e.kind == EventKind::Instant && e.name == "svc.coalesced_onto")
        .expect("coalescing emits the link event");
    let leader_trace = link
        .fields
        .iter()
        .find(|(k, _)| k == "leader_trace")
        .map(|(_, v)| match v {
            feam_obs::FieldValue::U64(u) => *u,
            other => panic!("leader_trace has unexpected type {other:?}"),
        })
        .expect("link names the leader trace");
    assert!(request_traces.contains(&leader_trace));
    assert_ne!(
        link.trace, leader_trace,
        "the link is recorded under the waiter's trace and points at the leader"
    );
    // The single evaluation ran under the leader's trace.
    let eval = starts
        .iter()
        .find(|e| e.name == "svc.eval")
        .expect("one eval");
    assert_eq!(eval.trace, leader_trace);
}

#[test]
fn plan_fans_out_under_one_trace() {
    let (mut svc, sink) = observed_service(1);
    svc.start();
    let placement = plan(
        &svc,
        &PlanRequest {
            binary_ref: "cg.0".into(),
            sites: SiteSelection::All,
            mode: PredictionMode::Basic,
            k: None,
            deadline: None,
        },
    )
    .expect("plan succeeds");
    assert!(placement.best().is_some());
    drop(svc);

    let events = sink.events();
    let starts = span_starts(&events);
    let root = starts
        .iter()
        .find(|e| e.name == "plan.request")
        .expect("plan root span");
    assert!(root.parent.is_none());
    assert_ne!(root.trace, 0, "root spans mint their own trace");
    let mut site_spans = 0;
    let mut request_spans = 0;
    for e in &starts {
        match e.name.as_str() {
            "plan.site" => {
                site_spans += 1;
                assert_eq!(e.trace, root.trace, "plan.site inherits the plan trace");
            }
            "svc.request" => {
                request_spans += 1;
                assert_eq!(
                    e.trace, root.trace,
                    "per-site service requests join the plan trace across the pool hop"
                );
            }
            _ => {}
        }
    }
    assert_eq!(site_spans, placement.candidates);
    assert_eq!(request_spans, placement.candidates);
    for e in &events {
        assert_ne!(e.trace, 0, "untraced record `{}` during a plan", e.name);
    }
}
