//! End-to-end SLO monitoring: the `feam obs check` harness run in-process.
//!
//! Fault plans are pinned explicitly (never inherited from the ambient
//! `FEAM_CHAOS_RATE`), so both halves are deterministic under the chaos
//! CI job: a clean run must come out all-Ok, and a chaos-injected run
//! must page the fault-rate objective with a tail exemplar naming an
//! injected fault.
//!
//! The fault-rate objective is the part worth pinning: ambient chaos is
//! transient-only and the phases retry through it, so degraded responses
//! stay near zero no matter the rate — the monitor has to catch the
//! injected faults themselves, not their (masked) effect on predictions.

use feam_obs::SloState;
use feam_sim::faults::FaultPlan;
use feam_svc::obsctl::{default_slos, run_observed, ObsRunParams};
use std::sync::Arc;

#[test]
fn clean_run_satisfies_every_default_slo() {
    let mut params = ObsRunParams::quick(11);
    params.fault_plan = Some(Arc::new(FaultPlan::none()));
    let outcome = run_observed(&params, &default_slos());
    assert_eq!(outcome.worst, SloState::Ok, "{:?}", outcome.evaluations);
    for e in &outcome.evaluations {
        assert_eq!(e.state, SloState::Ok, "{} burned: {}", e.name, e.detail);
    }
    // The serving plane still observed real traffic.
    let snap = &outcome.snapshot;
    assert!(
        snap.counters
            .get("svc.responses")
            .map(|c| c.total)
            .unwrap_or(0)
            >= params.requests as u64,
        "every request answered"
    );
    assert!(
        snap.histograms.contains_key("svc.latency_us"),
        "latency histogram populated"
    );
    assert!(
        snap.histograms.contains_key("svc.queue.wait_us"),
        "queue wait histogram populated"
    );
    assert!(!snap.exemplars.is_empty(), "tail exemplars captured");
    assert!(
        snap.exemplars.iter().all(|e| e.faults.is_empty()),
        "no faults were injected, none may be reported"
    );
}

#[test]
fn chaos_run_pages_the_fault_rate_slo_with_a_fault_naming_exemplar() {
    let mut params = ObsRunParams::quick(11);
    params.fault_plan = Some(Arc::new(FaultPlan::chaos(11, 0.2)));
    let outcome = run_observed(&params, &default_slos());
    assert_eq!(outcome.worst, SloState::Page);
    let fault_rate = outcome
        .evaluations
        .iter()
        .find(|e| e.name == "fault-rate")
        .expect("default set includes fault-rate");
    assert_eq!(
        fault_rate.state,
        SloState::Page,
        "injected faults must page: {}",
        fault_rate.detail
    );
    assert!(fault_rate.short_burn > 10.0 && fault_rate.long_burn > 10.0);
    // The snapshot carries the verdicts (what `feam obs check --json` and
    // the Prometheus exposition serve).
    assert_eq!(outcome.snapshot.slos, outcome.evaluations);
    // At least one tail exemplar names an injected fault chokepoint: the
    // span tree of a slow request leads straight to what was injected
    // into it.
    let with_fault = outcome
        .snapshot
        .exemplars
        .iter()
        .find(|e| !e.faults.is_empty())
        .expect("a tail exemplar names the injected fault");
    assert!(
        with_fault.spans.iter().any(|s| s == "svc.eval"),
        "exemplar carries the request's span tree: {:?}",
        with_fault.spans
    );
    let known = [
        "vfs_read",
        "description_file",
        "module_db",
        "probe_compile",
        "daemon_spawn",
        "queue_submit",
    ];
    assert!(
        with_fault
            .faults
            .iter()
            .all(|f| known.contains(&f.as_str())),
        "fault names are chokepoints: {:?}",
        with_fault.faults
    );
}
