//! Fleet behaviour under routing, failure and invalidation: replica sets
//! smaller than R, health-gated failover when the primary dies,
//! all-replicas-open degraded fallback, asynchronous result replication,
//! epoch catch-up for nodes that missed configuration ops, hedging, and
//! fleet-level deadline propagation.

use feam_core::cache::BdcKey;
use feam_core::predict::PredictionMode;
use feam_sim::faults::FaultPlan;
use feam_svc::{
    Fleet, FleetConfig, FleetError, HealthConfig, NodeState, PredictRequest, PredictService,
    ResultOrigin, ServiceConfig, SvcError,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A started fleet of `n` identically configured nodes (chaos pinned off,
/// caching on) with one registered binary "app", plus the fleet recorder.
fn test_fleet(n: usize, r: usize, hedge: Option<Duration>) -> (Fleet, feam_obs::Recorder) {
    let (recorder, _sink) = feam_obs::Recorder::memory();
    let cfg = FleetConfig {
        replication: r,
        hedge_after: hedge,
        recorder: recorder.clone(),
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::with_factory(cfg, n, |_| {
        let mut node_cfg = ServiceConfig {
            workers: 2,
            caching: true,
            fault_plan: Some(Arc::new(FaultPlan::none())),
            ..ServiceConfig::default()
        };
        node_cfg.result_cache = true;
        PredictService::new(node_cfg)
    });
    let demo = feam_svc::registry::demo_binary(7);
    fleet
        .register_binary("app", demo.image.clone(), &demo.home_site)
        .expect("fresh name registers fleet-wide");
    fleet.start();
    (fleet, recorder)
}

fn req(site: &str) -> PredictRequest {
    PredictRequest {
        binary_ref: "app".into(),
        target_site: site.into(),
        mode: PredictionMode::Basic,
        deadline: None,
    }
}

/// A fleet answer must be byte-identical to a single node's: sharding is
/// a capacity decision, never a semantic one.
#[test]
fn fleet_answer_matches_a_single_node() {
    let (fleet, _rec) = test_fleet(3, 2, None);
    let fleet_resp = fleet.predict(&req("india")).expect("fleet answers");

    let mut solo_cfg = ServiceConfig {
        workers: 2,
        caching: true,
        fault_plan: Some(Arc::new(FaultPlan::none())),
        ..ServiceConfig::default()
    };
    solo_cfg.result_cache = true;
    let mut solo = PredictService::new(solo_cfg);
    solo.register_binary("app", feam_svc::registry::demo_binary(7))
        .expect("registers");
    solo.start();
    let solo_resp = solo.predict(&req("india")).expect("solo answers");

    assert_eq!(
        serde_json::to_string(&fleet_resp.response.prediction).unwrap(),
        serde_json::to_string(&solo_resp.prediction).unwrap(),
        "fleet routing changed the prediction"
    );
    assert_eq!(fleet_resp.failovers, 0);
    assert!(!fleet_resp.degraded_route);
}

/// R larger than the fleet degrades to full replication: every node is in
/// every replica set, and requests still answer.
#[test]
fn replica_set_smaller_than_r_uses_every_node() {
    let (fleet, _rec) = test_fleet(2, 3, None);
    let replicas = fleet.replica_set("app", "india").expect("registered");
    assert_eq!(replicas.len(), 2, "R=3 over 2 nodes = both nodes");
    let resp = fleet.predict(&req("india")).expect("tiny fleet answers");
    assert!(!resp.response.prediction.verdicts.is_empty());
}

/// Killing the primary replica mid-stream fails the request over to the
/// next replica — same answer, `fleet.failover` counted.
#[test]
fn killed_primary_fails_over_to_the_next_replica() {
    let (fleet, rec) = test_fleet(4, 2, None);
    let before = fleet.predict(&req("india")).expect("warm answer");

    let replicas = fleet.replica_set("app", "india").expect("registered");
    fleet.kill_node(replicas[0]);

    let after = fleet.predict(&req("india")).expect("failover answers");
    assert_eq!(after.failovers, 1, "exactly the dead primary was skipped");
    assert!(!after.degraded_route, "the secondary is still in-set");
    assert_ne!(
        after.node,
        format!("node-{}", replicas[0]),
        "the dead node must not serve"
    );
    assert_eq!(
        serde_json::to_string(&after.response.prediction).unwrap(),
        serde_json::to_string(&before.response.prediction).unwrap(),
        "failover changed the answer"
    );
    assert_eq!(rec.snapshot().counters.get("fleet.failover"), Some(&1));
}

/// When every replica refuses, any up node serves — degraded locality
/// beats unavailability — and the fallback is counted.
#[test]
fn all_replicas_down_falls_back_to_any_up_node() {
    let (fleet, rec) = test_fleet(3, 2, None);
    let replicas = fleet.replica_set("app", "india").expect("registered");
    for &i in &replicas {
        fleet.kill_node(i);
    }
    let resp = fleet
        .predict(&req("india"))
        .expect("degraded fallback serves");
    assert!(
        resp.degraded_route,
        "answer came from outside the replica set"
    );
    assert_eq!(resp.failovers, 2, "both replicas were skipped");
    assert!(!replicas.iter().any(|&i| resp.node == format!("node-{i}")));
    let counters = rec.snapshot().counters;
    assert_eq!(counters.get("fleet.fallback.degraded"), Some(&1));

    // With every node dead the fleet finally refuses.
    for i in 0..fleet.len() {
        fleet.kill_node(i);
    }
    let err = fleet
        .predict(&req("india"))
        .expect_err("nothing left to serve");
    assert!(matches!(err, FleetError::Unavailable { .. }), "{err:?}");
}

/// A cacheable answer is replicated asynchronously to the rest of its
/// replica set: the peer answers from its result cache without ever
/// evaluating.
#[test]
fn results_replicate_to_replica_peers() {
    let (fleet, rec) = test_fleet(3, 2, None);
    let first = fleet.predict_replicated(&req("india")).expect("answers");
    assert!(first.response.cacheable, "clean chaos-free answer");
    assert!(!first.response.from_result_cache);

    // Wait for the replication thread to install on the peer.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let counters = rec.snapshot().counters;
        if counters
            .get("fleet.replication.applied")
            .copied()
            .unwrap_or(0)
            >= 1
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replication never landed: {counters:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let replicas = fleet.replica_set("app", "india").expect("registered");
    let winner = replicas
        .iter()
        .position(|&i| first.node == format!("node-{i}"))
        .expect("primary answer comes from the replica set");
    let peer = replicas[1 - winner];
    let svc = fleet.node_service(peer);
    assert_eq!(svc.evaluations(), 0, "the peer never evaluated");
    let hit = svc.predict(&req("india")).expect("peer answers");
    assert!(
        hit.from_result_cache,
        "the replicated result serves the peer's first request"
    );
    assert_eq!(
        serde_json::to_string(&hit.prediction).unwrap(),
        serde_json::to_string(&first.response.prediction).unwrap(),
        "replication changed the answer"
    );
}

/// Configuration ops missed while a node was down or partitioned replay —
/// in log order — before the node serves again, so a rejoined node can
/// never answer from stale configuration.
#[test]
fn rejoining_nodes_catch_up_missed_epochs_before_serving() {
    let (fleet, _rec) = test_fleet(3, 2, None);
    assert_eq!(fleet.epoch(), 1, "the registration is op #1");
    for i in 0..3 {
        assert_eq!(fleet.node_applied_epoch(i), 1);
    }

    fleet.partition_node(2);
    let epoch = fleet.reconfigure_site("india").expect("known site");
    assert_eq!(epoch, 2);
    assert_eq!(
        fleet.node_applied_epoch(2),
        1,
        "the partitioned node missed the reconfigure"
    );

    fleet.kill_node(1);
    let demo2 = feam_svc::registry::demo_binary(8);
    let epoch = fleet.update_binary("app", demo2.image.clone(), &demo2.home_site);
    assert_eq!(epoch, 3);
    assert_eq!(fleet.node_applied_epoch(0), 3, "reachable node applied");
    assert_eq!(
        fleet.node_applied_epoch(1),
        2,
        "killed node missed the update"
    );

    fleet.heal_node(2);
    assert_eq!(fleet.node_applied_epoch(2), 3, "heal replays ops 2..3");
    fleet.revive_node(1);
    assert_eq!(fleet.node_applied_epoch(1), 3, "revive replays op 3");

    // Every node now answers for the *new* bytes: same generation
    // everywhere, so all three services agree.
    let baseline = fleet
        .node_service(0)
        .predict(&req("india"))
        .expect("answers");
    for i in 1..3 {
        let resp = fleet
            .node_service(i)
            .predict(&req("india"))
            .expect("answers");
        assert_eq!(
            serde_json::to_string(&resp.prediction).unwrap(),
            serde_json::to_string(&baseline.prediction).unwrap(),
            "node {i} diverged after catch-up"
        );
    }
}

/// A zero hedge window fires a hedge for every cold request; the answer
/// is still correct and the hedge counters move.
#[test]
fn hedging_fires_for_slow_primaries() {
    let (fleet, rec) = test_fleet(2, 2, Some(Duration::from_millis(0)));
    let resp = fleet
        .predict(&req("india"))
        .expect("hedged request answers");
    assert!(!resp.response.prediction.verdicts.is_empty());
    let counters = rec.snapshot().counters;
    assert_eq!(
        counters.get("fleet.hedge.fired"),
        Some(&1),
        "cold evaluation is slower than a zero hedge window"
    );
}

/// Request-scoped failures (expired deadlines, unknown sites) admitted
/// as HalfOpen probes must hand their probe slot back: with the default
/// single-probe budget, a leaked slot would wedge the node HalfOpen
/// forever — no probe could ever be admitted again, so no outcome could
/// ever close or re-trip the breaker.
#[test]
fn request_scoped_failures_do_not_wedge_a_halfopen_breaker() {
    let (recorder, _sink) = feam_obs::Recorder::memory();
    let cfg = FleetConfig {
        replication: 2,
        hedge_after: None,
        // Zero cooldown: a tripped breaker is immediately HalfOpen.
        health: HealthConfig {
            open_cooldown_ms: 0,
            ..HealthConfig::default()
        },
        recorder: recorder.clone(),
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::with_factory(cfg, 3, |_| {
        let mut node_cfg = ServiceConfig {
            workers: 2,
            caching: true,
            fault_plan: Some(Arc::new(FaultPlan::none())),
            ..ServiceConfig::default()
        };
        node_cfg.result_cache = true;
        PredictService::new(node_cfg)
    });
    let demo = feam_svc::registry::demo_binary(7);
    fleet
        .register_binary("app", demo.image.clone(), &demo.home_site)
        .expect("registers");
    fleet.start();

    let replicas = fleet.replica_set("app", "india").expect("registered");
    let primary = replicas[0];
    fleet.trip_breaker(primary);
    assert_eq!(fleet.node_state(primary), NodeState::HalfOpen);

    // Probe 1: an expired deadline is shed — the request's failure.
    let expired = PredictRequest {
        deadline: Some(Instant::now() - Duration::from_millis(1)),
        ..req("india")
    };
    let err = fleet.predict(&expired).expect_err("expired request sheds");
    assert!(
        matches!(err, FleetError::Svc(SvcError::DeadlineExceeded)),
        "{err:?}"
    );
    assert_eq!(
        fleet.node_state(primary),
        NodeState::HalfOpen,
        "no outcome was recorded against the probing node"
    );

    // Probe 2: an unknown site is rejected before evaluation — also not
    // the node's fault.
    let err = fleet
        .predict(&req("atlantis"))
        .expect_err("unknown site is rejected");
    assert!(
        matches!(err, FleetError::Svc(SvcError::UnknownSite(_))),
        "{err:?}"
    );

    // Probe 3: both slots came back, so a clean request is still
    // admitted at the primary and its success closes the breaker.
    let ok = fleet
        .predict(&req("india"))
        .expect("clean probe is admitted");
    assert_eq!(
        ok.node,
        format!("node-{primary}"),
        "the primary took the probe instead of being failed over"
    );
    assert_eq!(ok.failovers, 0);
    assert_eq!(
        fleet.node_state(primary),
        NodeState::Closed,
        "the probe's success closed the breaker"
    );
}

/// The replication installer verifies the payload's origin coordinates
/// (content key, EDC epoch) against the target's current state and keys
/// the entry by those coordinates — an answer computed against old bytes
/// or a stale environment is refused, never installed under a new key.
#[test]
fn replication_install_verifies_origin_coordinates() {
    let solo = || {
        let mut cfg = ServiceConfig {
            workers: 2,
            caching: true,
            fault_plan: Some(Arc::new(FaultPlan::none())),
            ..ServiceConfig::default()
        };
        cfg.result_cache = true;
        let mut svc = PredictService::new(cfg);
        svc.register_binary("app", feam_svc::registry::demo_binary(7))
            .expect("registers");
        svc.start();
        svc
    };
    let origin = solo();
    let peer = solo();
    let resp = origin.predict(&req("india")).expect("origin evaluates");
    assert!(resp.cacheable);

    let coords = peer.result_origin("app", "india").expect("registered");

    // A payload computed for different bytes (the binding moved since
    // the origin evaluated) is refused.
    let moved_binding = ResultOrigin {
        content: BdcKey {
            hash: coords.content.hash ^ 1,
            ..coords.content
        },
        ..coords
    };
    assert!(!peer.install_result(
        "app",
        "india",
        PredictionMode::Basic,
        moved_binding,
        &resp.prediction,
        &resp.evaluation,
    ));
    // A payload computed under a stale site configuration is refused.
    let stale_site = ResultOrigin {
        edc_epoch: coords.edc_epoch + 1,
        ..coords
    };
    assert!(!peer.install_result(
        "app",
        "india",
        PredictionMode::Basic,
        stale_site,
        &resp.prediction,
        &resp.evaluation,
    ));
    assert_eq!(peer.result_cache_len(), 0, "refused payloads never land");

    // Matching coordinates install, and the peer serves from its result
    // cache without ever evaluating.
    assert!(peer.install_result(
        "app",
        "india",
        PredictionMode::Basic,
        coords,
        &resp.prediction,
        &resp.evaluation,
    ));
    let hit = peer.predict(&req("india")).expect("peer answers");
    assert!(hit.from_result_cache);
    assert_eq!(peer.evaluations(), 0, "the peer never evaluated");
}

/// An expired deadline is the request's failure, not the node's: the
/// fleet surfaces the distinct error and does not count it against node
/// health or trip failover.
#[test]
fn expired_deadlines_shed_without_blaming_the_node() {
    let (fleet, rec) = test_fleet(3, 2, None);
    let expired = PredictRequest {
        deadline: Some(Instant::now() - Duration::from_millis(1)),
        ..req("india")
    };
    let err = fleet.predict(&expired).expect_err("expired request sheds");
    assert!(
        matches!(err, FleetError::Svc(SvcError::DeadlineExceeded)),
        "{err:?}"
    );
    let counters = rec.snapshot().counters;
    assert_eq!(counters.get("fleet.failover"), None, "no failover fired");
    assert_eq!(
        counters.get("fleet.unavailable"),
        None,
        "a shed is not unavailability"
    );
    // The node that shed stays Closed: it did its job.
    for i in 0..fleet.len() {
        assert_eq!(fleet.node_state(i), feam_svc::NodeState::Closed);
    }
}
