//! Concurrency stress: many threads hammering a hot-key Zipf stream must
//! never cause a duplicate evaluation of the same `(binary, site, epoch,
//! mode)` key, and a saturated admission queue must always answer — either
//! `Pending`, a coalesced flight, or `Overloaded` — without deadlocking.

use feam_core::predict::PredictionMode;
use feam_sim::faults::FaultPlan;
use feam_svc::{
    Delivery, PredictRequest, PredictService, RegisteredBinary, ServiceConfig, SvcError,
};
use std::sync::Arc;

/// A service over the standard sites with `n` small MPI binaries
/// registered (compiled at Ranger), faults pinned off so every evaluation
/// is clean and memoizable.
fn stress_service(cfg: ServiceConfig, n: usize) -> PredictService {
    use feam_sim::compile::{compile, ProgramSpec};
    use feam_sim::toolchain::Language;
    use feam_workloads::sites::{standard_sites, RANGER};

    let sites = standard_sites(cfg.sites_seed);
    let ranger = &sites[RANGER];
    let ist = ranger.stacks[1].clone();
    let svc = PredictService::new(cfg);
    let programs = ["cg", "mg", "ft", "lu", "bt", "sp", "ep", "is"];
    for i in 0..n {
        let name = programs[i % programs.len()];
        let bin = compile(
            ranger,
            Some(&ist),
            &ProgramSpec::new(name, Language::Fortran),
            3000 + i as u64,
        )
        .expect("test binary compiles");
        svc.register_binary(
            &format!("{name}.{i}"),
            RegisteredBinary::new(bin.image, ranger.name()),
        )
        .expect("fresh name registers");
    }
    svc
}

fn pinned_cfg() -> ServiceConfig {
    ServiceConfig {
        caching: true,
        result_cache: true,
        fault_plan: Some(Arc::new(FaultPlan::none())),
        workers: 4,
        queue_capacity: 1024,
        ..ServiceConfig::default()
    }
}

/// SplitMix64 — deterministic per-thread streams.
struct Gen(u64);

impl Gen {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Zipf-flavored index in `[0, n)`: cubing the uniform variate piles
    /// most of the mass onto the low (hot) indices.
    fn zipfish(&mut self, n: usize) -> usize {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        ((u * u * u) * n as f64) as usize % n
    }
}

#[test]
fn hot_key_stream_never_double_evaluates() {
    let mut svc = stress_service(pinned_cfg(), 6);
    svc.start();
    let binaries = svc.binary_names();
    let sites = svc.site_names();

    // The request universe: every (binary, site, mode) triple, indexed so
    // the Zipf pick concentrates threads on the same hot keys — the
    // worst case for single-flight.
    let mut universe = Vec::new();
    for b in &binaries {
        for s in &sites {
            for mode in [PredictionMode::Basic, PredictionMode::Extended] {
                universe.push(PredictRequest {
                    binary_ref: b.clone(),
                    target_site: s.clone(),
                    mode,
                    deadline: None,
                });
            }
        }
    }

    let mut touched = std::collections::HashSet::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let universe = &universe;
            let svc = &svc;
            handles.push(scope.spawn(move || {
                let mut g = Gen(0xC0FF_EE00 + t);
                let mut seen = Vec::new();
                for _ in 0..150 {
                    let idx = g.zipfish(universe.len());
                    let resp = svc.predict(&universe[idx]).expect("stream request");
                    assert!(!resp.prediction.verdicts.is_empty());
                    seen.push(idx);
                }
                seen
            }));
        }
        for h in handles {
            touched.extend(h.join().expect("stream thread"));
        }
    });

    // With faults off, epochs constant and the result cache on, every key
    // is evaluated exactly once no matter how many threads raced on it.
    assert_eq!(
        svc.evaluations(),
        touched.len() as u64,
        "one evaluation per distinct (binary, site, epoch, mode) key"
    );
}

#[test]
fn full_queue_sheds_overloaded_and_drains_without_deadlock() {
    let cfg = ServiceConfig {
        queue_capacity: 4,
        ..pinned_cfg()
    };
    // Unstarted service: submissions queue up deterministically.
    let mut svc = stress_service(cfg, 8);
    let sites = svc.site_names();

    // 8 binaries × 2 sites = 16 distinct keys against a 4-deep queue.
    let mut pending = Vec::new();
    let mut shed = Vec::new();
    for (i, b) in svc.binary_names().iter().enumerate() {
        for site in &sites[..2] {
            let req = PredictRequest {
                binary_ref: b.clone(),
                target_site: site.clone(),
                mode: if i % 2 == 0 {
                    PredictionMode::Basic
                } else {
                    PredictionMode::Extended
                },
                deadline: None,
            };
            match svc.submit(&req) {
                Ok(Delivery::Pending(rx)) => pending.push(rx),
                Ok(Delivery::Ready(_)) => panic!("nothing is cached yet"),
                Err(SvcError::Overloaded { queue_depth }) => {
                    assert_eq!(queue_depth, 4, "shed exactly at capacity");
                    shed.push(req);
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }
    assert_eq!(pending.len(), 4, "queue admits exactly its capacity");
    assert_eq!(shed.len(), 12, "everything past capacity sheds");
    assert_eq!(svc.queue_depth(), 4);

    // A duplicate of a queued key coalesces even though the queue is
    // full — coalescing must win over shedding.
    let queued_again = PredictRequest {
        binary_ref: svc.binary_names()[0].clone(),
        target_site: sites[0].clone(),
        mode: PredictionMode::Basic,
        deadline: None,
    };
    match svc.submit(&queued_again) {
        Ok(Delivery::Pending(rx)) => pending.push(rx),
        other => panic!("duplicate key must coalesce, got {other:?}"),
    }
    assert_eq!(svc.queue_depth(), 4, "coalesced request added no job");

    // Start the pool and drain: every admitted waiter gets an answer.
    svc.start();
    for rx in pending {
        let resp = rx
            .recv()
            .expect("queued request completes")
            .expect("deadline-free request is never shed post-admission");
        assert!(!resp.prediction.verdicts.is_empty());
    }

    // Shed requests retry fine once the queue has drained.
    for req in shed {
        let resp = svc.predict(&req).expect("retry after shed");
        assert!(!resp.prediction.verdicts.is_empty());
    }
}

#[test]
fn concurrent_shedding_never_deadlocks() {
    let cfg = ServiceConfig {
        queue_capacity: 2,
        workers: 2,
        ..pinned_cfg()
    };
    let mut svc = stress_service(cfg, 8);
    svc.start();
    let sites = svc.site_names();

    // Saturate a 2-deep queue from 8 threads; Overloaded is the expected
    // steady state, and every request must eventually land via retries.
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, b) in svc.binary_names().into_iter().enumerate() {
            let site = sites[i % sites.len()].clone();
            let svc = &svc;
            handles.push(scope.spawn(move || {
                let req = PredictRequest {
                    binary_ref: b,
                    target_site: site,
                    mode: PredictionMode::Basic,
                    deadline: None,
                };
                let mut sheds = 0u32;
                loop {
                    match svc.predict(&req) {
                        Ok(resp) => {
                            assert!(!resp.prediction.verdicts.is_empty());
                            return sheds;
                        }
                        Err(SvcError::Overloaded { .. }) => {
                            sheds += 1;
                            assert!(sheds < 100_000, "livelock: shed forever");
                            std::thread::yield_now();
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("saturating thread");
        }
    });

    // All eight distinct keys were evaluated exactly once despite the
    // shed/retry churn.
    assert_eq!(svc.evaluations(), 8);
}
