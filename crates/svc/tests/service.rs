//! End-to-end tests of the prediction service: coalescing, shedding,
//! cache behavior, epoch/TTL invalidation, and the guarantee that caching
//! never changes a prediction.

use feam_core::predict::PredictionMode;
use feam_svc::{
    Delivery, PredictRequest, PredictService, RegisteredBinary, ServiceConfig, SvcError,
};
use std::sync::Arc;

/// A service over the standard sites with `n` small MPI binaries
/// registered (compiled at Ranger under its Open MPI + GNU stack).
fn small_service(cfg: ServiceConfig, n: usize) -> PredictService {
    use feam_sim::compile::{compile, ProgramSpec};
    use feam_sim::toolchain::Language;
    use feam_workloads::sites::{standard_sites, RANGER};

    let sites = standard_sites(cfg.sites_seed);
    let ranger = &sites[RANGER];
    let ist = ranger.stacks[1].clone();
    let svc = PredictService::new(cfg);
    let programs = ["cg", "mg", "ft", "lu", "bt", "sp", "ep", "is"];
    for i in 0..n {
        let name = programs[i % programs.len()];
        let bin = compile(
            ranger,
            Some(&ist),
            &ProgramSpec::new(name, Language::Fortran),
            1000 + i as u64,
        )
        .expect("test binary compiles");
        svc.register_binary(
            &format!("{name}.{i}"),
            RegisteredBinary::new(bin.image, ranger.name()),
        )
        .expect("fresh name registers");
    }
    svc
}

fn req(binary: &str, site: &str, mode: PredictionMode) -> PredictRequest {
    PredictRequest {
        binary_ref: binary.into(),
        target_site: site.into(),
        mode,
        deadline: None,
    }
}

#[test]
fn predicts_and_memoizes_repeat_requests() {
    let (recorder, _sink) = feam_obs::Recorder::memory();
    let cfg = ServiceConfig {
        caching: true,
        recorder,
        ..ServiceConfig::default()
    };
    let mut svc = small_service(cfg, 1);
    svc.start();
    let r = req("cg.0", "india", PredictionMode::Basic);

    let first = svc.predict(&r).unwrap();
    assert!(!first.from_result_cache);
    assert!(!first.prediction.verdicts.is_empty());

    let second = svc.predict(&r).unwrap();
    assert!(
        second.from_result_cache,
        "repeat answered from result cache"
    );
    assert_eq!(
        serde_json::to_string(&first.prediction).unwrap(),
        serde_json::to_string(&second.prediction).unwrap(),
        "memoized answer is byte-identical"
    );
    assert_eq!(svc.evaluations(), 1, "one phase run served both requests");
}

#[test]
fn unknown_names_fail_fast_and_are_not_retryable() {
    let mut svc = small_service(ServiceConfig::default(), 1);
    svc.start();
    let e = svc
        .predict(&req("nope", "india", PredictionMode::Basic))
        .unwrap_err();
    assert_eq!(e, SvcError::UnknownBinary("nope".into()));
    assert!(!e.retryable());
    let e = svc
        .predict(&req("cg.0", "atlantis", PredictionMode::Basic))
        .unwrap_err();
    assert_eq!(e, SvcError::UnknownSite("atlantis".into()));
    assert!(!e.retryable());
}

#[test]
fn same_key_coalesces_onto_one_flight() {
    // Unstarted service: submissions queue but nothing drains, so the
    // coalescing decision is deterministic.
    let (recorder, _sink) = feam_obs::Recorder::memory();
    let cfg = ServiceConfig {
        recorder: recorder.clone(),
        ..ServiceConfig::default()
    };
    let mut svc = small_service(cfg, 1);
    let r = req("cg.0", "india", PredictionMode::Basic);

    let d1 = svc.submit(&r).unwrap();
    let d2 = svc.submit(&r).unwrap();
    let d3 = svc.submit(&r).unwrap();
    assert_eq!(svc.queue_depth(), 1, "three submissions, one queued job");
    assert_eq!(recorder.snapshot().counters["svc.coalesced"], 2);

    // Different key (other site): its own flight.
    let d4 = svc
        .submit(&req("cg.0", "fir", PredictionMode::Basic))
        .unwrap();
    assert_eq!(svc.queue_depth(), 2);

    svc.start();
    for d in [d1, d2, d3, d4] {
        match d {
            Delivery::Pending(rx) => {
                let resp = rx.recv().unwrap().unwrap();
                assert!(!resp.prediction.verdicts.is_empty());
            }
            Delivery::Ready(_) => panic!("cold cache cannot answer immediately"),
        }
    }
    assert_eq!(svc.evaluations(), 2, "one evaluation per distinct key");
}

#[test]
fn full_queue_sheds_with_retryable_error() {
    let (recorder, _sink) = feam_obs::Recorder::memory();
    let cfg = ServiceConfig {
        queue_capacity: 3,
        recorder: recorder.clone(),
        ..ServiceConfig::default()
    };
    // Unstarted: the queue only fills.
    let svc = small_service(cfg, 4);
    for i in 0..3 {
        let d = svc
            .submit(&req(
                ["cg.0", "mg.1", "ft.2"][i],
                "india",
                PredictionMode::Basic,
            ))
            .unwrap();
        assert!(matches!(d, Delivery::Pending(_)));
    }
    let e = svc
        .submit(&req("lu.3", "india", PredictionMode::Basic))
        .unwrap_err();
    assert!(matches!(e, SvcError::Overloaded { queue_depth: 3 }));
    assert!(e.retryable(), "shedding must invite a retry");
    assert_eq!(recorder.snapshot().counters["queue.shed"], 1);

    // Coalescing still works at capacity: same key as a queued job does
    // not need a queue slot.
    let d = svc
        .submit(&req("cg.0", "india", PredictionMode::Basic))
        .unwrap();
    assert!(matches!(d, Delivery::Pending(_)));
}

#[test]
fn description_cache_counters_flow_through_recorder() {
    let (recorder, _sink) = feam_obs::Recorder::memory();
    let cfg = ServiceConfig {
        caching: true,
        recorder: recorder.clone(),
        ..ServiceConfig::default()
    };
    let mut svc = small_service(cfg, 2);
    svc.start();
    // Two binaries, same site: second request re-describes nothing about
    // the environment and misses only its own binary hash.
    svc.predict(&req("cg.0", "india", PredictionMode::Basic))
        .unwrap();
    svc.predict(&req("mg.1", "india", PredictionMode::Basic))
        .unwrap();
    // Different site for a known binary: EDC miss, BDC hit.
    svc.predict(&req("cg.0", "fir", PredictionMode::Basic))
        .unwrap();

    let counters = recorder.snapshot().counters;
    assert_eq!(counters["cache.bdc.miss"], 2, "one miss per distinct image");
    assert!(
        counters["cache.bdc.hit"] >= 1,
        "cg.0 at fir reuses its description"
    );
    assert_eq!(
        counters["cache.edc.miss"], 2,
        "india and fir each described once"
    );
    assert!(counters["cache.edc.hit"] >= 1);
    let caches = svc.caches().unwrap();
    assert_eq!(caches.bdc.stats().misses, 2);
    assert_eq!(caches.edc.stats().misses, 2);
}

#[test]
fn reconfigure_site_invalidates_cached_descriptions_and_results() {
    let mut svc = small_service(
        ServiceConfig {
            caching: true,
            ..ServiceConfig::default()
        },
        1,
    );
    svc.start();
    let r = req("cg.0", "india", PredictionMode::Basic);
    svc.predict(&r).unwrap();
    assert!(svc.predict(&r).unwrap().from_result_cache);
    assert_eq!(svc.result_cache_len(), 1);

    let epoch = svc.reconfigure_site("india").unwrap();
    assert_eq!(epoch, 1);
    assert_eq!(svc.result_cache_len(), 0, "stale results dropped eagerly");
    let after = svc.predict(&r).unwrap();
    assert!(
        !after.from_result_cache,
        "post-reconfiguration request re-evaluates"
    );
    assert_eq!(svc.evaluations(), 2);
    // Unrelated sites keep their entries.
    svc.predict(&req("cg.0", "fir", PredictionMode::Basic))
        .unwrap();
    svc.reconfigure_site("india").unwrap();
    assert_eq!(
        svc.result_cache_len(),
        1,
        "fir's entry survives india's bump"
    );

    assert_eq!(
        svc.reconfigure_site("atlantis"),
        Err(SvcError::UnknownSite("atlantis".into()))
    );
}

#[test]
fn edc_ttl_expires_entries_after_enough_requests() {
    let mut svc = small_service(
        ServiceConfig {
            caching: true,
            edc_ttl: 3,
            ..ServiceConfig::default()
        },
        1,
    );
    svc.start();
    let r = req("cg.0", "india", PredictionMode::Basic);
    svc.predict(&r).unwrap();
    let caches = Arc::clone(svc.caches().unwrap());
    assert!(caches.edc.contains("india"));
    // Each submitted request advances the logical clock by one tick; after
    // ttl+1 further requests the entry has aged out.
    for _ in 0..4 {
        svc.predict(&r).unwrap();
    }
    assert!(
        !caches.edc.contains("india"),
        "entry older than the TTL must expire"
    );
}

#[test]
fn extended_mode_runs_source_phase_once_and_upgrades_prediction() {
    let mut svc = small_service(
        ServiceConfig {
            caching: true,
            ..ServiceConfig::default()
        },
        1,
    );
    svc.start();
    let r = req("cg.0", "india", PredictionMode::Extended);
    let a = svc.predict(&r).unwrap();
    assert_eq!(a.prediction.mode, PredictionMode::Extended);
    let b = svc
        .predict(&req("cg.0", "fir", PredictionMode::Extended))
        .unwrap();
    assert_eq!(b.prediction.mode, PredictionMode::Extended);
    // Basic and extended answers for the same (binary, site) are distinct
    // result-cache keys.
    let c = svc
        .predict(&req("cg.0", "india", PredictionMode::Basic))
        .unwrap();
    assert_eq!(c.prediction.mode, PredictionMode::Basic);
    assert!(!c.from_result_cache);
}

#[test]
fn caching_never_changes_predictions() {
    let build = |caching: bool| {
        small_service(
            ServiceConfig {
                caching,
                ..ServiceConfig::default()
            },
            3,
        )
    };
    let mut cached = build(true);
    let mut uncached = build(false);
    cached.start();
    uncached.start();
    assert!(cached.caches().is_some());
    assert!(uncached.caches().is_none());

    for site in ["ranger", "india", "fir"] {
        for binary in ["cg.0", "mg.1", "ft.2"] {
            for mode in [PredictionMode::Basic, PredictionMode::Extended] {
                // Issue twice against the cached twin so the second answer
                // really comes from the result cache.
                let r = req(binary, site, mode);
                cached.predict(&r).unwrap();
                let hot = cached.predict(&r).unwrap();
                let cold = uncached.predict(&r).unwrap();
                assert!(!cold.from_result_cache);
                assert_eq!(
                    serde_json::to_string(&hot.prediction).unwrap(),
                    serde_json::to_string(&cold.prediction).unwrap(),
                    "{binary}@{site}: cached and uncached predictions must be byte-identical"
                );
            }
        }
    }
}

#[test]
fn concurrent_clients_get_consistent_answers() {
    let mut svc = small_service(
        ServiceConfig {
            workers: 4,
            caching: true,
            ..ServiceConfig::default()
        },
        4,
    );
    svc.start();
    let svc = Arc::new(svc);
    let sites = ["ranger", "forge", "blacklight", "india", "fir"];
    let mut joins = Vec::new();
    for t in 0..8 {
        let svc = Arc::clone(&svc);
        joins.push(std::thread::spawn(move || {
            let mut out = Vec::new();
            for i in 0..10 {
                let r = req(
                    ["cg.0", "mg.1", "ft.2", "lu.3"][(t + i) % 4],
                    sites[(t * 3 + i) % sites.len()],
                    PredictionMode::Basic,
                );
                let resp = svc.predict(&r).unwrap();
                out.push((
                    r.binary_ref,
                    r.target_site,
                    serde_json::to_string(&resp.prediction).unwrap(),
                ));
            }
            out
        }));
    }
    let mut by_key = std::collections::HashMap::new();
    for j in joins {
        for (bin, site, fp) in j.join().unwrap() {
            let prev = by_key.insert((bin.clone(), site.clone()), fp.clone());
            if let Some(prev) = prev {
                assert_eq!(prev, fp, "{bin}@{site}: all clients see one answer");
            }
        }
    }
}
