//! Integration tests of the placement planner: parallel/sequential rank
//! identity, planner-side pair coalescing, partial placements, and
//! top-k truncation.

use feam_core::predict::PredictionMode;
use feam_svc::plan::{plan, plan_batch, plan_sequential};
use feam_svc::{
    PlanRequest, PredictService, RegisteredBinary, ServiceConfig, SiteSelection, SvcError,
};
use std::sync::Arc;

/// A started service over the standard sites with `n` deterministic
/// binaries, chaos pinned off so rankings are exactly reproducible.
fn planning_service(n: usize, recorder: feam_obs::Recorder) -> PredictService {
    use feam_sim::compile::{compile, ProgramSpec};
    use feam_sim::toolchain::Language;
    use feam_workloads::sites::{standard_sites, RANGER};

    let cfg = ServiceConfig {
        caching: true,
        recorder,
        fault_plan: Some(Arc::new(feam_sim::faults::FaultPlan::none())),
        ..ServiceConfig::default()
    };
    let sites = standard_sites(cfg.sites_seed);
    let ranger = &sites[RANGER];
    let ist = ranger.stacks[1].clone();
    let mut svc = PredictService::new(cfg);
    let programs = ["cg", "mg", "ft", "lu"];
    for i in 0..n {
        let name = programs[i % programs.len()];
        let bin = compile(
            ranger,
            Some(&ist),
            &ProgramSpec::new(name, Language::Fortran),
            2000 + i as u64,
        )
        .expect("test binary compiles");
        svc.register_binary(
            &format!("{name}.{i}"),
            RegisteredBinary::new(bin.image, ranger.name()),
        )
        .expect("fresh name registers");
    }
    svc.start();
    svc
}

#[test]
fn parallel_plan_matches_the_sequential_oracle() {
    let (recorder, _sink) = feam_obs::Recorder::memory();
    let svc = planning_service(1, recorder);
    let req = PlanRequest::all_sites("cg.0");

    let parallel = plan(&svc, &req).unwrap();
    assert_eq!(parallel.candidates, svc.site_names().len());
    assert!(parallel.error_sites == 0, "all standard sites evaluate");
    assert!(parallel.best().is_some());

    // A cache-disabled sequential twin must produce the identical ranking.
    let twin = {
        let (rec2, _s2) = feam_obs::Recorder::memory();
        let mut cfg = ServiceConfig {
            caching: false,
            workers: 1,
            recorder: rec2,
            fault_plan: Some(Arc::new(feam_sim::faults::FaultPlan::none())),
            ..ServiceConfig::default()
        };
        cfg.result_cache = false;
        let sites = feam_workloads::sites::standard_sites(cfg.sites_seed);
        let ranger = &sites[feam_workloads::sites::RANGER];
        let ist = ranger.stacks[1].clone();
        let bin = feam_sim::compile::compile(
            ranger,
            Some(&ist),
            &feam_sim::compile::ProgramSpec::new("cg", feam_sim::toolchain::Language::Fortran),
            2000,
        )
        .unwrap();
        let mut svc = PredictService::new(cfg);
        svc.register_binary("cg.0", RegisteredBinary::new(bin.image, ranger.name()))
            .unwrap();
        svc.start();
        svc
    };
    let oracle = plan_sequential(&twin, &req).unwrap();
    assert_eq!(
        parallel.fingerprint(),
        oracle.fingerprint(),
        "parallel all-sites ranking must be byte-identical to the sequential oracle"
    );

    // And a repeat parallel run (warm caches) is rank-stable.
    let again = plan(&svc, &req).unwrap();
    assert_eq!(parallel.fingerprint(), again.fingerprint());
}

#[test]
fn batch_coalesces_duplicate_pairs() {
    let (recorder, _sink) = feam_obs::Recorder::memory();
    let svc = planning_service(2, recorder.clone());
    let reqs = vec![
        PlanRequest::all_sites("cg.0"),
        PlanRequest::all_sites("cg.0"), // duplicate of every pair above
        PlanRequest::all_sites("mg.1"),
    ];
    let placements = plan_batch(&svc, &reqs);
    assert!(placements.iter().all(|p| p.is_ok()));
    let n_sites = svc.site_names().len() as u64;

    let counters = recorder.snapshot().counters;
    assert_eq!(counters["plan.pairs.evaluated"], 2 * n_sites);
    assert_eq!(counters["plan.pairs.coalesced"], n_sites);
    // Duplicate requests share outcomes, so their rankings agree exactly.
    let a = placements[0].as_ref().unwrap().fingerprint();
    let b = placements[1].as_ref().unwrap().fingerprint();
    assert_eq!(a, b);
    // The worker pool never evaluated a pair twice.
    assert!(svc.evaluations() <= 2 * n_sites);
}

#[test]
fn unknown_binary_fails_only_its_own_request() {
    let (recorder, _sink) = feam_obs::Recorder::memory();
    let svc = planning_service(1, recorder);
    let reqs = vec![
        PlanRequest::all_sites("cg.0"),
        PlanRequest::all_sites("missing"),
    ];
    let placements = plan_batch(&svc, &reqs);
    assert!(placements[0].is_ok());
    assert_eq!(
        placements[1].as_ref().unwrap_err(),
        &SvcError::UnknownBinary("missing".into())
    );
}

#[test]
fn unknown_candidate_sites_become_errored_entries_not_failures() {
    let (recorder, _sink) = feam_obs::Recorder::memory();
    let svc = planning_service(1, recorder);
    let mut names = svc.site_names();
    names.push("atlantis".to_string());
    let req = PlanRequest {
        binary_ref: "cg.0".into(),
        sites: SiteSelection::Sites(names.clone()),
        mode: PredictionMode::Basic,
        k: None,
        deadline: None,
    };
    let p = plan(&svc, &req).unwrap();
    assert_eq!(p.candidates, names.len());
    assert_eq!(
        p.error_sites, 1,
        "the unknown site errors, the plan survives"
    );
    let last = p.sites.last().unwrap();
    assert_eq!(last.site, "atlantis");
    assert!(last.error.is_some(), "errored sites rank last");
}

#[test]
fn top_k_truncates_after_ranking() {
    let (recorder, _sink) = feam_obs::Recorder::memory();
    let svc = planning_service(1, recorder);
    let full = plan(&svc, &PlanRequest::all_sites("cg.0")).unwrap();
    let req = PlanRequest {
        k: Some(2),
        ..PlanRequest::all_sites("cg.0")
    };
    let top2 = plan(&svc, &req).unwrap();
    assert_eq!(top2.sites.len(), 2);
    assert_eq!(
        top2.candidates, full.candidates,
        "counts cover all candidates"
    );
    assert_eq!(top2.sites[0].site, full.sites[0].site);
    assert_eq!(top2.sites[1].site, full.sites[1].site);
}
