//! MPI implementations, stacks, and their link-level identities.
//!
//! §III.B: "MPI is only an interface specification … implementations of the
//! standard have produced various libraries (Open MPI, MPICH, MVAPICH) that
//! are not interchangeable because the MPI specification is not a
//! link-level specification." This module encodes exactly those link-level
//! differences — Table I's identification signatures fall out of the
//! `DT_NEEDED` sets this module produces.

use crate::rng;
use crate::toolchain::{Compiler, Language, LibraryBlueprint};
use feam_elf::{ExportSpec, ImportSpec};
use serde::{Deserialize, Serialize};

/// The three dominant open-source MPI implementations of the paper's era.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MpiImpl {
    OpenMpi,
    Mpich2,
    Mvapich2,
}

impl MpiImpl {
    /// Display name as the paper writes it.
    pub fn name(self) -> &'static str {
        match self {
            MpiImpl::OpenMpi => "Open MPI",
            MpiImpl::Mpich2 => "MPICH2",
            MpiImpl::Mvapich2 => "MVAPICH2",
        }
    }

    /// Lower-case tag used in prefixes and module names.
    pub fn tag(self) -> &'static str {
        match self {
            MpiImpl::OpenMpi => "openmpi",
            MpiImpl::Mpich2 => "mpich2",
            MpiImpl::Mvapich2 => "mvapich2",
        }
    }

    /// The always-imported runtime marker symbol that makes binaries of
    /// different MPI types non-interchangeable at link level.
    pub fn rt_marker(self) -> &'static str {
        match self {
            MpiImpl::OpenMpi => "ompi_rt_ident",
            MpiImpl::Mpich2 => "mpich2_rt_ident",
            MpiImpl::Mvapich2 => "mvapich2_rt_ident",
        }
    }

    /// Per-version ABI marker (`ompi_abi_v1_4` …). A library of version V
    /// exports markers for every version ≤ V of the same implementation;
    /// a binary built against V imports the V marker *sometimes* (seeded),
    /// reproducing the paper's "compiled with Open MPI 1.4 executes on 1.3
    /// in some instances but not others".
    pub fn abi_marker(self, version: &str) -> String {
        // ABI granularity differs per implementation, matching the era's
        // observed behaviour: Open MPI's 1.x line stayed link-compatible
        // across 1.3/1.4 (the paper's 1.4-on-1.3 binaries ran "in some
        // instances"), so its marker is major-grained; the MPICH lineage
        // broke between minors (MVAPICH2 1.2 → 1.7, MPICH2 1.3 → 1.4), so
        // those markers are major.minor-grained.
        let grain = match self {
            MpiImpl::OpenMpi => version
                .split('.')
                .next()
                .unwrap_or(version)
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>(),
            MpiImpl::Mpich2 | MpiImpl::Mvapich2 => major_minor(version),
        };
        let stem = match self {
            MpiImpl::OpenMpi => "ompi",
            MpiImpl::Mpich2 => "mpich2",
            MpiImpl::Mvapich2 => "mvapich2",
        };
        format!("{stem}_abi_v{}", grain.replace('.', "_"))
    }

    /// All versions of this implementation that appear on the testbed, in
    /// ascending order (used to emit backward-compatible marker sets).
    pub fn known_versions(self) -> &'static [&'static str] {
        match self {
            MpiImpl::OpenMpi => &["1.3", "1.4", "1.4.3"],
            MpiImpl::Mpich2 => &["1.3", "1.4"],
            MpiImpl::Mvapich2 => &["1.2", "1.7a", "1.7a2", "1.7rc1"],
        }
    }
}

/// Interconnect type of a stack (§I: "the combination of the MPI
/// implementation, associated compilers, and interconnection network").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Network {
    Ethernet,
    Infiniband,
}

impl Network {
    pub fn name(self) -> &'static str {
        match self {
            Network::Ethernet => "Ethernet",
            Network::Infiniband => "InfiniBand",
        }
    }
}

/// A full MPI stack: implementation + version + compiler + network.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MpiStack {
    pub mpi: MpiImpl,
    pub version: String,
    pub compiler: Compiler,
    pub network: Network,
}

impl MpiStack {
    pub fn new(mpi: MpiImpl, version: &str, compiler: Compiler, network: Network) -> Self {
        MpiStack {
            mpi,
            version: version.to_string(),
            compiler,
            network,
        }
    }

    /// Identifier like `openmpi-1.4.3-intel-11.1`, used as install-prefix
    /// leaf and module name.
    pub fn ident(&self) -> String {
        format!(
            "{}-{}-{}",
            self.mpi.tag(),
            self.version,
            self.compiler.ident()
        )
    }

    /// Install prefix on a site, e.g. `/opt/openmpi-1.4.3-intel-11.1`.
    pub fn prefix(&self) -> String {
        format!("/opt/{}", self.ident())
    }

    /// The MPI C library soname for this implementation/version.
    pub fn c_lib_soname(&self) -> String {
        match self.mpi {
            MpiImpl::OpenMpi => "libmpi.so.0".to_string(),
            // MPICH2 and MVAPICH2 share the libmpich soname lineage — the
            // root of Table I's need for secondary identifiers.
            MpiImpl::Mpich2 | MpiImpl::Mvapich2 => "libmpich.so.1.2".to_string(),
        }
    }

    /// The Fortran MPI library soname.
    pub fn fortran_lib_soname(&self) -> String {
        match self.mpi {
            MpiImpl::OpenMpi => "libmpi_f77.so.0".to_string(),
            MpiImpl::Mpich2 | MpiImpl::Mvapich2 => "libmpichf90.so.1.2".to_string(),
        }
    }

    /// Extra sonames an application is linked against because of this
    /// stack (beyond the MPI libraries themselves). These are Table I's
    /// identification signatures.
    pub fn companion_needed(&self) -> Vec<String> {
        match self.mpi {
            MpiImpl::OpenMpi => {
                // mpicc adds -lnsl -lutil on the paper's systems.
                vec![
                    "libopen-rte.so.0".into(),
                    "libopen-pal.so.0".into(),
                    "libnsl.so.1".into(),
                    "libutil.so.1".into(),
                ]
            }
            MpiImpl::Mvapich2 => vec![
                "libibverbs.so.1".into(),
                "libibumad.so.3".into(),
                "librdmacm.so.1".into(),
            ],
            MpiImpl::Mpich2 => vec!["libmpl.so.1".into(), "libopa.so.1".into()],
        }
    }

    /// `DT_NEEDED` contribution of this stack for a given language.
    pub fn needed_for(&self, language: Language) -> Vec<String> {
        let mut out = vec![self.c_lib_soname()];
        if language.needs_fortran_rt() {
            out.insert(0, self.fortran_lib_soname());
        }
        out.extend(self.companion_needed());
        out
    }

    /// ABI markers this stack's libraries export: one per known
    /// major.minor of the implementation up to and including this stack's
    /// version (newer libraries remain link-compatible with older
    /// binaries; the reverse does not hold).
    pub fn exported_abi_markers(&self) -> Vec<String> {
        let my_rank = version_rank(&self.version);
        let mut out: Vec<String> = self
            .mpi
            .known_versions()
            .iter()
            .filter(|v| version_rank(&major_minor(v)) <= my_rank || version_rank(v) <= my_rank)
            .map(|v| self.mpi.abi_marker(v))
            .collect();
        out.dedup();
        out
    }

    /// Blueprints for the MPI libraries this stack installs under
    /// `<prefix>/lib`. `glibc_import` records the build-site glibc level.
    pub fn library_blueprints(&self, glibc_import: &str, seed: u64) -> Vec<LibraryBlueprint> {
        let markers: Vec<ExportSpec> = std::iter::once(self.mpi.rt_marker().to_string())
            .chain(self.exported_abi_markers())
            .map(|m| ExportSpec::new(&m, None))
            .collect();
        let mpi_exports: Vec<ExportSpec> = [
            "MPI_Init",
            "MPI_Finalize",
            "MPI_Comm_rank",
            "MPI_Comm_size",
            "MPI_Send",
            "MPI_Recv",
            "MPI_Bcast",
            "MPI_Reduce",
            "MPI_Allreduce",
            "MPI_Barrier",
            "MPI_Wtime",
            "MPI_Isend",
            "MPI_Irecv",
            "MPI_Waitall",
            "MPI_Alltoall",
        ]
        .iter()
        .map(|s| ExportSpec::new(s, None))
        .collect();
        let fortran_exports: Vec<ExportSpec> = [
            "mpi_init_",
            "mpi_finalize_",
            "mpi_comm_rank_",
            "mpi_send_",
            "mpi_recv_",
        ]
        .iter()
        .map(|s| ExportSpec::new(s, None))
        .collect();
        let glibc_imp = |sym: &str| ImportSpec::versioned(sym, "libc.so.6", glibc_import);
        let sized = |base: usize, tag: &str| {
            let h = rng::hash_parts(seed, &[&self.ident(), tag]);
            base + (rng::unit_f64(h) * base as f64 * 0.5) as usize - base / 4
        };

        let mut out = Vec::new();
        let c_soname = self.c_lib_soname();
        let mut c_lib = LibraryBlueprint::new(
            &c_soname,
            &format!("{c_soname}.{}", version_rank(&self.version) % 10),
            sized(9_200_000, "clib"),
        );
        c_lib.exports = mpi_exports;
        c_lib.exports.extend(markers.iter().cloned());
        c_lib.needed = match self.mpi {
            MpiImpl::OpenMpi => vec![
                "libopen-rte.so.0".into(),
                "libnsl.so.1".into(),
                "libutil.so.1".into(),
                "libm.so.6".into(),
                "libc.so.6".into(),
            ],
            MpiImpl::Mvapich2 => vec![
                "libibverbs.so.1".into(),
                "libibumad.so.3".into(),
                "librdmacm.so.1".into(),
                "libm.so.6".into(),
                "libpthread.so.0".into(),
                "libc.so.6".into(),
            ],
            MpiImpl::Mpich2 => vec![
                "libmpl.so.1".into(),
                "libopa.so.1".into(),
                "libm.so.6".into(),
                "libpthread.so.0".into(),
                "libc.so.6".into(),
            ],
        };
        c_lib.imports = vec![glibc_imp("memcpy"), glibc_imp("malloc")];
        c_lib.comments = vec![self.compiler.comment_string("build")];
        out.push(c_lib);

        let f_soname = self.fortran_lib_soname();
        let mut f_lib = LibraryBlueprint::new(
            &f_soname,
            &format!("{f_soname}.0"),
            sized(1_300_000, "flib"),
        );
        f_lib.exports = fortran_exports;
        f_lib.exports.extend(markers.iter().cloned());
        f_lib.needed = vec![c_soname.clone(), "libc.so.6".into()];
        f_lib.imports = vec![glibc_imp("memcpy")];
        out.push(f_lib);

        match self.mpi {
            MpiImpl::OpenMpi => {
                for (soname, base, tag) in [
                    ("libopen-rte.so.0", 2_000_000usize, "rte"),
                    ("libopen-pal.so.0", 1_500_000, "pal"),
                ] {
                    let mut b =
                        LibraryBlueprint::new(soname, &format!("{soname}.0.0"), sized(base, tag));
                    b.exports = vec![ExportSpec::new(&format!("{tag}_init"), None)];
                    b.exports.extend(markers.iter().cloned());
                    b.needed = if soname == "libopen-rte.so.0" {
                        vec![
                            "libopen-pal.so.0".into(),
                            "libnsl.so.1".into(),
                            "libutil.so.1".into(),
                            "libc.so.6".into(),
                        ]
                    } else {
                        vec!["libutil.so.1".into(), "libc.so.6".into()]
                    };
                    b.imports = vec![glibc_imp("memcpy")];
                    out.push(b);
                }
            }
            MpiImpl::Mpich2 => {
                for (soname, base, tag) in [
                    ("libmpl.so.1", 260_000usize, "mpl"),
                    ("libopa.so.1", 200_000, "opa"),
                ] {
                    let mut b =
                        LibraryBlueprint::new(soname, &format!("{soname}.0"), sized(base, tag));
                    b.exports = vec![ExportSpec::new(&format!("{tag}_trmem"), None)];
                    b.needed = vec!["libc.so.6".into()];
                    b.imports = vec![glibc_imp("memcpy")];
                    out.push(b);
                }
            }
            MpiImpl::Mvapich2 => {} // IB userspace libs are system-level, not per-stack
        }
        out
    }

    /// Wrapper executable names installed in `<prefix>/bin`.
    pub fn wrapper_names(&self) -> Vec<&'static str> {
        vec!["mpicc", "mpicxx", "mpif77", "mpif90", "mpiexec", "mpirun"]
    }
}

/// The `major.minor` part of a version string (`1.4.3` → `1.4`,
/// `1.7rc1` → `1.7`).
pub fn major_minor(v: &str) -> String {
    let parts: Vec<String> = v
        .split('.')
        .take(2)
        .map(|c| c.chars().take_while(|ch| ch.is_ascii_digit()).collect())
        .collect();
    parts.join(".")
}

/// Rank a dotted (possibly suffixed: `1.7a2`, `1.7rc1`) version string for
/// ordering within one implementation.
pub fn version_rank(v: &str) -> u64 {
    let mut rank: u64 = 0;
    let mut parts = 0;
    for comp in v.split('.').take(3) {
        let digits: String = comp.chars().take_while(|c| c.is_ascii_digit()).collect();
        let n: u64 = digits.parse().unwrap_or(0);
        rank = rank * 1000 + n;
        parts += 1;
    }
    for _ in parts..3 {
        rank *= 1000;
    }
    // Pre-release suffixes (a, a2, rc1) rank below the plain release but
    // above the previous patch level; a trailing number orders within a
    // suffix class (a < a2, rc1 < rc2).
    let suffix: String = v.chars().filter(|c| c.is_ascii_alphabetic()).collect();
    let suffix_class: u64 = match suffix.as_str() {
        "" => 90,
        "rc" => 50,
        "a" => 10,
        _ => 20,
    };
    let suffix_num: u64 = v
        .rsplit(|c: char| !c.is_ascii_digit())
        .next()
        .and_then(|s| {
            if suffix.is_empty() {
                None
            } else {
                s.parse().ok()
            }
        })
        .unwrap_or(0);
    rank * 1000 + suffix_class + suffix_num
}

/// InfiniBand userspace libraries (system-level, present at IB sites).
pub fn infiniband_blueprints(glibc_import: &str) -> Vec<LibraryBlueprint> {
    let glibc_imp = |sym: &str| ImportSpec::versioned(sym, "libc.so.6", glibc_import);
    [
        (
            "libibverbs.so.1",
            "libibverbs.so.1.0.0",
            68_000usize,
            "ibv_open_device",
        ),
        ("libibumad.so.3", "libibumad.so.3.0.2", 31_000, "umad_init"),
        (
            "librdmacm.so.1",
            "librdmacm.so.1.0.0",
            54_000,
            "rdma_create_id",
        ),
    ]
    .into_iter()
    .map(|(soname, file, size, sym)| {
        let mut b = LibraryBlueprint::new(soname, file, size);
        b.exports = vec![ExportSpec::new(sym, None)];
        b.needed = vec![
            "libdl.so.2".into(),
            "libpthread.so.0".into(),
            "libc.so.6".into(),
        ];
        b.imports = vec![glibc_imp("malloc")];
        b
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toolchain::CompilerFamily;

    fn stack(mpi: MpiImpl, v: &str) -> MpiStack {
        MpiStack::new(
            mpi,
            v,
            Compiler::new(CompilerFamily::Gnu, "4.1.2"),
            Network::Infiniband,
        )
    }

    #[test]
    fn version_rank_orders_correctly() {
        assert!(version_rank("1.3") < version_rank("1.4"));
        assert!(version_rank("1.4") < version_rank("1.4.3"));
        assert!(version_rank("1.2") < version_rank("1.7a"));
        assert!(version_rank("1.7a") < version_rank("1.7a2"));
        assert!(version_rank("1.7a2") < version_rank("1.7rc1"));
        assert!(version_rank("1.7rc1") < version_rank("1.7"));
    }

    #[test]
    fn table_one_signatures() {
        // Table I: MVAPICH2 → libmpich + libibverbs + libibumad.
        let mv = stack(MpiImpl::Mvapich2, "1.7a").needed_for(Language::Fortran);
        assert!(mv.iter().any(|n| n.starts_with("libmpich")));
        assert!(mv.iter().any(|n| n.starts_with("libibverbs")));
        assert!(mv.iter().any(|n| n.starts_with("libibumad")));
        // Open MPI → libnsl + libutil, no libmpich.
        let om = stack(MpiImpl::OpenMpi, "1.4").needed_for(Language::C);
        assert!(om.iter().any(|n| n.starts_with("libnsl")));
        assert!(om.iter().any(|n| n.starts_with("libutil")));
        assert!(!om.iter().any(|n| n.starts_with("libmpich")));
        // MPICH2 → libmpich without the IB identifiers.
        let mp = stack(MpiImpl::Mpich2, "1.4").needed_for(Language::C);
        assert!(mp.iter().any(|n| n.starts_with("libmpich")));
        assert!(!mp.iter().any(|n| n.starts_with("libibverbs")));
    }

    #[test]
    fn newer_stack_exports_older_abi_markers() {
        // Open MPI markers are major-grained: 1.3 and 1.4 share one.
        let s14 = stack(MpiImpl::OpenMpi, "1.4");
        let s13 = stack(MpiImpl::OpenMpi, "1.3");
        assert_eq!(s14.exported_abi_markers(), vec!["ompi_abi_v1".to_string()]);
        assert_eq!(s13.exported_abi_markers(), s14.exported_abi_markers());
        // The MPICH lineage is minor-grained: 1.4 exports 1.3's marker but
        // not vice versa.
        let m14 = stack(MpiImpl::Mpich2, "1.4");
        let m13 = stack(MpiImpl::Mpich2, "1.3");
        assert!(m14
            .exported_abi_markers()
            .contains(&"mpich2_abi_v1_3".to_string()));
        assert!(m14
            .exported_abi_markers()
            .contains(&"mpich2_abi_v1_4".to_string()));
        assert!(!m13
            .exported_abi_markers()
            .contains(&"mpich2_abi_v1_4".to_string()));
    }

    #[test]
    fn fortran_adds_fortran_mpi_lib() {
        let s = stack(MpiImpl::OpenMpi, "1.4");
        let f = s.needed_for(Language::Fortran);
        let c = s.needed_for(Language::C);
        assert!(f.contains(&"libmpi_f77.so.0".to_string()));
        assert!(!c.contains(&"libmpi_f77.so.0".to_string()));
    }

    #[test]
    fn blueprints_include_rt_marker_and_backcompat() {
        let s = stack(MpiImpl::Mvapich2, "1.7a2");
        let bps = s.library_blueprints("GLIBC_2.5", 3);
        let c_lib = bps
            .iter()
            .find(|b| b.soname.starts_with("libmpich"))
            .unwrap();
        assert!(c_lib
            .exports
            .iter()
            .any(|e| e.symbol == "mvapich2_rt_ident"));
        assert!(c_lib
            .exports
            .iter()
            .any(|e| e.symbol == "mvapich2_abi_v1_2"));
        // Markers are major.minor grained: every 1.7 flavour shares one.
        assert!(c_lib
            .exports
            .iter()
            .any(|e| e.symbol == "mvapich2_abi_v1_7"));
        // A 1.2-era stack does not export the 1.7 marker.
        let old = stack(MpiImpl::Mvapich2, "1.2");
        let old_bps = old.library_blueprints("GLIBC_2.5", 3);
        let old_c = old_bps
            .iter()
            .find(|b| b.soname.starts_with("libmpich"))
            .unwrap();
        assert!(!old_c
            .exports
            .iter()
            .any(|e| e.symbol == "mvapich2_abi_v1_7"));
    }

    #[test]
    fn mpich2_and_mvapich2_share_soname_but_not_markers() {
        let mv = stack(MpiImpl::Mvapich2, "1.7a").c_lib_soname();
        let mp = stack(MpiImpl::Mpich2, "1.4").c_lib_soname();
        assert_eq!(mv, mp, "the soname collision that motivates Table I");
        assert_ne!(MpiImpl::Mvapich2.rt_marker(), MpiImpl::Mpich2.rt_marker());
    }

    #[test]
    fn stack_ident_and_prefix() {
        let s = MpiStack::new(
            MpiImpl::OpenMpi,
            "1.4.3",
            Compiler::new(CompilerFamily::Intel, "11.1"),
            Network::Infiniband,
        );
        assert_eq!(s.ident(), "openmpi-1.4.3-intel-11.1");
        assert_eq!(s.prefix(), "/opt/openmpi-1.4.3-intel-11.1");
    }
}
