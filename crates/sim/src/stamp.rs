//! Code-section provenance physics.
//!
//! Real compilers leave recognizable byte idioms in the code they emit —
//! prologue shapes, runtime-call thunks, padding habits — and the
//! signature-matching literature (arXiv:1302.1591) recovers compiler
//! family and version from them even when `.comment` is stripped. The
//! simulator's equivalent is a deterministic *stamp* written at the head
//! of every `.text` the toolchain model emits:
//!
//! ```text
//!  0 .. 8   family idiom  — shared by every version of the family
//!  8 .. 16  version bytes — distinct per (family, version)
//! 16 .. 24  MPI runtime bytes (only when the program links an MPI stack)
//! ```
//!
//! Each lane is an FNV-1a digest of a labelled identity string, so stamps
//! are a pure function of the build environment: identical toolchains
//! produce identical idioms everywhere, different toolchains collide with
//! negligible probability. `feam-provenance` enumerates the shared
//! vocabulary through this same function to build its signature database;
//! a matcher hit therefore means "the bytes a build like this would have
//! produced", never string comparison smuggled through a side channel.

use crate::mpi::MpiImpl;
use crate::rng;
use crate::toolchain::{Compiler, CompilerFamily};

/// Stamp length without an MPI lane.
pub const COMPILER_STAMP_LEN: usize = 16;
/// Stamp length with the MPI runtime lane appended.
pub const FULL_STAMP_LEN: usize = 24;

/// The 8 idiom bytes every binary built by `family` carries.
pub fn family_idiom(family: CompilerFamily) -> [u8; 8] {
    rng::fnv1a(format!("code-idiom:{}", family.tag()).as_bytes()).to_le_bytes()
}

/// The 8 version-discriminating bytes of `compiler`.
pub fn version_bytes(compiler: &Compiler) -> [u8; 8] {
    rng::fnv1a(format!("code-ver:{}:{}", compiler.family.tag(), compiler.version).as_bytes())
        .to_le_bytes()
}

/// The 8 bytes the MPI runtime's init thunk leaves in `.text`. Survives
/// static linking — the external-function identity EFACT-style matching
/// recovers (arXiv:2405.09132).
pub fn mpi_runtime_bytes(mpi: MpiImpl) -> [u8; 8] {
    rng::fnv1a(format!("code-mpirt:{}", mpi.rt_marker()).as_bytes()).to_le_bytes()
}

/// The full stamp `compile` writes at the head of `.text`.
pub fn text_stamp(compiler: &Compiler, mpi: Option<MpiImpl>) -> Vec<u8> {
    let mut out = Vec::with_capacity(FULL_STAMP_LEN);
    out.extend_from_slice(&family_idiom(compiler.family));
    out.extend_from_slice(&version_bytes(compiler));
    if let Some(m) = mpi {
        out.extend_from_slice(&mpi_runtime_bytes(m));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_are_deterministic_and_distinct() {
        let a = text_stamp(&Compiler::new(CompilerFamily::Gnu, "4.1.2"), None);
        let b = text_stamp(&Compiler::new(CompilerFamily::Gnu, "4.1.2"), None);
        assert_eq!(a, b);
        assert_eq!(a.len(), COMPILER_STAMP_LEN);
        let c = text_stamp(&Compiler::new(CompilerFamily::Gnu, "4.4.5"), None);
        let d = text_stamp(&Compiler::new(CompilerFamily::Intel, "4.1.2"), None);
        assert_ne!(a, c);
        assert_ne!(a, d);
        // Same family ⇒ same idiom lane, different version lane.
        assert_eq!(a[..8], c[..8]);
        assert_ne!(a[8..16], c[8..16]);
        assert_ne!(a[..8], d[..8]);
    }

    #[test]
    fn mpi_lane_appends_and_discriminates() {
        let gnu = Compiler::new(CompilerFamily::Gnu, "4.1.2");
        let open = text_stamp(&gnu, Some(MpiImpl::OpenMpi));
        let mpich = text_stamp(&gnu, Some(MpiImpl::Mpich2));
        assert_eq!(open.len(), FULL_STAMP_LEN);
        assert_eq!(open[..16], mpich[..16]);
        assert_ne!(open[16..], mpich[16..]);
    }
}
