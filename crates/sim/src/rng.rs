//! Deterministic hashing / splittable randomness.
//!
//! Every stochastic decision in the simulator (which GLIBC symbols a
//! compile happens to use, which (binary, site) pairs suffer transient
//! system errors) is derived from a stable 64-bit hash of its inputs plus a
//! global experiment seed, so the whole evaluation is reproducible from a
//! single `u64`.

/// SplitMix64 step — the standard 64-bit finalizer-based generator.
pub fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
}

/// One SplitMix64 output for a given state value.
pub fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stable FNV-1a hash of a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Deterministic hash of several labelled parts combined with a seed.
pub fn hash_parts(seed: u64, parts: &[&str]) -> u64 {
    let mut h = mix(seed);
    for p in parts {
        h = mix(h ^ fnv1a(p.as_bytes()));
    }
    h
}

/// Map a hash to a uniform `f64` in `[0, 1)`.
pub fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic Bernoulli draw: true with probability `p`.
pub fn chance(seed: u64, parts: &[&str], p: f64) -> bool {
    unit_f64(hash_parts(seed, parts)) < p
}

/// Deterministic choice of one element of `items` (must be non-empty).
pub fn pick<'a, T>(seed: u64, parts: &[&str], items: &'a [T]) -> &'a T {
    let h = hash_parts(seed, parts);
    &items[(h % items.len() as u64) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_input_sensitive() {
        let a = hash_parts(42, &["bt", "ranger"]);
        let b = hash_parts(42, &["bt", "ranger"]);
        let c = hash_parts(42, &["bt", "forge"]);
        let d = hash_parts(43, &["bt", "ranger"]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn unit_f64_in_range() {
        for i in 0..1000u64 {
            let u = unit_f64(mix(i));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_rate_approximates_p() {
        let n = 20_000;
        let hits = (0..n)
            .filter(|i| chance(7, &[&format!("k{i}")], 0.3))
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn pick_is_stable_and_in_bounds() {
        let items = ["a", "b", "c"];
        let p1 = pick(1, &["x"], &items);
        let p2 = pick(1, &["x"], &items);
        assert_eq!(p1, p2);
        assert!(items.contains(p1));
    }

    #[test]
    fn fnv_distinguishes_order() {
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }
}
