//! Batch-queue model.
//!
//! §VI.C: "Since running on compute nodes does use allocation hours … We
//! found that both FEAM's source and target phases always took less than
//! five minutes to complete. This makes FEAM ideal for submission via a
//! debug queue at sites." This module gives that claim a mechanical
//! backing: sites expose batch queues with walltime limits and queue-depth
//! dependent wait times; jobs that exceed a queue's walltime are killed.

use crate::rng;
use serde::{Deserialize, Serialize};

/// One batch queue at a site (PBS/SGE/SLURM-style).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueSpec {
    /// Queue name, e.g. `debug` or `normal`.
    pub name: String,
    /// Maximum walltime per job, in seconds.
    pub max_walltime: f64,
    /// Typical queue wait in seconds when the system is idle.
    pub base_wait: f64,
    /// Additional wait per unit of load (seeded per submission).
    pub max_extra_wait: f64,
    /// Maximum processes a job may request.
    pub max_procs: u32,
}

impl QueueSpec {
    /// The standard debug queue of the paper's era: 30-minute walltime,
    /// short waits, few nodes.
    pub fn debug() -> Self {
        QueueSpec {
            name: "debug".into(),
            max_walltime: 30.0 * 60.0,
            base_wait: 30.0,
            max_extra_wait: 240.0,
            max_procs: 64,
        }
    }

    /// The production queue: long walltime, long waits.
    pub fn normal() -> Self {
        QueueSpec {
            name: "normal".into(),
            max_walltime: 24.0 * 3600.0,
            base_wait: 1800.0,
            max_extra_wait: 6.0 * 3600.0,
            max_procs: 4096,
        }
    }
}

/// The outcome of pushing a job through a queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueueOutcome {
    /// Ran to completion.
    Completed {
        /// Seconds spent waiting in the queue.
        wait_seconds: f64,
        /// Seconds the job ran.
        run_seconds: f64,
    },
    /// Killed at the walltime limit.
    WalltimeExceeded { limit: f64 },
    /// Rejected at submission (too many processes requested).
    Rejected { reason: String },
}

impl QueueOutcome {
    /// Did the job finish?
    pub fn completed(&self) -> bool {
        matches!(self, QueueOutcome::Completed { .. })
    }

    /// Total turnaround (wait + run) for completed jobs.
    pub fn turnaround(&self) -> Option<f64> {
        match self {
            QueueOutcome::Completed {
                wait_seconds,
                run_seconds,
            } => Some(wait_seconds + run_seconds),
            _ => None,
        }
    }
}

/// [`submit`] wrapped in a trace span: records a `queue.submit` span, a
/// `queue_outcome` event, and the simulated wait in the `queue.wait_s`
/// histogram.
pub fn submit_traced(
    rec: &feam_obs::Recorder,
    queue: &QueueSpec,
    job_id: &str,
    nprocs: u32,
    cpu_seconds: f64,
    seed: u64,
) -> QueueOutcome {
    let _span = rec.span("queue.submit");
    let outcome = submit(queue, job_id, nprocs, cpu_seconds, seed);
    let (status, wait) = match &outcome {
        QueueOutcome::Completed { wait_seconds, .. } => ("completed", Some(*wait_seconds)),
        QueueOutcome::WalltimeExceeded { .. } => ("walltime-exceeded", None),
        QueueOutcome::Rejected { .. } => ("rejected", None),
    };
    rec.event(
        "queue_outcome",
        &[
            ("queue", queue.name.as_str().into()),
            ("job", job_id.into()),
            ("status", status.into()),
            ("wait_s", wait.unwrap_or(0.0).into()),
        ],
    );
    if let Some(w) = wait {
        rec.observe("queue.wait_s", w);
    }
    outcome
}

/// Submit a job needing `cpu_seconds` of work on `nprocs` processes.
/// `seed`/`job_id` make the queue wait deterministic per submission.
pub fn submit(
    queue: &QueueSpec,
    job_id: &str,
    nprocs: u32,
    cpu_seconds: f64,
    seed: u64,
) -> QueueOutcome {
    if nprocs > queue.max_procs {
        return QueueOutcome::Rejected {
            reason: format!(
                "{} procs requested, queue {} allows {}",
                nprocs, queue.name, queue.max_procs
            ),
        };
    }
    // Wall time of the job itself: CPU work spread over the ranks, plus a
    // fixed launch overhead.
    let run_seconds = cpu_seconds / nprocs.max(1) as f64 + 5.0;
    if run_seconds > queue.max_walltime {
        return QueueOutcome::WalltimeExceeded {
            limit: queue.max_walltime,
        };
    }
    let u = rng::unit_f64(rng::hash_parts(seed, &[job_id, &queue.name, "wait"]));
    let wait_seconds = queue.base_wait + u * queue.max_extra_wait;
    QueueOutcome::Completed {
        wait_seconds,
        run_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feam_phases_fit_the_debug_queue() {
        // §VI.C's punchline: a FEAM phase (< 5 simulated minutes of CPU)
        // completes comfortably within the 30-minute debug walltime.
        let debug = QueueSpec::debug();
        let out = submit(&debug, "feam-target-phase", 4, 51.0, 1);
        assert!(out.completed(), "{out:?}");
        let turnaround = out.turnaround().unwrap();
        assert!(turnaround < debug.max_walltime, "turnaround {turnaround}");
    }

    #[test]
    fn long_benchmark_run_needs_the_normal_queue() {
        // A production-size benchmark run blows the debug walltime.
        let debug = QueueSpec::debug();
        let heavy_cpu = 16.0 * 3600.0 * 4.0; // 16 node-hours on 4 ranks
        assert!(matches!(
            submit(&debug, "milc-production", 4, heavy_cpu, 1),
            QueueOutcome::WalltimeExceeded { .. }
        ));
        let normal = QueueSpec::normal();
        assert!(submit(&normal, "milc-production", 4, heavy_cpu, 1).completed());
    }

    #[test]
    fn debug_queue_turnaround_beats_normal_queue() {
        // The whole point of the debug queue: shorter waits.
        let debug = QueueSpec::debug();
        let normal = QueueSpec::normal();
        let mut debug_total = 0.0;
        let mut normal_total = 0.0;
        for i in 0..50 {
            let id = format!("job{i}");
            debug_total += submit(&debug, &id, 4, 60.0, 7).turnaround().unwrap();
            normal_total += submit(&normal, &id, 4, 60.0, 7).turnaround().unwrap();
        }
        assert!(debug_total < normal_total / 4.0);
    }

    #[test]
    fn oversized_job_rejected() {
        let debug = QueueSpec::debug();
        assert!(matches!(
            submit(&debug, "wide", 1024, 10.0, 1),
            QueueOutcome::Rejected { .. }
        ));
    }

    #[test]
    fn wait_times_deterministic_per_submission() {
        let q = QueueSpec::debug();
        let a = submit(&q, "same-job", 4, 10.0, 9);
        let b = submit(&q, "same-job", 4, 10.0, 9);
        assert_eq!(a, b);
        let c = submit(&q, "other-job", 4, 10.0, 9);
        assert_ne!(a, c, "different jobs draw different waits");
    }
}
