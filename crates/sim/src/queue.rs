//! Batch-queue model.
//!
//! §VI.C: "Since running on compute nodes does use allocation hours … We
//! found that both FEAM's source and target phases always took less than
//! five minutes to complete. This makes FEAM ideal for submission via a
//! debug queue at sites." This module gives that claim a mechanical
//! backing: sites expose batch queues with walltime limits and queue-depth
//! dependent wait times; jobs that exceed a queue's walltime are killed.
//!
//! [`submit_retrying`] adds the robustness layer: submissions roll against
//! an injected [`FaultPlan`] (scheduler outages are the
//! [`Chokepoint::QueueSubmit`] chokepoint), transient rejections are
//! retried in place, and walltime kills / hard rejections escalate to the
//! next queue in the caller's list (debug → production).

use crate::faults::{Chokepoint, FaultKind, FaultPlan};
use crate::rng;
use serde::{Deserialize, Serialize};

/// Rejection reason used for injected transient scheduler outages; a
/// resubmission to the same queue re-rolls, so retries can succeed.
pub const TRANSIENT_REJECTION: &str = "scheduler temporarily unavailable";

/// One batch queue at a site (PBS/SGE/SLURM-style).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueSpec {
    /// Queue name, e.g. `debug` or `normal`.
    pub name: String,
    /// Maximum walltime per job, in seconds.
    pub max_walltime: f64,
    /// Typical queue wait in seconds when the system is idle.
    pub base_wait: f64,
    /// Additional wait per unit of load (seeded per submission).
    pub max_extra_wait: f64,
    /// Maximum processes a job may request.
    pub max_procs: u32,
}

impl QueueSpec {
    /// The standard debug queue of the paper's era: 30-minute walltime,
    /// short waits, few nodes.
    pub fn debug() -> Self {
        QueueSpec {
            name: "debug".into(),
            max_walltime: 30.0 * 60.0,
            base_wait: 30.0,
            max_extra_wait: 240.0,
            max_procs: 64,
        }
    }

    /// The production queue: long walltime, long waits.
    pub fn normal() -> Self {
        QueueSpec {
            name: "normal".into(),
            max_walltime: 24.0 * 3600.0,
            base_wait: 1800.0,
            max_extra_wait: 6.0 * 3600.0,
            max_procs: 4096,
        }
    }
}

/// The outcome of pushing a job through a queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueueOutcome {
    /// Ran to completion.
    Completed {
        /// Seconds spent waiting in the queue.
        wait_seconds: f64,
        /// Seconds the job ran.
        run_seconds: f64,
    },
    /// Killed at the walltime limit.
    WalltimeExceeded { limit: f64 },
    /// Rejected at submission (too many processes requested).
    Rejected { reason: String },
}

impl QueueOutcome {
    /// Did the job finish?
    pub fn completed(&self) -> bool {
        matches!(self, QueueOutcome::Completed { .. })
    }

    /// Total turnaround (wait + run) for completed jobs.
    pub fn turnaround(&self) -> Option<f64> {
        match self {
            QueueOutcome::Completed {
                wait_seconds,
                run_seconds,
            } => Some(wait_seconds + run_seconds),
            _ => None,
        }
    }
}

/// [`submit`] wrapped in a trace span: records a `queue.submit` span, a
/// `queue_outcome` event, and the simulated wait in the `queue.wait_s`
/// histogram.
pub fn submit_traced(
    rec: &feam_obs::Recorder,
    queue: &QueueSpec,
    job_id: &str,
    nprocs: u32,
    cpu_seconds: f64,
    seed: u64,
) -> QueueOutcome {
    let _span = rec.span("queue.submit");
    let outcome = submit(queue, job_id, nprocs, cpu_seconds, seed);
    let (status, wait) = match &outcome {
        QueueOutcome::Completed { wait_seconds, .. } => ("completed", Some(*wait_seconds)),
        QueueOutcome::WalltimeExceeded { .. } => ("walltime-exceeded", None),
        QueueOutcome::Rejected { .. } => ("rejected", None),
    };
    rec.event(
        "queue_outcome",
        &[
            ("queue", queue.name.as_str().into()),
            ("job", job_id.into()),
            ("status", status.into()),
            ("wait_s", wait.unwrap_or(0.0).into()),
        ],
    );
    if let Some(w) = wait {
        rec.observe("queue.wait_s", w);
    }
    outcome
}

/// Submit a job needing `cpu_seconds` of work on `nprocs` processes.
/// `seed`/`job_id` make the queue wait deterministic per submission.
pub fn submit(
    queue: &QueueSpec,
    job_id: &str,
    nprocs: u32,
    cpu_seconds: f64,
    seed: u64,
) -> QueueOutcome {
    if nprocs > queue.max_procs {
        return QueueOutcome::Rejected {
            reason: format!(
                "{} procs requested, queue {} allows {}",
                nprocs, queue.name, queue.max_procs
            ),
        };
    }
    // Wall time of the job itself: CPU work spread over the ranks, plus a
    // fixed launch overhead.
    let run_seconds = cpu_seconds / nprocs.max(1) as f64 + 5.0;
    if run_seconds > queue.max_walltime {
        return QueueOutcome::WalltimeExceeded {
            limit: queue.max_walltime,
        };
    }
    let u = rng::unit_f64(rng::hash_parts(seed, &[job_id, &queue.name, "wait"]));
    let wait_seconds = queue.base_wait + u * queue.max_extra_wait;
    QueueOutcome::Completed {
        wait_seconds,
        run_seconds,
    }
}

/// [`submit`] with the fault plan consulted first. A persistent fault
/// rejects this (job, queue) pair on every attempt; a transient fault
/// rejects with [`TRANSIENT_REJECTION`] and clears on re-roll.
pub fn submit_with_faults(
    queue: &QueueSpec,
    job_id: &str,
    nprocs: u32,
    cpu_seconds: f64,
    seed: u64,
    faults: &FaultPlan,
    attempt: u32,
) -> QueueOutcome {
    let key = format!("{job_id}@{}", queue.name);
    match faults.roll(Chokepoint::QueueSubmit, &key, attempt) {
        Some(FaultKind::Persistent) => QueueOutcome::Rejected {
            reason: format!(
                "queue {} rejects this submission (scheduler policy)",
                queue.name
            ),
        },
        Some(FaultKind::Transient) => QueueOutcome::Rejected {
            reason: TRANSIENT_REJECTION.into(),
        },
        None => submit(queue, job_id, nprocs, cpu_seconds, seed),
    }
}

/// Submit with bounded retries and queue escalation.
///
/// Queues are tried in order (typically `[debug, normal]`). Transient
/// rejections are resubmitted to the same queue; walltime kills and hard
/// rejections (persistent faults, size limits) escalate to the next queue.
/// At most `max_attempts` submissions are made in total. Returns the final
/// outcome and the number of submissions consumed; every submission emits a
/// `queue_outcome` event and consumed retries emit `retry_attempt` events.
#[allow(clippy::too_many_arguments)]
pub fn submit_retrying(
    rec: &feam_obs::Recorder,
    queues: &[QueueSpec],
    job_id: &str,
    nprocs: u32,
    cpu_seconds: f64,
    seed: u64,
    faults: &FaultPlan,
    max_attempts: u32,
) -> (QueueOutcome, u32) {
    let max_attempts = max_attempts.max(1);
    let mut qi = 0usize;
    let mut attempts = 0u32;
    let mut last = QueueOutcome::Rejected {
        reason: "no queues configured".into(),
    };
    while attempts < max_attempts && qi < queues.len() {
        attempts += 1;
        let queue = &queues[qi];
        let _span = rec.span("queue.submit");
        let outcome =
            submit_with_faults(queue, job_id, nprocs, cpu_seconds, seed, faults, attempts);
        let (status, wait) = match &outcome {
            QueueOutcome::Completed { wait_seconds, .. } => ("completed", Some(*wait_seconds)),
            QueueOutcome::WalltimeExceeded { .. } => ("walltime-exceeded", None),
            QueueOutcome::Rejected { .. } => ("rejected", None),
        };
        rec.event(
            "queue_outcome",
            &[
                ("queue", queue.name.as_str().into()),
                ("job", job_id.into()),
                ("status", status.into()),
                ("wait_s", wait.unwrap_or(0.0).into()),
            ],
        );
        if let Some(w) = wait {
            rec.observe("queue.wait_s", w);
        }
        match &outcome {
            QueueOutcome::Completed { .. } => return (outcome, attempts),
            QueueOutcome::Rejected { reason } if reason == TRANSIENT_REJECTION => {
                // Same queue, next attempt re-rolls the transient fault.
            }
            _ => {
                // Hard rejection or walltime kill: escalate.
                qi += 1;
            }
        }
        if attempts < max_attempts && qi < queues.len() {
            rec.event(
                "retry_attempt",
                &[
                    ("what", "queue.submit".into()),
                    ("attempt", (attempts + 1).into()),
                    ("queue", queues[qi].name.as_str().into()),
                ],
            );
            rec.count("retry.attempts", 1);
        }
        last = outcome;
    }
    (last, attempts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feam_phases_fit_the_debug_queue() {
        // §VI.C's punchline: a FEAM phase (< 5 simulated minutes of CPU)
        // completes comfortably within the 30-minute debug walltime.
        let debug = QueueSpec::debug();
        let out = submit(&debug, "feam-target-phase", 4, 51.0, 1);
        assert!(out.completed(), "{out:?}");
        let turnaround = out.turnaround().unwrap();
        assert!(turnaround < debug.max_walltime, "turnaround {turnaround}");
    }

    #[test]
    fn long_benchmark_run_needs_the_normal_queue() {
        // A production-size benchmark run blows the debug walltime.
        let debug = QueueSpec::debug();
        let heavy_cpu = 16.0 * 3600.0 * 4.0; // 16 node-hours on 4 ranks
        assert!(matches!(
            submit(&debug, "milc-production", 4, heavy_cpu, 1),
            QueueOutcome::WalltimeExceeded { .. }
        ));
        let normal = QueueSpec::normal();
        assert!(submit(&normal, "milc-production", 4, heavy_cpu, 1).completed());
    }

    #[test]
    fn debug_queue_turnaround_beats_normal_queue() {
        // The whole point of the debug queue: shorter waits.
        let debug = QueueSpec::debug();
        let normal = QueueSpec::normal();
        let mut debug_total = 0.0;
        let mut normal_total = 0.0;
        for i in 0..50 {
            let id = format!("job{i}");
            debug_total += submit(&debug, &id, 4, 60.0, 7).turnaround().unwrap();
            normal_total += submit(&normal, &id, 4, 60.0, 7).turnaround().unwrap();
        }
        assert!(debug_total < normal_total / 4.0);
    }

    #[test]
    fn oversized_job_rejected() {
        let debug = QueueSpec::debug();
        assert!(matches!(
            submit(&debug, "wide", 1024, 10.0, 1),
            QueueOutcome::Rejected { .. }
        ));
    }

    #[test]
    fn wait_times_deterministic_per_submission() {
        let q = QueueSpec::debug();
        let a = submit(&q, "same-job", 4, 10.0, 9);
        let b = submit(&q, "same-job", 4, 10.0, 9);
        assert_eq!(a, b);
        let c = submit(&q, "other-job", 4, 10.0, 9);
        assert_ne!(a, c, "different jobs draw different waits");
    }

    #[test]
    fn walltime_kill_escalates_to_production_queue() {
        // A job too long for debug is killed there, and the retry lands on
        // the normal (production) queue, which completes it.
        let rec = feam_obs::Recorder::disabled();
        let queues = [QueueSpec::debug(), QueueSpec::normal()];
        let heavy_cpu = 16.0 * 3600.0 * 4.0;
        let (out, attempts) = submit_retrying(
            &rec,
            &queues,
            "milc-production",
            4,
            heavy_cpu,
            1,
            &FaultPlan::none(),
            5,
        );
        assert!(out.completed(), "{out:?}");
        assert_eq!(attempts, 2, "one debug kill, one normal success");
    }

    #[test]
    fn hard_rejection_escalates_to_production_queue() {
        // 1024 ranks exceed debug's size limit; the retry lands on normal.
        let rec = feam_obs::Recorder::disabled();
        let queues = [QueueSpec::debug(), QueueSpec::normal()];
        let (out, attempts) =
            submit_retrying(&rec, &queues, "wide", 1024, 10.0, 1, &FaultPlan::none(), 5);
        assert!(out.completed(), "{out:?}");
        assert_eq!(attempts, 2);
    }

    #[test]
    fn transient_outage_retries_on_the_debug_queue() {
        // Find a seed where the first submission hits a transient fault but
        // a later attempt clears: the retry must land on the SAME (debug)
        // queue and complete there, never touching production.
        let queues = [QueueSpec::debug(), QueueSpec::normal()];
        let mut exercised = false;
        for fault_seed in 0..64u64 {
            let plan = FaultPlan {
                seed: fault_seed,
                queue_submit: crate::faults::FaultRate {
                    transient: 0.6,
                    persistent: 0.0,
                },
                ..FaultPlan::default()
            };
            let first = submit_with_faults(&queues[0], "probe", 4, 30.0, 1, &plan, 1);
            let second = submit_with_faults(&queues[0], "probe", 4, 30.0, 1, &plan, 2);
            if first
                == (QueueOutcome::Rejected {
                    reason: TRANSIENT_REJECTION.into(),
                })
                && second.completed()
            {
                let rec = feam_obs::Recorder::disabled();
                let (out, attempts) = submit_retrying(&rec, &queues, "probe", 4, 30.0, 1, &plan, 5);
                assert!(out.completed(), "{out:?}");
                assert_eq!(attempts, 2, "retried once, on the debug queue");
                assert!(
                    out.turnaround().unwrap() < QueueSpec::normal().base_wait,
                    "completed on debug, not production"
                );
                exercised = true;
                break;
            }
        }
        assert!(exercised, "no seed in 0..64 exercised the transient path");
    }

    #[test]
    fn persistent_outage_exhausts_both_queues() {
        let rec = feam_obs::Recorder::disabled();
        let queues = [QueueSpec::debug(), QueueSpec::normal()];
        let plan = FaultPlan {
            seed: 3,
            queue_submit: crate::faults::FaultRate {
                transient: 0.0,
                persistent: 1.0,
            },
            ..FaultPlan::default()
        };
        let (out, attempts) = submit_retrying(&rec, &queues, "doomed", 4, 30.0, 1, &plan, 5);
        assert!(
            matches!(&out, QueueOutcome::Rejected { reason } if reason.contains("scheduler policy")),
            "{out:?}"
        );
        assert_eq!(attempts, 2, "one hard rejection per queue");
    }
}
