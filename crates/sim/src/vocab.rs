//! The shared compiler / OS / toolchain-era vocabulary.
//!
//! One table, three consumers:
//!
//! * the hand-written Table II sites (`feam-workloads::sites`) transcribe
//!   historic configurations whose versions must all appear here,
//! * generators (the conformance universe builder, hostile-corpus
//!   synthesis) *sample* from the era pools below,
//! * the provenance signature database (`feam-provenance`) enumerates
//!   [`known_compilers`] to seed its byte-signature entries — a compiler
//!   version missing from this table is by definition unrecoverable from
//!   a stripped binary, which is exactly the family-only degradation the
//!   matcher calibrates for.
//!
//! MPI stack versions already live on [`crate::mpi::MpiImpl::known_versions`];
//! this module completes the dedup for the compiler/OS side.

use crate::rng;
use crate::toolchain::{Compiler, CompilerFamily};

/// GNU compiler versions the generators sample from (paper-era pool).
pub const GNU_VERSIONS: &[&str] = &["3.4.6", "4.1.2", "4.4.5"];
/// Intel compiler versions the generators sample from.
pub const INTEL_VERSIONS: &[&str] = &["10.1", "11.1", "12.0"];
/// PGI compiler versions the generators sample from.
pub const PGI_VERSIONS: &[&str] = &["7.2", "10.9"];

/// Every compiler version in circulation across the testbed era: the
/// generator pools plus the Table II literals that only appear in the
/// hand-written sites (Blacklight's gcc 4.4.3). This is the table the
/// provenance signature database keys on.
pub const KNOWN_COMPILERS: &[(CompilerFamily, &str)] = &[
    (CompilerFamily::Gnu, "3.4.6"),
    (CompilerFamily::Gnu, "4.1.2"),
    (CompilerFamily::Gnu, "4.4.3"),
    (CompilerFamily::Gnu, "4.4.5"),
    (CompilerFamily::Intel, "10.1"),
    (CompilerFamily::Intel, "11.1"),
    (CompilerFamily::Intel, "12.0"),
    (CompilerFamily::Pgi, "7.2"),
    (CompilerFamily::Pgi, "10.9"),
];

/// `(distro, release, kernel)` triples a generated site may run —
/// contemporaries of the Table II machines.
pub const OS_TABLE: &[(&str, &str, &str)] = &[
    ("CentOS", "4.9", "2.6.9-103.ELsmp"),
    ("CentOS", "5.6", "2.6.18-238.el5"),
    (
        "Red Hat Enterprise Linux Server",
        "6.1",
        "2.6.32-131.0.15.el6",
    ),
    ("SUSE Linux Enterprise Server", "11.1", "2.6.32.29-0.3"),
];

/// All known compilers, materialized.
pub fn known_compilers() -> Vec<Compiler> {
    KNOWN_COMPILERS
        .iter()
        .map(|(f, v)| Compiler::new(*f, v))
        .collect()
}

/// Is `(family, version)` in the shared vocabulary?
pub fn is_known(family: CompilerFamily, version: &str) -> bool {
    KNOWN_COMPILERS
        .iter()
        .any(|(f, v)| *f == family && *v == version)
}

/// A seeded pick of a `family` compiler from the era sampling pools.
pub fn compiler_from_vocab(family: CompilerFamily, seed: u64, parts: &[&str]) -> Compiler {
    let v = match family {
        CompilerFamily::Gnu => rng::pick(seed, parts, GNU_VERSIONS),
        CompilerFamily::Intel => rng::pick(seed, parts, INTEL_VERSIONS),
        CompilerFamily::Pgi => rng::pick(seed, parts, PGI_VERSIONS),
    };
    Compiler::new(family, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocab_picks_are_seed_deterministic_and_in_vocabulary() {
        for family in [
            CompilerFamily::Gnu,
            CompilerFamily::Intel,
            CompilerFamily::Pgi,
        ] {
            let a = compiler_from_vocab(family, 7, &["t"]);
            let b = compiler_from_vocab(family, 7, &["t"]);
            assert_eq!(a.ident(), b.ident());
            let pool = match family {
                CompilerFamily::Gnu => GNU_VERSIONS,
                CompilerFamily::Intel => INTEL_VERSIONS,
                CompilerFamily::Pgi => PGI_VERSIONS,
            };
            assert!(pool.contains(&a.version.as_str()));
        }
    }

    #[test]
    fn sampling_pools_are_subsets_of_the_known_table() {
        for (pool, family) in [
            (GNU_VERSIONS, CompilerFamily::Gnu),
            (INTEL_VERSIONS, CompilerFamily::Intel),
            (PGI_VERSIONS, CompilerFamily::Pgi),
        ] {
            for v in pool {
                assert!(is_known(family, v), "{family:?} {v} missing from table");
            }
        }
    }

    #[test]
    fn known_table_has_no_duplicates() {
        let all = known_compilers();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.ident(), b.ident());
            }
        }
    }
}
