//! Dynamic-loader model (`ld.so`).
//!
//! Ground truth for "does this binary actually run here" is produced by the
//! same mechanism the real loader uses: resolve the `DT_NEEDED` closure
//! through the search-path order, then check GNU symbol-version references
//! and symbol bindings across the loaded set. Nothing here consults FEAM's
//! prediction logic — the two must be able to disagree, or the paper's
//! accuracy tables would be meaningless.

use crate::site::Session;
use feam_elf::{Class, FileKind, LazyElf, Machine, VersionRef};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// Parsed metadata of one ELF object, cached per site install.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectMeta {
    pub soname: Option<String>,
    pub needed: Vec<String>,
    pub class: Class,
    pub machine: Machine,
    pub kind: FileKind,
    pub version_refs: Vec<VersionRef>,
    /// Names of versions this object defines.
    pub version_defs: Vec<String>,
    /// (name, version) of every exported (defined) dynamic symbol.
    pub exports: Vec<(String, Option<String>)>,
    /// (name, version, weak) of every imported (undefined) dynamic symbol.
    pub imports: Vec<(String, Option<String>, bool)>,
    pub rpath: Option<String>,
    pub runpath: Option<String>,
    pub comments: Vec<String>,
    /// On-disk size in bytes.
    pub size: usize,
}

impl ObjectMeta {
    /// Extract metadata from an ELF image.
    pub fn parse(bytes: &[u8]) -> feam_elf::Result<Self> {
        let f = LazyElf::parse(bytes)?;
        Ok(ObjectMeta {
            soname: f.soname().map(str::to_string),
            needed: f.needed().iter().map(|s| s.to_string()).collect(),
            class: f.class(),
            machine: f.machine(),
            kind: f.kind(),
            version_refs: f.version_refs().iter().map(|r| r.owned()).collect(),
            version_defs: f
                .version_defs()
                .iter()
                .map(|d| d.name.to_string())
                .collect(),
            exports: f
                .dynamic_symbols()
                .iter()
                .filter(|s| !s.undefined && !s.name.is_empty())
                .map(|s| (s.name.to_string(), s.version.map(str::to_string)))
                .collect(),
            imports: f
                .dynamic_symbols()
                .iter()
                .filter(|s| s.undefined && !s.name.is_empty())
                .map(|s| (s.name.to_string(), s.version.map(str::to_string), s.weak))
                .collect(),
            rpath: f.rpath().map(str::to_string),
            runpath: f.runpath().map(str::to_string),
            comments: f.comments().to_vec(),
            size: f.size(),
        })
    }

    /// Does this object export symbol `name` (with `version`, when the
    /// reference is versioned)?
    pub fn exports_symbol(&self, name: &str, version: Option<&str>) -> bool {
        match version {
            Some(v) => self
                .exports
                .iter()
                .any(|(n, ver)| n == name && ver.as_deref() == Some(v)),
            None => self.exports.iter().any(|(n, _)| n == name),
        }
    }
}

/// One resolved member of a load closure.
#[derive(Debug, Clone)]
pub struct LoadedObject {
    /// The soname it was resolved for (the root binary uses its path).
    pub request: String,
    /// Filesystem path it resolved to.
    pub path: String,
    pub meta: Arc<ObjectMeta>,
}

/// Why loading failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// A `DT_NEEDED` soname was not found on any search path.
    MissingLibrary { soname: String, needed_by: String },
    /// A version reference could not be satisfied by the resolved provider
    /// (`GLIBC_2.12 not defined by libc.so.6` and friends).
    UnresolvedVersion {
        object: String,
        file: String,
        version: String,
    },
    /// A strong undefined symbol was not provided by any loaded object —
    /// the mechanical form of an ABI incompatibility.
    MissingSymbol {
        symbol: String,
        version: Option<String>,
        needed_by: String,
    },
    /// The root file is not a loadable ELF for this request.
    NotLoadable(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::MissingLibrary { soname, needed_by } => {
                write!(
                    f,
                    "{soname}: cannot open shared object file (needed by {needed_by})"
                )
            }
            LoadError::UnresolvedVersion {
                object,
                file,
                version,
            } => {
                write!(
                    f,
                    "{object}: version `{version}' not found (required by {file})"
                )
            }
            LoadError::MissingSymbol {
                symbol,
                version,
                needed_by,
            } => match version {
                Some(v) => write!(f, "{needed_by}: undefined symbol: {symbol}, version {v}"),
                None => write!(f, "{needed_by}: undefined symbol: {symbol}"),
            },
            LoadError::NotLoadable(p) => write!(f, "{p}: cannot execute binary file"),
        }
    }
}

/// A successfully resolved closure.
#[derive(Debug, Clone)]
pub struct Closure {
    /// Root first, then dependencies in BFS order.
    pub objects: Vec<LoadedObject>,
}

impl Closure {
    /// Paths of all loaded objects.
    pub fn paths(&self) -> Vec<&str> {
        self.objects.iter().map(|o| o.path.as_str()).collect()
    }

    /// Find the loaded provider of a soname.
    pub fn provider(&self, soname: &str) -> Option<&LoadedObject> {
        self.objects
            .iter()
            .find(|o| o.meta.soname.as_deref() == Some(soname) || o.request == soname)
    }
}

/// Fetch + parse an object at `path` within a session, using the site's
/// metadata cache when possible.
fn object_at(sess: &Session<'_>, path: &str) -> Option<Arc<ObjectMeta>> {
    if let Some(m) = sess.site.meta_for(path) {
        return Some(m);
    }
    let bytes = sess.read_bytes(path)?;
    ObjectMeta::parse(&bytes).ok().map(Arc::new)
}

/// Search one directory for `soname`; returns the path when the file exists
/// there (directly or via symlink) and is a compatible ELF object.
fn probe_dir(
    sess: &Session<'_>,
    dir: &str,
    soname: &str,
    class: Class,
    machine: Machine,
) -> Option<(String, Arc<ObjectMeta>)> {
    let candidate = format!("{}/{soname}", dir.trim_end_matches('/'));
    if !sess.exists(&candidate) {
        return None;
    }
    let meta = object_at(sess, &candidate)?;
    (meta.class == class && meta.machine == machine).then_some((candidate, meta))
}

/// The loader's search-path order for one object (glibc semantics):
/// `DT_RPATH` (when no RUNPATH) → `LD_LIBRARY_PATH` → `DT_RUNPATH` →
/// default directories.
fn search_order(obj: &ObjectMeta, sess: &Session<'_>) -> Vec<String> {
    let mut dirs = Vec::new();
    let split = |s: &Option<String>| -> Vec<String> {
        s.as_deref()
            .map(|v| {
                v.split(':')
                    .filter(|d| !d.is_empty())
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default()
    };
    if obj.runpath.is_none() {
        dirs.extend(split(&obj.rpath));
    }
    dirs.extend(sess.ld_library_path());
    dirs.extend(split(&obj.runpath));
    dirs.extend(sess.site.default_lib_dirs());
    dirs
}

/// Resolve the full load closure of the binary at `root_path`.
///
/// On success, every `DT_NEEDED` was found, every version reference is
/// defined by its provider, and every strong import is exported by some
/// loaded object.
pub fn resolve_closure(sess: &Session<'_>, root_path: &str) -> Result<Closure, LoadError> {
    let root_meta =
        object_at(sess, root_path).ok_or_else(|| LoadError::NotLoadable(root_path.to_string()))?;
    let class = root_meta.class;
    let machine = root_meta.machine;

    let mut objects = vec![LoadedObject {
        request: root_path.to_string(),
        path: root_path.to_string(),
        meta: root_meta,
    }];
    let mut loaded: BTreeMap<String, usize> = BTreeMap::new(); // soname → index
    let mut queue = 0usize;
    while queue < objects.len() {
        let current = objects[queue].clone();
        for dep in current.meta.needed.clone() {
            if loaded.contains_key(&dep) {
                continue;
            }
            let mut found = None;
            for dir in search_order(&current.meta, sess) {
                if let Some(hit) = probe_dir(sess, &dir, &dep, class, machine) {
                    found = Some(hit);
                    break;
                }
            }
            match found {
                Some((path, meta)) => {
                    loaded.insert(dep.clone(), objects.len());
                    objects.push(LoadedObject {
                        request: dep,
                        path,
                        meta,
                    });
                }
                None => {
                    return Err(LoadError::MissingLibrary {
                        soname: dep,
                        needed_by: current.path.clone(),
                    })
                }
            }
        }
        queue += 1;
    }

    // Version-reference check: each verneed (file, version) must be defined
    // by the loaded provider of that file.
    for obj in &objects {
        for vr in &obj.meta.version_refs {
            let provider = objects
                .iter()
                .find(|o| o.meta.soname.as_deref() == Some(vr.file.as_str()));
            let Some(provider) = provider else {
                // A version ref against a file that was not needed/loaded —
                // glibc tolerates this unless a symbol binds to it; skip.
                continue;
            };
            for v in &vr.versions {
                if v.weak {
                    continue;
                }
                if !provider.meta.version_defs.iter().any(|d| d == &v.name) {
                    return Err(LoadError::UnresolvedVersion {
                        object: obj.path.clone(),
                        file: vr.file.clone(),
                        version: v.name.clone(),
                    });
                }
            }
        }
    }

    // Symbol binding: every strong import must be exported somewhere.
    let mut export_index: HashSet<(&str, Option<&str>)> = HashSet::new();
    let mut unversioned: HashSet<&str> = HashSet::new();
    for obj in &objects {
        for (name, ver) in &obj.meta.exports {
            export_index.insert((name.as_str(), ver.as_deref()));
            unversioned.insert(name.as_str());
        }
    }
    for obj in &objects {
        for (name, ver, weak) in &obj.meta.imports {
            if *weak {
                continue;
            }
            let satisfied = match ver.as_deref() {
                Some(v) => export_index.contains(&(name.as_str(), Some(v))),
                None => unversioned.contains(name.as_str()),
            };
            if !satisfied {
                return Err(LoadError::MissingSymbol {
                    symbol: name.clone(),
                    version: ver.clone(),
                    needed_by: obj.path.clone(),
                });
            }
        }
    }

    Ok(Closure { objects })
}

/// `ldd`-style listing: soname → resolved path (or None when missing).
/// Unlike [`resolve_closure`], missing dependencies do not abort the walk —
/// this is what the `ldd` emulation and FEAM's missing-library check use.
pub fn ldd_map(
    sess: &Session<'_>,
    root_path: &str,
) -> Result<Vec<(String, Option<String>)>, LoadError> {
    let root_meta =
        object_at(sess, root_path).ok_or_else(|| LoadError::NotLoadable(root_path.to_string()))?;
    let class = root_meta.class;
    let machine = root_meta.machine;
    let mut results: Vec<(String, Option<String>)> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    let mut frontier: Vec<Arc<ObjectMeta>> = vec![root_meta];
    while let Some(current) = frontier.pop() {
        for dep in &current.needed {
            if !seen.insert(dep.clone()) {
                continue;
            }
            let mut found = None;
            for dir in search_order(&current, sess) {
                if let Some((path, meta)) = probe_dir(sess, &dir, dep, class, machine) {
                    found = Some((path, meta));
                    break;
                }
            }
            match found {
                Some((path, meta)) => {
                    results.push((dep.clone(), Some(path)));
                    frontier.push(meta);
                }
                None => results.push((dep.clone(), None)),
            }
        }
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::{OsInfo, Site, SiteConfig};
    use crate::toolchain::{Compiler, CompilerFamily};
    use feam_elf::{ElfSpec, HostArch, ImportSpec, Machine};

    fn site() -> Site {
        let mut cfg = SiteConfig::new(
            "ld-test",
            HostArch::X86_64,
            OsInfo::new("CentOS", "5.6", "2.6.18"),
            "2.5",
            11,
        );
        cfg.compilers = vec![Compiler::new(CompilerFamily::Gnu, "4.1.2")];
        Site::build(cfg)
    }

    fn app(needed: &[&str], imports: Vec<ImportSpec>) -> Arc<Vec<u8>> {
        let mut spec = ElfSpec::executable(Machine::X86_64, feam_elf::Class::Elf64);
        spec.needed = needed.iter().map(|s| s.to_string()).collect();
        spec.imports = imports;
        Arc::new(spec.build().unwrap())
    }

    #[test]
    fn resolves_simple_libc_closure() {
        let s = site();
        let mut sess = Session::new(&s);
        let bin = app(
            &["libm.so.6", "libc.so.6"],
            vec![ImportSpec::versioned("memcpy", "libc.so.6", "GLIBC_2.2.5")],
        );
        sess.stage_file("/home/user/a.out", bin);
        let c = resolve_closure(&sess, "/home/user/a.out").unwrap();
        assert!(c.provider("libc.so.6").is_some());
        assert!(c.provider("libm.so.6").is_some());
    }

    #[test]
    fn missing_library_detected() {
        let s = site();
        let mut sess = Session::new(&s);
        let bin = app(&["libmpi.so.0", "libc.so.6"], vec![]);
        sess.stage_file("/home/user/a.out", bin);
        match resolve_closure(&sess, "/home/user/a.out") {
            Err(LoadError::MissingLibrary { soname, .. }) => assert_eq!(soname, "libmpi.so.0"),
            other => panic!("expected MissingLibrary, got {other:?}"),
        }
    }

    #[test]
    fn too_new_glibc_version_ref_fails() {
        let s = site(); // glibc 2.5
        let mut sess = Session::new(&s);
        let bin = app(
            &["libc.so.6"],
            vec![ImportSpec::versioned(
                "__isoc99_sscanf",
                "libc.so.6",
                "GLIBC_2.7",
            )],
        );
        sess.stage_file("/home/user/a.out", bin);
        match resolve_closure(&sess, "/home/user/a.out") {
            Err(LoadError::UnresolvedVersion { version, .. }) => {
                assert_eq!(version, "GLIBC_2.7")
            }
            other => panic!("expected UnresolvedVersion, got {other:?}"),
        }
    }

    #[test]
    fn missing_strong_symbol_is_abi_error() {
        let s = site();
        let mut sess = Session::new(&s);
        // memfrob-of-the-future: unversioned symbol libc does not export.
        let bin = app(
            &["libc.so.6"],
            vec![ImportSpec::plain("__intel_rt_v12", "libc.so.6")],
        );
        sess.stage_file("/home/user/a.out", bin);
        match resolve_closure(&sess, "/home/user/a.out") {
            Err(LoadError::MissingSymbol { symbol, .. }) => {
                assert_eq!(symbol, "__intel_rt_v12")
            }
            other => panic!("expected MissingSymbol, got {other:?}"),
        }
    }

    #[test]
    fn weak_imports_tolerated() {
        let s = site();
        let mut sess = Session::new(&s);
        let bin = app(
            &["libc.so.6"],
            vec![ImportSpec {
                symbol: "__nonexistent_hook".into(),
                file: "libc.so.6".into(),
                version: None,
                weak: true,
            }],
        );
        sess.stage_file("/home/user/a.out", bin);
        assert!(resolve_closure(&sess, "/home/user/a.out").is_ok());
    }

    #[test]
    fn ld_library_path_takes_priority_over_defaults() {
        let s = site();
        let mut sess = Session::new(&s);
        // Stage a shadowing libm copy in a session dir and put it on the path.
        let libm_bytes = sess.read_bytes("/lib64/libm.so.6").unwrap();
        sess.stage_file("/home/user/libs/libm.so.6", libm_bytes);
        crate::site::env_prepend(&mut sess.env, "LD_LIBRARY_PATH", "/home/user/libs");
        let bin = app(&["libm.so.6", "libc.so.6"], vec![]);
        sess.stage_file("/home/user/a.out", bin);
        let c = resolve_closure(&sess, "/home/user/a.out").unwrap();
        assert_eq!(
            c.provider("libm.so.6").unwrap().path,
            "/home/user/libs/libm.so.6"
        );
    }

    #[test]
    fn ldd_map_lists_missing_without_aborting() {
        let s = site();
        let mut sess = Session::new(&s);
        let bin = app(&["libmpi.so.0", "libm.so.6", "libc.so.6"], vec![]);
        sess.stage_file("/home/user/a.out", bin);
        let map = ldd_map(&sess, "/home/user/a.out").unwrap();
        let missing: Vec<_> = map.iter().filter(|(_, p)| p.is_none()).collect();
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].0, "libmpi.so.0");
        // Present libraries resolve with paths.
        assert!(map
            .iter()
            .any(|(n, p)| n == "libc.so.6" && p.as_deref() == Some("/lib64/libc.so.6")));
    }

    #[test]
    fn wrong_class_library_not_picked() {
        let s = site();
        let mut sess = Session::new(&s);
        // Stage a 32-bit impostor earlier on the path.
        let mut spec32 = ElfSpec::shared_library("libm.so.6", Machine::X86, feam_elf::Class::Elf32);
        spec32.exports = vec![feam_elf::ExportSpec::new("sin", None)];
        sess.stage_file(
            "/home/user/libs/libm.so.6",
            Arc::new(spec32.build().unwrap()),
        );
        crate::site::env_prepend(&mut sess.env, "LD_LIBRARY_PATH", "/home/user/libs");
        let bin = app(&["libm.so.6", "libc.so.6"], vec![]);
        sess.stage_file("/home/user/a.out", bin);
        let c = resolve_closure(&sess, "/home/user/a.out").unwrap();
        // The 64-bit system copy wins because the 32-bit one is skipped.
        assert_eq!(c.provider("libm.so.6").unwrap().path, "/lib64/libm.so.6");
    }

    #[test]
    fn rpath_of_requesting_object_searched_first() {
        let s = site();
        let mut sess = Session::new(&s);
        let libm_bytes = sess.read_bytes("/lib64/libm.so.6").unwrap();
        sess.stage_file("/app/private/libm.so.6", libm_bytes);
        let mut spec = ElfSpec::executable(Machine::X86_64, feam_elf::Class::Elf64);
        spec.needed = vec!["libm.so.6".into(), "libc.so.6".into()];
        spec.rpath = Some("/app/private".into());
        sess.stage_file("/app/a.out", Arc::new(spec.build().unwrap()));
        let c = resolve_closure(&sess, "/app/a.out").unwrap();
        assert_eq!(
            c.provider("libm.so.6").unwrap().path,
            "/app/private/libm.so.6"
        );
    }
}
