//! Emulations of the Unix utilities FEAM composes (§V: "Our methods are
//! implemented using various standard Unix-like operating system
//! utilities").
//!
//! Each emulation reads only what the corresponding real tool could read —
//! the site's virtual filesystem and the session environment — and each can
//! be absent or unreliable, so FEAM's fallback chains are genuinely
//! exercised (`ldd` "cannot be relied on to always provide this
//! information", `locate` may be missing, module systems vary).

use crate::exec::binary_fingerprint;
use crate::loader::{ldd_map, LoadError};
use crate::rng;
use crate::site::{EnvMgmt, Session, Site};
use std::sync::Arc;

/// `uname -p` output.
pub fn uname_p(site: &Site) -> &'static str {
    site.config.arch.uname_p()
}

/// `cat /proc/version`. Observation attempt `attempt` — injected
/// description-file faults are re-rolled per attempt when transient.
pub fn proc_version(sess: &Session<'_>, attempt: u32) -> Option<String> {
    if sess
        .roll_fault(
            crate::faults::Chokepoint::DescriptionFile,
            "/proc/version",
            attempt,
        )
        .is_some()
    {
        return None;
    }
    sess.site
        .vfs
        .read_text("/proc/version")
        .ok()
        .map(str::to_string)
}

/// Contents of the distribution's `/etc/*release` file.
pub fn etc_release(sess: &Session<'_>, attempt: u32) -> Option<String> {
    if sess
        .roll_fault(
            crate::faults::Chokepoint::DescriptionFile,
            "/etc/*release",
            attempt,
        )
        .is_some()
    {
        return None;
    }
    for path in [
        "/etc/redhat-release",
        "/etc/SuSE-release",
        "/etc/os-release",
    ] {
        if let Ok(text) = sess.site.vfs.read_text(path) {
            return Some(text.to_string());
        }
    }
    None
}

/// Result of running `ldd -v <binary>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LddResult {
    /// Tool not installed at this site.
    NotPresent,
    /// `ldd` printed "not a dynamic executable" — the unreliability the
    /// paper warns about.
    NotRecognized,
    /// Dependency list: (soname, resolved path or None for "not found").
    Resolved(Vec<(String, Option<String>)>),
}

/// Emulated `ldd -v`: per-binary flakiness is deterministic in the site
/// seed and the binary's fingerprint.
pub fn ldd(sess: &Session<'_>, path: &str) -> LddResult {
    if !sess.site.config.ldd_present {
        return LddResult::NotPresent;
    }
    let Some(bytes) = sess.read_bytes(path) else {
        return LddResult::NotRecognized;
    };
    let fp = binary_fingerprint(&bytes);
    if rng::chance(
        sess.site.config.seed,
        &[&format!("{fp:x}"), "ldd-flaky"],
        sess.site.config.ldd_flaky_rate,
    ) {
        return LddResult::NotRecognized;
    }
    match ldd_map(sess, path) {
        Ok(map) => LddResult::Resolved(map),
        Err(LoadError::NotLoadable(_)) => LddResult::NotRecognized,
        Err(_) => LddResult::NotRecognized,
    }
}

/// Emulated `locate <pattern>` (basename substring match); `None` when the
/// tool or its database is absent.
pub fn locate(site: &Site, pattern: &str) -> Option<Vec<String>> {
    site.config.locate_present.then(|| site.vfs.locate(pattern))
}

/// Emulated `find <roots...> -name <name>`.
pub fn find_name(site: &Site, roots: &[&str], name: &str) -> Vec<String> {
    let mut out = Vec::new();
    for root in roots {
        out.extend(site.vfs.find_by_name(root, name));
    }
    out.sort();
    out.dedup();
    out
}

/// Emulated `module avail` → module names, or `None` when Environment
/// Modules is not installed or its database read faults.
pub fn module_avail(sess: &Session<'_>, attempt: u32) -> Option<Vec<String>> {
    let site = sess.site;
    if site.config.env_mgmt != EnvMgmt::Modules {
        return None;
    }
    if sess
        .roll_fault(crate::faults::Chokepoint::ModuleDb, "modulefiles", attempt)
        .is_some()
    {
        return None;
    }
    let mut names = Vec::new();
    if let Ok(groups) = site.vfs.list_dir("/usr/share/Modules/modulefiles") {
        for g in groups {
            if let Ok(mods) = site
                .vfs
                .list_dir(&format!("/usr/share/Modules/modulefiles/{g}"))
            {
                names.extend(mods);
            }
        }
    }
    names.sort();
    Some(names)
}

/// Emulated `module list` → currently loaded modules.
pub fn module_list(sess: &Session<'_>) -> Option<Vec<String>> {
    if sess.site.config.env_mgmt != EnvMgmt::Modules {
        return None;
    }
    Some(
        sess.env
            .get("LOADEDMODULES")
            .map(|v| {
                v.split(':')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default(),
    )
}

/// Emulated SoftEnv database listing (`softenv`) → keys, or `None` when
/// SoftEnv is not installed or its database read faults.
pub fn softenv_keys(sess: &Session<'_>, attempt: u32) -> Option<Vec<String>> {
    let site = sess.site;
    if site.config.env_mgmt != EnvMgmt::SoftEnv {
        return None;
    }
    if sess
        .roll_fault(crate::faults::Chokepoint::ModuleDb, "softenv.db", attempt)
        .is_some()
    {
        return None;
    }
    let db = site.vfs.read_text("/etc/softenv/softenv.db").ok()?;
    Some(
        db.lines()
            .filter(|l| l.starts_with('+'))
            .filter_map(|l| l.split_whitespace().next())
            .map(|k| k.trim_start_matches('+').to_string())
            .collect(),
    )
}

/// Structured information parsed from a compiler/MPI wrapper executable
/// (emulating `mpicc -V` plus path-name inference).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrapperInfo {
    pub kind: String,
    pub mpi: String,
    pub mpi_version: String,
    pub compiler: String,
    pub compiler_version: String,
    pub network: String,
    pub prefix: String,
}

/// Probe a wrapper executable (`<path> -V` equivalent).
pub fn wrapper_info(site: &Site, path: &str) -> Option<WrapperInfo> {
    if !site.vfs.is_executable(path) {
        return None;
    }
    let text = site.vfs.read_text(path).ok()?;
    if !text.starts_with("#!feam-sim-wrapper") {
        return None;
    }
    let get = |key: &str| -> Option<String> {
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("{key}=")))
            .map(str::to_string)
    };
    Some(WrapperInfo {
        kind: get("kind")?,
        mpi: get("mpi")?,
        mpi_version: get("mpi_version")?,
        compiler: get("compiler")?,
        compiler_version: get("compiler_version")?,
        network: get("network")?,
        prefix: get("prefix")?,
    })
}

/// Search the session `PATH` for an executable called `name` (emulated
/// `which`).
pub fn which(sess: &Session<'_>, name: &str) -> Option<String> {
    for dir in crate::site::env_dirs(&sess.env, "PATH") {
        let candidate = format!("{dir}/{name}");
        if sess.site.vfs.is_executable(&candidate) {
            return Some(candidate);
        }
    }
    None
}

/// Execute the C library binary directly and capture its banner (§V.B's
/// primary C-library-version discovery method).
pub fn run_libc_banner(sess: &Session<'_>, attempt: u32) -> Option<String> {
    let site = sess.site;
    if sess
        .roll_fault(
            crate::faults::Chokepoint::DescriptionFile,
            "libc-banner",
            attempt,
        )
        .is_some()
    {
        return None;
    }
    // Locate libc.so.6 the same way the BDC searches for libraries.
    let candidates = find_name(
        site,
        &["/lib64", "/lib", "/usr/lib64", "/usr/lib"],
        "libc.so.6",
    );
    if candidates.is_empty() {
        return None;
    }
    Some(crate::libc::libc_banner(
        &site.config.glibc,
        &site.config.os.pretty(),
    ))
}

/// Read a staged or installed binary for description (used by BDC).
pub fn read_binary(sess: &Session<'_>, path: &str) -> Option<Arc<Vec<u8>>> {
    sess.read_bytes(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpi::{MpiImpl, MpiStack, Network};
    use crate::site::{OsInfo, SiteConfig};
    use crate::toolchain::{Compiler, CompilerFamily};
    use feam_elf::HostArch;

    fn site(env: EnvMgmt) -> Site {
        let mut cfg = SiteConfig::new(
            "tools-test",
            HostArch::X86_64,
            OsInfo::new("SUSE Linux Enterprise Server", "11", "2.6.32.12"),
            "2.11.1",
            17,
        );
        cfg.env_mgmt = env;
        cfg.compilers = vec![Compiler::new(CompilerFamily::Gnu, "4.4.3")];
        cfg.stacks = vec![(
            MpiStack::new(
                MpiImpl::OpenMpi,
                "1.4",
                Compiler::new(CompilerFamily::Gnu, "4.4.3"),
                Network::Ethernet,
            ),
            true,
        )];
        Site::build(cfg)
    }

    #[test]
    fn uname_and_release_files() {
        let s = site(EnvMgmt::Modules);
        let sess = Session::new(&s);
        assert_eq!(uname_p(&s), "x86_64");
        assert!(proc_version(&sess, 1).unwrap().contains("SUSE"));
        assert!(etc_release(&sess, 1)
            .unwrap()
            .contains("SUSE Linux Enterprise Server 11"));
    }

    #[test]
    fn module_avail_lists_stacks() {
        let s = site(EnvMgmt::Modules);
        let sess = Session::new(&s);
        let mods = module_avail(&sess, 1).unwrap();
        assert!(mods.iter().any(|m| m.starts_with("openmpi-1.4")));
        assert!(softenv_keys(&sess, 1).is_none());
    }

    #[test]
    fn softenv_lists_stacks() {
        let s = site(EnvMgmt::SoftEnv);
        let sess = Session::new(&s);
        let keys = softenv_keys(&sess, 1).unwrap();
        assert!(keys.iter().any(|k| k.starts_with("openmpi-1.4")));
        assert!(module_avail(&sess, 1).is_none());
    }

    #[test]
    fn no_env_mgmt_returns_none_for_both() {
        let s = site(EnvMgmt::None);
        let sess = Session::new(&s);
        assert!(module_avail(&sess, 1).is_none());
        assert!(softenv_keys(&sess, 1).is_none());
    }

    #[test]
    fn description_faults_suppress_observations() {
        use crate::faults::FaultPlan;
        use std::sync::Arc;
        let s = site(EnvMgmt::Modules);
        let faulty = Session::with_faults(&s, Arc::new(FaultPlan::persistent_edc(1, 1.0)));
        assert!(proc_version(&faulty, 1).is_none());
        assert!(etc_release(&faulty, 1).is_none());
        assert!(run_libc_banner(&faulty, 1).is_none());
        assert!(module_avail(&faulty, 1).is_none());
        // The same reads succeed without the plan.
        let clean = Session::with_faults(&s, Arc::new(FaultPlan::none()));
        assert!(proc_version(&clean, 1).is_some());
        assert!(module_avail(&clean, 1).is_some());
    }

    #[test]
    fn module_list_reflects_session_state() {
        let s = site(EnvMgmt::Modules);
        let mut sess = Session::new(&s);
        assert_eq!(module_list(&sess).unwrap(), Vec::<String>::new());
        let ist = s.stacks[0].clone();
        sess.load_stack(&ist);
        assert_eq!(module_list(&sess).unwrap(), vec![ist.stack.ident()]);
    }

    #[test]
    fn wrapper_probe_parses_stack_identity() {
        let s = site(EnvMgmt::Modules);
        let ist = &s.stacks[0];
        let info = wrapper_info(&s, &format!("{}/mpicc", ist.bin_dir())).unwrap();
        assert_eq!(info.mpi, "openmpi");
        assert_eq!(info.mpi_version, "1.4");
        assert_eq!(info.compiler, "gnu");
        assert_eq!(info.prefix, ist.prefix);
        assert!(
            wrapper_info(&s, "/usr/bin/gcc").is_none(),
            "not an MPI wrapper"
        );
    }

    #[test]
    fn which_searches_session_path() {
        let s = site(EnvMgmt::Modules);
        let mut sess = Session::new(&s);
        assert!(which(&sess, "mpicc").is_none());
        let ist = s.stacks[0].clone();
        sess.load_stack(&ist);
        assert_eq!(
            which(&sess, "mpicc").unwrap(),
            format!("{}/mpicc", ist.bin_dir())
        );
    }

    #[test]
    fn libc_banner_reports_site_version() {
        let s = site(EnvMgmt::Modules);
        let sess = Session::new(&s);
        assert!(run_libc_banner(&sess, 1).unwrap().contains("2.11.1"));
    }

    #[test]
    fn locate_respects_presence_flag() {
        let mut cfg = SiteConfig::new(
            "no-locate",
            HostArch::X86_64,
            OsInfo::new("CentOS", "4.9", "2.6.9"),
            "2.3.4",
            3,
        );
        cfg.locate_present = false;
        let s = Site::build(cfg);
        assert!(locate(&s, "libc").is_none());
        let s2 = site(EnvMgmt::Modules);
        assert!(locate(&s2, "libc")
            .unwrap()
            .iter()
            .any(|p| p.ends_with("libc.so.6")));
    }

    #[test]
    fn ldd_flakiness_is_deterministic() {
        let mut cfg = SiteConfig::new(
            "flaky",
            HostArch::X86_64,
            OsInfo::new("CentOS", "5.6", "2.6.18"),
            "2.5",
            5,
        );
        cfg.compilers = vec![Compiler::new(CompilerFamily::Gnu, "4.1.2")];
        cfg.ldd_flaky_rate = 1.0; // always unrecognized
        let s = Site::build(cfg);
        let mut sess = Session::new(&s);
        let img = crate::compile::compile(
            &s,
            None,
            &crate::compile::ProgramSpec::serial_hello_world(),
            1,
        )
        .unwrap()
        .image;
        sess.stage_file("/home/user/x", img);
        assert_eq!(ldd(&sess, "/home/user/x"), LddResult::NotRecognized);
    }

    #[test]
    fn ldd_resolves_when_reliable() {
        let mut cfg = SiteConfig::new(
            "reliable",
            HostArch::X86_64,
            OsInfo::new("CentOS", "5.6", "2.6.18"),
            "2.5",
            5,
        );
        cfg.compilers = vec![Compiler::new(CompilerFamily::Gnu, "4.1.2")];
        cfg.ldd_flaky_rate = 0.0;
        let s = Site::build(cfg);
        let mut sess = Session::new(&s);
        let img = crate::compile::compile(
            &s,
            None,
            &crate::compile::ProgramSpec::serial_hello_world(),
            1,
        )
        .unwrap()
        .image;
        sess.stage_file("/home/user/x", img);
        match ldd(&sess, "/home/user/x") {
            LddResult::Resolved(map) => {
                assert!(map.iter().any(|(n, p)| n == "libc.so.6" && p.is_some()));
            }
            other => panic!("expected Resolved, got {other:?}"),
        }
    }

    #[test]
    fn ldd_not_present() {
        let mut cfg = SiteConfig::new(
            "noldd",
            HostArch::X86_64,
            OsInfo::new("CentOS", "5.6", "2.6.18"),
            "2.5",
            5,
        );
        cfg.ldd_present = false;
        let s = Site::build(cfg);
        let sess = Session::new(&s);
        assert_eq!(ldd(&sess, "/whatever"), LddResult::NotPresent);
    }
}
