//! Deterministic fault injection for the simulated sites.
//!
//! A [`FaultPlan`] is attached to a [`crate::site::Session`] and consulted at
//! the chokepoints FEAM actually exercises: VFS reads, `/proc`//`/etc`
//! description files, module/softenv databases, probe compiles, `mpiexec`
//! daemon spawns and batch-queue submissions. Every draw is a pure function
//! of `(plan seed, chokepoint, key, attempt)` via [`crate::rng`], so a chaos
//! run is exactly reproducible from its seed.
//!
//! Faults are tagged [`FaultKind::Transient`] (keyed by attempt number —
//! a retry re-rolls and can succeed) or [`FaultKind::Persistent`] (keyed by
//! the stable part only — retries keep failing), which is what makes
//! retry/backoff policies meaningfully testable.

use std::sync::{Arc, OnceLock};

use crate::rng;

/// Whether an injected fault clears on retry or sticks forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Re-rolled per attempt; a bounded retry loop can recover.
    Transient,
    /// Stable for the (seed, chokepoint, key) triple; retries cannot help.
    Persistent,
}

impl FaultKind {
    /// Short label used in telemetry events.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::Persistent => "persistent",
        }
    }
}

/// The places in the pipeline where faults can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chokepoint {
    /// Any `Session::read_bytes` — staged overlays and site files alike.
    VfsRead,
    /// `/proc/version`, `/etc/*release`, and the libc banner probe.
    DescriptionFile,
    /// Environment Modules / SoftEnv database reads.
    ModuleDb,
    /// Hello-world probe compiles (flaky license servers, NFS toolchains).
    ProbeCompile,
    /// `mpiexec` daemon spawn — the paper's §VI.C failure mode.
    DaemonSpawn,
    /// Batch queue `submit` rejections.
    QueueSubmit,
}

impl Chokepoint {
    /// Stable label used both in RNG keys and telemetry events.
    pub fn label(self) -> &'static str {
        match self {
            Chokepoint::VfsRead => "vfs_read",
            Chokepoint::DescriptionFile => "description_file",
            Chokepoint::ModuleDb => "module_db",
            Chokepoint::ProbeCompile => "probe_compile",
            Chokepoint::DaemonSpawn => "daemon_spawn",
            Chokepoint::QueueSubmit => "queue_submit",
        }
    }

    /// Every chokepoint, for iteration in sweeps and docs.
    pub const ALL: [Chokepoint; 6] = [
        Chokepoint::VfsRead,
        Chokepoint::DescriptionFile,
        Chokepoint::ModuleDb,
        Chokepoint::ProbeCompile,
        Chokepoint::DaemonSpawn,
        Chokepoint::QueueSubmit,
    ];
}

/// Per-chokepoint fault probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRate {
    /// Probability of a transient fault per attempt.
    pub transient: f64,
    /// Probability the (chokepoint, key) pair is persistently broken.
    pub persistent: f64,
}

impl FaultRate {
    /// A rate that never fires.
    pub fn zero() -> Self {
        FaultRate::default()
    }

    /// True when no fault can ever fire at this rate.
    pub fn is_zero(&self) -> bool {
        self.transient <= 0.0 && self.persistent <= 0.0
    }
}

/// A deterministic, seeded schedule of faults across all chokepoints.
///
/// The default plan injects nothing; `Session::new` picks up the
/// process-wide plan from `FEAM_CHAOS_RATE`/`FEAM_CHAOS_SEED` (see
/// [`FaultPlan::from_env`]) so CI can chaos-test the whole suite without
/// code changes.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed mixed into every draw; independent of site seeds.
    pub seed: u64,
    pub vfs_read: FaultRate,
    pub description_file: FaultRate,
    pub module_db: FaultRate,
    pub probe_compile: FaultRate,
    pub daemon_spawn: FaultRate,
    pub queue_submit: FaultRate,
}

impl FaultPlan {
    /// A plan that injects nothing (the default).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when no chokepoint can ever fault — the fast path.
    pub fn is_none(&self) -> bool {
        Chokepoint::ALL.iter().all(|&c| self.rate(c).is_zero())
    }

    /// Transient-only chaos at `rate` across the retry-covered chokepoints.
    ///
    /// VFS reads are left alone: `read_bytes` has no attempt axis, so a
    /// "transient" VFS fault would stick to its path for the whole run.
    /// Drive VFS faults explicitly (e.g. [`FaultPlan::persistent_vfs`])
    /// in targeted tests instead.
    pub fn chaos(seed: u64, rate: f64) -> Self {
        let r = FaultRate {
            transient: rate,
            persistent: 0.0,
        };
        FaultPlan {
            seed,
            vfs_read: FaultRate::zero(),
            description_file: r,
            module_db: r,
            probe_compile: r,
            daemon_spawn: r,
            queue_submit: r,
        }
    }

    /// Persistent EDC description-file faults at `rate` (1.0 = every
    /// description read fails, forever). Module databases are included:
    /// both feed the environment description.
    pub fn persistent_edc(seed: u64, rate: f64) -> Self {
        let r = FaultRate {
            transient: 0.0,
            persistent: rate,
        };
        FaultPlan {
            seed,
            description_file: r,
            module_db: r,
            ..FaultPlan::default()
        }
    }

    /// Persistent VFS read faults at `rate` — makes staged binaries and
    /// libraries unreadable.
    pub fn persistent_vfs(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            vfs_read: FaultRate {
                transient: 0.0,
                persistent: rate,
            },
            ..FaultPlan::default()
        }
    }

    /// Build a plan from `FEAM_CHAOS_RATE` / `FEAM_CHAOS_SEED`.
    ///
    /// Restricted to the transient, retry-covered chokepoints (probe
    /// compiles, daemon spawns, queue submissions) so that exact-outcome
    /// unit tests keep passing while the retry paths stay exercised.
    /// Returns [`FaultPlan::none`] when the rate is unset or unparsable.
    pub fn from_env() -> Self {
        Self::from_env_values(
            std::env::var("FEAM_CHAOS_RATE").ok().as_deref(),
            std::env::var("FEAM_CHAOS_SEED").ok().as_deref(),
        )
    }

    /// The testable core of [`FaultPlan::from_env`]: build a plan from the
    /// raw variable values. Malformed input never panics — an empty,
    /// non-numeric, negative or non-finite rate falls back to the silent
    /// plan with a stderr warning, a rate above 1.0 clamps to 1.0, and a
    /// malformed seed falls back to seed 1.
    pub fn from_env_values(rate: Option<&str>, seed: Option<&str>) -> Self {
        let Some(raw_rate) = rate.map(str::trim).filter(|r| !r.is_empty()) else {
            return FaultPlan::none();
        };
        let rate = match raw_rate.parse::<f64>() {
            Ok(r) if r.is_finite() && r > 1.0 => {
                eprintln!("feam-sim: FEAM_CHAOS_RATE={raw_rate} is above 1.0; clamping to 1.0");
                1.0
            }
            Ok(r) if r.is_finite() && r > 0.0 => r,
            Ok(r) => {
                if r != 0.0 {
                    eprintln!(
                        "feam-sim: FEAM_CHAOS_RATE={raw_rate} is not a probability in [0, 1]; \
                         chaos disabled"
                    );
                }
                return FaultPlan::none();
            }
            Err(_) => {
                eprintln!("feam-sim: FEAM_CHAOS_RATE={raw_rate} is not a number; chaos disabled");
                return FaultPlan::none();
            }
        };
        let seed = match seed.map(str::trim).filter(|s| !s.is_empty()) {
            None => 1,
            Some(raw) => raw.parse::<u64>().unwrap_or_else(|_| {
                eprintln!("feam-sim: FEAM_CHAOS_SEED={raw} is not a u64; using seed 1");
                1
            }),
        };
        let r = FaultRate {
            transient: rate,
            persistent: 0.0,
        };
        FaultPlan {
            seed,
            probe_compile: r,
            daemon_spawn: r,
            queue_submit: r,
            ..FaultPlan::default()
        }
    }

    /// The configured rate for a chokepoint.
    pub fn rate(&self, c: Chokepoint) -> FaultRate {
        match c {
            Chokepoint::VfsRead => self.vfs_read,
            Chokepoint::DescriptionFile => self.description_file,
            Chokepoint::ModuleDb => self.module_db,
            Chokepoint::ProbeCompile => self.probe_compile,
            Chokepoint::DaemonSpawn => self.daemon_spawn,
            Chokepoint::QueueSubmit => self.queue_submit,
        }
    }

    /// Roll for a fault at `c` identified by `key`, on retry `attempt`.
    ///
    /// Persistent faults are drawn first from the stable
    /// `(chokepoint, key)` pair; transient faults additionally mix in the
    /// attempt number, so each retry gets a fresh draw.
    pub fn roll(&self, c: Chokepoint, key: &str, attempt: u32) -> Option<FaultKind> {
        let rate = self.rate(c);
        if rate.persistent > 0.0
            && rng::chance(self.seed, &[c.label(), key, "persistent"], rate.persistent)
        {
            return Some(FaultKind::Persistent);
        }
        if rate.transient > 0.0
            && rng::chance(
                self.seed,
                &[c.label(), key, "transient", &attempt.to_string()],
                rate.transient,
            )
        {
            return Some(FaultKind::Transient);
        }
        None
    }
}

/// The process-wide default plan, read once from the environment.
///
/// `Session::new` attaches this so `FEAM_CHAOS_RATE=0.05 cargo test`
/// chaos-tests every session without plumbing changes.
pub fn default_plan() -> Arc<FaultPlan> {
    static PLAN: OnceLock<Arc<FaultPlan>> = OnceLock::new();
    PLAN.get_or_init(|| Arc::new(FaultPlan::from_env())).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_silent() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        for c in Chokepoint::ALL {
            for attempt in 1..=5 {
                assert_eq!(p.roll(c, "anything", attempt), None);
            }
        }
    }

    #[test]
    fn persistent_faults_survive_retries() {
        let p = FaultPlan::persistent_edc(9, 1.0);
        for attempt in 1..=10 {
            assert_eq!(
                p.roll(Chokepoint::DescriptionFile, "/proc/version", attempt),
                Some(FaultKind::Persistent)
            );
        }
        // Other chokepoints untouched.
        assert_eq!(p.roll(Chokepoint::ProbeCompile, "x", 1), None);
    }

    #[test]
    fn transient_faults_rerolled_per_attempt() {
        let p = FaultPlan::chaos(3, 0.5);
        let draws: Vec<bool> = (1..=32)
            .map(|a| p.roll(Chokepoint::DaemonSpawn, "job", a).is_some())
            .collect();
        // At rate 0.5 over 32 attempts both outcomes must appear — the
        // attempt number genuinely re-rolls the draw.
        assert!(draws.iter().any(|&d| d));
        assert!(draws.iter().any(|&d| !d));
        // And every fault is tagged transient.
        for a in 1..=32 {
            if let Some(kind) = p.roll(Chokepoint::DaemonSpawn, "job", a) {
                assert_eq!(kind, FaultKind::Transient);
            }
        }
    }

    #[test]
    fn rolls_are_deterministic_and_key_sensitive() {
        let p = FaultPlan::chaos(11, 0.4);
        for a in 1..=8 {
            assert_eq!(
                p.roll(Chokepoint::ProbeCompile, "hello@openmpi", a),
                p.roll(Chokepoint::ProbeCompile, "hello@openmpi", a)
            );
        }
        let hits_a = (1..=64)
            .filter(|&a| p.roll(Chokepoint::ProbeCompile, "a", a).is_some())
            .count();
        let hits_b = (1..=64)
            .filter(|&a| p.roll(Chokepoint::ProbeCompile, "b", a).is_some())
            .count();
        // Different keys see different fault schedules (overwhelmingly).
        assert_ne!(
            (1..=64)
                .map(|a| p.roll(Chokepoint::ProbeCompile, "a", a).is_some())
                .collect::<Vec<_>>(),
            (1..=64)
                .map(|a| p.roll(Chokepoint::ProbeCompile, "b", a).is_some())
                .collect::<Vec<_>>()
        );
        // Both keys fault at roughly the configured rate.
        assert!(hits_a > 0 && hits_a < 64);
        assert!(hits_b > 0 && hits_b < 64);
    }

    #[test]
    fn env_plan_parses_well_formed_values() {
        let p = FaultPlan::from_env_values(Some("0.05"), Some("7"));
        assert_eq!(p.seed, 7);
        assert_eq!(p.probe_compile.transient, 0.05);
        assert_eq!(p.daemon_spawn.transient, 0.05);
        assert_eq!(p.queue_submit.transient, 0.05);
        assert!(p.vfs_read.is_zero(), "VFS reads stay out of ambient chaos");
    }

    #[test]
    fn env_plan_unset_or_empty_rate_is_silent() {
        assert!(FaultPlan::from_env_values(None, None).is_none());
        assert!(FaultPlan::from_env_values(Some(""), Some("3")).is_none());
        assert!(FaultPlan::from_env_values(Some("   "), None).is_none());
        assert!(FaultPlan::from_env_values(Some("0"), None).is_none());
        assert!(FaultPlan::from_env_values(Some("0.0"), None).is_none());
    }

    #[test]
    fn env_plan_non_numeric_rate_disables_chaos() {
        assert!(FaultPlan::from_env_values(Some("lots"), None).is_none());
        assert!(FaultPlan::from_env_values(Some("0.05%"), None).is_none());
        assert!(FaultPlan::from_env_values(Some("NaN"), None).is_none());
    }

    #[test]
    fn env_plan_negative_rate_disables_chaos() {
        assert!(FaultPlan::from_env_values(Some("-0.3"), None).is_none());
        assert!(FaultPlan::from_env_values(Some("-inf"), None).is_none());
    }

    #[test]
    fn env_plan_rate_above_one_clamps() {
        let p = FaultPlan::from_env_values(Some("1.7"), None);
        assert_eq!(p.probe_compile.transient, 1.0);
        let p = FaultPlan::from_env_values(Some("inf"), None);
        assert!(p.is_none(), "a non-finite rate cannot clamp meaningfully");
    }

    #[test]
    fn env_plan_malformed_seed_falls_back_to_one() {
        let p = FaultPlan::from_env_values(Some("0.1"), Some("not-a-seed"));
        assert_eq!(p.seed, 1);
        let p = FaultPlan::from_env_values(Some("0.1"), Some("-4"));
        assert_eq!(p.seed, 1);
        let p = FaultPlan::from_env_values(Some("0.1"), Some(""));
        assert_eq!(p.seed, 1);
    }

    #[test]
    fn chaos_plan_leaves_vfs_alone() {
        let p = FaultPlan::chaos(5, 1.0);
        assert_eq!(p.roll(Chokepoint::VfsRead, "/lib64/libc.so.6", 1), None);
        assert!(p
            .roll(Chokepoint::DescriptionFile, "/proc/version", 1)
            .is_some());
    }
}
