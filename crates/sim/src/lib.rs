//! # feam-sim — simulated Unix computing sites
//!
//! The substrate that replaces the paper's five physical HPC systems
//! (Ranger, Forge, Blacklight, FutureGrid India, ITS Fir): an in-memory
//! model of everything FEAM can observe or do at a site.
//!
//! * [`vfs`] — a virtual filesystem holding `/proc`, `/etc`, module
//!   databases, wrappers and genuine ELF library images.
//! * [`site`] — immutable [`site::Site`]s materialized from a
//!   [`site::SiteConfig`]; cheap per-migration [`site::Session`] overlays
//!   carry environment variables and staged library copies.
//! * [`toolchain`] / [`mpi`] / [`libc`] — the compiler-runtime, MPI-stack
//!   and glibc domain models (Table I signatures, GLIBC/GLIBCXX version
//!   ladders, ABI markers).
//! * [`mod@compile`] — the simulated toolchain that emits real ELF binaries
//!   whose link footprint reflects the build environment.
//! * [`loader`] — an `ld.so` model (search order, soname matching, GNU
//!   version references, symbol binding) producing ground truth.
//! * [`exec`] — job launches with the paper's failure taxonomy and
//!   five-attempt retry discipline.
//! * [`faults`] — deterministic seeded fault injection ([`faults::FaultPlan`])
//!   at the pipeline's chokepoints, tagged transient vs persistent.
//! * [`tools`] — emulated `uname`, `ldd`, `locate`, `find`, Environment
//!   Modules, SoftEnv, wrapper probing.
//!
//! Determinism: all sampling flows from site seeds via [`rng`]; identical
//! seeds give byte-identical sites, binaries and outcomes.
//!
//! ```
//! use feam_sim::compile::{compile, ProgramSpec};
//! use feam_sim::exec::{run_mpi, DEFAULT_ATTEMPTS};
//! use feam_sim::mpi::{MpiImpl, MpiStack, Network};
//! use feam_sim::site::{OsInfo, Session, Site, SiteConfig};
//! use feam_sim::toolchain::{Compiler, CompilerFamily, Language};
//!
//! // Materialize a small site, compile a program there, and run it.
//! let mut cfg = SiteConfig::new("demo", feam_elf::HostArch::X86_64,
//!     OsInfo::new("CentOS", "5.6", "2.6.18-238.el5"), "2.5", 7);
//! cfg.system_error_rate = 0.0;
//! cfg.compilers = vec![Compiler::new(CompilerFamily::Gnu, "4.1.2")];
//! cfg.stacks = vec![(MpiStack::new(MpiImpl::OpenMpi, "1.4",
//!     Compiler::new(CompilerFamily::Gnu, "4.1.2"), Network::Ethernet), true)];
//! let site = Site::build(cfg);
//!
//! let stack = site.stacks[0].clone();
//! let bin = compile(&site, Some(&stack), &ProgramSpec::new("demo", Language::C), 7).unwrap();
//! let mut sess = Session::new(&site);
//! sess.load_stack(&stack);
//! sess.stage_file("/home/user/demo", bin.image.clone());
//! assert!(run_mpi(&mut sess, "/home/user/demo", &stack, 4, DEFAULT_ATTEMPTS).success);
//! ```

pub mod compile;
pub mod exec;
pub mod faults;
pub mod libc;
pub mod libgen;
pub mod loader;
pub mod mpi;
pub mod queue;
pub mod rng;
pub mod site;
pub mod stamp;
pub mod toolchain;
pub mod tools;
pub mod vfs;
pub mod vocab;

pub use compile::{
    compile, compile_variant, BinaryVariant, CompileError, CompiledBinary, ProgramSpec,
};
pub use exec::{run_mpi, run_serial, ExecOutcome, FailureCause, SystemErrorKind, DEFAULT_ATTEMPTS};
pub use faults::{Chokepoint, FaultKind, FaultPlan, FaultRate};
pub use loader::{ldd_map, resolve_closure, Closure, LoadError, ObjectMeta};
pub use mpi::{MpiImpl, MpiStack, Network};
pub use queue::{submit, QueueOutcome, QueueSpec};
pub use site::{EnvMap, EnvMgmt, InstalledStack, OsInfo, Session, Site, SiteConfig};
pub use toolchain::{Compiler, CompilerFamily, Language};
pub use vfs::{Content, Vfs};
