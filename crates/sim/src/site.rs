//! The simulated computing site: an immutable, fully-materialized model of
//! one cluster's login/compute environment.
//!
//! Everything FEAM can observe at a site lives in the site's [`Vfs`] or its
//! default environment variables: `/proc` and `/etc` description files, the
//! installed glibc, compiler runtimes and MPI stacks (as genuine ELF
//! images), module/softenv databases, and compiler wrappers. Per-migration
//! mutable state (selected stack, staged library copies) lives in a cheap
//! [`Session`] overlay so the evaluation can fan out across threads.

use crate::libc;
use crate::libgen::build_library;
use crate::loader::ObjectMeta;
use crate::mpi::{infiniband_blueprints, MpiStack, Network};
use crate::rng;
use crate::toolchain::{runtime_blueprints, Compiler, CompilerFamily};
use crate::vfs::{Content, Vfs};
use feam_elf::{Endian, HostArch, VersionName};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Environment variables of a shell.
pub type EnvMap = BTreeMap<String, String>;

/// Prepend `dir` to a `:`-separated path variable.
pub fn env_prepend(env: &mut EnvMap, key: &str, dir: &str) {
    let old = env.get(key).cloned().unwrap_or_default();
    let new = if old.is_empty() {
        dir.to_string()
    } else {
        format!("{dir}:{old}")
    };
    env.insert(key.to_string(), new);
}

/// Split a `:`-separated path variable into directories.
pub fn env_dirs(env: &EnvMap, key: &str) -> Vec<String> {
    env.get(key)
        .map(|v| {
            v.split(':')
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default()
}

/// Operating-system identity of a site (Table II column 2).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct OsInfo {
    /// Distribution family, e.g. `CentOS`.
    pub distro: String,
    /// Release, e.g. `4.9`.
    pub release: String,
    /// Kernel version string.
    pub kernel: String,
}

impl OsInfo {
    pub fn new(distro: &str, release: &str, kernel: &str) -> Self {
        OsInfo {
            distro: distro.into(),
            release: release.into(),
            kernel: kernel.into(),
        }
    }

    /// One-line description, e.g. `CentOS 4.9`.
    pub fn pretty(&self) -> String {
        format!("{} {}", self.distro, self.release)
    }

    /// The `/etc/*release` file (path, contents) this distribution ships.
    pub fn release_file(&self) -> (String, String) {
        match self.distro.as_str() {
            "CentOS" => (
                "/etc/redhat-release".into(),
                format!("CentOS release {} (Final)", self.release),
            ),
            "Red Hat Enterprise Linux Server" => (
                "/etc/redhat-release".into(),
                format!(
                    "Red Hat Enterprise Linux Server release {} (Tikanga)",
                    self.release
                ),
            ),
            "SUSE Linux Enterprise Server" => (
                "/etc/SuSE-release".into(),
                format!(
                    "SUSE Linux Enterprise Server {} (x86_64)\nVERSION = {}",
                    self.release, self.release
                ),
            ),
            _ => (
                "/etc/os-release".into(),
                format!("NAME={}\nVERSION={}", self.distro, self.release),
            ),
        }
    }

    /// The `/proc/version` contents.
    pub fn proc_version(&self) -> String {
        format!(
            "Linux version {} (mockbuild@build) (gcc version 4.1.2) #1 SMP {}",
            self.kernel,
            self.pretty()
        )
    }
}

/// User-environment management system present at a site (§V.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum EnvMgmt {
    /// TCL Environment Modules (`module avail`, `module list`).
    Modules,
    /// ANL SoftEnv (`softenv`, `~/.soft`).
    SoftEnv,
    /// Neither — FEAM must fall back to filesystem search.
    None,
}

/// One MPI stack installation at a site.
#[derive(Debug, Clone)]
pub struct InstalledStack {
    pub stack: MpiStack,
    /// Install prefix, e.g. `/opt/openmpi-1.4.3-intel-11.1`.
    pub prefix: String,
    /// Module / softenv key, when the site has env management.
    pub module_name: Option<String>,
    /// False when the installation is misconfigured (advertised but
    /// unusable — §III.B's "possible for the MPI stack combination to not
    /// be useable").
    pub functional: bool,
}

impl InstalledStack {
    /// The stack's library directory.
    pub fn lib_dir(&self) -> String {
        format!("{}/lib", self.prefix)
    }

    /// The stack's binary (wrapper) directory.
    pub fn bin_dir(&self) -> String {
        format!("{}/bin", self.prefix)
    }
}

/// One compiler installation at a site.
#[derive(Debug, Clone)]
pub struct InstalledCompiler {
    pub compiler: Compiler,
    /// Directory holding the compiler's runtime shared libraries.
    pub lib_dir: String,
    /// Directory holding the compiler executables.
    pub bin_dir: String,
}

/// Configuration from which a [`Site`] is materialized.
#[derive(Debug, Clone)]
pub struct SiteConfig {
    pub name: String,
    /// Short description, e.g. `MPP – 62,976 CPUs`.
    pub description: String,
    pub arch: HostArch,
    pub os: OsInfo,
    /// Dotted glibc version, e.g. `2.3.4`.
    pub glibc: String,
    pub env_mgmt: EnvMgmt,
    pub compilers: Vec<Compiler>,
    /// (stack, functional) pairs.
    pub stacks: Vec<(MpiStack, bool)>,
    /// Probability a (binary, site) pair suffers a persistent system error
    /// (failed daemon spawning, communication timeouts) — the failure class
    /// §VI.C says the model cannot predict.
    pub system_error_rate: f64,
    /// Per-attempt probability of a transient launch failure (daemon spawn
    /// hiccup, momentary communication timeout) — the class the paper's
    /// "five execution attempts spaced in time" absorbs. Sweeps vary this
    /// instead of relying on a hard-coded constant.
    pub transient_error_rate: f64,
    /// Exact compiler-runtime versions whose binaries raise floating-point
    /// exceptions at this site (detected only by extended prediction's
    /// transported hello-world tests).
    pub fpe_triggers: Vec<(CompilerFamily, String)>,
    /// Additional compiler runtimes installed system-wide (distro compat
    /// packages / lingering older toolchains): libraries only, placed in
    /// the default library directories.
    pub compat_runtimes: Vec<Compiler>,
    /// Probability that a runtime/MPI library installed here was built
    /// against the site's full glibc level (making copies non-portable to
    /// older sites) rather than the architecture baseline.
    pub hot_glibc_bias: f64,
    /// Is `ldd` present at all?
    pub ldd_present: bool,
    /// Fraction of binaries `ldd` fails to recognise as dynamically linked
    /// (the paper's "cannot be relied on" caveat).
    pub ldd_flaky_rate: f64,
    /// Is `locate` present (with a fresh database)?
    pub locate_present: bool,
    /// Deterministic seed for everything site-specific.
    pub seed: u64,
}

impl SiteConfig {
    /// Reasonable defaults; callers override fields as needed.
    pub fn new(name: &str, arch: HostArch, os: OsInfo, glibc: &str, seed: u64) -> Self {
        SiteConfig {
            name: name.into(),
            description: String::new(),
            arch,
            os,
            glibc: glibc.into(),
            env_mgmt: EnvMgmt::Modules,
            compilers: Vec::new(),
            stacks: Vec::new(),
            system_error_rate: 0.03,
            transient_error_rate: 0.12,
            fpe_triggers: Vec::new(),
            compat_runtimes: Vec::new(),
            hot_glibc_bias: 0.5,
            ldd_present: true,
            ldd_flaky_rate: 0.1,
            locate_present: true,
            seed,
        }
    }

    /// Zero every stochastic fault knob (system errors, transient launch
    /// failures, flaky `ldd`). Generated conformance universes and any
    /// other harness that asserts exact outcome equality build their
    /// sites through this hook so nondeterminism is impossible by
    /// construction rather than by configuration discipline.
    pub fn deterministic(mut self) -> Self {
        self.system_error_rate = 0.0;
        self.transient_error_rate = 0.0;
        self.ldd_flaky_rate = 0.0;
        self
    }
}

/// A fully materialized site. Immutable after construction; share freely
/// across threads.
pub struct Site {
    pub config: SiteConfig,
    pub vfs: Vfs,
    pub stacks: Vec<InstalledStack>,
    pub compilers: Vec<InstalledCompiler>,
    /// Parsed metadata for every installed ELF, keyed by resolved path.
    meta: HashMap<String, Arc<ObjectMeta>>,
}

impl std::fmt::Debug for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Site")
            .field("name", &self.config.name)
            .field("stacks", &self.stacks.len())
            .finish()
    }
}

impl Site {
    /// Materialize a site from its configuration: populate `/proc`, `/etc`,
    /// glibc, compilers, MPI stacks, module databases and wrappers.
    pub fn build(config: SiteConfig) -> Self {
        let mut vfs = Vfs::new();
        let endian = Endian::Little; // all testbed architectures are LE
        let (machine, class) = config.arch.native_target();
        let seed = config.seed;

        for d in ["/tmp", "/home", "/proc", "/etc", "/usr/bin", "/bin"] {
            vfs.mkdir_p(d);
        }
        vfs.write_text("/proc/version", config.os.proc_version());
        vfs.write_text(
            "/proc/cpuinfo",
            format!("model name : generic {}\n", config.arch.uname_p()),
        );
        let (rel_path, rel_text) = config.os.release_file();
        vfs.write_text(&rel_path, rel_text);

        let lib_dir = match class {
            feam_elf::Class::Elf64 => "/lib64",
            feam_elf::Class::Elf32 => "/lib",
        };
        let usr_lib_dir = match class {
            feam_elf::Class::Elf64 => "/usr/lib64",
            feam_elf::Class::Elf32 => "/usr/lib",
        };

        // --- glibc family -------------------------------------------------
        for bp in libc::libc_blueprints(&config.glibc, class) {
            let mut bp = bp;
            bp.filename = bp.filename.replace("2.x", &config.glibc);
            install_blueprint(&mut vfs, lib_dir, &bp, machine, class, endian);
        }
        // Dynamic loader itself.
        vfs.write_executable(
            &format!("{lib_dir}/ld-{}.so", config.glibc),
            Arc::new(vec![0x7f, b'E', b'L', b'F']),
        );
        vfs.symlink(
            match class {
                feam_elf::Class::Elf64 => "/lib64/ld-linux-x86-64.so.2",
                feam_elf::Class::Elf32 => "/lib/ld-linux.so.2",
            },
            &format!("{lib_dir}/ld-{}.so", config.glibc),
        );

        // --- compilers -----------------------------------------------------
        let mut compilers = Vec::new();
        for c in &config.compilers {
            let (clib, cbin) = match c.family {
                CompilerFamily::Gnu => (usr_lib_dir.to_string(), "/usr/bin".to_string()),
                CompilerFamily::Intel => (
                    format!("/opt/intel/Compiler/{}/lib/intel64", c.version),
                    format!("/opt/intel/Compiler/{}/bin/intel64", c.version),
                ),
                CompilerFamily::Pgi => (
                    format!("/opt/pgi/linux86-64/{}/lib", c.version),
                    format!("/opt/pgi/linux86-64/{}/bin", c.version),
                ),
            };
            // Was each runtime library built against the site's full glibc
            // level or the architecture baseline? Decided per library — it
            // determines whether a copy of that library is portable to
            // older-glibc sites during resolution.
            let baseline = format!("GLIBC_{}", libc::baseline_for(class));
            let hot_ver = format!("GLIBC_{}", config.glibc);
            for mut bp in runtime_blueprints(c, &baseline, seed) {
                if rng::chance(
                    seed,
                    &[&c.ident(), &bp.soname, "hot-glibc"],
                    config.hot_glibc_bias,
                ) {
                    for imp in &mut bp.imports {
                        if imp.file == "libc.so.6" {
                            imp.version = Some(hot_ver.clone());
                        }
                    }
                }
                install_blueprint(&mut vfs, &clib, &bp, machine, class, endian);
            }
            vfs.write_executable(
                &format!("{cbin}/{}", c.family.cc()),
                Arc::new(compiler_driver_text(c).into_bytes()),
            );
            vfs.write_executable(
                &format!("{cbin}/{}", c.family.fc()),
                Arc::new(compiler_driver_text(c).into_bytes()),
            );
            compilers.push(InstalledCompiler {
                compiler: c.clone(),
                lib_dir: clib,
                bin_dir: cbin,
            });
        }

        // --- compat runtime packages (system lib dirs, loader-visible) -----
        for c in &config.compat_runtimes {
            let glibc_imp = format!("GLIBC_{}", libc::baseline_for(class));
            for bp in runtime_blueprints(c, &glibc_imp, seed) {
                // Never shadow the primary toolchain's files.
                let target = format!("{usr_lib_dir}/{}", bp.filename);
                if !vfs.exists(&target) {
                    install_blueprint(&mut vfs, usr_lib_dir, &bp, machine, class, endian);
                }
            }
        }

        // --- InfiniBand userspace (system level) ---------------------------
        if config
            .stacks
            .iter()
            .any(|(s, _)| s.network == Network::Infiniband)
        {
            let glibc_imp = format!("GLIBC_{}", libc::baseline_for(class));
            for bp in infiniband_blueprints(&glibc_imp) {
                install_blueprint(&mut vfs, usr_lib_dir, &bp, machine, class, endian);
            }
        }

        // --- MPI stacks ------------------------------------------------------
        let mut stacks = Vec::new();
        for (stack, functional) in &config.stacks {
            let prefix = stack.prefix();
            let libdir = if *functional {
                format!("{prefix}/lib")
            } else {
                // Misconfiguration: the libraries were moved aside (e.g. by
                // a botched upgrade); the module still advertises the stack.
                format!("{prefix}/lib.orig")
            };
            let baseline = format!("GLIBC_{}", libc::baseline_for(class));
            let hot_ver = format!("GLIBC_{}", config.glibc);
            for mut bp in stack.library_blueprints(&baseline, seed) {
                if rng::chance(
                    seed,
                    &[&stack.ident(), &bp.soname, "hot-glibc"],
                    config.hot_glibc_bias,
                ) {
                    for imp in &mut bp.imports {
                        if imp.file == "libc.so.6" {
                            imp.version = Some(hot_ver.clone());
                        }
                    }
                }
                install_blueprint(&mut vfs, &libdir, &bp, machine, class, endian);
            }
            vfs.mkdir_p(&format!("{prefix}/lib"));
            for w in stack.wrapper_names() {
                vfs.write_executable(
                    &format!("{prefix}/bin/{w}"),
                    Arc::new(wrapper_text(w, stack, &prefix).into_bytes()),
                );
            }
            let module_name = match config.env_mgmt {
                EnvMgmt::Modules | EnvMgmt::SoftEnv => Some(stack.ident()),
                EnvMgmt::None => None,
            };
            stacks.push(InstalledStack {
                stack: stack.clone(),
                prefix: prefix.clone(),
                module_name,
                functional: *functional,
            });
        }

        // --- env-management databases -----------------------------------------
        match config.env_mgmt {
            EnvMgmt::Modules => {
                for ist in &stacks {
                    let name = ist.module_name.as_deref().expect("modules site has names");
                    let comp_bin = compilers
                        .iter()
                        .find(|ic| ic.compiler == ist.stack.compiler)
                        .map(|ic| ic.bin_dir.clone())
                        .unwrap_or_default();
                    let comp_lib = compilers
                        .iter()
                        .find(|ic| ic.compiler == ist.stack.compiler)
                        .map(|ic| ic.lib_dir.clone())
                        .unwrap_or_default();
                    vfs.write_text(
                        &format!("/usr/share/Modules/modulefiles/mpi/{name}"),
                        format!(
                            "#%Module1.0\n\
                             module-whatis \"{} {} with {} {}\"\n\
                             prepend-path PATH {}/bin\n\
                             prepend-path PATH {comp_bin}\n\
                             prepend-path LD_LIBRARY_PATH {}/lib\n\
                             prepend-path LD_LIBRARY_PATH {comp_lib}\n",
                            ist.stack.mpi.name(),
                            ist.stack.version,
                            ist.stack.compiler.family.name(),
                            ist.stack.compiler.version,
                            ist.prefix,
                            ist.prefix,
                        ),
                    );
                }
            }
            EnvMgmt::SoftEnv => {
                let mut db = String::from("# softenv database\n");
                for ist in &stacks {
                    let name = ist.module_name.as_deref().expect("softenv site has names");
                    db.push_str(&format!(
                        "+{name} PATH={}/bin LD_LIBRARY_PATH={}/lib\n",
                        ist.prefix, ist.prefix
                    ));
                }
                vfs.write_text("/etc/softenv/softenv.db", db);
            }
            EnvMgmt::None => {}
        }

        // --- metadata cache over every ELF in the tree --------------------------
        let mut meta = HashMap::new();
        let paths: Vec<String> = vfs.all_paths().map(str::to_string).collect();
        for p in paths {
            if let Ok(Content::Bytes(bytes)) = vfs.read(&p) {
                if bytes.len() > 64 && bytes[..4] == [0x7f, b'E', b'L', b'F'] {
                    if let Ok(m) = ObjectMeta::parse(bytes) {
                        meta.insert(p.clone(), Arc::new(m));
                    }
                }
            }
        }

        Site {
            config,
            vfs,
            stacks,
            compilers,
            meta,
        }
    }

    /// Site name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// Glibc version as a [`VersionName`].
    pub fn glibc_version(&self) -> VersionName {
        libc::glibc_version(&self.config.glibc)
    }

    /// Default library directories searched by the loader (ld.so.cache
    /// stand-in).
    pub fn default_lib_dirs(&self) -> Vec<String> {
        match self.config.arch.native_target().1 {
            feam_elf::Class::Elf64 => vec!["/lib64".into(), "/usr/lib64".into()],
            feam_elf::Class::Elf32 => vec!["/lib".into(), "/usr/lib".into()],
        }
    }

    /// The login shell's default environment.
    pub fn default_env(&self) -> EnvMap {
        let mut env = EnvMap::new();
        env.insert("PATH".into(), "/usr/bin:/bin".into());
        env.insert("HOME".into(), "/home/user".into());
        env
    }

    /// Cached metadata for an installed ELF at `path` (resolved through
    /// symlinks).
    pub fn meta_for(&self, path: &str) -> Option<Arc<ObjectMeta>> {
        let (real, _) = self.vfs.resolve(path).ok()?;
        self.meta.get(&real).cloned()
    }

    /// Find the installed compiler matching `family` (any version).
    pub fn compiler(&self, family: CompilerFamily) -> Option<&InstalledCompiler> {
        self.compilers.iter().find(|c| c.compiler.family == family)
    }

    /// All installed stacks of a given MPI implementation.
    pub fn stacks_of(&self, mpi: crate::mpi::MpiImpl) -> Vec<&InstalledStack> {
        self.stacks.iter().filter(|s| s.stack.mpi == mpi).collect()
    }
}

/// Install one blueprint: real file + symlinks into `dir`.
fn install_blueprint(
    vfs: &mut Vfs,
    dir: &str,
    bp: &crate::toolchain::LibraryBlueprint,
    machine: feam_elf::Machine,
    class: feam_elf::Class,
    endian: Endian,
) {
    let img =
        build_library(bp, machine, class, endian).expect("blueprint must produce a valid ELF");
    let real = format!("{dir}/{}", bp.filename);
    vfs.write_bytes(&real, img);
    for link in &bp.links {
        if link != &bp.filename {
            vfs.symlink(&format!("{dir}/{link}"), &bp.filename);
        }
    }
}

/// Text body of a compiler driver executable (parsed by tool emulation).
fn compiler_driver_text(c: &Compiler) -> String {
    format!(
        "#!feam-sim-driver\nkind=compiler\nfamily={}\nversion={}\n",
        c.family.tag(),
        c.version
    )
}

/// Text body of an MPI wrapper executable (parsed by tool emulation; the
/// path-name inference trick of §V.B also works because the prefix encodes
/// the stack identity).
fn wrapper_text(kind: &str, stack: &MpiStack, prefix: &str) -> String {
    format!(
        "#!feam-sim-wrapper\nkind={kind}\nmpi={}\nmpi_version={}\ncompiler={}\ncompiler_version={}\nnetwork={}\nprefix={prefix}\n",
        stack.mpi.tag(),
        stack.version,
        stack.compiler.family.tag(),
        stack.compiler.version,
        stack.network.name(),
    )
}

/// A per-migration mutable view over an immutable [`Site`]: environment
/// variables, staged (copied-in) files, and CPU-time accounting.
#[derive(Clone)]
pub struct Session<'s> {
    pub site: &'s Site,
    pub env: EnvMap,
    /// Overlay files (library copies, submitted binaries): path → bytes.
    pub staged: BTreeMap<String, Arc<Vec<u8>>>,
    /// Accumulated simulated CPU seconds (for §VI.C's < 5 min statistic).
    pub cpu_seconds: f64,
    /// Trace/metrics sink for everything executed in this session
    /// (disabled — and nearly free — by default).
    pub recorder: feam_obs::Recorder,
    /// Deterministic fault-injection schedule consulted at every
    /// chokepoint this session touches. Defaults to the process-wide plan
    /// from `FEAM_CHAOS_RATE`/`FEAM_CHAOS_SEED` (silent when unset).
    pub faults: Arc<crate::faults::FaultPlan>,
    /// Number of injected faults that actually fired in this session.
    /// Cache layers compare before/after counts to refuse memoizing any
    /// computation a fault touched (see `feam-core::cache`).
    pub faults_seen: std::cell::Cell<u64>,
}

impl<'s> Session<'s> {
    /// New session with the site's default login environment.
    pub fn new(site: &'s Site) -> Self {
        Session {
            site,
            env: site.default_env(),
            staged: BTreeMap::new(),
            cpu_seconds: 0.0,
            recorder: feam_obs::Recorder::disabled(),
            faults: crate::faults::default_plan(),
            faults_seen: std::cell::Cell::new(0),
        }
    }

    /// New session with an attached trace recorder.
    pub fn with_recorder(site: &'s Site, recorder: feam_obs::Recorder) -> Self {
        let mut sess = Session::new(site);
        sess.recorder = recorder;
        sess
    }

    /// New session with an explicit fault plan.
    pub fn with_faults(site: &'s Site, faults: Arc<crate::faults::FaultPlan>) -> Self {
        let mut sess = Session::new(site);
        sess.faults = faults;
        sess
    }

    /// Roll for an injected fault and, if one fires, record it in the
    /// session's telemetry. Returns the fault kind so callers decide how
    /// the failure manifests at their chokepoint.
    pub fn roll_fault(
        &self,
        c: crate::faults::Chokepoint,
        key: &str,
        attempt: u32,
    ) -> Option<crate::faults::FaultKind> {
        // Scope the draw to this site: the same chokepoint key (e.g.
        // "/proc/version") must fault independently at different sites,
        // not globally for every session sharing the plan seed.
        let scoped = format!("{}:{}", self.site.name(), key);
        let kind = self.faults.roll(c, &scoped, attempt)?;
        self.faults_seen.set(self.faults_seen.get() + 1);
        self.recorder.event(
            "fault_injected",
            &[
                ("chokepoint", c.label().into()),
                ("key", key.into()),
                ("kind", kind.label().into()),
                ("attempt", attempt.into()),
            ],
        );
        self.recorder.count("faults.injected", 1);
        self.recorder.count(&format!("faults.{}", c.label()), 1);
        Some(kind)
    }

    /// Apply a stack selection (`module load` equivalent): prepend the
    /// stack's bin/lib dirs and its compiler's bin/lib dirs.
    pub fn load_stack(&mut self, ist: &InstalledStack) {
        env_prepend(&mut self.env, "PATH", &ist.bin_dir());
        env_prepend(&mut self.env, "LD_LIBRARY_PATH", &ist.lib_dir());
        if let Some(ic) = self.site.compiler(ist.stack.compiler.family) {
            env_prepend(&mut self.env, "PATH", &ic.bin_dir);
            env_prepend(&mut self.env, "LD_LIBRARY_PATH", &ic.lib_dir);
        }
        self.env.insert("LOADEDMODULES".into(), ist.stack.ident());
        self.charge(0.05);
    }

    /// Stage a file into the session overlay.
    pub fn stage_file(&mut self, path: &str, bytes: Arc<Vec<u8>>) {
        self.staged.insert(crate::vfs::normalize(path), bytes);
        self.charge(0.01);
    }

    /// Stable content hash of a staged file (the content-addressed cache
    /// identity of a migrated binary). Reads the overlay directly, so
    /// injected VFS faults cannot perturb the identity of the bytes.
    pub fn staged_content_hash(&self, path: &str) -> Option<u64> {
        self.staged
            .get(&crate::vfs::normalize(path))
            .map(|b| crate::rng::fnv1a(b))
    }

    /// Read a file: overlay first, then the site filesystem. An injected
    /// VFS fault makes the read fail as if the file were unreadable —
    /// staged overlays included (NFS does not care who wrote the file).
    pub fn read_bytes(&self, path: &str) -> Option<Arc<Vec<u8>>> {
        let norm = crate::vfs::normalize(path);
        if self
            .roll_fault(crate::faults::Chokepoint::VfsRead, &norm, 1)
            .is_some()
        {
            return None;
        }
        if let Some(b) = self.staged.get(&norm) {
            return Some(b.clone());
        }
        match self.site.vfs.read(&norm).ok()? {
            Content::Bytes(b) => Some(b.clone()),
            Content::Text(t) => Some(Arc::new(t.as_bytes().to_vec())),
        }
    }

    /// Does a path exist in overlay or site?
    pub fn exists(&self, path: &str) -> bool {
        let norm = crate::vfs::normalize(path);
        self.staged.contains_key(&norm) || self.site.vfs.exists(&norm)
    }

    /// Directories currently on `LD_LIBRARY_PATH`.
    pub fn ld_library_path(&self) -> Vec<String> {
        env_dirs(&self.env, "LD_LIBRARY_PATH")
    }

    /// Add simulated CPU time.
    pub fn charge(&mut self, seconds: f64) {
        self.cpu_seconds += seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpi::MpiImpl;

    fn tiny_site() -> Site {
        let mut cfg = SiteConfig::new(
            "testsite",
            HostArch::X86_64,
            OsInfo::new("CentOS", "5.6", "2.6.18-238.el5"),
            "2.5",
            7,
        );
        cfg.compilers = vec![
            Compiler::new(CompilerFamily::Gnu, "4.1.2"),
            Compiler::new(CompilerFamily::Intel, "11.1"),
        ];
        cfg.stacks = vec![
            (
                MpiStack::new(
                    MpiImpl::OpenMpi,
                    "1.4",
                    Compiler::new(CompilerFamily::Gnu, "4.1.2"),
                    Network::Ethernet,
                ),
                true,
            ),
            (
                MpiStack::new(
                    MpiImpl::Mvapich2,
                    "1.7a",
                    Compiler::new(CompilerFamily::Intel, "11.1"),
                    Network::Infiniband,
                ),
                false, // misconfigured
            ),
        ];
        Site::build(cfg)
    }

    #[test]
    fn site_has_os_description_files() {
        let s = tiny_site();
        assert!(s
            .vfs
            .read_text("/proc/version")
            .unwrap()
            .contains("CentOS 5.6"));
        assert!(s
            .vfs
            .read_text("/etc/redhat-release")
            .unwrap()
            .contains("5.6"));
    }

    #[test]
    fn glibc_installed_with_symlink() {
        let s = tiny_site();
        assert!(s.vfs.exists("/lib64/libc.so.6"));
        let meta = s.meta_for("/lib64/libc.so.6").unwrap();
        assert_eq!(meta.soname.as_deref(), Some("libc.so.6"));
        assert!(meta.version_defs.iter().any(|d| d == "GLIBC_2.5"));
        assert!(!meta.version_defs.iter().any(|d| d == "GLIBC_2.7"));
    }

    #[test]
    fn functional_stack_libs_in_lib_dir() {
        let s = tiny_site();
        let om = &s.stacks[0];
        assert!(om.functional);
        assert!(s.vfs.exists(&format!("{}/libmpi.so.0", om.lib_dir())));
        assert!(s.vfs.is_executable(&format!("{}/mpicc", om.bin_dir())));
    }

    #[test]
    fn misconfigured_stack_libs_moved_aside() {
        let s = tiny_site();
        let mv = &s.stacks[1];
        assert!(!mv.functional);
        assert!(!s.vfs.exists(&format!("{}/libmpich.so.1.2", mv.lib_dir())));
        assert!(s
            .vfs
            .exists(&format!("{}/lib.orig/libmpich.so.1.2", mv.prefix)));
        // The module still advertises it.
        assert!(s.vfs.exists(&format!(
            "/usr/share/Modules/modulefiles/mpi/{}",
            mv.stack.ident()
        )));
    }

    #[test]
    fn intel_runtime_installed_under_opt() {
        let s = tiny_site();
        let intel = s.compiler(CompilerFamily::Intel).unwrap();
        assert!(intel.lib_dir.starts_with("/opt/intel"));
        assert!(s.vfs.exists(&format!("{}/libimf.so", intel.lib_dir)));
        let meta = s.meta_for(&format!("{}/libimf.so", intel.lib_dir)).unwrap();
        assert!(meta.exports.iter().any(|(n, _)| n == "__intel_rt_v11"));
    }

    #[test]
    fn infiniband_libs_present_because_mvapich_stack_exists() {
        let s = tiny_site();
        assert!(s.vfs.exists("/usr/lib64/libibverbs.so.1"));
    }

    #[test]
    fn session_stack_loading_sets_paths() {
        let s = tiny_site();
        let mut sess = Session::new(&s);
        assert!(sess.ld_library_path().is_empty());
        let om = s.stacks[0].clone();
        sess.load_stack(&om);
        let ld = sess.ld_library_path();
        assert!(ld.contains(&om.lib_dir()));
        // Compiler lib dir is added too.
        assert!(ld.iter().any(|d| d.contains("/usr/lib64")));
        assert!(sess.cpu_seconds > 0.0);
    }

    #[test]
    fn session_overlay_shadows_site() {
        let s = tiny_site();
        let mut sess = Session::new(&s);
        assert!(!sess.exists("/staging/libfoo.so.1"));
        sess.stage_file("/staging/libfoo.so.1", Arc::new(vec![1, 2, 3]));
        assert!(sess.exists("/staging/libfoo.so.1"));
        assert_eq!(
            sess.read_bytes("/staging/libfoo.so.1").unwrap().as_slice(),
            &[1, 2, 3]
        );
    }

    #[test]
    fn stacks_of_filters_by_impl() {
        let s = tiny_site();
        assert_eq!(s.stacks_of(MpiImpl::OpenMpi).len(), 1);
        assert_eq!(s.stacks_of(MpiImpl::Mpich2).len(), 0);
    }

    #[test]
    fn env_prepend_and_dirs() {
        let mut env = EnvMap::new();
        env_prepend(&mut env, "PATH", "/a");
        env_prepend(&mut env, "PATH", "/b");
        assert_eq!(env_dirs(&env, "PATH"), vec!["/b", "/a"]);
        assert!(env_dirs(&env, "NOPE").is_empty());
    }
}
