//! Compiler families and their runtime shared libraries.
//!
//! The paper's MPI stacks pair an MPI implementation with a compiler (GNU,
//! Intel, or PGI). The compiler choice determines which *runtime* libraries
//! a binary is linked against — `libgfortran`, `libimf`, `libpgf90`, … —
//! and those runtime libraries are one of the two big structural sources of
//! missing-shared-library failures when binaries migrate (the other being
//! MPI libraries themselves).

use crate::rng;
use feam_elf::{DefinedVersion, ExportSpec, ImportSpec};
use serde::{Deserialize, Serialize};

/// Compiler family, per Table II's i/g/p annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompilerFamily {
    Gnu,
    Intel,
    Pgi,
}

impl CompilerFamily {
    /// The single-letter tag Table II uses.
    pub fn letter(self) -> char {
        match self {
            CompilerFamily::Gnu => 'g',
            CompilerFamily::Intel => 'i',
            CompilerFamily::Pgi => 'p',
        }
    }

    /// Human name.
    pub fn name(self) -> &'static str {
        match self {
            CompilerFamily::Gnu => "GNU",
            CompilerFamily::Intel => "Intel",
            CompilerFamily::Pgi => "PGI",
        }
    }

    /// Lower-case tag used in install prefixes (`/opt/openmpi-1.4.3-intel`).
    pub fn tag(self) -> &'static str {
        match self {
            CompilerFamily::Gnu => "gnu",
            CompilerFamily::Intel => "intel",
            CompilerFamily::Pgi => "pgi",
        }
    }

    /// C compiler executable name.
    pub fn cc(self) -> &'static str {
        match self {
            CompilerFamily::Gnu => "gcc",
            CompilerFamily::Intel => "icc",
            CompilerFamily::Pgi => "pgcc",
        }
    }

    /// Fortran compiler executable name.
    pub fn fc(self) -> &'static str {
        match self {
            CompilerFamily::Gnu => "gfortran",
            CompilerFamily::Intel => "ifort",
            CompilerFamily::Pgi => "pgf90",
        }
    }
}

/// A concrete compiler installation, e.g. Intel 11.1 or GNU 4.1.2.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Compiler {
    pub family: CompilerFamily,
    /// Dotted version, e.g. `4.1.2`, `11.1`, `12.0`.
    pub version: String,
}

impl Compiler {
    /// Construct.
    pub fn new(family: CompilerFamily, version: &str) -> Self {
        Compiler {
            family,
            version: version.to_string(),
        }
    }

    /// Major version component.
    pub fn major(&self) -> u32 {
        self.version
            .split('.')
            .next()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
    }

    /// Minor version component.
    pub fn minor(&self) -> u32 {
        self.version
            .split('.')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
    }

    /// Identifier like `intel-11.1` used in paths and module names.
    pub fn ident(&self) -> String {
        format!("{}-{}", self.family.tag(), self.version)
    }

    /// The `.comment` provenance string this compiler embeds in binaries,
    /// matching what `readelf -p .comment` shows on real systems.
    pub fn comment_string(&self, distro_hint: &str) -> String {
        match self.family {
            CompilerFamily::Gnu => {
                format!(
                    "GCC: (GNU) {} 20080704 ({} {}-50)",
                    self.version, distro_hint, self.version
                )
            }
            CompilerFamily::Intel => format!(
                "Intel(R) C Intel(R) 64 Compiler Professional, Version {} Build 20100414",
                self.version
            ),
            CompilerFamily::Pgi => {
                format!(
                    "PGI Compilers and Tools pgcc {}-0 64-bit target",
                    self.version
                )
            }
        }
    }
}

/// Source language of a program; drives which runtime libraries `mpicc` /
/// `mpif90` pull in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Language {
    C,
    /// C++ adds `libstdc++`.
    Cxx,
    Fortran,
    /// Mixed C + Fortran (several NPB and SPEC codes).
    MixedCFortran,
}

impl Language {
    /// Does this language need the Fortran runtime?
    pub fn needs_fortran_rt(self) -> bool {
        matches!(self, Language::Fortran | Language::MixedCFortran)
    }

    /// Does this language need the C++ runtime?
    pub fn needs_cxx_rt(self) -> bool {
        matches!(self, Language::Cxx)
    }
}

/// The ABI marker symbol a compiler runtime of `major` exports and every
/// binary built by it imports. Newer runtimes re-export all older markers
/// (backwards compatibility); older runtimes lack newer markers, which is
/// the mechanical form of the paper's "ABI incompatibilities in shared
/// libraries" failure class.
pub fn rt_marker(family: CompilerFamily, major: u32) -> String {
    match family {
        CompilerFamily::Gnu => format!("__gnu_rt_v{major}"),
        CompilerFamily::Intel => format!("__intel_rt_v{major}"),
        CompilerFamily::Pgi => format!("__pgi_rt_v{major}"),
    }
}

/// The GLIBCXX symbol-version ladder: (`GLIBCXX_3.4.x` max level) exported
/// by `libstdc++.so.6` as shipped with each GCC 4.x minor.
pub fn glibcxx_max_for_gcc(gcc: &Compiler) -> u32 {
    debug_assert_eq!(gcc.family, CompilerFamily::Gnu);
    match (gcc.major(), gcc.minor()) {
        (4, 1) => 8,
        (4, 2) => 9,
        (4, 3) => 10,
        (4, 4) => 13,
        (4, 5) => 14,
        (m, _) if m >= 4 => 14,
        _ => 0, // gcc 3.x ships libstdc++.so.5, no GLIBCXX_3.4 ladder
    }
}

/// The Fortran runtime soname shipped by a GNU compiler version.
pub fn gnu_fortran_soname(gcc: &Compiler) -> &'static str {
    if gcc.major() >= 4 {
        if gcc.minor() >= 4 || gcc.major() > 4 {
            "libgfortran.so.3"
        } else {
            "libgfortran.so.1"
        }
    } else {
        "libg2c.so.0"
    }
}

/// The C++ runtime soname shipped by a GNU compiler version.
pub fn gnu_cxx_soname(gcc: &Compiler) -> &'static str {
    if gcc.major() >= 4 {
        "libstdc++.so.6"
    } else {
        "libstdc++.so.5"
    }
}

/// Blueprint of one shared library to synthesize and install at a site.
#[derive(Debug, Clone)]
pub struct LibraryBlueprint {
    /// `DT_SONAME`, e.g. `libgfortran.so.1`.
    pub soname: String,
    /// Real file name, e.g. `libgfortran.so.1.0.0`.
    pub filename: String,
    /// Additional symlink names pointing at the real file (dev links).
    pub links: Vec<String>,
    /// Exported symbols.
    pub exports: Vec<ExportSpec>,
    /// Version definitions beyond those implied by exports.
    pub defined_versions: Vec<DefinedVersion>,
    /// `DT_NEEDED` of the library itself.
    pub needed: Vec<String>,
    /// Imported symbols of the library itself (its own glibc needs, …).
    pub imports: Vec<ImportSpec>,
    /// `.comment` strings.
    pub comments: Vec<String>,
    /// Synthetic code size in bytes — drives bundle-size statistics.
    pub size: usize,
}

impl LibraryBlueprint {
    /// Minimal blueprint with the dev-link list derived from the soname.
    pub fn new(soname: &str, filename: &str, size: usize) -> Self {
        let mut links = Vec::new();
        if filename != soname {
            links.push(soname.to_string());
        }
        // Also provide the unversioned dev link (`libfoo.so`).
        if let Some(idx) = soname.find(".so") {
            let dev = format!("{}.so", &soname[..idx]);
            if dev != soname && dev != filename {
                links.push(dev);
            }
        }
        LibraryBlueprint {
            soname: soname.to_string(),
            filename: filename.to_string(),
            links,
            exports: Vec::new(),
            defined_versions: Vec::new(),
            needed: Vec::new(),
            imports: Vec::new(),
            comments: Vec::new(),
            size,
        }
    }

    /// Add plain (unversioned) exports.
    pub fn with_exports(mut self, names: &[&str]) -> Self {
        self.exports
            .extend(names.iter().map(|n| ExportSpec::new(n, None)));
        self
    }
}

/// Runtime-library blueprints for one compiler installation. `glibc_import`
/// is the symbol version the runtime itself was built against — copies of a
/// runtime built on a new-glibc site are unusable on old-glibc sites, the
/// paper's main resolution-failure mechanism.
pub fn runtime_blueprints(
    compiler: &Compiler,
    glibc_import: &str,
    seed: u64,
) -> Vec<LibraryBlueprint> {
    let mut out = Vec::new();
    // Runtimes are backward compatible: a runtime of major M exports the
    // marker of every major ≤ M. Version skew in the *other* direction
    // (new binaries, old runtime) appears as missing version-specific
    // sonames (libirng, libiomp5, libpgmp, the libgfortran ladder), which
    // is how it manifests in the field — and what FEAM's resolution model
    // can actually fix.
    let marker_exports: Vec<ExportSpec> = (1..=compiler.major())
        .map(|m| ExportSpec::new(&rt_marker(compiler.family, m), None))
        .collect();
    let glibc_imp = |sym: &str| ImportSpec::versioned(sym, "libc.so.6", glibc_import);
    let sized = |base: usize, tag: &str| -> usize {
        // Deterministic ±25% jitter so library sizes look organic.
        let h = rng::hash_parts(seed, &[&compiler.ident(), tag]);
        base + (rng::unit_f64(h) * base as f64 * 0.5) as usize - base / 4
    };
    match compiler.family {
        CompilerFamily::Gnu => {
            let mut gcc_s =
                LibraryBlueprint::new("libgcc_s.so.1", "libgcc_s.so.1", sized(200_000, "gcc_s"));
            gcc_s.exports = vec![
                ExportSpec::new("__udivdi3", Some("GCC_3.0")),
                ExportSpec::new("_Unwind_Resume", Some("GCC_3.0")),
            ];
            gcc_s.defined_versions = vec![DefinedVersion {
                name: "GCC_3.0".into(),
                parents: vec![],
            }];
            gcc_s.imports = vec![glibc_imp("abort")];
            out.push(gcc_s);

            let fort = gnu_fortran_soname(compiler);
            let mut f =
                LibraryBlueprint::new(fort, &format!("{fort}.0.0"), sized(2_400_000, "fortran"));
            f.exports = vec![
                ExportSpec::new("_gfortran_st_write", None),
                ExportSpec::new("_gfortran_st_read", None),
                ExportSpec::new("_gfortran_transfer_real", None),
                ExportSpec::new("_gfortran_stop_numeric", None),
            ];
            f.exports.extend(marker_exports.clone());
            f.needed = vec![
                "libm.so.6".into(),
                "libgcc_s.so.1".into(),
                "libc.so.6".into(),
            ];
            f.imports = vec![glibc_imp("memcpy")];
            out.push(f);

            let cxx = gnu_cxx_soname(compiler);
            let mut c = LibraryBlueprint::new(cxx, &format!("{cxx}.0.13"), sized(2_100_000, "cxx"));
            c.exports = vec![
                ExportSpec::new("_ZNSt8ios_base4InitC1Ev", Some("GLIBCXX_3.4")),
                ExportSpec::new("_Znwm", Some("GLIBCXX_3.4")),
            ];
            // The GLIBCXX version ladder up to this GCC's level.
            let maxv = glibcxx_max_for_gcc(compiler);
            let mut parents = Vec::new();
            c.defined_versions.push(DefinedVersion {
                name: "GLIBCXX_3.4".into(),
                parents: vec![],
            });
            parents.push("GLIBCXX_3.4".to_string());
            for v in 1..=maxv {
                c.defined_versions.push(DefinedVersion {
                    name: format!("GLIBCXX_3.4.{v}"),
                    parents: vec![parents.last().expect("non-empty").clone()],
                });
                parents.push(format!("GLIBCXX_3.4.{v}"));
            }
            c.needed = vec![
                "libm.so.6".into(),
                "libgcc_s.so.1".into(),
                "libc.so.6".into(),
            ];
            c.imports = vec![glibc_imp("memcpy")];
            out.push(c);
        }
        CompilerFamily::Intel => {
            let mut imf = LibraryBlueprint::new("libimf.so", "libimf.so", sized(5_200_000, "imf"));
            imf.exports = vec![ExportSpec::new("exp", None), ExportSpec::new("pow", None)];
            imf.exports.extend(marker_exports.clone());
            imf.needed = vec!["libc.so.6".into()];
            imf.imports = vec![glibc_imp("memcpy")];
            out.push(imf);

            let mut svml =
                LibraryBlueprint::new("libsvml.so", "libsvml.so", sized(6_800_000, "svml"));
            svml.exports = vec![ExportSpec::new("__svml_sin2", None)];
            svml.exports.extend(marker_exports.clone());
            svml.needed = vec!["libc.so.6".into()];
            svml.imports = vec![glibc_imp("memcpy")];
            out.push(svml);

            let mut intlc =
                LibraryBlueprint::new("libintlc.so.5", "libintlc.so.5", sized(400_000, "intlc"));
            intlc.exports = vec![ExportSpec::new("_intel_fast_memcpy", None)];
            intlc.exports.extend(marker_exports.clone());
            intlc.needed = vec!["libc.so.6".into()];
            intlc.imports = vec![glibc_imp("memcpy")];
            out.push(intlc);

            let mut ifcore = LibraryBlueprint::new(
                "libifcore.so.5",
                "libifcore.so.5",
                sized(3_700_000, "ifcore"),
            );
            ifcore.exports = vec![
                ExportSpec::new("for_write_seq_lis", None),
                ExportSpec::new("for_read_seq_lis", None),
                ExportSpec::new("for_stop_core", None),
            ];
            ifcore.exports.extend(marker_exports.clone());
            ifcore.needed = vec![
                "libimf.so".into(),
                "libintlc.so.5".into(),
                "libc.so.6".into(),
            ];
            ifcore.imports = vec![glibc_imp("memcpy")];
            out.push(ifcore);

            let mut ifport =
                LibraryBlueprint::new("libifport.so.5", "libifport.so.5", sized(800_000, "ifport"));
            ifport.exports = vec![ExportSpec::new("for_getcwd", None)];
            ifport.exports.extend(marker_exports.clone());
            ifport.needed = vec!["libifcore.so.5".into(), "libc.so.6".into()];
            ifport.imports = vec![glibc_imp("memcpy")];
            out.push(ifport);

            for soname in intel_versioned_sonames(compiler.major()) {
                let mut b = LibraryBlueprint::new(soname, soname, sized(1_500_000, soname));
                b.exports = vec![ExportSpec::new(
                    &format!(
                        "{}_entry",
                        soname.trim_start_matches("lib").trim_end_matches(".so")
                    ),
                    None,
                )];
                b.exports.extend(marker_exports.clone());
                b.needed = vec!["libc.so.6".into()];
                b.imports = vec![glibc_imp("memcpy")];
                out.push(b);
            }
        }
        CompilerFamily::Pgi => {
            for (soname, syms, base, tag) in [
                (
                    "libpgc.so",
                    vec!["__c_mzero8", "__c_mcopy8"],
                    900_000usize,
                    "pgc",
                ),
                (
                    "libpgf90.so",
                    vec!["pgf90_alloc", "pgf90_str_cpy"],
                    2_000_000,
                    "pgf90",
                ),
                (
                    "libpgf90rtl.so",
                    vec!["f90io_open", "f90io_ldw"],
                    700_000,
                    "pgf90rtl",
                ),
                (
                    "libpgftnrtl.so",
                    vec!["ftn_allocate", "ftn_stop"],
                    600_000,
                    "pgftnrtl",
                ),
            ] {
                let mut b = LibraryBlueprint::new(soname, soname, sized(base, tag));
                b.exports = syms.iter().map(|s| ExportSpec::new(s, None)).collect();
                b.exports.extend(marker_exports.clone());
                b.needed = vec!["libm.so.6".into(), "libc.so.6".into()];
                b.imports = vec![glibc_imp("memcpy")];
                out.push(b);
            }
            for soname in pgi_versioned_sonames(compiler.major()) {
                let mut b = LibraryBlueprint::new(soname, soname, sized(1_100_000, soname));
                b.exports = vec![ExportSpec::new("_mp_init", None)];
                b.exports.extend(marker_exports.clone());
                b.needed = vec!["libc.so.6".into()];
                b.imports = vec![glibc_imp("memcpy")];
                out.push(b);
            }
        }
    }
    out
}

/// The version-specific extra runtime sonames an Intel compiler of a given
/// major ships (and its binaries link): the OpenMP runtime changed name at
/// 11 (libguide → libiomp5) and 12 added the RNG library. These sonames are
/// what makes cross-version Intel migration fail with *missing libraries*
/// rather than symbol errors.
pub fn intel_versioned_sonames(major: u32) -> Vec<&'static str> {
    let mut v = Vec::new();
    if major >= 11 {
        v.push("libiomp5.so");
    } else {
        v.push("libguide.so");
    }
    if major >= 12 {
        v.push("libirng.so");
    }
    v
}

/// PGI's version-specific extra runtime sonames (the OpenMP runtime
/// appeared as its own library in PGI ≥ 10).
pub fn pgi_versioned_sonames(major: u32) -> Vec<&'static str> {
    if major >= 10 {
        vec!["libpgmp.so"]
    } else {
        vec![]
    }
}

/// Which runtime sonames a binary in `language` built by `compiler` links
/// against (the `DT_NEEDED` contribution of the compiler).
pub fn runtime_needed(compiler: &Compiler, language: Language) -> Vec<String> {
    let mut out = Vec::new();
    match compiler.family {
        CompilerFamily::Gnu => {
            if language.needs_fortran_rt() {
                out.push(gnu_fortran_soname(compiler).to_string());
            }
            if language.needs_cxx_rt() {
                out.push(gnu_cxx_soname(compiler).to_string());
            }
            out.push("libgcc_s.so.1".to_string());
        }
        CompilerFamily::Intel => {
            if language.needs_fortran_rt() {
                out.push("libifcore.so.5".to_string());
                out.push("libifport.so.5".to_string());
            }
            if language.needs_cxx_rt() {
                // Intel C++ reuses the system GCC's libstdc++; callers add
                // the site-appropriate soname.
            }
            out.push("libimf.so".to_string());
            out.push("libsvml.so".to_string());
            out.push("libintlc.so.5".to_string());
            out.extend(
                intel_versioned_sonames(compiler.major())
                    .iter()
                    .map(|s| s.to_string()),
            );
        }
        CompilerFamily::Pgi => {
            if language.needs_fortran_rt() {
                out.push("libpgf90.so".to_string());
                out.push("libpgf90rtl.so".to_string());
                out.push("libpgftnrtl.so".to_string());
            }
            out.push("libpgc.so".to_string());
            out.extend(
                pgi_versioned_sonames(compiler.major())
                    .iter()
                    .map(|s| s.to_string()),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiler_version_parts() {
        let c = Compiler::new(CompilerFamily::Intel, "11.1");
        assert_eq!(c.major(), 11);
        assert_eq!(c.minor(), 1);
        assert_eq!(c.ident(), "intel-11.1");
    }

    #[test]
    fn gnu_fortran_soname_ladder() {
        assert_eq!(
            gnu_fortran_soname(&Compiler::new(CompilerFamily::Gnu, "3.4.6")),
            "libg2c.so.0"
        );
        assert_eq!(
            gnu_fortran_soname(&Compiler::new(CompilerFamily::Gnu, "4.1.2")),
            "libgfortran.so.1"
        );
        assert_eq!(
            gnu_fortran_soname(&Compiler::new(CompilerFamily::Gnu, "4.4.5")),
            "libgfortran.so.3"
        );
    }

    #[test]
    fn glibcxx_ladder_grows_with_gcc() {
        let g41 = Compiler::new(CompilerFamily::Gnu, "4.1.2");
        let g44 = Compiler::new(CompilerFamily::Gnu, "4.4.5");
        assert!(glibcxx_max_for_gcc(&g41) < glibcxx_max_for_gcc(&g44));
    }

    #[test]
    fn newer_runtime_exports_all_older_markers() {
        let intel12 = Compiler::new(CompilerFamily::Intel, "12.0");
        let bps = runtime_blueprints(&intel12, "GLIBC_2.2.5", 1);
        let imf = bps.iter().find(|b| b.soname == "libimf.so").unwrap();
        for m in 1..=12 {
            let marker = rt_marker(CompilerFamily::Intel, m);
            assert!(
                imf.exports.iter().any(|e| e.symbol == marker),
                "missing marker {marker}"
            );
        }
    }

    #[test]
    fn older_runtime_lacks_newer_markers() {
        let intel10 = Compiler::new(CompilerFamily::Intel, "10.1");
        let bps = runtime_blueprints(&intel10, "GLIBC_2.2.5", 1);
        let imf = bps.iter().find(|b| b.soname == "libimf.so").unwrap();
        let v12 = rt_marker(CompilerFamily::Intel, 12);
        assert!(!imf.exports.iter().any(|e| e.symbol == v12));
    }

    #[test]
    fn runtime_needed_depends_on_language() {
        let g44 = Compiler::new(CompilerFamily::Gnu, "4.4.5");
        let c = runtime_needed(&g44, Language::C);
        let f = runtime_needed(&g44, Language::Fortran);
        let x = runtime_needed(&g44, Language::Cxx);
        assert!(!c.contains(&"libgfortran.so.3".to_string()));
        assert!(f.contains(&"libgfortran.so.3".to_string()));
        assert!(x.contains(&"libstdc++.so.6".to_string()));
    }

    #[test]
    fn blueprint_dev_links() {
        let b = LibraryBlueprint::new("libgfortran.so.1", "libgfortran.so.1.0.0", 100);
        assert!(b.links.contains(&"libgfortran.so.1".to_string()));
        assert!(b.links.contains(&"libgfortran.so".to_string()));
        let same = LibraryBlueprint::new("libimf.so", "libimf.so", 100);
        assert!(same.links.is_empty());
    }

    #[test]
    fn comment_strings_identify_family() {
        assert!(Compiler::new(CompilerFamily::Gnu, "4.1.2")
            .comment_string("Red Hat")
            .starts_with("GCC:"));
        assert!(Compiler::new(CompilerFamily::Intel, "11.1")
            .comment_string("x")
            .starts_with("Intel(R)"));
        assert!(Compiler::new(CompilerFamily::Pgi, "10.9")
            .comment_string("x")
            .starts_with("PGI"));
    }
}
