//! The GNU C library model.
//!
//! §III.C: "Our model considers a target site's C library version to be
//! compatible if it is equal to or greater than an application's required C
//! library version." This module provides the GLIBC symbol-version ladder,
//! the per-version symbol catalogue from which compiles sample their
//! imports, and blueprints for the libc family of libraries installed at
//! every site (`libc`, `libm`, `libpthread`, `librt`, `libdl`, `libnsl`,
//! `libutil` — the last two doubling as Open MPI's Table I identifiers).

use crate::toolchain::LibraryBlueprint;
use feam_elf::{Class, DefinedVersion, ExportSpec, VersionName};

/// The GLIBC version ladder through the paper's era (Table II spans 2.3.4
/// through 2.12). Ascending order.
pub const GLIBC_LADDER: &[&str] = &[
    "2.0", "2.1", "2.1.1", "2.1.2", "2.1.3", "2.2", "2.2.1", "2.2.2", "2.2.3", "2.2.4", "2.2.5",
    "2.2.6", "2.3", "2.3.2", "2.3.3", "2.3.4", "2.4", "2.5", "2.6", "2.7", "2.8", "2.9", "2.10",
    "2.10.1", "2.11", "2.11.1", "2.12",
];

/// Parse a dotted glibc version (`2.3.4`) into a [`VersionName`] with the
/// `GLIBC` prefix.
pub fn glibc_version(v: &str) -> VersionName {
    VersionName::parse(&format!("GLIBC_{v}")).expect("valid dotted glibc version")
}

/// The baseline symbol-version an architecture's ABI starts at: x86-64 was
/// born at glibc 2.2.5, 32-bit x86 and ppc at 2.0.
pub fn baseline_for(class: Class) -> &'static str {
    match class {
        Class::Elf64 => "2.2.5",
        Class::Elf32 => "2.0",
    }
}

/// Representative libc symbols and the GLIBC version each appeared in.
/// Compiles sample from this catalogue (filtered to versions ≤ the build
/// site's glibc) to produce realistic Version References.
pub const SYMBOL_CATALOGUE: &[(&str, &str)] = &[
    ("printf", "2.0"),
    ("abort", "2.0"),
    ("memcpy", "2.0"),
    ("malloc", "2.0"),
    ("free", "2.0"),
    ("fopen", "2.0"),
    ("exit", "2.0"),
    ("getenv", "2.0"),
    ("strcmp", "2.0"),
    ("sqrt", "2.0"),
    ("pread64", "2.2"),
    ("fopen64", "2.1"),
    ("posix_memalign", "2.1.3"),
    ("__ctype_b_loc", "2.3"),
    ("__errno_location", "2.0"),
    ("posix_fadvise64", "2.3.3"),
    ("regexec", "2.3.4"),
    ("__stack_chk_fail", "2.4"),
    ("inet_ntop", "2.2"),
    ("open_memstream", "2.0"),
    ("__isoc99_sscanf", "2.7"),
    ("__isoc99_fscanf", "2.7"),
    ("epoll_create1", "2.9"),
    ("pipe2", "2.9"),
    ("dup3", "2.9"),
    ("accept4", "2.10"),
    ("recvmmsg", "2.12"),
    ("mkostemps", "2.11"),
];

/// All ladder versions ≤ `max` (dotted strings).
pub fn versions_up_to(max: &str) -> Vec<&'static str> {
    let maxv = glibc_version(max);
    GLIBC_LADDER
        .iter()
        .copied()
        .filter(|v| {
            glibc_version(v)
                .cmp_same_prefix(&maxv)
                .map(|o| o.is_le())
                .unwrap_or(false)
        })
        .collect()
}

/// Symbols available at a site whose glibc is `max`, with their versions.
pub fn symbols_up_to(max: &str) -> Vec<(&'static str, &'static str)> {
    let maxv = glibc_version(max);
    SYMBOL_CATALOGUE
        .iter()
        .copied()
        .filter(|(_, v)| {
            glibc_version(v)
                .cmp_same_prefix(&maxv)
                .map(|o| o.is_le())
                .unwrap_or(false)
        })
        .collect()
}

/// The banner a glibc prints when executed directly — the EDC parses this
/// to discover a site's C library version (§V.B: "parsing the general
/// library information that is output when C library binary is executed").
pub fn libc_banner(version: &str, distro: &str) -> String {
    format!(
        "GNU C Library stable release version {version}, by Roland McGrath et al.\n\
         Copyright (C) 2010 Free Software Foundation, Inc.\n\
         Compiled by GNU CC version 4.1.2 20080704 ({distro}).\n\
         Compiled on a Linux 2.6.18 system.\n\
         For bug reporting instructions, please see:\n<http://www.gnu.org/software/libc/bugs.html>."
    )
}

/// Blueprints for the C library family at a site running glibc `version`.
///
/// Every member defines the full GLIBC version ladder up to `version` (the
/// mechanism by which too-new Version References fail to resolve at old
/// sites), and `libc.so.6` exports the symbol catalogue filtered to the
/// site's level.
pub fn libc_blueprints(version: &str, class: Class) -> Vec<LibraryBlueprint> {
    let ladder = versions_up_to(version);
    let defs: Vec<DefinedVersion> = ladder
        .iter()
        .enumerate()
        .map(|(i, v)| DefinedVersion {
            name: format!("GLIBC_{v}"),
            parents: if i == 0 {
                vec![]
            } else {
                vec![format!("GLIBC_{}", ladder[i - 1])]
            },
        })
        .collect();

    let base = baseline_for(class);
    let basev = glibc_version(base);
    // Symbols below the architecture baseline are re-versioned to the
    // baseline, as real ports do.
    let effective = |v: &str| -> String {
        let vv = glibc_version(v);
        if vv
            .cmp_same_prefix(&basev)
            .map(|o| o.is_lt())
            .unwrap_or(false)
        {
            format!("GLIBC_{base}")
        } else {
            format!("GLIBC_{v}")
        }
    };

    let mut libc = LibraryBlueprint::new("libc.so.6", "libc-2.x.so", 1_700_000);
    libc.links.push("libc.so.6".to_string());
    libc.links.dedup();
    // Each symbol is exported at its introduction version *and* every later
    // ladder version up to the site's level: a library built against glibc
    // 2.5 legitimately references `memcpy@GLIBC_2.5`, and that reference
    // resolves at any site running ≥ 2.5 but not at older ones — the
    // copy-portability mechanism behind the paper's resolution failures.
    libc.exports = Vec::new();
    for (sym, intro) in symbols_up_to(version) {
        let intro_eff = effective(intro);
        let introv = VersionName::parse(&intro_eff).expect("valid version");
        for lv in &ladder {
            let node = effective(lv);
            let nodev = VersionName::parse(&node).expect("valid version");
            if nodev
                .cmp_same_prefix(&introv)
                .map(|o| o.is_ge())
                .unwrap_or(false)
            {
                let spec = ExportSpec::new(sym, Some(&node));
                if !libc.exports.contains(&spec) {
                    libc.exports.push(spec);
                }
            }
        }
    }
    libc.defined_versions = defs.clone();
    libc.comments = vec![format!("GNU C Library stable release version {version}")];

    let mut out = vec![libc];
    for (soname, file, size, syms) in [
        (
            "libm.so.6",
            "libm-2.x.so",
            600_000usize,
            vec!["sin", "cos", "exp", "pow", "log", "fabs"],
        ),
        (
            "libpthread.so.0",
            "libpthread-2.x.so",
            140_000,
            vec!["pthread_create", "pthread_join", "pthread_mutex_lock"],
        ),
        (
            "librt.so.1",
            "librt-2.x.so",
            55_000,
            vec!["clock_gettime", "shm_open"],
        ),
        (
            "libdl.so.2",
            "libdl-2.x.so",
            23_000,
            vec!["dlopen", "dlsym", "dlclose"],
        ),
        (
            "libnsl.so.1",
            "libnsl-2.x.so",
            110_000,
            vec!["yp_get_default_domain", "nis_lookup"],
        ),
        (
            "libutil.so.1",
            "libutil-2.x.so",
            18_000,
            vec!["openpty", "forkpty", "login_tty"],
        ),
    ] {
        let mut b = LibraryBlueprint::new(soname, file, size);
        b.exports = syms
            .iter()
            .map(|s| ExportSpec::new(s, Some(&effective("2.0"))))
            .collect();
        b.defined_versions = defs.clone();
        b.needed = vec!["libc.so.6".into()];
        out.push(b);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_ascending() {
        for w in GLIBC_LADDER.windows(2) {
            let a = glibc_version(w[0]);
            let b = glibc_version(w[1]);
            assert_eq!(
                a.cmp_same_prefix(&b),
                Some(std::cmp::Ordering::Less),
                "{} !< {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn versions_up_to_filters() {
        let v = versions_up_to("2.5");
        assert!(v.contains(&"2.3.4"));
        assert!(v.contains(&"2.5"));
        assert!(!v.contains(&"2.7"));
    }

    #[test]
    fn symbols_up_to_excludes_newer() {
        let s = symbols_up_to("2.5");
        assert!(s.iter().any(|(n, _)| *n == "__stack_chk_fail")); // 2.4
        assert!(!s.iter().any(|(n, _)| *n == "__isoc99_sscanf")); // 2.7
        assert!(!s.iter().any(|(n, _)| *n == "recvmmsg")); // 2.12
    }

    #[test]
    fn blueprints_define_full_ladder() {
        let bps = libc_blueprints("2.12", Class::Elf64);
        let libc = &bps[0];
        assert_eq!(libc.soname, "libc.so.6");
        assert!(libc
            .defined_versions
            .iter()
            .any(|d| d.name == "GLIBC_2.2.5"));
        assert!(libc.defined_versions.iter().any(|d| d.name == "GLIBC_2.12"));
        let old = libc_blueprints("2.5", Class::Elf64);
        assert!(!old[0]
            .defined_versions
            .iter()
            .any(|d| d.name == "GLIBC_2.12"));
    }

    #[test]
    fn x86_64_baseline_reversions_old_symbols() {
        let bps = libc_blueprints("2.5", Class::Elf64);
        let printf = bps[0]
            .exports
            .iter()
            .find(|e| e.symbol == "printf")
            .unwrap();
        assert_eq!(printf.version.as_deref(), Some("GLIBC_2.2.5"));
        let bps32 = libc_blueprints("2.5", Class::Elf32);
        let printf32 = bps32[0]
            .exports
            .iter()
            .find(|e| e.symbol == "printf")
            .unwrap();
        assert_eq!(printf32.version.as_deref(), Some("GLIBC_2.0"));
    }

    #[test]
    fn banner_contains_version() {
        assert!(libc_banner("2.11.1", "SUSE").contains("release version 2.11.1"));
    }

    #[test]
    fn table_one_openmpi_identifiers_present() {
        let bps = libc_blueprints("2.5", Class::Elf64);
        assert!(bps.iter().any(|b| b.soname == "libnsl.so.1"));
        assert!(bps.iter().any(|b| b.soname == "libutil.so.1"));
    }
}
