//! Turn [`LibraryBlueprint`]s into real ELF shared-object images.

use crate::toolchain::LibraryBlueprint;
use feam_elf::{Class, ElfSpec, Endian, FileKind, Machine};
use std::sync::Arc;

/// Synthesize the shared-object image for a blueprint.
pub fn build_library(
    bp: &LibraryBlueprint,
    machine: Machine,
    class: Class,
    endian: Endian,
) -> feam_elf::Result<Arc<Vec<u8>>> {
    let spec = ElfSpec {
        class,
        endian,
        machine,
        kind: FileKind::SharedObject,
        interp: None,
        soname: Some(bp.soname.clone()),
        needed: bp.needed.clone(),
        rpath: None,
        runpath: None,
        imports: bp.imports.clone(),
        exports: bp.exports.clone(),
        defined_versions: bp.defined_versions.clone(),
        extra_version_refs: Vec::new(),
        abi_tag: None,
        comments: bp.comments.clone(),
        text_size: bp.size,
        text_stamp: Vec::new(),
        static_link: false,
    };
    Ok(Arc::new(spec.build()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use feam_elf::{ElfFile, ExportSpec};

    #[test]
    fn blueprint_builds_parseable_library() {
        let mut bp = LibraryBlueprint::new("libdemo.so.2", "libdemo.so.2.1.0", 4096);
        bp.exports = vec![ExportSpec::new("demo_fn", Some("DEMO_2.0"))];
        bp.needed = vec!["libc.so.6".into()];
        let img = build_library(&bp, Machine::X86_64, Class::Elf64, Endian::Little).unwrap();
        let f = ElfFile::parse(&img).unwrap();
        assert_eq!(f.soname(), Some("libdemo.so.2"));
        assert_eq!(f.needed(), &["libc.so.6".to_string()]);
        assert!(f.version_defs().iter().any(|d| d.name == "DEMO_2.0"));
        assert!(img.len() >= 4096);
    }
}
