//! The simulated toolchain: "compiling" a program at a site with an MPI
//! stack produces a genuine ELF binary whose link-level footprint reflects
//! that environment.
//!
//! This is where the evaluation's test-set binaries come from, and where
//! FEAM compiles its MPI "hello world" probes at target sites. The
//! generated binary carries:
//!
//! * `DT_NEEDED` for the stack's MPI libraries, the compiler's runtime
//!   libraries, and the glibc family,
//! * versioned glibc imports sampled from the site's symbol catalogue (so
//!   the *required C library version* is a property of where and how the
//!   binary was built, exactly as in the field),
//! * the MPI implementation's runtime marker plus — sometimes — the exact
//!   ABI marker of the stack's version (the paper's "1.4-built binaries
//!   run on 1.3 in some instances but not others"),
//! * compiler runtime ABI markers and, for C++, a sampled GLIBCXX
//!   requirement,
//! * a `.comment` section identifying the compiler.

use crate::libc;
use crate::mpi::MpiImpl;
use crate::rng;
use crate::site::{InstalledStack, Site};
use crate::stamp;
use crate::toolchain::{
    glibcxx_max_for_gcc, gnu_cxx_soname, rt_marker, runtime_needed, CompilerFamily, Language,
};
use feam_elf::{strip_section_headers, Class, ElfSpec, ImportSpec, Machine};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How a binary is packaged — the hostile-binary axes of the provenance
/// evaluation. `Normal` is a cooperative dynamic executable; the others
/// progressively remove direct evidence channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryVariant {
    /// Dynamic executable with full section headers and `.comment`.
    Normal,
    /// `strip`ped: section headers gone, so `.comment` is unreachable;
    /// `DT_NEEDED` and dynamic symbols survive through `PT_DYNAMIC`.
    Stripped,
    /// Statically linked: no dynamic section, symbols or version tables
    /// at all. `.comment` survives; the MPI runtime is recoverable only
    /// from code bytes.
    Static,
    /// Cross-compiled for a foreign ISA; the cross toolchain's packaging
    /// drops the `.comment` strings.
    Cross,
}

impl BinaryVariant {
    /// All variants, `Normal` first.
    pub const ALL: [BinaryVariant; 4] = [
        BinaryVariant::Normal,
        BinaryVariant::Stripped,
        BinaryVariant::Static,
        BinaryVariant::Cross,
    ];

    /// Short lowercase tag for identities and reports.
    pub fn tag(self) -> &'static str {
        match self {
            BinaryVariant::Normal => "normal",
            BinaryVariant::Stripped => "stripped",
            BinaryVariant::Static => "static",
            BinaryVariant::Cross => "cross",
        }
    }
}

/// The foreign target a cross build aims at from a given native machine:
/// a same-word-size ISA the testbed actually fields.
fn cross_target(native: Machine) -> (Machine, Class) {
    match native {
        Machine::Ppc64 | Machine::Ia64 | Machine::Aarch64 => (Machine::X86_64, Class::Elf64),
        Machine::X86 | Machine::Ppc => (
            if native == Machine::X86 {
                Machine::Ppc
            } else {
                Machine::X86
            },
            Class::Elf32,
        ),
        _ => (Machine::Ppc64, Class::Elf64),
    }
}

/// A program to compile (a benchmark model or a hello-world probe).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProgramSpec {
    /// Name, e.g. `bt.A.4` or `104.milc`.
    pub name: String,
    pub language: Language,
    /// Links MPI libraries (hello worlds and all benchmarks do; the EDC's
    /// serial probes do not).
    pub uses_mpi: bool,
    /// Probability that each newer-than-baseline glibc symbol available at
    /// the build site gets used (0 = maximally portable binaries).
    pub glibc_appetite: f64,
    /// Probability of importing the stack's exact-version MPI ABI marker.
    pub mpi_abi_marker_prob: f64,
    /// Synthetic code size in bytes.
    pub text_size: usize,
}

impl ProgramSpec {
    /// A typical application program.
    pub fn new(name: &str, language: Language) -> Self {
        ProgramSpec {
            name: name.into(),
            language,
            uses_mpi: true,
            glibc_appetite: 0.25,
            mpi_abi_marker_prob: 1.0,
            text_size: 256 * 1024,
        }
    }

    /// The MPI "hello world" probe FEAM compiles and runs to test stacks.
    /// Its link footprint is deterministic and matches any application
    /// built with the same stack — baseline MPI symbols, the stack's
    /// major.minor ABI marker, and the compiler's runtime marker — so a
    /// transported hello world faithfully represents its build stack
    /// (§VI.C: the transported tests "were able to detect floating point
    /// errors and ABI incompatibilities in shared libraries").
    pub fn mpi_hello_world(language: Language) -> Self {
        ProgramSpec {
            name: format!("hello_mpi_{:?}", language).to_lowercase(),
            language,
            uses_mpi: true,
            glibc_appetite: 0.0,
            mpi_abi_marker_prob: 1.0,
            text_size: 8 * 1024,
        }
    }

    /// A serial probe (used when checking compilers without MPI).
    pub fn serial_hello_world() -> Self {
        ProgramSpec {
            name: "hello_serial".into(),
            language: Language::C,
            uses_mpi: false,
            glibc_appetite: 0.0,
            mpi_abi_marker_prob: 0.0,
            text_size: 4 * 1024,
        }
    }
}

/// A binary produced by [`compile`], with its build provenance.
#[derive(Debug, Clone)]
pub struct CompiledBinary {
    /// The ELF image.
    pub image: Arc<Vec<u8>>,
    /// Program name.
    pub program: String,
    pub language: Language,
    /// Site where it was built.
    pub built_at: String,
    /// Stack it was built with (None for serial programs).
    pub stack: Option<crate::mpi::MpiStack>,
    /// Stable identity for seeding execution-time draws.
    pub identity: String,
}

impl CompiledBinary {
    /// Stable content hash of the ELF image — the content-addressed key
    /// service caches use for this binary's description.
    pub fn content_hash(&self) -> u64 {
        crate::rng::fnv1a(&self.image)
    }
}

/// Why a compile failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The source does not build with this stack/compiler combination
    /// (the paper: "Some benchmarks would not compile with certain MPI
    /// stacks combinations").
    DoesNotCompile {
        program: String,
        stack: String,
        reason: String,
    },
    /// No such compiler at the site.
    CompilerMissing(CompilerFamily),
    /// A transient toolchain failure (license-server timeout, NFS hiccup);
    /// retrying the same compile can succeed.
    TransientToolFailure(String),
    /// Internal ELF synthesis error.
    Synthesis(String),
}

impl CompileError {
    /// True when a bounded retry can meaningfully clear the error.
    pub fn is_transient(&self) -> bool {
        matches!(self, CompileError::TransientToolFailure(_))
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::DoesNotCompile {
                program,
                stack,
                reason,
            } => {
                write!(f, "{program} does not compile with {stack}: {reason}")
            }
            CompileError::CompilerMissing(fam) => {
                write!(f, "{} compiler not installed", fam.name())
            }
            CompileError::TransientToolFailure(msg) => {
                write!(f, "transient toolchain failure: {msg}")
            }
            CompileError::Synthesis(msg) => write!(f, "toolchain error: {msg}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// [`compile`] wrapped in a trace span: records one `compile` span per
/// invocation plus a `compile_done` event with the program name and
/// outcome.
pub fn compile_traced(
    rec: &feam_obs::Recorder,
    site: &Site,
    stack: Option<&InstalledStack>,
    prog: &ProgramSpec,
    seed: u64,
) -> Result<CompiledBinary, CompileError> {
    let _span = rec.span("compile");
    let result = compile(site, stack, prog, seed);
    rec.event(
        "compile_done",
        &[
            ("program", prog.name.as_str().into()),
            ("site", site.name().into()),
            ("ok", result.is_ok().into()),
        ],
    );
    rec.count("compile.runs", 1);
    if result.is_err() {
        rec.count("compile.failures", 1);
    }
    result
}

/// [`compile_traced`] with the session's fault plan consulted first: probe
/// compiles can fail with injected transient flakiness (retryable) or a
/// persistently broken toolchain. `attempt` re-rolls transient faults.
pub fn compile_in_session(
    sess: &crate::site::Session<'_>,
    stack: Option<&InstalledStack>,
    prog: &ProgramSpec,
    seed: u64,
    attempt: u32,
) -> Result<CompiledBinary, CompileError> {
    let site = sess.site;
    let stack_tag = stack
        .map(|i| i.stack.ident())
        .unwrap_or_else(|| "serial".to_string());
    let key = format!("{}@{}@{}", prog.name, stack_tag, site.name());
    if let Some(kind) = sess.roll_fault(crate::faults::Chokepoint::ProbeCompile, &key, attempt) {
        let rec = &sess.recorder;
        let _span = rec.span("compile");
        rec.event(
            "compile_done",
            &[
                ("program", prog.name.as_str().into()),
                ("site", site.name().into()),
                ("ok", false.into()),
            ],
        );
        rec.count("compile.runs", 1);
        rec.count("compile.failures", 1);
        return Err(match kind {
            crate::faults::FaultKind::Transient => CompileError::TransientToolFailure(format!(
                "{}: compiler license server timed out",
                prog.name
            )),
            crate::faults::FaultKind::Persistent => CompileError::DoesNotCompile {
                program: prog.name.clone(),
                stack: stack_tag,
                reason: "toolchain wrapper persistently broken".into(),
            },
        });
    }
    compile_traced(&sess.recorder, site, stack, prog, seed)
}

/// Compile `prog` at `site` using `stack` (or no stack for serial
/// programs). `seed` drives all sampling; the same inputs always produce
/// the same binary.
pub fn compile(
    site: &Site,
    stack: Option<&InstalledStack>,
    prog: &ProgramSpec,
    seed: u64,
) -> Result<CompiledBinary, CompileError> {
    compile_variant(site, stack, prog, seed, BinaryVariant::Normal)
}

/// [`compile`] with a packaging variant: the same deterministic build,
/// post-processed (`Stripped`) or re-linked (`Static`, `Cross`) into the
/// hostile shapes the provenance fallback is evaluated on. Sampling is
/// keyed by the base identity, so a `Stripped` image is byte-for-byte the
/// `Normal` image with its section headers zeroed.
pub fn compile_variant(
    site: &Site,
    stack: Option<&InstalledStack>,
    prog: &ProgramSpec,
    seed: u64,
    variant: BinaryVariant,
) -> Result<CompiledBinary, CompileError> {
    let native = site.config.arch.native_target();
    let (machine, class) = match variant {
        BinaryVariant::Cross => cross_target(native.0),
        _ => native,
    };
    let compiler = match stack {
        Some(ist) => ist.stack.compiler.clone(),
        None => site
            .compiler(CompilerFamily::Gnu)
            .ok_or(CompileError::CompilerMissing(CompilerFamily::Gnu))?
            .compiler
            .clone(),
    };
    if site.compiler(compiler.family).is_none() {
        return Err(CompileError::CompilerMissing(compiler.family));
    }

    let ident = match stack {
        Some(ist) => format!("{}@{}@{}", prog.name, ist.stack.ident(), site.name()),
        None => format!("{}@serial@{}", prog.name, site.name()),
    };
    let h = |tag: &str| rng::hash_parts(seed, &[&ident, tag]);

    let mut spec = ElfSpec::executable(machine, class);
    spec.text_size =
        prog.text_size + (rng::unit_f64(h("size")) * prog.text_size as f64 * 0.5) as usize;
    // The toolchain's code idiom at the head of `.text` — the evidence
    // channel that survives stripping and static linking.
    spec.text_stamp = stamp::text_stamp(
        &compiler,
        stack.filter(|_| prog.uses_mpi).map(|i| i.stack.mpi),
    );

    // ---- DT_NEEDED assembly (link order: MPI, runtimes, system) ----------
    if let Some(ist) = stack {
        if prog.uses_mpi {
            spec.needed.extend(ist.stack.needed_for(prog.language));
        }
    }
    spec.needed.extend(runtime_needed(&compiler, prog.language));
    if prog.language.needs_cxx_rt() && compiler.family != CompilerFamily::Gnu {
        // Intel/PGI C++ reuse the system GCC's libstdc++.
        if let Some(g) = site.compiler(CompilerFamily::Gnu) {
            spec.needed.push(gnu_cxx_soname(&g.compiler).to_string());
        }
    }
    spec.needed.push("libm.so.6".to_string());
    spec.needed.push("libpthread.so.0".to_string());
    spec.needed.push("libc.so.6".to_string());
    spec.needed.dedup();

    // ---- glibc imports ------------------------------------------------------
    let base = libc::baseline_for(class);
    let effective = |v: &str| -> String {
        let vv = libc::glibc_version(v);
        let bb = libc::glibc_version(base);
        if vv.cmp_same_prefix(&bb).map(|o| o.is_lt()).unwrap_or(false) {
            format!("GLIBC_{base}")
        } else {
            format!("GLIBC_{v}")
        }
    };
    // Baseline symbols every program uses.
    for sym in ["printf", "memcpy", "malloc", "exit"] {
        spec.imports
            .push(ImportSpec::versioned(sym, "libc.so.6", &effective("2.0")));
    }
    // Sampled newer symbols, bounded by the build site's glibc.
    for (sym, ver) in libc::symbols_up_to(&site.config.glibc) {
        let vv = libc::glibc_version(ver);
        let bb = libc::glibc_version(base);
        let is_newer = vv.cmp_same_prefix(&bb).map(|o| o.is_gt()).unwrap_or(false);
        if is_newer && rng::chance(seed, &[&ident, "glibc-sym", sym], prog.glibc_appetite) {
            spec.imports
                .push(ImportSpec::versioned(sym, "libc.so.6", &effective(ver)));
        }
    }
    spec.imports
        .push(ImportSpec::versioned("sin", "libm.so.6", &effective("2.0")));

    // ---- MPI footprint --------------------------------------------------------
    if let (Some(ist), true) = (stack, prog.uses_mpi) {
        let c_lib = ist.stack.c_lib_soname();
        for sym in ["MPI_Init", "MPI_Comm_rank", "MPI_Comm_size", "MPI_Finalize"] {
            spec.imports.push(ImportSpec::plain(sym, &c_lib));
        }
        if prog.language.needs_fortran_rt() {
            spec.imports.push(ImportSpec::plain(
                "mpi_init_",
                &ist.stack.fortran_lib_soname(),
            ));
        }
        // The implementation identity marker — what makes MPI types
        // non-interchangeable at link level.
        spec.imports
            .push(ImportSpec::plain(ist.stack.mpi.rt_marker(), &c_lib));
        // The exact-version ABI marker, sometimes.
        if rng::chance(seed, &[&ident, "mpi-abi"], prog.mpi_abi_marker_prob) {
            spec.imports.push(ImportSpec::plain(
                &ist.stack.mpi.abi_marker(&ist.stack.version),
                &c_lib,
            ));
        }
    }

    // ---- compiler runtime footprint ------------------------------------------
    match compiler.family {
        CompilerFamily::Gnu => {
            if prog.language.needs_fortran_rt() {
                let f_so = crate::toolchain::gnu_fortran_soname(&compiler);
                spec.imports
                    .push(ImportSpec::plain("_gfortran_st_write", f_so));
                spec.imports.push(ImportSpec::plain(
                    &rt_marker(CompilerFamily::Gnu, compiler.major()),
                    f_so,
                ));
            }
        }
        CompilerFamily::Intel => {
            spec.imports.push(ImportSpec::plain("exp", "libimf.so"));
            spec.imports.push(ImportSpec::plain(
                &rt_marker(CompilerFamily::Intel, compiler.major()),
                "libimf.so",
            ));
            if prog.language.needs_fortran_rt() {
                spec.imports
                    .push(ImportSpec::plain("for_write_seq_lis", "libifcore.so.5"));
            }
        }
        CompilerFamily::Pgi => {
            spec.imports
                .push(ImportSpec::plain("__c_mcopy8", "libpgc.so"));
            spec.imports.push(ImportSpec::plain(
                &rt_marker(CompilerFamily::Pgi, compiler.major()),
                "libpgc.so",
            ));
            if prog.language.needs_fortran_rt() {
                spec.imports
                    .push(ImportSpec::plain("pgf90_alloc", "libpgf90.so"));
            }
        }
    }

    // ---- C++ GLIBCXX requirement -----------------------------------------------
    if prog.language.needs_cxx_rt() {
        if let Some(g) = site.compiler(CompilerFamily::Gnu) {
            let cxx_so = gnu_cxx_soname(&g.compiler);
            if cxx_so == "libstdc++.so.6" {
                spec.imports.push(ImportSpec::versioned(
                    "_ZNSt8ios_base4InitC1Ev",
                    cxx_so,
                    "GLIBCXX_3.4",
                ));
                let max = glibcxx_max_for_gcc(&g.compiler);
                if max > 0 && rng::chance(seed, &[&ident, "glibcxx"], 0.6) {
                    // Pick some level up to the build site's ladder.
                    let lvl = 1 + rng::hash_parts(seed, &[&ident, "glibcxx-lvl"]) % max as u64;
                    spec.extra_version_refs
                        .push((cxx_so.to_string(), format!("GLIBCXX_3.4.{lvl}")));
                }
            } else {
                spec.imports
                    .push(ImportSpec::plain("_ZNSt8ios_base4InitC1Ev", cxx_so));
            }
        }
    }

    // ---- provenance ---------------------------------------------------------------
    spec.comments = vec![compiler.comment_string(&site.config.os.pretty())];
    // NT_GNU_ABI_TAG: minimum kernel of the build distro.
    spec.abi_tag = Some(feam_elf::AbiTag {
        os: feam_elf::AbiTagOs::Linux,
        kernel: kernel_triple(&site.config.os.kernel),
    });

    // ---- packaging variant --------------------------------------------------------
    match variant {
        BinaryVariant::Static => {
            // The static linker folds every runtime into `.text`; the link
            // footprint disappears, the stamp and `.comment` remain.
            spec.static_link = true;
            spec.needed.clear();
            spec.imports.clear();
            spec.extra_version_refs.clear();
        }
        BinaryVariant::Cross => {
            // Cross toolchain packaging drops the comment strings.
            spec.comments.clear();
        }
        _ => {}
    }

    let mut image = spec
        .build()
        .map_err(|e| CompileError::Synthesis(e.to_string()))?;
    if variant == BinaryVariant::Stripped {
        strip_section_headers(&mut image).map_err(|e| CompileError::Synthesis(e.to_string()))?;
    }
    let identity = match variant {
        BinaryVariant::Normal => ident,
        v => format!("{ident}#{}", v.tag()),
    };
    Ok(CompiledBinary {
        image: Arc::new(image),
        program: prog.name.clone(),
        language: prog.language,
        built_at: site.name().to_string(),
        stack: stack.map(|ist| ist.stack.clone()),
        identity,
    })
}

/// Parse `2.6.18-238.el5` style kernel strings into a version triple.
fn kernel_triple(kernel: &str) -> (u32, u32, u32) {
    let mut nums = kernel
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().unwrap_or(0));
    (
        nums.next().unwrap_or(2),
        nums.next().unwrap_or(6),
        nums.next().unwrap_or(0),
    )
}

/// Identify the MPI implementation a binary was built with from its own
/// link-level footprint (used by the execution model; FEAM has its own
/// Table I identification in `feam-core`).
pub fn binary_mpi_impl(meta: &crate::loader::ObjectMeta) -> Option<MpiImpl> {
    for (sym, _, _) in &meta.imports {
        for imp in [MpiImpl::OpenMpi, MpiImpl::Mpich2, MpiImpl::Mvapich2] {
            if sym == imp.rt_marker() {
                return Some(imp);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpi::{MpiStack, Network};
    use crate::site::{OsInfo, SiteConfig};
    use crate::toolchain::Compiler;
    use feam_elf::ElfFile;
    use feam_elf::HostArch;

    fn site() -> Site {
        let mut cfg = SiteConfig::new(
            "buildsite",
            HostArch::X86_64,
            OsInfo::new("Red Hat Enterprise Linux Server", "6.1", "2.6.32-131"),
            "2.12",
            21,
        );
        cfg.compilers = vec![
            Compiler::new(CompilerFamily::Gnu, "4.4.5"),
            Compiler::new(CompilerFamily::Intel, "12.0"),
        ];
        cfg.stacks = vec![(
            MpiStack::new(
                MpiImpl::OpenMpi,
                "1.4",
                Compiler::new(CompilerFamily::Gnu, "4.4.5"),
                Network::Infiniband,
            ),
            true,
        )];
        Site::build(cfg)
    }

    #[test]
    fn compiled_binary_is_valid_elf_with_mpi_footprint() {
        let s = site();
        let ist = s.stacks[0].clone();
        let prog = ProgramSpec::new("cg.B.8", Language::Fortran);
        let bin = compile(&s, Some(&ist), &prog, 42).unwrap();
        let f = ElfFile::parse(&bin.image).unwrap();
        assert!(f.needed().iter().any(|n| n == "libmpi.so.0"));
        assert!(f.needed().iter().any(|n| n == "libmpi_f77.so.0"));
        assert!(f.needed().iter().any(|n| n == "libgfortran.so.3"));
        assert!(f.needed().iter().any(|n| n == "libnsl.so.1")); // Table I id
        assert!(f
            .dynamic_symbols()
            .iter()
            .any(|sym| sym.name == "ompi_rt_ident" && sym.undefined));
        assert!(f.comments()[0].starts_with("GCC:"));
    }

    #[test]
    fn compile_is_deterministic() {
        let s = site();
        let ist = s.stacks[0].clone();
        let prog = ProgramSpec::new("is.C.16", Language::C);
        let a = compile(&s, Some(&ist), &prog, 42).unwrap();
        let b = compile(&s, Some(&ist), &prog, 42).unwrap();
        assert_eq!(a.image, b.image);
        let c = compile(&s, Some(&ist), &prog, 43).unwrap();
        assert_ne!(a.image, c.image, "different seed, different sampling");
    }

    #[test]
    fn required_glibc_bounded_by_build_site() {
        let s = site(); // glibc 2.12
        let ist = s.stacks[0].clone();
        let mut prog = ProgramSpec::new("lu.A.4", Language::Fortran);
        prog.glibc_appetite = 1.0; // use everything available
        let bin = compile(&s, Some(&ist), &prog, 7).unwrap();
        let f = ElfFile::parse(&bin.image).unwrap();
        let req = f.required_glibc().unwrap();
        assert_eq!(req.render(), "GLIBC_2.12");
    }

    #[test]
    fn portable_program_requires_only_baseline() {
        let s = site();
        let ist = s.stacks[0].clone();
        let mut prog = ProgramSpec::new("ep.A.2", Language::Fortran);
        prog.glibc_appetite = 0.0;
        let bin = compile(&s, Some(&ist), &prog, 7).unwrap();
        let f = ElfFile::parse(&bin.image).unwrap();
        assert_eq!(f.required_glibc().unwrap().render(), "GLIBC_2.2.5");
    }

    #[test]
    fn hello_world_always_carries_abi_marker() {
        let s = site();
        let ist = s.stacks[0].clone();
        let hw = ProgramSpec::mpi_hello_world(Language::C);
        for seed in 0..5 {
            let bin = compile(&s, Some(&ist), &hw, seed).unwrap();
            let f = ElfFile::parse(&bin.image).unwrap();
            assert!(f
                .dynamic_symbols()
                .iter()
                .any(|sym| sym.name == "ompi_abi_v1" && sym.undefined));
        }
    }

    #[test]
    fn serial_program_has_no_mpi_libs() {
        let s = site();
        let prog = ProgramSpec::serial_hello_world();
        let bin = compile(&s, None, &prog, 1).unwrap();
        let f = ElfFile::parse(&bin.image).unwrap();
        assert!(!f.needed().iter().any(|n| n.starts_with("libmpi")));
    }

    #[test]
    fn missing_compiler_family_is_error() {
        let s = site(); // no PGI
        let ist = InstalledStack {
            stack: MpiStack::new(
                MpiImpl::OpenMpi,
                "1.4",
                Compiler::new(CompilerFamily::Pgi, "10.9"),
                Network::Ethernet,
            ),
            prefix: "/opt/x".into(),
            module_name: None,
            functional: true,
        };
        let prog = ProgramSpec::new("bt.A.4", Language::Fortran);
        assert!(matches!(
            compile(&s, Some(&ist), &prog, 1),
            Err(CompileError::CompilerMissing(CompilerFamily::Pgi))
        ));
    }

    #[test]
    fn stripped_variant_is_the_normal_image_with_headers_zeroed() {
        let s = site();
        let ist = s.stacks[0].clone();
        let prog = ProgramSpec::new("bt.A.4", Language::Fortran);
        let normal = compile(&s, Some(&ist), &prog, 42).unwrap();
        let stripped = compile_variant(&s, Some(&ist), &prog, 42, BinaryVariant::Stripped).unwrap();
        assert_eq!(normal.image.len(), stripped.image.len());
        assert!(stripped.identity.ends_with("#stripped"));
        let f = ElfFile::parse(&stripped.image).unwrap();
        assert!(f.sections().is_empty());
        assert!(f.comments().is_empty());
        assert!(!f.needed().is_empty(), "segment route survives");
        // Same stamp at the entry point as the normal build.
        let fs = ElfFile::parse(&normal.image).unwrap();
        assert_eq!(
            &f.code_bytes().unwrap()[..24],
            &fs.code_bytes().unwrap()[..24]
        );
    }

    #[test]
    fn static_variant_keeps_comment_and_stamp_only() {
        let s = site();
        let ist = s.stacks[0].clone();
        let prog = ProgramSpec::new("sp.B.9", Language::C);
        let bin = compile_variant(&s, Some(&ist), &prog, 7, BinaryVariant::Static).unwrap();
        let f = ElfFile::parse(&bin.image).unwrap();
        assert!(!f.is_dynamic());
        assert!(f.needed().is_empty());
        assert!(f.comments()[0].starts_with("GCC:"));
        let expected = stamp::text_stamp(&ist.stack.compiler, Some(ist.stack.mpi));
        assert_eq!(&f.code_bytes().unwrap()[..expected.len()], &expected[..]);
    }

    #[test]
    fn cross_variant_targets_foreign_isa_without_comments() {
        let s = site(); // x86_64 native
        let ist = s.stacks[0].clone();
        let prog = ProgramSpec::new("mg.C.16", Language::C);
        let bin = compile_variant(&s, Some(&ist), &prog, 9, BinaryVariant::Cross).unwrap();
        let f = ElfFile::parse(&bin.image).unwrap();
        assert_eq!(f.machine(), Machine::Ppc64);
        assert!(f.comments().is_empty());
        assert!(!f.needed().is_empty(), "cross build is still dynamic");
    }

    #[test]
    fn every_variant_carries_the_same_stamp_lanes() {
        let s = site();
        let ist = s.stacks[0].clone();
        let prog = ProgramSpec::new("lu.B.8", Language::Fortran);
        let expected = stamp::text_stamp(&ist.stack.compiler, Some(ist.stack.mpi));
        for v in BinaryVariant::ALL {
            let bin = compile_variant(&s, Some(&ist), &prog, 11, v).unwrap();
            let f = ElfFile::parse(&bin.image).unwrap();
            let code = f.code_bytes().expect("code bytes for every variant");
            assert_eq!(&code[..expected.len()], &expected[..], "{v:?}");
        }
    }

    #[test]
    fn binary_mpi_impl_identified_from_marker() {
        let s = site();
        let ist = s.stacks[0].clone();
        let bin = compile(
            &s,
            Some(&ist),
            &ProgramSpec::new("mg.B.4", Language::Fortran),
            3,
        )
        .unwrap();
        let meta = crate::loader::ObjectMeta::parse(&bin.image).unwrap();
        assert_eq!(binary_mpi_impl(&meta), Some(MpiImpl::OpenMpi));
    }
}
