//! Execution model: ground truth for "did the job actually run".
//!
//! Reproduces the paper's observed failure taxonomy (§VI.C):
//!
//! * **missing shared libraries** — more than half of the failures;
//!   produced mechanically by the loader model,
//! * **C library version requirements** — unresolved `GLIBC_*` references,
//! * **ABI incompatibilities** — unresolved marker symbols / version refs,
//! * **floating point exceptions** — a site × compiler-runtime property,
//! * **system errors** (failed MPI daemon spawning, communication
//!   timeouts) — seeded-random per (binary, site), persistent or
//!   transient; the paper retries five times "spaced in time".

use crate::loader::{resolve_closure, LoadError, ObjectMeta};
use crate::rng;
use crate::site::{InstalledStack, Session};
use crate::toolchain::CompilerFamily;
use serde::{Deserialize, Serialize};

/// Default number of launch attempts (§VI.C: "five execution attempts").
pub const DEFAULT_ATTEMPTS: u32 = 5;

/// Kinds of unpredictable system errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SystemErrorKind {
    /// `mpd`/`orted` daemon failed to spawn.
    DaemonSpawn,
    /// Communication timeout.
    Timeout,
}

/// Why an execution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureCause {
    /// Wrong ISA / word length / file format for this hardware.
    NotExecutable(String),
    /// Loader-level failure (missing library, unresolved version, missing
    /// symbol).
    Load(LoadError),
    /// The launcher's MPI implementation does not match the binary's.
    MpiLauncherMismatch {
        binary_impl: String,
        launcher_impl: String,
    },
    /// The selected stack is misconfigured and cannot launch anything.
    StackMisconfigured(String),
    /// Runtime floating-point exception (SIGFPE).
    FloatingPointException,
    /// Unpredictable site-level error.
    SystemError(SystemErrorKind),
}

impl FailureCause {
    /// Coarse class used by the evaluation's failure histogram.
    pub fn class(&self) -> &'static str {
        match self {
            FailureCause::NotExecutable(_) => "not-executable",
            FailureCause::Load(LoadError::MissingLibrary { .. }) => "missing-library",
            FailureCause::Load(LoadError::UnresolvedVersion { version, .. }) => {
                if version.starts_with("GLIBC_") {
                    "c-library-version"
                } else {
                    "abi-incompatibility"
                }
            }
            FailureCause::Load(LoadError::MissingSymbol { .. }) => "abi-incompatibility",
            FailureCause::Load(LoadError::NotLoadable(_)) => "not-executable",
            FailureCause::MpiLauncherMismatch { .. } => "mpi-mismatch",
            FailureCause::StackMisconfigured(_) => "stack-misconfigured",
            FailureCause::FloatingPointException => "floating-point-exception",
            FailureCause::SystemError(_) => "system-error",
        }
    }
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureCause::NotExecutable(msg) => write!(f, "cannot execute: {msg}"),
            FailureCause::Load(e) => write!(f, "{e}"),
            FailureCause::MpiLauncherMismatch {
                binary_impl,
                launcher_impl,
            } => {
                write!(
                    f,
                    "binary built for {binary_impl} but launched with {launcher_impl}"
                )
            }
            FailureCause::StackMisconfigured(s) => write!(f, "MPI stack {s} is not useable"),
            FailureCause::FloatingPointException => write!(f, "floating point exception (SIGFPE)"),
            FailureCause::SystemError(SystemErrorKind::DaemonSpawn) => {
                write!(f, "mpd daemon failed to spawn")
            }
            FailureCause::SystemError(SystemErrorKind::Timeout) => {
                write!(f, "communication timeout")
            }
        }
    }
}

/// Result of a (possibly retried) execution.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    pub success: bool,
    /// Attempts consumed (≥1).
    pub attempts: u32,
    /// First decisive failure, when unsuccessful.
    pub failure: Option<FailureCause>,
}

impl ExecOutcome {
    fn ok(attempts: u32) -> Self {
        ExecOutcome {
            success: true,
            attempts,
            failure: None,
        }
    }

    fn fail(attempts: u32, cause: FailureCause) -> Self {
        ExecOutcome {
            success: false,
            attempts,
            failure: Some(cause),
        }
    }
}

/// Extract (compiler family, full version string) from `.comment`
/// provenance.
pub fn compiler_version_from_comments<S: AsRef<str>>(
    comments: &[S],
) -> Option<(CompilerFamily, String)> {
    for c in comments {
        let c = c.as_ref();
        if let Some(rest) = c.strip_prefix("GCC: ") {
            let ver = rest
                .split_whitespace()
                .find(|w| w.chars().next().is_some_and(|ch| ch.is_ascii_digit()))?;
            return Some((CompilerFamily::Gnu, ver.to_string()));
        }
        if c.starts_with("Intel(R)") {
            let ver = c.split("Version ").nth(1)?.split_whitespace().next()?;
            return Some((CompilerFamily::Intel, ver.to_string()));
        }
        if c.starts_with("PGI") {
            let ver = c
                .split_whitespace()
                .find(|w| w.chars().next().is_some_and(|ch| ch.is_ascii_digit()))?;
            return Some((CompilerFamily::Pgi, ver.split('-').next()?.to_string()));
        }
    }
    None
}

/// Extract (compiler family, major version) from `.comment` provenance —
/// the execution model's way of knowing which runtime personality a binary
/// has.
pub fn compiler_from_comments<S: AsRef<str>>(comments: &[S]) -> Option<(CompilerFamily, u32)> {
    for c in comments {
        let c = c.as_ref();
        if let Some(rest) = c.strip_prefix("GCC: ") {
            let ver = rest
                .split_whitespace()
                .find(|w| w.chars().next().is_some_and(|ch| ch.is_ascii_digit()))?;
            let major: u32 = ver.split('.').next()?.parse().ok()?;
            return Some((CompilerFamily::Gnu, major));
        }
        if c.starts_with("Intel(R)") {
            let ver = c.split("Version ").nth(1)?.split_whitespace().next()?;
            let major: u32 = ver.split('.').next()?.parse().ok()?;
            return Some((CompilerFamily::Intel, major));
        }
        if c.starts_with("PGI") {
            let ver = c
                .split_whitespace()
                .find(|w| w.chars().next().is_some_and(|ch| ch.is_ascii_digit()))?;
            let major: u32 = ver.split(['.', '-']).next()?.parse().ok()?;
            return Some((CompilerFamily::Pgi, major));
        }
    }
    None
}

/// Stable identity of a binary for seeding (first 4 KiB + length).
pub fn binary_fingerprint(bytes: &[u8]) -> u64 {
    let head = &bytes[..bytes.len().min(4096)];
    rng::mix(rng::fnv1a(head) ^ (bytes.len() as u64))
}

/// Run a serial binary at `path` within the session. Exercises ISA check,
/// loader, and FPE triggers; no MPI launcher involved.
pub fn run_serial(sess: &mut Session<'_>, path: &str) -> ExecOutcome {
    sess.charge(0.5);
    match launch_once(sess, path, None) {
        Ok(()) => ExecOutcome::ok(1),
        Err(cause) => ExecOutcome::fail(1, cause),
    }
}

/// Run an MPI binary with `mpiexec` from `launcher`, retrying up to
/// `max_attempts` times (the paper's five spaced attempts).
///
/// Every attempt emits a `launch_attempt` trace event on the session's
/// recorder, and the final attempt count lands in the `launch.attempts`
/// histogram (the §VI.C retry statistic).
pub fn run_mpi(
    sess: &mut Session<'_>,
    path: &str,
    launcher: &InstalledStack,
    nprocs: u32,
    max_attempts: u32,
) -> ExecOutcome {
    let outcome = run_mpi_attempts(sess, path, launcher, nprocs, max_attempts);
    let rec = &sess.recorder;
    rec.count("launch.runs", 1);
    rec.observe("launch.attempts", outcome.attempts as f64);
    if !outcome.success {
        rec.count("launch.failures", 1);
    }
    outcome
}

fn run_mpi_attempts(
    sess: &mut Session<'_>,
    path: &str,
    launcher: &InstalledStack,
    nprocs: u32,
    max_attempts: u32,
) -> ExecOutcome {
    let max_attempts = max_attempts.max(1);
    let site_seed = sess.site.config.seed;
    let fp = sess
        .read_bytes(path)
        .map(|b| binary_fingerprint(&b))
        .unwrap_or(0);
    let key = format!("{fp:x}@{}", launcher.stack.ident());
    let attempt_event = |sess: &Session<'_>, attempt: u32, outcome: &str| {
        sess.recorder.event(
            "launch_attempt",
            &[
                ("attempt", attempt.into()),
                ("stack", launcher.stack.ident().as_str().into()),
                ("outcome", outcome.into()),
            ],
        );
    };

    // Persistent system error: this (binary, site, stack) pairing is sick
    // for the whole test window.
    let persistent_syserr = rng::chance(
        site_seed,
        &[&key, "syserr-persistent"],
        sess.site.config.system_error_rate,
    );

    for attempt in 1..=max_attempts {
        sess.charge(1.0 + 0.05 * nprocs as f64);
        if !launcher.functional {
            attempt_event(sess, attempt, "stack-misconfigured");
            return ExecOutcome::fail(
                attempt,
                FailureCause::StackMisconfigured(launcher.stack.ident()),
            );
        }
        // Injected daemon-spawn storms (chaos testing): persistent faults
        // behave like the site's own persistent system errors, transient
        // ones like its per-attempt hiccups.
        let injected = sess.roll_fault(crate::faults::Chokepoint::DaemonSpawn, &key, attempt);
        if persistent_syserr || injected == Some(crate::faults::FaultKind::Persistent) {
            if attempt == max_attempts {
                let kind = if injected == Some(crate::faults::FaultKind::Persistent)
                    || rng::chance(site_seed, &[&key, "syserr-kind"], 0.5)
                {
                    SystemErrorKind::DaemonSpawn
                } else {
                    SystemErrorKind::Timeout
                };
                attempt_event(sess, attempt, "system-error");
                return ExecOutcome::fail(attempt, FailureCause::SystemError(kind));
            }
            attempt_event(sess, attempt, "retry");
            continue;
        }
        // Transient launch failure; spaced retries absorb it.
        let transient = injected == Some(crate::faults::FaultKind::Transient)
            || rng::chance(
                site_seed,
                &[&key, "syserr-transient", &attempt.to_string()],
                sess.site.config.transient_error_rate,
            );
        if transient {
            if attempt == max_attempts {
                attempt_event(sess, attempt, "system-error");
                return ExecOutcome::fail(
                    attempt,
                    FailureCause::SystemError(SystemErrorKind::Timeout),
                );
            }
            attempt_event(sess, attempt, "retry");
            continue;
        }
        return match launch_once(sess, path, Some(launcher)) {
            Ok(()) => {
                attempt_event(sess, attempt, "ok");
                ExecOutcome::ok(attempt)
            }
            Err(cause) => {
                attempt_event(sess, attempt, cause.class());
                ExecOutcome::fail(attempt, cause)
            }
        };
    }
    unreachable!("loop always returns")
}

/// One launch attempt: deterministic checks only.
fn launch_once(
    sess: &mut Session<'_>,
    path: &str,
    launcher: Option<&InstalledStack>,
) -> Result<(), FailureCause> {
    // The binary itself must be readable and a valid ELF for this hardware.
    let bytes = sess
        .read_bytes(path)
        .ok_or_else(|| FailureCause::NotExecutable(format!("{path}: no such file")))?;
    let meta = ObjectMeta::parse(&bytes).map_err(|e| FailureCause::NotExecutable(e.to_string()))?;
    if !sess.site.config.arch.executes(meta.machine, meta.class) {
        return Err(FailureCause::NotExecutable(format!(
            "{} {}-bit binary on {} hardware",
            meta.machine.name(),
            meta.class.bits(),
            sess.site.config.arch.uname_p(),
        )));
    }

    // Dynamic loading.
    resolve_closure(sess, path).map_err(FailureCause::Load)?;

    // MPI launcher / binary implementation agreement.
    if let Some(launcher) = launcher {
        if let Some(bin_impl) = crate::compile::binary_mpi_impl(&meta) {
            if bin_impl != launcher.stack.mpi {
                return Err(FailureCause::MpiLauncherMismatch {
                    binary_impl: bin_impl.name().to_string(),
                    launcher_impl: launcher.stack.mpi.name().to_string(),
                });
            }
        }
    }

    // Floating-point environment quirks: a property of (site, exact
    // compiler runtime version) pairs, visible only at run time — and only
    // detectable by running a program built with that runtime (which is
    // what the transported hello worlds do).
    if let Some((family, version)) = compiler_version_from_comments(&meta.comments) {
        if sess
            .site
            .config
            .fpe_triggers
            .iter()
            .any(|(f, v)| *f == family && *v == version)
        {
            return Err(FailureCause::FloatingPointException);
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, ProgramSpec};
    use crate::mpi::{MpiImpl, MpiStack, Network};
    use crate::site::{OsInfo, Site, SiteConfig};
    use crate::toolchain::{Compiler, Language};
    use feam_elf::HostArch;
    use std::sync::Arc;

    fn site_with(seed: u64, f: impl FnOnce(&mut SiteConfig)) -> Site {
        let mut cfg = SiteConfig::new(
            "exec-test",
            HostArch::X86_64,
            OsInfo::new("CentOS", "5.6", "2.6.18"),
            "2.5",
            seed,
        );
        cfg.compilers = vec![Compiler::new(CompilerFamily::Gnu, "4.1.2")];
        cfg.stacks = vec![(
            MpiStack::new(
                MpiImpl::OpenMpi,
                "1.4",
                Compiler::new(CompilerFamily::Gnu, "4.1.2"),
                Network::Ethernet,
            ),
            true,
        )];
        cfg.system_error_rate = 0.0;
        cfg.ldd_flaky_rate = 0.0;
        f(&mut cfg);
        Site::build(cfg)
    }

    fn compile_here(site: &Site, prog: &ProgramSpec) -> Arc<Vec<u8>> {
        let ist = site.stacks[0].clone();
        compile(site, Some(&ist), prog, 42).unwrap().image
    }

    #[test]
    fn binary_runs_where_it_was_built() {
        let s = site_with(1, |_| {});
        let img = compile_here(&s, &ProgramSpec::new("ep.A.2", Language::Fortran));
        let ist = s.stacks[0].clone();
        let mut sess = Session::new(&s);
        sess.load_stack(&ist);
        sess.stage_file("/home/user/ep.A.2", img);
        let out = run_mpi(&mut sess, "/home/user/ep.A.2", &ist, 4, DEFAULT_ATTEMPTS);
        assert!(out.success, "failure: {:?}", out.failure);
    }

    #[test]
    fn missing_mpi_stack_selection_fails_with_missing_library() {
        let s = site_with(2, |_| {});
        let img = compile_here(&s, &ProgramSpec::new("cg.A.2", Language::Fortran));
        let ist = s.stacks[0].clone();
        let mut sess = Session::new(&s); // stack NOT loaded → lib dir absent
        sess.stage_file("/home/user/cg.A.2", img);
        let out = run_mpi(&mut sess, "/home/user/cg.A.2", &ist, 4, DEFAULT_ATTEMPTS);
        assert!(!out.success);
        assert_eq!(out.failure.unwrap().class(), "missing-library");
    }

    #[test]
    fn misconfigured_stack_fails_everything() {
        let s = site_with(3, |cfg| {
            cfg.stacks[0].1 = false;
        });
        let img = compile_here(&s, &ProgramSpec::mpi_hello_world(Language::C));
        let ist = s.stacks[0].clone();
        let mut sess = Session::new(&s);
        sess.load_stack(&ist);
        sess.stage_file("/home/user/hello", img);
        let out = run_mpi(&mut sess, "/home/user/hello", &ist, 2, DEFAULT_ATTEMPTS);
        assert!(!out.success);
        assert_eq!(out.failure.unwrap().class(), "stack-misconfigured");
    }

    #[test]
    fn fpe_trigger_hits_matching_runtime_only() {
        let s = site_with(4, |cfg| {
            cfg.fpe_triggers = vec![(CompilerFamily::Gnu, "4.1.2".to_string())];
        });
        let img = compile_here(&s, &ProgramSpec::new("sp.A.4", Language::Fortran));
        let ist = s.stacks[0].clone();
        let mut sess = Session::new(&s);
        sess.load_stack(&ist);
        sess.stage_file("/home/user/sp.A.4", img);
        let out = run_mpi(&mut sess, "/home/user/sp.A.4", &ist, 4, DEFAULT_ATTEMPTS);
        assert!(!out.success);
        assert_eq!(out.failure.unwrap().class(), "floating-point-exception");
    }

    #[test]
    fn persistent_system_error_exhausts_retries() {
        let s = site_with(5, |cfg| {
            cfg.system_error_rate = 1.0;
        });
        let img = compile_here(&s, &ProgramSpec::new("is.A.2", Language::C));
        let ist = s.stacks[0].clone();
        let mut sess = Session::new(&s);
        sess.load_stack(&ist);
        sess.stage_file("/home/user/is.A.2", img);
        let out = run_mpi(&mut sess, "/home/user/is.A.2", &ist, 4, DEFAULT_ATTEMPTS);
        assert!(!out.success);
        assert_eq!(out.attempts, DEFAULT_ATTEMPTS);
        assert_eq!(out.failure.unwrap().class(), "system-error");
    }

    #[test]
    fn wrong_isa_rejected() {
        let s = site_with(6, |_| {});
        let mut spec =
            feam_elf::ElfSpec::executable(feam_elf::Machine::Ppc64, feam_elf::Class::Elf64);
        spec.needed = vec!["libc.so.6".into()];
        let img = Arc::new(spec.build().unwrap());
        let ist = s.stacks[0].clone();
        let mut sess = Session::new(&s);
        sess.load_stack(&ist);
        sess.stage_file("/home/user/ppc.bin", img);
        let out = run_mpi(&mut sess, "/home/user/ppc.bin", &ist, 4, DEFAULT_ATTEMPTS);
        assert_eq!(out.failure.unwrap().class(), "not-executable");
    }

    #[test]
    fn compiler_from_comments_parses_all_families() {
        assert_eq!(
            compiler_from_comments(&["GCC: (GNU) 4.1.2 20080704 (Red Hat 4.1.2-50)"]),
            Some((CompilerFamily::Gnu, 4))
        );
        assert_eq!(
            compiler_from_comments(&[
                "Intel(R) C Intel(R) 64 Compiler Professional, Version 11.1 Build 2"
            ]),
            Some((CompilerFamily::Intel, 11))
        );
        assert_eq!(
            compiler_from_comments(&["PGI Compilers and Tools pgcc 10.9-0 64-bit target"]),
            Some((CompilerFamily::Pgi, 10))
        );
        assert_eq!(compiler_from_comments(&["something else"]), None);
    }

    #[test]
    fn serial_run_of_self_built_binary_succeeds() {
        let s = site_with(7, |_| {});
        let img = compile(&s, None, &ProgramSpec::serial_hello_world(), 1)
            .unwrap()
            .image;
        let mut sess = Session::new(&s);
        sess.stage_file("/home/user/hello", img);
        let out = run_serial(&mut sess, "/home/user/hello");
        assert!(out.success, "failure: {:?}", out.failure);
    }
}
