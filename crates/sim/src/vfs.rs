//! In-memory Unix-like filesystem.
//!
//! Every simulated site owns one `Vfs` holding its `/proc` and `/etc`
//! description files, module databases, installed shared libraries (real
//! ELF images from `feam-elf`) and tool binaries. FEAM's discovery logic
//! runs against this tree exactly as it would against a real filesystem:
//! `find`-style walks, `locate`-style name lookups, symlink resolution.

use std::collections::BTreeMap;
use std::sync::Arc;

/// File contents: binary images are shared (`Arc`) because library images
/// are cloned into bundles and staging areas without copying megabytes.
#[derive(Debug, Clone)]
pub enum Content {
    /// Raw bytes (ELF images).
    Bytes(Arc<Vec<u8>>),
    /// UTF-8 text (config files, module files, scripts).
    Text(String),
}

impl Content {
    /// View as bytes regardless of variant.
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            Content::Bytes(b) => b,
            Content::Text(t) => t.as_bytes(),
        }
    }

    /// View as text, if valid UTF-8.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Content::Bytes(b) => std::str::from_utf8(b).ok(),
            Content::Text(t) => Some(t),
        }
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.as_bytes().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One node in the tree.
#[derive(Debug, Clone)]
pub enum Node {
    Dir,
    File { content: Content, executable: bool },
    Symlink { target: String },
}

/// Errors from filesystem operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    NotFound(String),
    NotADirectory(String),
    NotAFile(String),
    SymlinkLoop(String),
}

impl std::fmt::Display for VfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VfsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            VfsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            VfsError::NotAFile(p) => write!(f, "not a regular file: {p}"),
            VfsError::SymlinkLoop(p) => write!(f, "too many levels of symbolic links: {p}"),
        }
    }
}

impl std::error::Error for VfsError {}

/// Normalize a path: collapse `//`, resolve `.` and `..` textually, ensure
/// a leading `/`.
pub fn normalize(path: &str) -> String {
    let mut stack: Vec<&str> = Vec::new();
    for comp in path.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                stack.pop();
            }
            c => stack.push(c),
        }
    }
    let mut out = String::from("/");
    out.push_str(&stack.join("/"));
    out
}

/// Join a possibly-relative `name` onto the directory of `base`.
pub fn join(base_dir: &str, name: &str) -> String {
    if name.starts_with('/') {
        normalize(name)
    } else {
        normalize(&format!("{base_dir}/{name}"))
    }
}

/// Final path component.
pub fn basename(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

/// Directory part of a path (no trailing slash; `/` for root entries).
pub fn dirname(path: &str) -> &str {
    match path.rfind('/') {
        Some(0) => "/",
        Some(i) => &path[..i],
        None => "/",
    }
}

/// The in-memory filesystem. Paths are absolute, normalized strings.
#[derive(Debug, Clone, Default)]
pub struct Vfs {
    nodes: BTreeMap<String, Node>,
}

impl Vfs {
    /// An empty filesystem containing only `/`.
    pub fn new() -> Self {
        let mut nodes = BTreeMap::new();
        nodes.insert("/".to_string(), Node::Dir);
        Vfs { nodes }
    }

    /// Create a directory and all missing parents.
    pub fn mkdir_p(&mut self, path: &str) {
        let path = normalize(path);
        let mut cur = String::new();
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            cur.push('/');
            cur.push_str(comp);
            self.nodes.entry(cur.clone()).or_insert(Node::Dir);
        }
        self.nodes.entry("/".to_string()).or_insert(Node::Dir);
    }

    /// Write a file, creating parents; overwrites an existing file.
    pub fn write(&mut self, path: &str, content: Content) {
        let path = normalize(path);
        self.mkdir_p(dirname(&path));
        self.nodes.insert(
            path,
            Node::File {
                content,
                executable: false,
            },
        );
    }

    /// Write a text file.
    pub fn write_text(&mut self, path: &str, text: impl Into<String>) {
        self.write(path, Content::Text(text.into()));
    }

    /// Write a binary file (shared bytes).
    pub fn write_bytes(&mut self, path: &str, bytes: Arc<Vec<u8>>) {
        self.write(path, Content::Bytes(bytes));
    }

    /// Write an executable binary file.
    pub fn write_executable(&mut self, path: &str, bytes: Arc<Vec<u8>>) {
        let path = normalize(path);
        self.mkdir_p(dirname(&path));
        self.nodes.insert(
            path,
            Node::File {
                content: Content::Bytes(bytes),
                executable: true,
            },
        );
    }

    /// Mark an existing file executable.
    pub fn set_executable(&mut self, path: &str) -> Result<(), VfsError> {
        let path = normalize(path);
        match self.nodes.get_mut(&path) {
            Some(Node::File { executable, .. }) => {
                *executable = true;
                Ok(())
            }
            Some(_) => Err(VfsError::NotAFile(path)),
            None => Err(VfsError::NotFound(path)),
        }
    }

    /// Create a symlink at `path` pointing to `target` (absolute or
    /// relative to the link's directory).
    pub fn symlink(&mut self, path: &str, target: &str) {
        let path = normalize(path);
        self.mkdir_p(dirname(&path));
        self.nodes.insert(
            path,
            Node::Symlink {
                target: target.to_string(),
            },
        );
    }

    /// Remove a file, symlink, or (recursively) a directory.
    pub fn remove(&mut self, path: &str) {
        let path = normalize(path);
        let prefix = format!("{path}/");
        self.nodes
            .retain(|p, _| p != &path && !p.starts_with(&prefix));
    }

    /// Raw node lookup without following symlinks.
    pub fn lookup(&self, path: &str) -> Option<&Node> {
        self.nodes.get(&normalize(path))
    }

    /// Resolve a path, following symlinks (bounded depth).
    pub fn resolve(&self, path: &str) -> Result<(String, &Node), VfsError> {
        let mut cur = normalize(path);
        for _ in 0..16 {
            match self.nodes.get(&cur) {
                None => return Err(VfsError::NotFound(cur)),
                Some(Node::Symlink { target }) => {
                    cur = join(dirname(&cur), target);
                }
                Some(node) => return Ok((cur, node)),
            }
        }
        Err(VfsError::SymlinkLoop(normalize(path)))
    }

    /// Does the path exist (following symlinks)?
    pub fn exists(&self, path: &str) -> bool {
        self.resolve(path).is_ok()
    }

    /// Read file contents, following symlinks.
    pub fn read(&self, path: &str) -> Result<&Content, VfsError> {
        match self.resolve(path)? {
            (_, Node::File { content, .. }) => Ok(content),
            (p, _) => Err(VfsError::NotAFile(p)),
        }
    }

    /// Read file contents as text.
    pub fn read_text(&self, path: &str) -> Result<&str, VfsError> {
        self.read(path)?
            .as_text()
            .ok_or_else(|| VfsError::NotAFile(normalize(path)))
    }

    /// Is the path an executable regular file (following symlinks)?
    pub fn is_executable(&self, path: &str) -> bool {
        matches!(
            self.resolve(path),
            Ok((
                _,
                Node::File {
                    executable: true,
                    ..
                }
            ))
        )
    }

    /// Immediate children names of a directory.
    pub fn list_dir(&self, path: &str) -> Result<Vec<String>, VfsError> {
        let (dir, node) = self.resolve(path)?;
        if !matches!(node, Node::Dir) {
            return Err(VfsError::NotADirectory(dir));
        }
        let prefix = if dir == "/" {
            "/".to_string()
        } else {
            format!("{dir}/")
        };
        let mut out = Vec::new();
        for p in self.nodes.range(prefix.clone()..) {
            let (path, _) = p;
            if !path.starts_with(&prefix) {
                break;
            }
            let rest = &path[prefix.len()..];
            if !rest.is_empty() && !rest.contains('/') {
                out.push(rest.to_string());
            }
        }
        Ok(out)
    }

    /// All paths in the tree (files, dirs, links), sorted.
    pub fn all_paths(&self) -> impl Iterator<Item = &str> {
        self.nodes.keys().map(String::as_str)
    }

    /// `find <root> -name <name>`-style search: every path under `root`
    /// whose basename equals `name`. Follows nothing; reports link paths.
    pub fn find_by_name(&self, root: &str, name: &str) -> Vec<String> {
        let root = normalize(root);
        let prefix = if root == "/" {
            "/".to_string()
        } else {
            format!("{root}/")
        };
        self.nodes
            .keys()
            .filter(|p| (p.starts_with(&prefix) || **p == root) && basename(p) == name)
            .cloned()
            .collect()
    }

    /// `locate <pattern>`-style search: every path whose basename
    /// *contains* `pattern`.
    pub fn locate(&self, pattern: &str) -> Vec<String> {
        self.nodes
            .keys()
            .filter(|p| basename(p).contains(pattern))
            .cloned()
            .collect()
    }

    /// Total bytes of all regular files under `root`.
    pub fn disk_usage(&self, root: &str) -> usize {
        let root = normalize(root);
        let prefix = if root == "/" {
            "/".to_string()
        } else {
            format!("{root}/")
        };
        self.nodes
            .iter()
            .filter(|(p, _)| p.starts_with(&prefix) || **p == root)
            .map(|(_, n)| match n {
                Node::File { content, .. } => content.len(),
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_collapses_components() {
        assert_eq!(normalize("/a//b/./c/../d"), "/a/b/d");
        assert_eq!(normalize("a/b"), "/a/b");
        assert_eq!(normalize("/"), "/");
        assert_eq!(normalize("/.."), "/");
    }

    #[test]
    fn join_handles_absolute_and_relative() {
        assert_eq!(join("/usr/lib", "libm.so"), "/usr/lib/libm.so");
        assert_eq!(join("/usr/lib", "/opt/lib/x"), "/opt/lib/x");
        assert_eq!(join("/usr/lib", "../lib64/libc.so"), "/usr/lib64/libc.so");
    }

    #[test]
    fn mkdir_write_read_round_trip() {
        let mut fs = Vfs::new();
        fs.write_text("/etc/redhat-release", "CentOS release 5.6 (Final)");
        assert_eq!(
            fs.read_text("/etc/redhat-release").unwrap(),
            "CentOS release 5.6 (Final)"
        );
        assert!(fs.exists("/etc"));
        assert!(matches!(fs.lookup("/etc"), Some(Node::Dir)));
    }

    #[test]
    fn symlink_resolution_absolute_and_relative() {
        let mut fs = Vfs::new();
        fs.write_text("/usr/lib64/libmpi.so.0.0.2", "elf");
        fs.symlink("/usr/lib64/libmpi.so.0", "libmpi.so.0.0.2");
        fs.symlink("/opt/mpi/libmpi.so.0", "/usr/lib64/libmpi.so.0");
        assert_eq!(fs.read_text("/usr/lib64/libmpi.so.0").unwrap(), "elf");
        assert_eq!(fs.read_text("/opt/mpi/libmpi.so.0").unwrap(), "elf");
        let (real, _) = fs.resolve("/opt/mpi/libmpi.so.0").unwrap();
        assert_eq!(real, "/usr/lib64/libmpi.so.0.0.2");
    }

    #[test]
    fn symlink_loop_detected() {
        let mut fs = Vfs::new();
        fs.symlink("/a", "/b");
        fs.symlink("/b", "/a");
        assert!(matches!(fs.resolve("/a"), Err(VfsError::SymlinkLoop(_))));
    }

    #[test]
    fn list_dir_returns_immediate_children_only() {
        let mut fs = Vfs::new();
        fs.write_text("/opt/mpi/lib/libmpi.so", "x");
        fs.write_text("/opt/mpi/README", "x");
        fs.write_text("/opt/other", "x");
        let mut kids = fs.list_dir("/opt/mpi").unwrap();
        kids.sort();
        assert_eq!(kids, vec!["README", "lib"]);
        let root_kids = fs.list_dir("/").unwrap();
        assert_eq!(root_kids, vec!["opt"]);
    }

    #[test]
    fn find_by_name_and_locate() {
        let mut fs = Vfs::new();
        fs.write_text("/usr/lib64/libgfortran.so.1", "x");
        fs.write_text("/opt/gcc/lib/libgfortran.so.1", "x");
        fs.write_text("/usr/lib64/libgfortran.so.3", "x");
        let found = fs.find_by_name("/usr", "libgfortran.so.1");
        assert_eq!(found, vec!["/usr/lib64/libgfortran.so.1"]);
        let located = fs.locate("libgfortran");
        assert_eq!(located.len(), 3);
    }

    #[test]
    fn remove_is_recursive() {
        let mut fs = Vfs::new();
        fs.write_text("/opt/mpi/lib/a", "x");
        fs.write_text("/opt/mpi/lib/b", "x");
        fs.remove("/opt/mpi");
        assert!(!fs.exists("/opt/mpi"));
        assert!(!fs.exists("/opt/mpi/lib/a"));
        assert!(fs.exists("/opt"));
    }

    #[test]
    fn executable_bit() {
        let mut fs = Vfs::new();
        fs.write_executable("/usr/bin/mpicc", Arc::new(b"#!wrapper".to_vec()));
        assert!(fs.is_executable("/usr/bin/mpicc"));
        fs.write_text("/usr/bin/readme", "x");
        assert!(!fs.is_executable("/usr/bin/readme"));
        fs.set_executable("/usr/bin/readme").unwrap();
        assert!(fs.is_executable("/usr/bin/readme"));
        assert!(fs.set_executable("/nope").is_err());
    }

    #[test]
    fn disk_usage_sums_file_sizes() {
        let mut fs = Vfs::new();
        fs.write_text("/bundle/a", "12345");
        fs.write_text("/bundle/sub/b", "123");
        fs.write_text("/other/c", "1");
        assert_eq!(fs.disk_usage("/bundle"), 8);
    }
}
